#include "catalog/catalog.h"

#include "common/string_util.h"

namespace radb {

bool Catalog::IsSystemName(const std::string& name) {
  const std::string key = ToLower(name);
  return key.rfind(kSystemPrefix, 0) == 0;
}

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Schema schema,
                                                    size_t num_partitions) {
  if (IsSystemName(name)) {
    return Status::CatalogError(
        "cannot create table " + name + ": the '" +
        std::string(kSystemPrefix) +
        "' prefix is reserved for system tables (see radb_tables)");
  }
  const std::string key = ToLower(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + name);
  }
  auto table = std::make_shared<Table>(
      key, std::move(schema),
      num_partitions == 0 ? default_partitions_ : num_partitions);
  tables_[key] = table;
  BumpSchemaVersion();
  return table;
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    if (system_tables_ != nullptr && system_tables_->Has(key)) {
      return system_tables_->Snapshot(key);
    }
    return Status::CatalogError("unknown system table: " + name +
                                " (see radb_tables for user tables)");
  }
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::CatalogError("table not found: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    return system_tables_ != nullptr && system_tables_->Has(key);
  }
  return tables_.count(key) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (IsSystemName(name)) {
    return Status::CatalogError("system table " + ToLower(name) +
                                " is read-only and cannot be dropped");
  }
  const std::string key = ToLower(name);
  if (tables_.erase(key) == 0) {
    return Status::CatalogError("table not found: " + name);
  }
  // The table's indexes vanish with it.
  for (auto it = index_owners_.begin(); it != index_owners_.end();) {
    if (it->second == key) {
      it = index_owners_.erase(it);
    } else {
      ++it;
    }
  }
  BumpSchemaVersion();
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& table,
                            const std::string& index,
                            const std::vector<size_t>& columns) {
  const std::string index_key = ToLower(index);
  if (index_owners_.count(index_key)) {
    return Status::CatalogError("index already exists: " + index);
  }
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::CatalogError("table not found: " + table);
  }
  RADB_RETURN_NOT_OK(it->second->CreateIndex(index_key, columns));
  index_owners_[index_key] = it->first;
  BumpSchemaVersion();
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& index) {
  const std::string index_key = ToLower(index);
  auto it = index_owners_.find(index_key);
  if (it == index_owners_.end()) {
    return Status::CatalogError("index not found: " + index);
  }
  auto table = tables_.find(it->second);
  if (table != tables_.end()) {
    RADB_RETURN_NOT_OK(table->second->DropIndex(index_key));
  }
  index_owners_.erase(it);
  BumpSchemaVersion();
  return Status::OK();
}

std::string Catalog::IndexOwner(const std::string& index) const {
  auto it = index_owners_.find(ToLower(index));
  return it == index_owners_.end() ? std::string() : it->second;
}

Status Catalog::CreateView(ViewEntry view) {
  if (IsSystemName(view.name)) {
    return Status::CatalogError(
        "cannot create view " + view.name + ": the '" +
        std::string(kSystemPrefix) +
        "' prefix is reserved for system tables");
  }
  const std::string key = ToLower(view.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + view.name);
  }
  views_[key] = std::move(view);
  BumpSchemaVersion();
  return Status::OK();
}

Result<const ViewEntry*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::CatalogError("view not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToLower(name)) > 0;
}

Status Catalog::DropView(const std::string& name) {
  if (IsSystemName(name)) {
    return Status::CatalogError("system relation " + ToLower(name) +
                                " is read-only and cannot be dropped");
  }
  if (views_.erase(ToLower(name)) == 0) {
    return Status::CatalogError("view not found: " + name);
  }
  BumpSchemaVersion();
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

}  // namespace radb
