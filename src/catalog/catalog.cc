#include "catalog/catalog.h"

#include "common/string_util.h"

namespace radb {

bool Catalog::IsSystemName(const std::string& name) {
  const std::string key = ToLower(name);
  return key.rfind(kSystemPrefix, 0) == 0;
}

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Schema schema) {
  if (IsSystemName(name)) {
    return Status::CatalogError(
        "cannot create table " + name + ": the '" +
        std::string(kSystemPrefix) +
        "' prefix is reserved for system tables (see radb_tables)");
  }
  const std::string key = ToLower(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + name);
  }
  auto table = std::make_shared<Table>(key, std::move(schema),
                                       default_partitions_);
  tables_[key] = table;
  BumpSchemaVersion();
  return table;
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    if (system_tables_ != nullptr && system_tables_->Has(key)) {
      return system_tables_->Snapshot(key);
    }
    return Status::CatalogError("unknown system table: " + name +
                                " (see radb_tables for user tables)");
  }
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::CatalogError("table not found: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    return system_tables_ != nullptr && system_tables_->Has(key);
  }
  return tables_.count(key) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (IsSystemName(name)) {
    return Status::CatalogError("system table " + ToLower(name) +
                                " is read-only and cannot be dropped");
  }
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::CatalogError("table not found: " + name);
  }
  BumpSchemaVersion();
  return Status::OK();
}

Status Catalog::CreateView(ViewEntry view) {
  if (IsSystemName(view.name)) {
    return Status::CatalogError(
        "cannot create view " + view.name + ": the '" +
        std::string(kSystemPrefix) +
        "' prefix is reserved for system tables");
  }
  const std::string key = ToLower(view.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + view.name);
  }
  views_[key] = std::move(view);
  BumpSchemaVersion();
  return Status::OK();
}

Result<const ViewEntry*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::CatalogError("view not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToLower(name)) > 0;
}

Status Catalog::DropView(const std::string& name) {
  if (IsSystemName(name)) {
    return Status::CatalogError("system relation " + ToLower(name) +
                                " is read-only and cannot be dropped");
  }
  if (views_.erase(ToLower(name)) == 0) {
    return Status::CatalogError("view not found: " + name);
  }
  BumpSchemaVersion();
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace radb
