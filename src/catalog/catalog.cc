#include "catalog/catalog.h"

#include "common/string_util.h"

namespace radb {

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Schema schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + name);
  }
  auto table = std::make_shared<Table>(key, std::move(schema),
                                       default_partitions_);
  tables_[key] = table;
  return table;
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("table not found: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::CatalogError("table not found: " + name);
  }
  return Status::OK();
}

Status Catalog::CreateView(ViewEntry view) {
  const std::string key = ToLower(view.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("relation already exists: " + view.name);
  }
  views_[key] = std::move(view);
  return Status::OK();
}

Result<const ViewEntry*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::CatalogError("view not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToLower(name)) > 0;
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(ToLower(name)) == 0) {
    return Status::CatalogError("view not found: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace radb
