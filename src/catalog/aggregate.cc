#include "catalog/aggregate.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "types/value_ops.h"

namespace radb {

namespace {

// ---------------------------------------------------------------------
// SUM: element-wise over MATRIX/VECTOR thanks to overloaded + (§3.2).
// ---------------------------------------------------------------------
class SumAggregator : public Aggregator {
 public:
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    // Sparse matrices accumulate densely: a SUM across a group fills
    // in quickly anyway, and AddInPlace needs dense storage.
    if (v.is_sparse_matrix()) return Update(v.Densified());
    // MATRIX/VECTOR inputs accumulate into owned storage in place —
    // a fresh d x d allocation per input row would otherwise dominate
    // Gram-style SUM(outer_product(...)) queries.
    // A group must be uniformly MATRIX, uniformly VECTOR, or uniformly
    // scalar — checked in every direction so the result cannot depend
    // on which kind happened to arrive first.
    const bool la_mix = init_ && ((v.kind() == TypeKind::kMatrix) != mat_.has_value() ||
                                  (v.kind() == TypeKind::kVector) != vec_.has_value());
    if (la_mix) {
      return Status::TypeError(
          "SUM: mixed scalar and MATRIX/VECTOR inputs in one group");
    }
    if (v.kind() == TypeKind::kMatrix) {
      if (!init_) {
        mat_ = v.matrix();
        init_ = true;
        return Status::OK();
      }
      return la::AddInPlace(&*mat_, v.matrix());
    }
    if (v.kind() == TypeKind::kVector) {
      if (!init_) {
        vec_ = v.vector();
        init_ = true;
        return Status::OK();
      }
      return la::AddInPlace(&*vec_, v.vector());
    }
    if (!init_) {
      acc_ = v;
      init_ = true;
      return Status::OK();
    }
    RADB_ASSIGN_OR_RETURN(*acc_, EvalArith(ArithOp::kAdd, *acc_, v));
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const SumAggregator&>(other);
    if (!o.init_) return Status::OK();
    if (o.mat_) return Update(Value::FromMatrix(*o.mat_));
    if (o.vec_) return Update(Value::FromVector(*o.vec_));
    return Update(*o.acc_);
  }
  Result<Value> Finalize() const override {
    if (!init_) return Value::Null();
    if (mat_) return Value::FromMatrix(*mat_);
    if (vec_) return Value::FromVector(*vec_);
    return *acc_;
  }
  size_t StateBytes() const override {
    if (mat_) return mat_->ByteSize();
    if (vec_) return vec_->ByteSize();
    return acc_ ? acc_->ByteSize() : 1;
  }

 private:
  bool init_ = false;
  std::optional<la::Matrix> mat_;
  std::optional<la::Vector> vec_;
  std::optional<Value> acc_;
};

class CountAggregator : public Aggregator {
 public:
  Status Update(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    count_ += static_cast<const CountAggregator&>(other).count_;
    return Status::OK();
  }
  Result<Value> Finalize() const override { return Value::Int(count_); }
  size_t StateBytes() const override { return sizeof(count_); }

 private:
  int64_t count_ = 0;
};

class AvgAggregator : public Aggregator {
 public:
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    ++count_;
    if (!sum_) {
      sum_ = v;
      return Status::OK();
    }
    RADB_ASSIGN_OR_RETURN(*sum_, EvalArith(ArithOp::kAdd, *sum_, v));
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const AvgAggregator&>(other);
    if (!o.sum_) return Status::OK();
    count_ += o.count_ - 1;  // Update() below adds 1 back
    return Update(*o.sum_);
  }
  Result<Value> Finalize() const override {
    if (!sum_) return Value::Null();
    return EvalArith(ArithOp::kDiv, *sum_,
                     Value::Double(static_cast<double>(count_)));
  }
  size_t StateBytes() const override {
    return (sum_ ? sum_->ByteSize() : 1) + sizeof(count_);
  }

 private:
  std::optional<Value> sum_;
  int64_t count_ = 0;
};

class MinMaxAggregator : public Aggregator {
 public:
  explicit MinMaxAggregator(bool is_min) : is_min_(is_min) {}
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (!best_) {
      best_ = v;
      return Status::OK();
    }
    RADB_ASSIGN_OR_RETURN(int c, v.Compare(*best_));
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_ = v;
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const MinMaxAggregator&>(other);
    if (!o.best_) return Status::OK();
    return Update(*o.best_);
  }
  Result<Value> Finalize() const override {
    return best_ ? *best_ : Value::Null();
  }
  size_t StateBytes() const override {
    return best_ ? best_->ByteSize() : 1;
  }

 private:
  bool is_min_;
  std::optional<Value> best_;
};

// ---------------------------------------------------------------------
// EMIN / EMAX: element-wise min/max. For scalars this matches MIN/MAX;
// for VECTOR/MATRIX inputs the result has the same shape with each
// entry the min/max across the group — the aggregate analogue of the
// element-wise arithmetic overloads of §3.2.
// ---------------------------------------------------------------------
class ElementWiseMinMaxAggregator : public Aggregator {
 public:
  explicit ElementWiseMinMaxAggregator(bool is_min) : is_min_(is_min) {}
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (v.is_sparse_matrix()) return Update(v.Densified());
    if (!acc_) {
      acc_ = v;
      return Status::OK();
    }
    switch (v.kind()) {
      case TypeKind::kVector: {
        if (acc_->kind() != TypeKind::kVector ||
            acc_->vector().size() != v.vector().size()) {
          return Status::DimensionMismatch(
              "EMIN/EMAX: vector lengths differ within group");
        }
        la::Vector out(v.vector().size());
        for (size_t i = 0; i < out.size(); ++i) {
          out[i] = is_min_ ? std::min(acc_->vector()[i], v.vector()[i])
                           : std::max(acc_->vector()[i], v.vector()[i]);
        }
        acc_ = Value::FromVector(std::move(out));
        return Status::OK();
      }
      case TypeKind::kMatrix: {
        const la::Matrix& a = acc_->matrix();
        const la::Matrix& b = v.matrix();
        if (acc_->kind() != TypeKind::kMatrix || a.rows() != b.rows() ||
            a.cols() != b.cols()) {
          return Status::DimensionMismatch(
              "EMIN/EMAX: matrix shapes differ within group");
        }
        la::Matrix out(a.rows(), a.cols());
        for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
          out.data()[i] = is_min_ ? std::min(a.data()[i], b.data()[i])
                                  : std::max(a.data()[i], b.data()[i]);
        }
        acc_ = Value::FromMatrix(std::move(out));
        return Status::OK();
      }
      default: {
        RADB_ASSIGN_OR_RETURN(int c, v.Compare(*acc_));
        if ((is_min_ && c < 0) || (!is_min_ && c > 0)) acc_ = v;
        return Status::OK();
      }
    }
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const ElementWiseMinMaxAggregator&>(other);
    if (!o.acc_) return Status::OK();
    return Update(*o.acc_);
  }
  Result<Value> Finalize() const override {
    return acc_ ? *acc_ : Value::Null();
  }
  size_t StateBytes() const override {
    return acc_ ? acc_->ByteSize() : 1;
  }

 private:
  bool is_min_;
  std::optional<Value> acc_;
};

// ---------------------------------------------------------------------
// VECTORIZE: LABELED_SCALAR -> VECTOR (paper §3.3). Each labeled
// scalar lands at index `label`; holes are zero; the result length is
// max label + 1 (labels are 0-based in this implementation — the
// paper's blocking example computes labels `x.id - mi*1000` which are
// 0-based). Duplicate labels are an execution error.
// ---------------------------------------------------------------------
class VectorizeAggregator : public Aggregator {
 public:
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (v.kind() != TypeKind::kLabeledScalar) {
      return Status::TypeError("VECTORIZE expects LABELED_SCALAR input");
    }
    const LabeledScalarValue& ls = v.labeled();
    if (ls.label == kNoLabel) {
      return Status::ExecutionError(
          "VECTORIZE: labeled scalar has no label set (use label_scalar)");
    }
    if (ls.label < 0) {
      return Status::ExecutionError(
          "VECTORIZE: negative label " + std::to_string(ls.label) +
          " (labels are 0-based vector indexes)");
    }
    entries_.emplace_back(ls.label, ls.value);
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const VectorizeAggregator&>(other);
    entries_.insert(entries_.end(), o.entries_.begin(), o.entries_.end());
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    if (entries_.empty()) return Value::Null();
    int64_t max_label = 0;
    for (const auto& [label, value] : entries_) {
      max_label = std::max(max_label, label);
    }
    la::Vector out(static_cast<size_t>(max_label) + 1, 0.0);
    std::vector<char> seen(out.size(), 0);
    for (const auto& [label, value] : entries_) {
      if (seen[static_cast<size_t>(label)]) {
        return Status::ExecutionError("VECTORIZE: duplicate label " +
                                      std::to_string(label));
      }
      seen[static_cast<size_t>(label)] = 1;
      out[static_cast<size_t>(label)] = value;
    }
    return Value::FromVector(std::move(out));
  }
  size_t StateBytes() const override { return entries_.size() * 16 + 8; }

 private:
  std::vector<std::pair<int64_t, double>> entries_;
};

// ---------------------------------------------------------------------
// ROWMATRIX / COLMATRIX: VECTOR -> MATRIX using each vector's label as
// its row (column) index (§3.3). All vectors must have equal length;
// missing labels produce zero rows (columns).
// ---------------------------------------------------------------------
class RowColMatrixAggregator : public Aggregator {
 public:
  explicit RowColMatrixAggregator(bool rows) : rows_(rows) {}
  Status Update(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (v.kind() != TypeKind::kVector) {
      return Status::TypeError(Name() + " expects VECTOR input");
    }
    const VectorValue& vv = v.vector_value();
    if (vv.label == kNoLabel) {
      return Status::ExecutionError(
          Name() + ": vector has no label set (use label_vector)");
    }
    if (vv.label < 0) {
      return Status::ExecutionError(
          Name() + ": negative label " + std::to_string(vv.label) +
          " (labels are 0-based row/column indexes)");
    }
    entries_.emplace_back(vv.label, vv.vec);
    return Status::OK();
  }
  Status Merge(const Aggregator& other) override {
    const auto& o = static_cast<const RowColMatrixAggregator&>(other);
    entries_.insert(entries_.end(), o.entries_.begin(), o.entries_.end());
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    if (entries_.empty()) return Value::Null();
    int64_t max_label = 0;
    size_t width = entries_.front().second->size();
    for (const auto& [label, vec] : entries_) {
      max_label = std::max(max_label, label);
      if (vec->size() != width) {
        return Status::ExecutionError(
            Name() + ": vectors have inconsistent lengths (" +
            std::to_string(width) + " vs " + std::to_string(vec->size()) +
            ")");
      }
    }
    const size_t n = static_cast<size_t>(max_label) + 1;
    la::Matrix out = rows_ ? la::Matrix(n, width) : la::Matrix(width, n);
    std::vector<char> seen(n, 0);
    for (const auto& [label, vec] : entries_) {
      const size_t i = static_cast<size_t>(label);
      if (seen[i]) {
        return Status::ExecutionError(Name() + ": duplicate label " +
                                      std::to_string(label));
      }
      seen[i] = 1;
      if (rows_) {
        out.SetRow(i, *vec);
      } else {
        out.SetCol(i, *vec);
      }
    }
    return Value::FromMatrix(std::move(out));
  }
  size_t StateBytes() const override {
    size_t bytes = 8;
    for (const auto& [label, vec] : entries_) bytes += 8 + vec->ByteSize();
    return bytes;
  }

 private:
  std::string Name() const { return rows_ ? "ROWMATRIX" : "COLMATRIX"; }
  bool rows_;
  std::vector<std::pair<int64_t, std::shared_ptr<const la::Vector>>> entries_;
};

// ---------------------------------------------------------------------
// Type inference helpers
// ---------------------------------------------------------------------
Result<DataType> InferSum(const DataType& arg) {
  switch (arg.kind()) {
    case TypeKind::kInteger:
      return DataType::Integer();
    case TypeKind::kDouble:
    case TypeKind::kBoolean:
    case TypeKind::kLabeledScalar:
      return DataType::Double();
    case TypeKind::kVector:
    case TypeKind::kMatrix:
    case TypeKind::kNull:
      return arg;  // element-wise, same shape (§3.2)
    default:
      return Status::TypeError("SUM not defined for " + arg.ToString());
  }
}

Result<DataType> InferAvg(const DataType& arg) {
  switch (arg.kind()) {
    case TypeKind::kInteger:
    case TypeKind::kDouble:
    case TypeKind::kBoolean:
    case TypeKind::kLabeledScalar:
      return DataType::Double();
    case TypeKind::kVector:
    case TypeKind::kMatrix:
    case TypeKind::kNull:
      return arg;
    default:
      return Status::TypeError("AVG not defined for " + arg.ToString());
  }
}

Result<DataType> InferMinMax(const DataType& arg) {
  switch (arg.kind()) {
    case TypeKind::kInteger:
    case TypeKind::kDouble:
    case TypeKind::kString:
    case TypeKind::kBoolean:
    case TypeKind::kNull:
      return arg;
    case TypeKind::kLabeledScalar:
      return DataType::Double();
    default:
      return Status::TypeError("MIN/MAX not defined for " + arg.ToString());
  }
}

}  // namespace

const AggregateRegistry& AggregateRegistry::Global() {
  static const AggregateRegistry* kRegistry = new AggregateRegistry();
  return *kRegistry;
}

Result<const AggregateFunction*> AggregateRegistry::Lookup(
    const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) {
    return Status::CatalogError("unknown aggregate: " + name);
  }
  return &it->second;
}

bool AggregateRegistry::Contains(const std::string& name) const {
  return fns_.count(ToLower(name)) > 0;
}

std::vector<std::string> AggregateRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) names.push_back(name);
  return names;
}

void AggregateRegistry::Register(AggregateFunction fn) {
  fns_[ToLower(fn.name)] = std::move(fn);
}

AggregateRegistry::AggregateRegistry() {
  Register({"sum", InferSum,
            [] { return std::make_unique<SumAggregator>(); }});
  Register({"count",
            [](const DataType&) -> Result<DataType> {
              return DataType::Integer();
            },
            [] { return std::make_unique<CountAggregator>(); }});
  Register({"avg", InferAvg,
            [] { return std::make_unique<AvgAggregator>(); }});
  Register({"min", InferMinMax,
            [] { return std::make_unique<MinMaxAggregator>(true); }});
  Register({"max", InferMinMax,
            [] { return std::make_unique<MinMaxAggregator>(false); }});
  auto infer_ewise = [](const DataType& arg) -> Result<DataType> {
    switch (arg.kind()) {
      case TypeKind::kInteger:
      case TypeKind::kDouble:
      case TypeKind::kString:
      case TypeKind::kBoolean:
      case TypeKind::kVector:
      case TypeKind::kMatrix:
      case TypeKind::kNull:
        return arg;
      case TypeKind::kLabeledScalar:
        return DataType::Double();
      default:
        return Status::TypeError("EMIN/EMAX not defined for " +
                                 arg.ToString());
    }
  };
  Register({"emin", infer_ewise,
            [] { return std::make_unique<ElementWiseMinMaxAggregator>(true); }});
  Register({"emax", infer_ewise,
            [] { return std::make_unique<ElementWiseMinMaxAggregator>(false); }});
  Register({"vectorize",
            [](const DataType& arg) -> Result<DataType> {
              if (arg.kind() != TypeKind::kLabeledScalar &&
                  arg.kind() != TypeKind::kNull) {
                return Status::TypeError(
                    "VECTORIZE expects LABELED_SCALAR, got " +
                    arg.ToString());
              }
              return DataType::MakeVector();  // length is data-dependent
            },
            [] { return std::make_unique<VectorizeAggregator>(); }});
  Register({"rowmatrix",
            [](const DataType& arg) -> Result<DataType> {
              if (arg.kind() != TypeKind::kVector &&
                  arg.kind() != TypeKind::kNull) {
                return Status::TypeError("ROWMATRIX expects VECTOR, got " +
                                         arg.ToString());
              }
              // Row count is data-dependent; width is the vector size.
              return DataType::MakeMatrix(std::nullopt, arg.rows());
            },
            [] { return std::make_unique<RowColMatrixAggregator>(true); }});
  Register({"colmatrix",
            [](const DataType& arg) -> Result<DataType> {
              if (arg.kind() != TypeKind::kVector &&
                  arg.kind() != TypeKind::kNull) {
                return Status::TypeError("COLMATRIX expects VECTOR, got " +
                                         arg.ToString());
              }
              return DataType::MakeMatrix(arg.rows(), std::nullopt);
            },
            [] { return std::make_unique<RowColMatrixAggregator>(false); }});
}

}  // namespace radb
