#ifndef RADB_CATALOG_CATALOG_H_
#define RADB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/aggregate.h"
#include "catalog/function_registry.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace radb {

/// A stored view: the defining SELECT is kept as SQL text and
/// re-parsed/bound at use (keeps the catalog independent of the parser
/// and gives late binding, like classical systems).
struct ViewEntry {
  std::string name;
  std::vector<std::string> column_aliases;  // optional CREATE VIEW v(a,b)
  std::string select_sql;
};

/// Database catalog: tables, views, and the function/aggregate
/// registries. The catalog also records what the optimizer needs:
/// per-table row counts (from storage) and column types with known
/// matrix/vector dimensions (§4.1-4.2).
class Catalog {
 public:
  explicit Catalog(size_t default_partitions = 4)
      : default_partitions_(default_partitions),
        functions_(&FunctionRegistry::Global()),
        aggregates_(&AggregateRegistry::Global()) {}

  size_t default_partitions() const { return default_partitions_; }

  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Schema schema);
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  Status CreateView(ViewEntry view);
  Result<const ViewEntry*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  Status DropView(const std::string& name);

  std::vector<std::string> TableNames() const;

  const FunctionRegistry& functions() const { return *functions_; }
  const AggregateRegistry& aggregates() const { return *aggregates_; }

 private:
  size_t default_partitions_;
  std::map<std::string, std::shared_ptr<Table>> tables_;
  std::map<std::string, ViewEntry> views_;
  const FunctionRegistry* functions_;
  const AggregateRegistry* aggregates_;
};

}  // namespace radb

#endif  // RADB_CATALOG_CATALOG_H_
