#ifndef RADB_CATALOG_CATALOG_H_
#define RADB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/aggregate.h"
#include "catalog/function_registry.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace radb {

/// A stored view: the defining SELECT is kept as SQL text and
/// re-parsed/bound at use (keeps the catalog independent of the parser
/// and gives late binding, like classical systems).
struct ViewEntry {
  std::string name;
  std::vector<std::string> column_aliases;  // optional CREATE VIEW v(a,b)
  std::string select_sql;
};

/// Serves the virtual read-only system tables living under the
/// reserved "radb_" name prefix (radb_metrics, radb_queries, ...).
/// GetTable/HasTable consult the registered provider for names
/// carrying the prefix; every Snapshot call materializes a fresh
/// point-in-time Table, so a query sees one consistent snapshot per
/// scan and never observes later mutations (DESIGN.md §12).
///
/// Latch rules: providers are invoked on the read path, where service
/// callers already hold the catalog *shared* latch. A provider must
/// never take the catalog writer latch (deadlock) and must restrict
/// itself to its own leaf locks.
class SystemTableProvider {
 public:
  virtual ~SystemTableProvider() = default;
  /// Lowercase names of every table this provider serves.
  virtual std::vector<std::string> TableNames() const = 0;
  /// True when `lower_name` (already lowercased) is served.
  virtual bool Has(const std::string& lower_name) const = 0;
  /// Builds a fresh snapshot Table for `lower_name`.
  virtual Result<std::shared_ptr<Table>> Snapshot(
      const std::string& lower_name) const = 0;
};

/// Database catalog: tables, views, and the function/aggregate
/// registries. The catalog also records what the optimizer needs:
/// per-table row counts (from storage) and column types with known
/// matrix/vector dimensions (§4.1-4.2).
///
/// Versioning: `version()` is a monotone counter advanced by every
/// DDL statement and by every Database-visible data change (INSERT,
/// bulk load, repartition — the Database calls BumpDataVersion for
/// those). It is the invalidation key of the plan cache: a cached
/// plan embeds table pointers and cardinality estimates, so any
/// catalog mutation makes it stale. `schema_version()` advances on
/// DDL only (create/drop of tables and views) and gates the result
/// cache's *binding* validity; data freshness is checked separately
/// against per-table versions (Table::version). Like the rest of the
/// catalog, the counters are not internally synchronized — mutation
/// happens under the service's unique catalog latch.
class Catalog {
 public:
  /// Reserved prefix for system tables; user relations cannot be
  /// created (or dropped) under it.
  static constexpr const char* kSystemPrefix = "radb_";
  /// True when `name` (any case) falls in the reserved namespace.
  static bool IsSystemName(const std::string& name);

  explicit Catalog(size_t default_partitions = 4)
      : default_partitions_(default_partitions),
        functions_(&FunctionRegistry::Global()),
        aggregates_(&AggregateRegistry::Global()) {}

  size_t default_partitions() const { return default_partitions_; }

  /// Monotone catalog version: advanced by every DDL and every
  /// Database-visible data change. Plan-cache invalidation key.
  uint64_t version() const { return version_; }
  /// Monotone schema version: advanced by DDL only.
  uint64_t schema_version() const { return schema_version_; }
  /// Notes a data mutation (INSERT, bulk load, repartition) without a
  /// schema change. Called by the Database on every DML path.
  void BumpDataVersion() { ++version_; }

  /// `num_partitions` 0 uses the catalog default; recovery passes the
  /// persisted partition count so segment manifests line up even when
  /// the database reopens with a different worker count.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Schema schema,
                                             size_t num_partitions = 0);
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Secondary-index namespace: index names are global (like table
  /// names), so `DROP INDEX name` needs no table. Creation delegates
  /// validation and the build to Table::CreateIndex.
  Status CreateIndex(const std::string& table, const std::string& index,
                     const std::vector<size_t>& columns);
  Status DropIndex(const std::string& index);
  /// Table key owning `index`, or empty when unknown.
  std::string IndexOwner(const std::string& index) const;
  const std::map<std::string, std::string>& index_owners() const {
    return index_owners_;
  }

  Status CreateView(ViewEntry view);
  Result<const ViewEntry*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  Status DropView(const std::string& name);

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Recovery-only: re-registers an index name restored directly onto
  /// a table (Table::RestoreIndex) without rebuilding it.
  void RestoreIndexOwner(const std::string& index, const std::string& table) {
    index_owners_[index] = table;
  }

  /// Registers (or, with nullptr, unregisters) the system-table
  /// provider. Not synchronized: install once at Database
  /// construction, before any concurrent use.
  void RegisterSystemTableProvider(const SystemTableProvider* provider) {
    system_tables_ = provider;
  }
  const SystemTableProvider* system_table_provider() const {
    return system_tables_;
  }

  const FunctionRegistry& functions() const { return *functions_; }
  const AggregateRegistry& aggregates() const { return *aggregates_; }

 private:
  /// Advances both counters (every DDL is also a catalog change).
  void BumpSchemaVersion() {
    ++version_;
    ++schema_version_;
  }

  size_t default_partitions_;
  /// Plain integers (not atomics) so the Catalog stays copyable; all
  /// mutation happens under the service's unique catalog latch.
  uint64_t version_ = 1;
  uint64_t schema_version_ = 1;
  std::map<std::string, std::shared_ptr<Table>> tables_;
  std::map<std::string, ViewEntry> views_;
  /// index name (lowercased) -> owning table key.
  std::map<std::string, std::string> index_owners_;
  const SystemTableProvider* system_tables_ = nullptr;
  const FunctionRegistry* functions_;
  const AggregateRegistry* aggregates_;
};

}  // namespace radb

#endif  // RADB_CATALOG_CATALOG_H_
