#ifndef RADB_CATALOG_AGGREGATE_H_
#define RADB_CATALOG_AGGREGATE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace radb {

/// Incremental state of one aggregate over one group. All aggregates
/// are mergeable so the executor can pre-aggregate locally on each
/// worker before shuffling partial states (classic two-phase
/// aggregation; this is what makes SUM(outer_product(...)) cheap on a
/// cluster — only one partial matrix per worker crosses the network).
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Folds one input value into the state. SQL semantics: NULL inputs
  /// are ignored.
  virtual Status Update(const Value& v) = 0;

  /// Folds another aggregator's state (same aggregate, same argument
  /// type) into this one.
  virtual Status Merge(const Aggregator& other) = 0;

  /// Produces the aggregate result. Empty-group behaviour matches
  /// SQL: COUNT yields 0, everything else NULL.
  virtual Result<Value> Finalize() const = 0;

  /// Approximate size of the partial state; the executor charges this
  /// to the shuffle when partial aggregates move between workers.
  virtual size_t StateBytes() const = 0;
};

/// A registered aggregate: result-type inference plus state factory.
struct AggregateFunction {
  std::string name;
  /// Infers the result type from the (bound) argument type; TypeError
  /// when the argument kind is not supported.
  std::function<Result<DataType>(const DataType&)> infer;
  std::function<std::unique_ptr<Aggregator>()> make;
};

/// Registry of aggregate functions: the classical five plus the
/// paper's de-normalizing aggregates VECTORIZE / ROWMATRIX /
/// COLMATRIX (§3.3). Names are case-insensitive.
class AggregateRegistry {
 public:
  static const AggregateRegistry& Global();

  AggregateRegistry();

  Result<const AggregateFunction*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  void Register(AggregateFunction fn);
  std::map<std::string, AggregateFunction> fns_;
};

}  // namespace radb

#endif  // RADB_CATALOG_AGGREGATE_H_
