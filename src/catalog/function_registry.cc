#include "catalog/function_registry.h"

#include <cmath>

#include "common/string_util.h"
#include "la/matrix.h"
#include "la/sparse/sparse.h"
#include "la/vector.h"
#include "obs/metrics_registry.h"

namespace radb {

namespace {

using TT = TypeTemplate;
using DP = DimParam;
using la::sparse::CsrMatrix;
using la::sparse::DispatchPolicy;
using la::sparse::Semiring;

Status BadIndex(const char* fn, int64_t idx, size_t limit) {
  return Status::ExecutionError(std::string(fn) + ": index " +
                                std::to_string(idx) +
                                " out of range (size " +
                                std::to_string(limit) + ")");
}

/// Wraps a Result<la::Vector>-producing kernel into a Value.
Result<Value> WrapVec(Result<la::Vector> r) {
  if (!r.ok()) return r.status();
  return Value::FromVector(std::move(r).value());
}

Result<Value> WrapMat(Result<la::Matrix> r) {
  if (!r.ok()) return r.status();
  return Value::FromMatrix(std::move(r).value());
}

void SparseMetric(const char* name) {
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) reg->Add(name, 1);
}

/// Reads the optional trailing semiring-name argument; absent or NULL
/// means plus-times.
Result<Semiring> SemiringArg(const std::vector<Value>& args, size_t idx) {
  if (args.size() <= idx || args[idx].is_null()) {
    return la::sparse::PlusTimes();
  }
  if (args[idx].kind() != TypeKind::kString) {
    return Status::TypeError("semiring name must be a string");
  }
  return la::sparse::SemiringByName(args[idx].string_value());
}

/// CSR view of a MATRIX value in either representation. `storage`
/// holds the conversion when the value is dense.
const CsrMatrix& CsrOf(const Value& v, CsrMatrix* storage) {
  if (v.is_sparse_matrix()) return v.sparse_matrix();
  *storage = CsrMatrix::FromDense(v.matrix());
  return *storage;
}

/// matrix_multiply(a, b [, semiring]) with density-adaptive kernel
/// selection. Representation rule: the result is sparsely represented
/// only when an input was explicitly sparse; the auto-dispatch path
/// (dense inputs below the density threshold) uses the sparse kernel
/// internally but returns a dense value, so it is purely a
/// kernel-selection device and results stay bit-identical.
Result<Value> MultiplyDispatch(const std::vector<Value>& args) {
  RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
  const Value& av = args[0];
  const Value& bv = args[1];
  const bool a_sp = av.is_sparse_matrix();
  const bool b_sp = bv.is_sparse_matrix();
  if (a_sp && b_sp) {
    SparseMetric("la.sparse.dispatch_sparse");
    RADB_ASSIGN_OR_RETURN(
        CsrMatrix c, la::sparse::SpGemm(av.sparse_matrix(),
                                        bv.sparse_matrix(), s));
    return Value::FromSparseMatrix(std::move(c));
  }
  if (a_sp) {
    SparseMetric("la.sparse.dispatch_sparse");
    RADB_ASSIGN_OR_RETURN(
        la::Matrix c, la::sparse::SpMm(av.sparse_matrix(), bv.matrix(), s));
    return Value::FromMatrix(std::move(c));
  }
  if (b_sp) {
    SparseMetric("la.sparse.dispatch_sparse");
    RADB_ASSIGN_OR_RETURN(
        CsrMatrix c, la::sparse::SpGemm(CsrMatrix::FromDense(av.matrix()),
                                        bv.sparse_matrix(), s));
    return Value::FromSparseMatrix(std::move(c));
  }
  const la::Matrix& a = av.matrix();
  const la::Matrix& b = bv.matrix();
  if (DispatchPolicy::AutoEnabled()) {
    const size_t cells = a.rows() * a.cols();
    if (cells > 0 &&
        static_cast<double>(la::sparse::DenseNnz(a)) / cells <=
            DispatchPolicy::Threshold()) {
      SparseMetric("la.sparse.auto_sparsify");
      RADB_ASSIGN_OR_RETURN(
          la::Matrix c, la::sparse::SpMm(CsrMatrix::FromDense(a), b, s));
      return Value::FromMatrix(std::move(c));
    }
  }
  SparseMetric("la.sparse.dispatch_dense");
  return WrapMat(la::sparse::DenseMultiply(a, b, s));
}

Result<Value> MatVecDispatch(const std::vector<Value>& args) {
  RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
  if (args[0].is_sparse_matrix()) {
    SparseMetric("la.sparse.dispatch_sparse");
    return WrapVec(
        la::sparse::SpMV(args[0].sparse_matrix(), args[1].vector(), s));
  }
  return WrapVec(la::sparse::DenseMatVec(args[0].matrix(),
                                         args[1].vector(), s));
}

Result<Value> VecMatDispatch(const std::vector<Value>& args) {
  RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
  if (args[1].is_sparse_matrix()) {
    SparseMetric("la.sparse.dispatch_sparse");
    return WrapVec(
        la::sparse::SpVM(args[0].vector(), args[1].sparse_matrix(), s));
  }
  return WrapVec(la::sparse::DenseVecMat(args[0].vector(),
                                         args[1].matrix(), s));
}

}  // namespace

const FunctionRegistry& FunctionRegistry::Global() {
  static const FunctionRegistry* kRegistry = new FunctionRegistry();
  return *kRegistry;
}

Result<const BuiltinFunction*> FunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) {
    return Status::CatalogError("unknown function: " + name);
  }
  return &it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(ToLower(name)) > 0;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) names.push_back(name);
  return names;
}

void FunctionRegistry::Register(BuiltinFunction fn) {
  if (!fn.sparse_aware) {
    // Densify shim: the single fn->eval choke point (expr_eval) serves
    // the row engine, the vectorized engine's scalar fallback, and the
    // reference evaluator, so wrapping here makes every non-sparse-
    // aware builtin (and app UDF) transparently accept sparse values.
    fn.eval = [inner = std::move(fn.eval)](const std::vector<Value>& args)
        -> Result<Value> {
      bool any_sparse = false;
      for (const Value& v : args) {
        if (v.is_sparse_matrix()) {
          any_sparse = true;
          break;
        }
      }
      if (!any_sparse) return inner(args);
      SparseMetric("la.sparse.densify_fallback");
      std::vector<Value> dense;
      dense.reserve(args.size());
      for (const Value& v : args) dense.push_back(v.Densified());
      return inner(dense);
    };
  }
  fns_[ToLower(fn.signature.name())] = std::move(fn);
}

FunctionRegistry::FunctionRegistry() {
  auto add = [this](std::string name, std::vector<TT> params, TT result,
                    ScalarFn eval) {
    Register(BuiltinFunction{
        FunctionSignature(std::move(name), std::move(params), result),
        std::move(eval)});
  };
  // Sparse-aware builtin with optional trailing parameters (see
  // FunctionSignature's min_args overload).
  auto add_sparse = [this](std::string name, std::vector<TT> params,
                           size_t min_args, TT result, ScalarFn eval) {
    Register(BuiltinFunction{
        FunctionSignature(std::move(name), std::move(params), min_args,
                          result),
        std::move(eval), /*sparse_aware=*/true});
  };
  const TT kDouble = TT::Scalar(TypeKind::kDouble);
  const TT kInt = TT::Scalar(TypeKind::kInteger);
  const TT kBool = TT::Scalar(TypeKind::kBoolean);
  const TT kString = TT::Scalar(TypeKind::kString);
  const TT kLabeled = TT::Scalar(TypeKind::kLabeledScalar);

  // --- Core multiplication family (paper §3.1), generalized over a
  // --- semiring and density-adaptive (sparse subsystem) ---
  add_sparse("matrix_multiply",
             {TT::Mat(DP::Var('a'), DP::Var('b')),
              TT::Mat(DP::Var('b'), DP::Var('c')), kString},
             2, TT::Mat(DP::Var('a'), DP::Var('c')), MultiplyDispatch);
  add_sparse("matrix_vector_multiply",
             {TT::Mat(DP::Var('a'), DP::Var('b')), TT::Vec(DP::Var('b')),
              kString},
             2, TT::Vec(DP::Var('a')), MatVecDispatch);
  add_sparse("vector_matrix_multiply",
             {TT::Vec(DP::Var('a')), TT::Mat(DP::Var('a'), DP::Var('b')),
              kString},
             2, TT::Vec(DP::Var('b')), VecMatDispatch);
  add("outer_product", {TT::Vec(DP::Var('a')), TT::Vec(DP::Var('b'))},
      TT::Mat(DP::Var('a'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::FromMatrix(
            la::OuterProduct(args[0].vector(), args[1].vector()));
      });
  add("inner_product", {TT::Vec(DP::Var('a')), TT::Vec(DP::Var('a'))},
      kDouble, [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(
            double d, la::InnerProduct(args[0].vector(), args[1].vector()));
        return Value::Double(d);
      });

  // --- Structure / shape (paper §3.1, §4.2) ---
  add("trans_matrix", {TT::Mat(DP::Var('a'), DP::Var('b'))},
      TT::Mat(DP::Var('b'), DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::FromMatrix(la::Transpose(args[0].matrix()));
      });
  add("matrix_inverse", {TT::Mat(DP::Var('a'), DP::Var('a'))},
      TT::Mat(DP::Var('a'), DP::Var('a')),
      [](const std::vector<Value>& args) {
        return WrapMat(la::Inverse(args[0].matrix()));
      });
  add("matrix_solve",
      {TT::Mat(DP::Var('a'), DP::Var('a')), TT::Vec(DP::Var('a'))},
      TT::Vec(DP::Var('a')), [](const std::vector<Value>& args) {
        return WrapVec(la::Solve(args[0].matrix(), args[1].vector()));
      });
  add("cholesky", {TT::Mat(DP::Var('a'), DP::Var('a'))},
      TT::Mat(DP::Var('a'), DP::Var('a')),
      [](const std::vector<Value>& args) {
        return WrapMat(la::Cholesky(args[0].matrix()));
      });
  add("matrix_solve_spd",
      {TT::Mat(DP::Var('a'), DP::Var('a')), TT::Vec(DP::Var('a'))},
      TT::Vec(DP::Var('a')), [](const std::vector<Value>& args) {
        return WrapVec(la::SolveSpd(args[0].matrix(), args[1].vector()));
      });
  add("diag", {TT::Mat(DP::Var('a'), DP::Var('a'))}, TT::Vec(DP::Var('a')),
      [](const std::vector<Value>& args) {
        return WrapVec(la::Diagonal(args[0].matrix()));
      });
  add("diag_matrix", {TT::Vec(DP::Var('a'))},
      TT::Mat(DP::Var('a'), DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::FromMatrix(la::DiagonalMatrix(args[0].vector()));
      });
  add("trace", {TT::Mat(DP::Var('a'), DP::Var('a'))}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double t, la::Trace(args[0].matrix()));
        return Value::Double(t);
      });
  add("determinant", {TT::Mat(DP::Var('a'), DP::Var('a'))}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double d, la::Determinant(args[0].matrix()));
        return Value::Double(d);
      });
  add("row_matrix", {TT::Vec(DP::Var('a'))}, TT::Mat(DP::Lit(1), DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Vector& v = args[0].vector();
        la::Matrix m(1, v.size());
        m.SetRow(0, v);
        return Value::FromMatrix(std::move(m));
      });
  add("col_matrix", {TT::Vec(DP::Var('a'))}, TT::Mat(DP::Var('a'), DP::Lit(1)),
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Vector& v = args[0].vector();
        la::Matrix m(v.size(), 1);
        m.SetCol(0, v);
        return Value::FromMatrix(std::move(m));
      });

  // --- Labels: moving between normalized and LA types (paper §3.3) ---
  add("label_scalar", {kDouble, kInt}, kLabeled,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
        RADB_ASSIGN_OR_RETURN(int64_t label, args[1].AsInt());
        return Value::Labeled(v, label);
      });
  add("label_vector", {TT::Vec(DP::Var('a')), kInt}, TT::Vec(DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(int64_t label, args[1].AsInt());
        return Value::FromSharedVector(args[0].vector_value().vec, label);
      });
  add("get_scalar", {TT::Vec(DP::Any()), kInt}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Vector& v = args[0].vector();
        RADB_ASSIGN_OR_RETURN(int64_t i, args[1].AsInt());
        if (i < 0 || static_cast<size_t>(i) >= v.size()) {
          return BadIndex("get_scalar", i, v.size());
        }
        return Value::Double(v[static_cast<size_t>(i)]);
      });
  // Unlabeled values report -1, the documented "no label" answer;
  // internally the unset state is kNoLabel so genuinely negative user
  // labels stay distinguishable.
  add("get_label", {kLabeled}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        const int64_t label = args[0].labeled().label;
        return Value::Int(label == kNoLabel ? -1 : label);
      });
  add("get_vector_label", {TT::Vec(DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        const int64_t label = args[0].vector_value().label;
        return Value::Int(label == kNoLabel ? -1 : label);
      });
  add("labeled_value", {kLabeled}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].labeled().value);
      });

  // --- Element access ---
  add("get_entry", {TT::Mat(DP::Any(), DP::Any()), kInt, kInt}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Matrix& m = args[0].matrix();
        RADB_ASSIGN_OR_RETURN(int64_t r, args[1].AsInt());
        RADB_ASSIGN_OR_RETURN(int64_t c, args[2].AsInt());
        if (r < 0 || static_cast<size_t>(r) >= m.rows()) {
          return BadIndex("get_entry(row)", r, m.rows());
        }
        if (c < 0 || static_cast<size_t>(c) >= m.cols()) {
          return BadIndex("get_entry(col)", c, m.cols());
        }
        return Value::Double(
            m.At(static_cast<size_t>(r), static_cast<size_t>(c)));
      });
  add("get_row", {TT::Mat(DP::Var('a'), DP::Var('b')), kInt},
      TT::Vec(DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Matrix& m = args[0].matrix();
        RADB_ASSIGN_OR_RETURN(int64_t r, args[1].AsInt());
        if (r < 0 || static_cast<size_t>(r) >= m.rows()) {
          return BadIndex("get_row", r, m.rows());
        }
        return Value::FromVector(m.Row(static_cast<size_t>(r)));
      });
  add("get_col", {TT::Mat(DP::Var('a'), DP::Var('b')), kInt},
      TT::Vec(DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        const la::Matrix& m = args[0].matrix();
        RADB_ASSIGN_OR_RETURN(int64_t c, args[1].AsInt());
        if (c < 0 || static_cast<size_t>(c) >= m.cols()) {
          return BadIndex("get_col", c, m.cols());
        }
        return Value::FromVector(m.Col(static_cast<size_t>(c)));
      });

  // --- Constructors whose sizes are value-dependent (typed [][]) ---
  add("identity_matrix", {kInt}, TT::Mat(DP::Any(), DP::Any()),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(int64_t n, args[0].AsInt());
        if (n < 0) return Status::InvalidArgument("identity_matrix: n < 0");
        return Value::FromMatrix(
            la::Matrix::Identity(static_cast<size_t>(n)));
      });
  add("zeros_matrix", {kInt, kInt}, TT::Mat(DP::Any(), DP::Any()),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(int64_t r, args[0].AsInt());
        RADB_ASSIGN_OR_RETURN(int64_t c, args[1].AsInt());
        if (r < 0 || c < 0) {
          return Status::InvalidArgument("zeros_matrix: negative dimension");
        }
        return Value::FromMatrix(
            la::Matrix(static_cast<size_t>(r), static_cast<size_t>(c)));
      });
  add("zeros_vector", {kInt}, TT::Vec(DP::Any()),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(int64_t n, args[0].AsInt());
        if (n < 0) return Status::InvalidArgument("zeros_vector: n < 0");
        return Value::FromVector(la::Vector(static_cast<size_t>(n)));
      });
  add("ones_vector", {kInt}, TT::Vec(DP::Any()),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(int64_t n, args[0].AsInt());
        if (n < 0) return Status::InvalidArgument("ones_vector: n < 0");
        return Value::FromVector(la::Vector(static_cast<size_t>(n), 1.0));
      });

  // --- Introspection ---
  add("vector_size", {TT::Vec(DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(args[0].vector().size()));
      });
  add("matrix_rows", {TT::Mat(DP::Any(), DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(args[0].matrix().rows()));
      });
  add("matrix_cols", {TT::Mat(DP::Any(), DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(args[0].matrix().cols()));
      });

  // --- Reductions over a single LA object ---
  add("sum_vector", {TT::Vec(DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].vector().Sum());
      });
  add("min_vector", {TT::Vec(DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].vector().Min());
      });
  add("max_vector", {TT::Vec(DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].vector().Max());
      });
  add("argmin_vector", {TT::Vec(DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(args[0].vector().ArgMin()));
      });
  add("argmax_vector", {TT::Vec(DP::Any())}, kInt,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(args[0].vector().ArgMax()));
      });
  add("norm2", {TT::Vec(DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].vector().Norm2());
      });
  add("sum_matrix", {TT::Mat(DP::Any(), DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].matrix().Sum());
      });
  add("min_matrix", {TT::Mat(DP::Any(), DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].matrix().Min());
      });
  add("max_matrix", {TT::Mat(DP::Any(), DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].matrix().Max());
      });
  add("norm_f", {TT::Mat(DP::Any(), DP::Any())}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Double(args[0].matrix().NormF());
      });
  add("row_mins", {TT::Mat(DP::Var('a'), DP::Var('b'))}, TT::Vec(DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::FromVector(args[0].matrix().RowMins());
      });
  add("row_maxs", {TT::Mat(DP::Var('a'), DP::Var('b'))}, TT::Vec(DP::Var('a')),
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::FromVector(args[0].matrix().RowMaxs());
      });

  // --- Indicator used instead of CASE (which this dialect lacks), ---
  // e.g. knocking out self-distances on the block diagonal:
  //   dm + diag_matrix(ones_vector(n) * (1e300 * eq_indicator(i, j)))
  add("eq_indicator", {kDouble, kDouble}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
        RADB_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
        return Value::Double(a == b ? 1.0 : 0.0);
      });

  // --- Sparse representation and semiring kernels (src/la/sparse) ---
  add_sparse(
      "sparsify", {TT::Mat(DP::Var('a'), DP::Var('b')), kDouble}, 1,
      TT::Mat(DP::Var('a'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        double threshold = 0.0;
        if (args.size() > 1 && !args[1].is_null()) {
          RADB_ASSIGN_OR_RETURN(threshold, args[1].AsDouble());
          if (threshold < 0.0) {
            return Status::InvalidArgument(
                "sparsify: threshold must be >= 0");
          }
        }
        if (args[0].is_sparse_matrix()) {
          if (threshold == 0.0) return args[0];  // already canonical
          return Value::FromSparseMatrix(CsrMatrix::FromDense(
              args[0].sparse_matrix().ToDense(), threshold));
        }
        return Value::FromSparseMatrix(
            CsrMatrix::FromDense(args[0].matrix(), threshold));
      });
  add_sparse("densify", {TT::Mat(DP::Var('a'), DP::Var('b'))}, 1,
             TT::Mat(DP::Var('a'), DP::Var('b')),
             [](const std::vector<Value>& args) -> Result<Value> {
               return args[0].Densified();
             });
  add_sparse("nnz", {TT::Mat(DP::Any(), DP::Any())}, 1, kInt,
             [](const std::vector<Value>& args) -> Result<Value> {
               if (args[0].is_sparse_matrix()) {
                 return Value::Int(
                     static_cast<int64_t>(args[0].sparse_matrix().nnz()));
               }
               return Value::Int(static_cast<int64_t>(
                   la::sparse::DenseNnz(args[0].matrix())));
             });
  add_sparse("is_sparse", {TT::Mat(DP::Any(), DP::Any())}, 1, kBool,
             [](const std::vector<Value>& args) -> Result<Value> {
               return Value::Bool(args[0].is_sparse_matrix());
             });
  add_sparse(
      "trans_self_multiply",
      {TT::Mat(DP::Var('a'), DP::Var('b')), kString}, 1,
      TT::Mat(DP::Var('b'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 1));
        if (args[0].is_sparse_matrix()) {
          SparseMetric("la.sparse.dispatch_sparse");
          return Value::FromMatrix(
              la::sparse::SpTransposeSelfMultiply(args[0].sparse_matrix(),
                                                  s));
        }
        return Value::FromMatrix(
            la::sparse::DenseTransposeSelfMultiply(args[0].matrix(), s));
      });
  add_sparse(
      "elementwise_add",
      {TT::Mat(DP::Var('a'), DP::Var('b')),
       TT::Mat(DP::Var('a'), DP::Var('b')), kString},
      2, TT::Mat(DP::Var('a'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
        if (args[0].is_sparse_matrix() && args[1].is_sparse_matrix()) {
          SparseMetric("la.sparse.dispatch_sparse");
          RADB_ASSIGN_OR_RETURN(
              CsrMatrix c, la::sparse::EWiseAdd(args[0].sparse_matrix(),
                                                args[1].sparse_matrix(), s));
          return Value::FromSparseMatrix(std::move(c));
        }
        return WrapMat(la::sparse::DenseEWiseAdd(
            args[0].Densified().matrix(), args[1].Densified().matrix(), s));
      });
  add_sparse(
      "elementwise_multiply",
      {TT::Mat(DP::Var('a'), DP::Var('b')),
       TT::Mat(DP::Var('a'), DP::Var('b')), kString},
      2, TT::Mat(DP::Var('a'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
        if (args[0].is_sparse_matrix() && args[1].is_sparse_matrix()) {
          SparseMetric("la.sparse.dispatch_sparse");
          RADB_ASSIGN_OR_RETURN(
              CsrMatrix c, la::sparse::EWiseMul(args[0].sparse_matrix(),
                                                args[1].sparse_matrix(), s));
          return Value::FromSparseMatrix(std::move(c));
        }
        return WrapMat(la::sparse::DenseEWiseMul(
            args[0].Densified().matrix(), args[1].Densified().matrix(), s));
      });
  // Element-wise ⊕ over two fully-stored vectors; unlike the matrix
  // ops above this is LITERAL (a 0.0 entry is the number zero), which
  // is what iterated graph algorithms fold frontiers with.
  add_sparse("vector_elementwise_add",
             {TT::Vec(DP::Var('a')), TT::Vec(DP::Var('a')), kString}, 2,
             TT::Vec(DP::Var('a')),
             [](const std::vector<Value>& args) -> Result<Value> {
               RADB_ASSIGN_OR_RETURN(Semiring s, SemiringArg(args, 2));
               return WrapVec(la::sparse::VectorEWiseAdd(
                   args[0].vector(), args[1].vector(), s));
             });
  add_sparse(
      "matrix_mask",
      {TT::Mat(DP::Var('a'), DP::Var('b')),
       TT::Mat(DP::Var('a'), DP::Var('b')), kInt},
      2, TT::Mat(DP::Var('a'), DP::Var('b')),
      [](const std::vector<Value>& args) -> Result<Value> {
        bool complement = false;
        if (args.size() > 2 && !args[2].is_null()) {
          RADB_ASSIGN_OR_RETURN(int64_t c, args[2].AsInt());
          complement = c != 0;
        }
        CsrMatrix a_store, m_store;
        const CsrMatrix& a = CsrOf(args[0], &a_store);
        const CsrMatrix& m = CsrOf(args[1], &m_store);
        RADB_ASSIGN_OR_RETURN(CsrMatrix c,
                              la::sparse::Mask(a, m, complement));
        SparseMetric("la.sparse.dispatch_sparse");
        if (args[0].is_sparse_matrix()) {
          return Value::FromSparseMatrix(std::move(c));
        }
        return Value::FromMatrix(c.ToDense());
      });

  // --- Scalar math helpers ---
  add("abs_val", {kDouble}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
        return Value::Double(std::fabs(v));
      });
  add("sqrt_val", {kDouble}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
        if (v < 0) return Status::NumericError("sqrt of negative value");
        return Value::Double(std::sqrt(v));
      });
  add("exp_val", {kDouble}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
        return Value::Double(std::exp(v));
      });
  add("ln_val", {kDouble}, kDouble,
      [](const std::vector<Value>& args) -> Result<Value> {
        RADB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
        if (v <= 0) return Status::NumericError("ln of non-positive value");
        return Value::Double(std::log(v));
      });
}

}  // namespace radb
