#ifndef RADB_CATALOG_FUNCTION_REGISTRY_H_
#define RADB_CATALOG_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/signature.h"
#include "types/value.h"

namespace radb {

/// Implementation of one built-in scalar function. Arguments arrive
/// already kind-checked against the signature; implementations still
/// validate runtime dimensions (unspecified dims compile but may fail
/// at execution — paper §3.1).
using ScalarFn =
    std::function<Result<Value>(const std::vector<Value>&)>;

/// A registered built-in: templated type signature (drives binding and
/// the optimizer's size inference, §4.2) plus the evaluator.
///
/// `sparse_aware` marks evaluators that understand sparsely-represented
/// MATRIX values. For everything else (including application UDFs),
/// Register() installs a shim that densifies sparse arguments before
/// calling eval, so `.matrix()` inside any implementation stays safe.
struct BuiltinFunction {
  FunctionSignature signature;
  ScalarFn eval;
  bool sparse_aware = false;
};

/// Registry of the paper's built-in functions over LABELED_SCALAR /
/// VECTOR / MATRIX (matrix_multiply, outer_product, diag, ...) plus a
/// few scalar math helpers. Names are case-insensitive.
class FunctionRegistry {
 public:
  /// The process-wide registry with every built-in registered.
  static const FunctionRegistry& Global();

  FunctionRegistry();

  /// CatalogError when the name is unknown.
  Result<const BuiltinFunction*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Sorted list of registered names (for error messages / docs).
  std::vector<std::string> Names() const;

  size_t size() const { return fns_.size(); }

  /// Registers a function; replaces any same-named entry. Exposed so
  /// applications can add their own UDF-style built-ins.
  void Register(BuiltinFunction fn);

 private:
  std::map<std::string, BuiltinFunction> fns_;
};

}  // namespace radb

#endif  // RADB_CATALOG_FUNCTION_REGISTRY_H_
