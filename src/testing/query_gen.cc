#include "testing/query_gen.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace radb::testing {

namespace {

/// A column visible in the generated query's scope.
struct ColRef {
  std::string text;  // "r0.c1"
  DataType type;
};

/// Columns bucketed by kind for quick "give me an X" picks.
struct Scope {
  std::vector<ColRef> ints, doubles, bools, strings, vectors, matrices;

  bool HasNumeric() const { return !ints.empty() || !doubles.empty(); }
};

const ColRef* Pick(const std::vector<ColRef>& v, Rng* rng) {
  return v.empty() ? nullptr : &v[rng->NextBelow(v.size())];
}

/// Generates total, exact expressions only: no division, no partial
/// builtins (sqrt/ln/inverse/...), every index a literal in range.
/// Divergence-by-construction hazards this sidesteps are documented
/// in DESIGN.md §9.
class ExprGen {
 public:
  ExprGen(const Scope& scope, Rng* rng) : s_(scope), rng_(rng) {}

  /// INTEGER-kind expression (never promotes to double).
  std::string IntExpr(int depth) {
    const uint64_t roll = rng_->NextBelow(10);
    if (depth <= 0 || roll < 3) {
      if (const ColRef* c = Pick(s_.ints, rng_); c != nullptr && roll != 0) {
        return c->text;
      }
      return std::to_string(static_cast<int64_t>(rng_->NextBelow(7)) - 3);
    }
    if (roll < 8 || (s_.vectors.empty() && s_.matrices.empty())) {
      static const char* kOps[] = {" + ", " - ", " * "};
      return "(" + IntExpr(depth - 1) + kOps[rng_->NextBelow(3)] +
             IntExpr(depth - 1) + ")";
    }
    if (const ColRef* v = Pick(s_.vectors, rng_); v != nullptr && roll == 8) {
      return rng_->NextBelow(2) == 0 ? "vector_size(" + v->text + ")"
                                     : "argmax_vector(" + v->text + ")";
    }
    if (const ColRef* m = Pick(s_.matrices, rng_)) {
      switch (rng_->NextBelow(3)) {
        case 0:
          return "matrix_rows(" + m->text + ")";
        case 1:
          return "matrix_cols(" + m->text + ")";
        default:
          // Stored-entry count; representation-invariant by design.
          return "nnz(" + m->text + ")";
      }
    }
    return IntExpr(0);
  }

  /// Numeric expression; *is_double reports the statically known kind
  /// (the engine never produces a mixed-kind column: int arithmetic
  /// stays int, anything touching a double is double).
  std::string NumExpr(int depth, bool* is_double) {
    const uint64_t roll = rng_->NextBelow(12);
    if (roll < 4) {
      *is_double = false;
      return IntExpr(depth);
    }
    if (roll < 6 || depth <= 0) {
      *is_double = true;
      if (const ColRef* c = Pick(s_.doubles, rng_); c != nullptr) {
        return c->text;
      }
      // Doubles on the 0.25 grid keep every downstream sum exact.
      const double v = (static_cast<double>(rng_->NextBelow(25)) - 12.0) * 0.25;
      std::ostringstream os;
      os << v;
      std::string text = os.str();
      if (text.find('.') == std::string::npos) text += ".0";
      return text;
    }
    if (roll < 9) {
      bool ld = false, rd = false;
      static const char* kOps[] = {" + ", " - ", " * "};
      const std::string e = "(" + NumExpr(depth - 1, &ld) +
                            kOps[rng_->NextBelow(3)] +
                            NumExpr(depth - 1, &rd) + ")";
      *is_double = ld || rd;
      return e;
    }
    // LA-flavored scalar reductions (all exact on the generated grid).
    *is_double = true;
    if (const ColRef* v = Pick(s_.vectors, rng_); v != nullptr && roll == 9) {
      static const char* kFns[] = {"sum_vector", "min_vector", "max_vector"};
      return std::string(kFns[rng_->NextBelow(3)]) + "(" + v->text + ")";
    }
    if (const ColRef* m = Pick(s_.matrices, rng_); m != nullptr && roll == 10) {
      if (m->type.rows() == m->type.cols() && rng_->NextBelow(2) == 0) {
        return "trace(" + m->text + ")";
      }
      static const char* kFns[] = {"sum_matrix", "min_matrix", "max_matrix"};
      return std::string(kFns[rng_->NextBelow(3)]) + "(" + m->text + ")";
    }
    if (const ColRef* m = Pick(s_.matrices, rng_); m != nullptr && roll == 11) {
      const int64_t r = static_cast<int64_t>(rng_->NextBelow(
          static_cast<uint64_t>(*m->type.rows())));
      const int64_t c = static_cast<int64_t>(rng_->NextBelow(
          static_cast<uint64_t>(*m->type.cols())));
      return "get_entry(" + m->text + ", " + std::to_string(r) + ", " +
             std::to_string(c) + ")";
    }
    if (const ColRef* v = Pick(s_.vectors, rng_); v != nullptr) {
      const int64_t i = static_cast<int64_t>(
          rng_->NextBelow(static_cast<uint64_t>(*v->type.rows())));
      return "get_scalar(" + v->text + ", " + std::to_string(i) + ")";
    }
    bool d = false;
    const std::string e = "abs_val(" + NumExpr(0, &d) + " + 0.0)";
    return e;
  }

  /// Boolean predicate. Equality comparisons are restricted to
  /// same-kind sides of hashable kinds (int/bool/string): `=` between
  /// relations becomes a hash-join key, and the engine's hash/Equals
  /// key semantics must coincide with EvalCompare for the comparison
  /// the reference evaluator performs.
  std::string BoolExpr(int depth) {
    const uint64_t roll = rng_->NextBelow(10);
    if (roll == 0 && !s_.bools.empty()) {
      return Pick(s_.bools, rng_)->text;
    }
    if (depth > 0 && roll < 3) {
      const char* op = rng_->NextBelow(2) == 0 ? " AND " : " OR ";
      return "(" + BoolExpr(depth - 1) + op + BoolExpr(depth - 1) + ")";
    }
    if (depth > 0 && roll == 3) {
      return "(NOT " + BoolExpr(depth - 1) + ")";
    }
    if (roll == 4 && s_.strings.size() >= 1) {
      const ColRef* a = Pick(s_.strings, rng_);
      const ColRef* b = Pick(s_.strings, rng_);
      static const char* kOps[] = {" = ", " < ", " <= ", " <> "};
      return "(" + a->text + kOps[rng_->NextBelow(4)] + b->text + ")";
    }
    static const char* kCmp[] = {" < ", " <= ", " > ", " >= ", " <> "};
    const uint64_t cmp = rng_->NextBelow(6);
    if (cmp == 5) {
      // Equality: int-only on both sides.
      return "(" + IntExpr(1) + " = " + IntExpr(1) + ")";
    }
    bool ld = false, rd = false;
    return "(" + NumExpr(1, &ld) + kCmp[cmp] + NumExpr(1, &rd) + ")";
  }

  /// LA-valued (VECTOR/MATRIX) expression, or empty when the scope has
  /// no LA columns to build from.
  std::string LaExpr() {
    const uint64_t roll = rng_->NextBelow(10);
    const ColRef* v = Pick(s_.vectors, rng_);
    const ColRef* m = Pick(s_.matrices, rng_);
    if (v != nullptr && (roll < 2 || m == nullptr)) {
      switch (rng_->NextBelow(4)) {
        case 0: {
          // Same-length pair for elementwise +/-.
          for (const ColRef& o : s_.vectors) {
            if (o.type.rows() == v->type.rows()) {
              return "(" + v->text + (rng_->NextBelow(2) == 0 ? " + " : " - ") +
                     o.text + ")";
            }
          }
          return v->text;
        }
        case 1:
          return "outer_product(" + v->text + ", " +
                 Pick(s_.vectors, rng_)->text + ")";
        case 2:
          return "diag_matrix(" + v->text + ")";
        default:
          return v->text;
      }
    }
    if (m != nullptr) {
      switch (roll) {
        case 2:
          return "trans_matrix(" + m->text + ")";
        case 3: {
          // matrix_multiply with compatible inner dimensions.
          for (const ColRef& o : s_.matrices) {
            if (m->type.cols() == o.type.rows()) {
              return "matrix_multiply(" + m->text + ", " + o.text + ")";
            }
          }
          return "trans_matrix(" + m->text + ")";
        }
        case 4: {
          const int64_t r = static_cast<int64_t>(rng_->NextBelow(
              static_cast<uint64_t>(*m->type.rows())));
          return "get_row(" + m->text + ", " + std::to_string(r) + ")";
        }
        case 5: {
          // Same-shape pair for elementwise +.
          for (const ColRef& o : s_.matrices) {
            if (o.type.rows() == m->type.rows() &&
                o.type.cols() == m->type.cols()) {
              return "(" + m->text + " + " + o.text + ")";
            }
          }
          return m->text;
        }
        case 6:
          return "row_mins(" + m->text + ")";
        case 7:
          // Representation round-trips: the differ densifies before
          // comparing, so these must be value-preserving no-ops.
          return rng_->NextBelow(2) == 0
                     ? "sparsify(" + m->text + ")"
                     : "densify(sparsify(" + m->text + "))";
        case 8: {
          // Semiring-generalized multiply; grid entries keep min/max
          // and sum folds exact, so every config agrees bitwise.
          static const char* kSemirings[] = {"plus_times", "min_plus",
                                             "max_plus", "or_and"};
          const char* sr = kSemirings[rng_->NextBelow(4)];
          for (const ColRef& o : s_.matrices) {
            if (m->type.cols() == o.type.rows()) {
              const std::string a = rng_->NextBelow(2) == 0
                                        ? "sparsify(" + m->text + ")"
                                        : m->text;
              return "matrix_multiply(" + a + ", " + o.text + ", '" +
                     std::string(sr) + "')";
            }
          }
          return "sparsify(" + m->text + ")";
        }
        default:
          return m->text;
      }
    }
    return "";
  }

  /// One aggregate call, e.g. "SUM((r0.k * r1.c0))".
  QuerySpec::SelectItem AggItem() {
    const Scope& s = s_;
    for (int attempt = 0; attempt < 4; ++attempt) {
      switch (rng_->NextBelow(10)) {
        case 0:
          return {"COUNT(*)", true};
        case 1: {
          bool d = false;
          return {"COUNT(" + NumExpr(1, &d) + ")", true};
        }
        case 2: {
          bool d = false;
          return {"SUM(" + NumExpr(1, &d) + ")", true};
        }
        case 3: {
          bool d = false;
          return {"AVG(" + NumExpr(1, &d) + ")", true};
        }
        case 4: {
          bool d = false;
          const char* fn = rng_->NextBelow(2) == 0 ? "MIN(" : "MAX(";
          if (!s.strings.empty() && rng_->NextBelow(3) == 0) {
            return {fn + Pick(s.strings, rng_)->text + ")", true};
          }
          return {fn + NumExpr(1, &d) + ")", true};
        }
        case 5: {
          // SUM over VECTOR/MATRIX — the §3.2 elementwise overloads.
          const std::string la = LaExpr();
          if (la.empty()) continue;
          return {"SUM(" + la + ")", false};
        }
        case 6: {
          const std::string la = LaExpr();
          if (la.empty()) continue;
          const char* fn = rng_->NextBelow(2) == 0 ? "EMIN(" : "EMAX(";
          return {fn + la + ")", false};
        }
        case 7: {
          // VECTORIZE over labeled scalars (§3.3). Labels may collide
          // or go negative — both are deterministic execution errors.
          if (!s.HasNumeric()) continue;
          bool d = false;
          const std::string val = NumExpr(0, &d);
          const std::string lbl =
              rng_->NextBelow(2) == 0 ? IntExpr(1)
                                      : "(" + IntExpr(0) + " + 3)";
          return {"VECTORIZE(label_scalar(" + val + " + 0.0, " + lbl + "))",
                  false};
        }
        case 8: {
          if (s.vectors.empty()) continue;
          const char* fn =
              rng_->NextBelow(2) == 0 ? "ROWMATRIX(" : "COLMATRIX(";
          return {std::string(fn) + "label_vector(" +
                      Pick(s.vectors, rng_)->text + ", " + IntExpr(1) + "))",
                  false};
        }
        default: {
          bool d = false;
          return {"AVG((" + NumExpr(0, &d) + " + 0.0))", true};
        }
      }
    }
    return {"COUNT(*)", true};
  }

  /// One plain (non-aggregate) select item.
  QuerySpec::SelectItem PlainItem() {
    switch (rng_->NextBelow(8)) {
      case 0:
        if (!s_.strings.empty()) return {Pick(s_.strings, rng_)->text, true};
        [[fallthrough]];
      case 1:
        if (!s_.bools.empty()) return {BoolExpr(1), true};
        [[fallthrough]];
      case 2:
      case 3: {
        const std::string la = LaExpr();
        if (!la.empty() && rng_->NextBelow(2) == 0) return {la, false};
        bool d = false;
        return {NumExpr(2, &d), true};
      }
      case 4: {
        // LABELED_SCALAR output value.
        if (s_.HasNumeric()) {
          bool d = false;
          return {"label_scalar(" + NumExpr(0, &d) + " + 0.0, " + IntExpr(1) +
                      ")",
                  false};
        }
        [[fallthrough]];
      }
      default: {
        bool d = false;
        return {NumExpr(2, &d), true};
      }
    }
  }

  /// Group key: int/bool/string valued only. Doubles are excluded so
  /// the hash-based grouping key semantics stay trivially aligned
  /// between engine and reference; labeled values are excluded because
  /// Compare ignores labels while Equals does not.
  std::string GroupKey() {
    const uint64_t roll = rng_->NextBelow(6);
    if (roll == 0 && !s_.bools.empty()) return Pick(s_.bools, rng_)->text;
    if (roll == 1 && !s_.strings.empty()) return Pick(s_.strings, rng_)->text;
    if (roll < 4 && !s_.ints.empty()) return Pick(s_.ints, rng_)->text;
    return IntExpr(1);
  }

 private:
  const Scope& s_;
  Rng* rng_;
};

}  // namespace

std::string QuerySpec::ToSql() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < select_items.size(); ++i) {
    if (i > 0) os << ", ";
    os << select_items[i].text << " AS o" << i;
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].table << " AS " << from[i].alias;
  }
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      os << where[i];
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i];
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << "o" << order_by[i].item;
      if (order_by[i].desc) os << " DESC";
    }
  }
  if (limit.has_value()) os << " LIMIT " << *limit;
  return os.str();
}

std::vector<TableSpec> SystemTableFuzzSchemas() {
  // Keep this list boring on purpose: stable identity columns plus a
  // few counters, no timing columns (those exist, they're just not
  // interesting to a shape oracle). Types must match the live schemas
  // in src/api/system_tables.cc — systab_test enforces that.
  std::vector<TableSpec> out;
  out.push_back({"radb_tables",
                 {{"name", DataType::String()},
                  {"columns", DataType::Integer()},
                  {"num_rows", DataType::Integer()},
                  {"bytes", DataType::Integer()},
                  {"num_partitions", DataType::Integer()}},
                 {}});
  out.push_back({"radb_metrics",
                 {{"name", DataType::String()},
                  {"kind", DataType::String()},
                  {"value", DataType::Double()},
                  {"count", DataType::Integer()}},
                 {}});
  out.push_back({"radb_queries",
                 {{"query_id", DataType::Integer()},
                  {"session_id", DataType::Integer()},
                  {"sql", DataType::String()},
                  {"status", DataType::String()},
                  {"rows", DataType::Integer()},
                  {"total_micros", DataType::Integer()}},
                 {}});
  out.push_back({"radb_threads",
                 {{"kind", DataType::String()},
                  {"id", DataType::Integer()},
                  {"tasks", DataType::Integer()}},
                 {}});
  return out;
}

QuerySpec GenerateSystemTableQuery(const CatalogSpec& catalog, Rng* rng) {
  const std::vector<TableSpec> sys = SystemTableFuzzSchemas();
  const TableSpec& st = sys[rng->NextBelow(sys.size())];

  QuerySpec q;
  q.from.push_back({st.name, "r0"});

  // Column buckets of the system table.
  std::vector<std::string> ints, strings;
  for (const ColumnSpec& c : st.columns) {
    if (c.type.kind() == TypeKind::kInteger) {
      ints.push_back("r0." + c.name);
    } else if (c.type.kind() == TypeKind::kString) {
      strings.push_back("r0." + c.name);
    }
  }

  // Optionally join a user table on its INTEGER key `k` (every
  // generated table has one). Equality drives the hash-join path;
  // inequality drives the nested-loop path. Either way row contents
  // are volatile, so only the status + schema must agree.
  if (!catalog.tables.empty() && rng->NextBelow(2) == 0) {
    const TableSpec& ut =
        catalog.tables[rng->NextBelow(catalog.tables.size())];
    q.from.push_back({ut.name, "r1"});
    if (!ints.empty()) {
      const std::string& lhs = ints[rng->NextBelow(ints.size())];
      const char* op = rng->NextBelow(2) == 0 ? " = " : " >= ";
      q.where.push_back("(" + lhs + op + "r1.k)");
    }
  }

  const bool agg = rng->NextBelow(3) == 0;
  if (agg) {
    q.select_items.push_back({"COUNT(*)", true});
    if (!ints.empty() && rng->NextBelow(2) == 0) {
      const char* fn = rng->NextBelow(2) == 0 ? "MIN(" : "MAX(";
      q.select_items.push_back(
          {fn + ints[rng->NextBelow(ints.size())] + ")", true});
    }
  } else {
    const size_t nitems = 1 + rng->NextBelow(3);
    for (size_t i = 0; i < nitems; ++i) {
      const uint64_t roll = rng->NextBelow(3);
      if (roll == 0 && !strings.empty()) {
        q.select_items.push_back({strings[rng->NextBelow(strings.size())],
                                  true});
      } else if (!ints.empty()) {
        q.select_items.push_back({ints[rng->NextBelow(ints.size())], true});
      } else {
        q.select_items.push_back({"COUNT(*)", true});
      }
    }
    // A volatile-free filter every config evaluates identically is
    // impossible in general; any predicate is fine under shape mode.
    if (!ints.empty() && rng->NextBelow(3) == 0) {
      q.where.push_back(
          "(" + ints[rng->NextBelow(ints.size())] + " >= 0)");
    }
  }
  return q;
}

QuerySpec GenerateQuery(const CatalogSpec& catalog, Rng* rng) {
  QuerySpec q;

  // ---- FROM: 1-5 relations, repeats allowed, always aliased. ----
  const size_t nrel = 1 + rng->NextBelow(5);
  for (size_t i = 0; i < nrel; ++i) {
    const TableSpec& t = catalog.tables[rng->NextBelow(catalog.tables.size())];
    q.from.push_back({t.name, "r" + std::to_string(i)});
  }

  // ---- Scope. ----
  Scope scope;
  for (const QuerySpec::FromItem& f : q.from) {
    const TableSpec* t = nullptr;
    for (const TableSpec& cand : catalog.tables) {
      if (cand.name == f.table) t = &cand;
    }
    for (const ColumnSpec& c : t->columns) {
      ColRef ref{f.alias + "." + c.name, c.type};
      switch (c.type.kind()) {
        case TypeKind::kInteger:
          scope.ints.push_back(ref);
          break;
        case TypeKind::kDouble:
          scope.doubles.push_back(ref);
          break;
        case TypeKind::kBoolean:
          scope.bools.push_back(ref);
          break;
        case TypeKind::kString:
          scope.strings.push_back(ref);
          break;
        case TypeKind::kVector:
          scope.vectors.push_back(ref);
          break;
        case TypeKind::kMatrix:
          scope.matrices.push_back(ref);
          break;
        default:
          break;
      }
    }
  }
  ExprGen gen(scope, rng);

  // ---- Join conjuncts: chain consecutive relations on INTEGER
  // columns (every generated table has one). ----
  for (size_t i = 1; i < nrel; ++i) {
    if (rng->NextBelow(10) < 8) {
      const size_t j = rng->NextBelow(i);
      q.where.push_back(q.from[j].alias + ".k = " + q.from[i].alias + ".k");
    }
  }
  // ---- Extra filters. ----
  const size_t nfilters = rng->NextBelow(3);
  for (size_t i = 0; i < nfilters; ++i) {
    q.where.push_back(gen.BoolExpr(2));
  }

  // ---- SELECT list (aggregate or plain). ----
  const bool agg = rng->NextBelow(2) == 0;
  if (agg) {
    const size_t ngroups = rng->NextBelow(3);
    std::set<std::string> seen;
    for (size_t i = 0; i < ngroups; ++i) {
      std::string key = gen.GroupKey();
      if (seen.insert(key).second) q.group_by.push_back(std::move(key));
    }
    // Selected group keys must textually match the GROUP BY entry
    // (the binder matches them by rendered expression text).
    for (const std::string& key : q.group_by) {
      if (rng->NextBelow(4) < 3) q.select_items.push_back({key, true});
    }
    const size_t naggs = 1 + rng->NextBelow(3);
    for (size_t i = 0; i < naggs; ++i) {
      q.select_items.push_back(gen.AggItem());
    }
  } else {
    const size_t nitems = 1 + rng->NextBelow(4);
    for (size_t i = 0; i < nitems; ++i) {
      q.select_items.push_back(gen.PlainItem());
    }
  }

  q.distinct = rng->NextBelow(5) == 0;

  // ---- ORDER BY / LIMIT. LIMIT requires a total order: every select
  // item must be an ORDER BY key (ties are then whole-row duplicates
  // and any stable sort yields the same multiset prefix). ----
  bool all_orderable = true;
  for (const QuerySpec::SelectItem& item : q.select_items) {
    all_orderable = all_orderable && item.orderable;
  }
  const uint64_t order_roll = rng->NextBelow(10);
  if (order_roll < 3 && all_orderable) {
    std::vector<size_t> perm(q.select_items.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng->NextBelow(i)]);
    }
    for (size_t i : perm) {
      q.order_by.push_back({i, rng->NextBelow(2) == 0});
    }
    q.limit = 1 + static_cast<int64_t>(rng->NextBelow(6));
  } else if (order_roll < 6) {
    // Partial ORDER BY without LIMIT: the comparison normalizes row
    // order anyway, this just exercises the Sort operator.
    for (size_t i = 0; i < q.select_items.size(); ++i) {
      if (q.select_items[i].orderable && rng->NextBelow(2) == 0) {
        q.order_by.push_back({i, rng->NextBelow(2) == 0});
      }
    }
  }
  return q;
}

}  // namespace radb::testing
