#include "testing/differ.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "testing/reference_eval.h"

namespace radb::testing {

namespace {

/// Runs a script and keeps the last result set (empty for DDL-only
/// scripts) — the differ compares one statement at a time.
Result<ResultSet> ExecLast(Database& db, const std::string& sql) {
  Result<ScriptResult> script = db.Execute(sql);
  if (!script.ok()) return script.status();
  if (script->result_sets.empty()) return ResultSet{};
  return std::move(script->result_sets.back());
}

int KindRank(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return 0;
    case TypeKind::kBoolean:
      return 1;
    case TypeKind::kInteger:
      return 2;
    case TypeKind::kDouble:
      return 3;
    case TypeKind::kString:
      return 4;
    case TypeKind::kLabeledScalar:
      return 5;
    case TypeKind::kVector:
      return 6;
    default:
      return 7;
  }
}

/// Total order used only for canonical sorting, never for SQL
/// semantics. Generated data has no NaNs, so double < is total.
bool ValueLess(const Value& a, const Value& b) {
  const int ra = KindRank(a), rb = KindRank(b);
  if (ra != rb) return ra < rb;
  switch (a.kind()) {
    case TypeKind::kNull:
      return false;
    case TypeKind::kBoolean:
      return a.bool_value() < b.bool_value();
    case TypeKind::kInteger:
      return a.int_value() < b.int_value();
    case TypeKind::kDouble:
      return a.double_value() < b.double_value();
    case TypeKind::kString:
      return a.string_value() < b.string_value();
    case TypeKind::kLabeledScalar: {
      const auto& la = a.labeled();
      const auto& lb = b.labeled();
      if (la.value != lb.value) return la.value < lb.value;
      return la.label < lb.label;
    }
    case TypeKind::kVector: {
      const auto& va = a.vector_value();
      const auto& vb = b.vector_value();
      if (va.label != vb.label) return va.label < vb.label;
      const la::Vector& xa = *va.vec;
      const la::Vector& xb = *vb.vec;
      if (xa.size() != xb.size()) return xa.size() < xb.size();
      for (size_t i = 0; i < xa.size(); ++i) {
        if (xa[i] != xb[i]) return xa[i] < xb[i];
      }
      return false;
    }
    default: {
      const la::Matrix& ma = a.matrix();
      const la::Matrix& mb = b.matrix();
      if (ma.rows() != mb.rows()) return ma.rows() < mb.rows();
      if (ma.cols() != mb.cols()) return ma.cols() < mb.cols();
      const size_t n = ma.rows() * ma.cols();
      for (size_t i = 0; i < n; ++i) {
        if (ma.data()[i] != mb.data()[i]) return ma.data()[i] < mb.data()[i];
      }
      return false;
    }
  }
}

bool RowLess(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (ValueLess(a[i], b[i])) return true;
    if (ValueLess(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

std::string RowsToString(const RowSet& rows, size_t max_rows = 12) {
  std::ostringstream os;
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    os << "      (";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) os << ", ";
      os << rows[i][j].ToString();
    }
    os << ")\n";
  }
  if (rows.size() > max_rows) {
    os << "      ... " << rows.size() - max_rows << " more\n";
  }
  return os.str();
}

std::string OutcomeToString(const Result<ResultSet>& r) {
  if (!r.ok()) {
    return std::string("    ERROR ") + StatusCodeName(r.status().code()) +
           ": " + r.status().message() + "\n";
  }
  std::ostringstream os;
  os << "    " << r->rows.size() << " row(s):\n"
     << RowsToString(Normalized(r->rows));
  return os.str();
}

/// "name:KIND, name:KIND, ..." — the schema identity compared in
/// shape mode. Full DataType::ToString (with dimensions) would be too
/// strict only if system tables ever grew LA columns; today they are
/// scalar-only, so render the full type for better error messages.
std::string SchemaSignature(const ResultSet& rs) {
  std::ostringstream os;
  for (size_t i = 0; i < rs.columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << rs.columns[i].name << ":" << rs.columns[i].type.ToString();
  }
  return os.str();
}

}  // namespace

std::vector<FuzzConfig> StandardConfigs() {
  std::vector<FuzzConfig> out;
  for (const bool threads8 : {false, true}) {
    for (const char* kind : {"dp", "greedy", "noearly"}) {
      for (const bool batch : {false, true}) {
        FuzzConfig fc;
        fc.name = std::string(kind) + (threads8 ? "-8t" : "-1t") +
                  (batch ? "-batch" : "-row");
        fc.config.num_workers = 8;
        fc.config.num_threads = threads8 ? 8 : 1;
        fc.config.obs.enable_metrics = true;
        fc.config.enable_vectorized = batch;
        if (std::string(kind) == "greedy") {
          fc.config.optimizer.dp_relation_limit = 1;  // force greedy search
        } else if (std::string(kind) == "noearly") {
          fc.config.optimizer.enable_early_projection = false;
        }
        out.push_back(std::move(fc));
      }
    }
  }
  return out;
}

RowSet Normalized(RowSet rows) {
  // Canonicalize representation before ordering: a sparse matrix and
  // the dense matrix with the same cells are the same SQL value, and
  // the oracle comparison must be representation-blind (the DENSIFY
  // canonicalization the sparse-subsystem differ coverage relies on).
  for (Row& row : rows) {
    for (Value& v : row) {
      if (v.is_sparse_matrix()) v = v.Densified();
    }
  }
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

bool SameCells(const RowSet& a, const RowSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!a[i][j].Equals(b[i][j])) return false;
    }
  }
  return true;
}

Differ::Differ(const CatalogSpec& spec) : configs_(StandardConfigs()) {
  for (const FuzzConfig& fc : configs_) {
    dbs_.push_back(std::make_unique<Database>(fc.config));
    Status s = LoadCatalog(spec, dbs_.back().get());
    if (!s.ok() && init_status_.ok()) init_status_ = s;
  }
}

DiffOutcome Differ::RunOneSystem(const std::string& sql) {
  std::vector<Result<ResultSet>> results;
  results.reserve(dbs_.size());
  for (auto& db : dbs_) results.push_back(ExecLast(*db, sql));

  // Config 0 is the baseline every other configuration must match on
  // status code and (on success) schema signature. Values are never
  // compared: each database's metric values, thread stats, and query
  // history differ by design.
  std::vector<size_t> bad;
  const Result<ResultSet>& base = results[0];
  const std::string base_sig = base.ok() ? SchemaSignature(*base) : "";
  for (size_t i = 1; i < results.size(); ++i) {
    const Result<ResultSet>& r = results[i];
    if (base.ok() != r.ok()) {
      bad.push_back(i);
    } else if (!base.ok()) {
      if (base.status().code() != r.status().code()) bad.push_back(i);
    } else if (SchemaSignature(*r) != base_sig) {
      bad.push_back(i);
    }
  }

  // Budget rerun: a system-table scan under a tight budget must either
  // succeed with the same schema or fail cleanly ResourceExhausted.
  constexpr size_t kTightBudget = 64 << 10;
  std::string budget_report;
  {
    Result<ScriptResult> budgeted = dbs_[0]->Execute(
        sql, QueryOptions{.memory_budget_bytes = kTightBudget});
    if (budgeted.ok()) {
      if (base.ok() && budgeted->has_results() &&
          SchemaSignature(budgeted->last()) != base_sig) {
        budget_report =
            "budgeted rerun (64 KB) produced a different schema: " +
            SchemaSignature(budgeted->last()) + " vs " + base_sig + "\n";
      }
    } else if (budgeted.status().code() != StatusCode::kResourceExhausted &&
               (base.ok() ||
                budgeted.status().code() != base.status().code())) {
      budget_report = "budgeted rerun failed with unexpected error: " +
                      budgeted.status().ToString() + "\n";
    }
  }

  DiffOutcome out;
  if (bad.empty() && budget_report.empty()) return out;
  out.diverged = true;
  std::ostringstream os;
  os << "DIVERGENCE (system-table shape mode) on:\n  " << sql << "\n";
  for (size_t i = 0; i < results.size(); ++i) {
    os << "  " << configs_[i].name
       << (std::count(bad.begin(), bad.end(), i) ? " [DIVERGED]" : " [ok]")
       << ": ";
    if (results[i].ok()) {
      os << "schema {" << SchemaSignature(*results[i]) << "}, "
         << results[i]->rows.size() << " row(s)\n";
    } else {
      os << "ERROR " << StatusCodeName(results[i].status().code()) << ": "
         << results[i].status().message() << "\n";
    }
  }
  if (!budget_report.empty()) {
    os << "  " << configs_[0].name << " under 64 KB budget [DIVERGED]: "
       << budget_report;
  }
  out.report = os.str();
  return out;
}

DiffOutcome Differ::RunOne(const std::string& sql) {
  if (sql.find("radb_") != std::string::npos) return RunOneSystem(sql);
  // The reference binds against the same catalog contents; any of the
  // databases' catalogs is equivalent, use the first.
  Result<ResultSet> reference = ReferenceExecute(sql, dbs_[0]->catalog());

  std::vector<Result<ResultSet>> results;
  results.reserve(dbs_.size());
  for (auto& db : dbs_) results.push_back(ExecLast(*db, sql));

  // Compare every engine configuration against the reference: equal
  // error StatusCode, or cell-exact equality of normalized rows.
  std::vector<size_t> bad;
  RowSet ref_norm;
  if (reference.ok()) ref_norm = Normalized(reference->rows);
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<ResultSet>& r = results[i];
    if (reference.ok() != r.ok()) {
      bad.push_back(i);
      continue;
    }
    if (!reference.ok()) {
      if (reference.status().code() != r.status().code()) bad.push_back(i);
      continue;
    }
    if (!SameCells(ref_norm, Normalized(r->rows))) bad.push_back(i);
  }

  // Memory-governance rerun: the same query once more on the first
  // configuration, under a per-query budget tight enough to force the
  // spill paths on fuzz-sized data. Spilling must not change a single
  // cell; a clean ResourceExhausted (some unspillable state did not
  // fit) is the one tolerated difference.
  constexpr size_t kTightBudget = 64 << 10;  // 64 KB
  std::string budget_report;
  {
    Result<ScriptResult> budgeted = dbs_[0]->Execute(
        sql, QueryOptions{.memory_budget_bytes = kTightBudget});
    if (budgeted.ok()) {
      ResultSet rs;
      if (budgeted->has_results()) rs = std::move(budgeted->result_sets.back());
      if (!reference.ok()) {
        budget_report = "budgeted run succeeded but reference failed: " +
                        reference.status().ToString() + "\n";
      } else if (!SameCells(ref_norm, Normalized(rs.rows))) {
        budget_report =
            "budgeted rerun (64 KB) produced different cells than the "
            "reference — spilling changed the result\n";
      }
    } else if (budgeted.status().code() != StatusCode::kResourceExhausted &&
               (reference.ok() ||
                budgeted.status().code() != reference.status().code())) {
      budget_report = "budgeted rerun failed with unexpected error: " +
                      budgeted.status().ToString() + "\n";
    }
  }

  DiffOutcome out;
  if (bad.empty() && budget_report.empty()) return out;
  out.diverged = true;
  std::ostringstream os;
  os << "DIVERGENCE on:\n  " << sql << "\n";
  os << "  reference:\n" << OutcomeToString(reference);
  for (size_t i = 0; i < results.size(); ++i) {
    os << "  " << configs_[i].name
       << (std::count(bad.begin(), bad.end(), i) ? " [DIVERGED]" : " [ok]")
       << ":\n"
       << OutcomeToString(results[i]);
  }
  if (!budget_report.empty()) {
    os << "  " << configs_[0].name << " under 64 KB budget [DIVERGED]: "
       << budget_report;
  }
  out.report = os.str();
  return out;
}

std::vector<uint64_t> Differ::PlansConsidered() const {
  std::vector<uint64_t> out;
  for (const auto& db : dbs_) {
    obs::MetricsRegistry* reg =
        const_cast<Database*>(db.get())->metrics_registry();
    out.push_back(
        reg == nullptr
            ? 0
            : static_cast<uint64_t>(
                  reg->counter("optimizer.plans_considered")->value()));
  }
  return out;
}

namespace {

/// A literal of `type` drawn from the same exact-in-double grids the
/// catalog generator uses (DESIGN.md §9), rendered as SQL text.
/// Returns "" for LA kinds, which churn INSERTs avoid.
std::string ChurnLiteral(const DataType& type, Rng* rng) {
  switch (type.kind()) {
    case TypeKind::kInteger:
      return std::to_string(static_cast<int64_t>(rng->NextBelow(7)) - 3);
    case TypeKind::kDouble: {
      const double v =
          0.25 * (static_cast<double>(rng->NextBelow(25)) - 12.0);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return buf;
    }
    case TypeKind::kString:
      return "'s" + std::to_string(rng->NextBelow(10)) + "'";
    case TypeKind::kBoolean:
      return rng->NextBelow(2) != 0 ? "TRUE" : "FALSE";
    default:
      return "";
  }
}

/// "INSERT INTO t VALUES (...)" for a random all-scalar table of the
/// spec, or "" when every table has an LA column.
std::string ChurnInsert(const CatalogSpec& spec, Rng* rng) {
  std::vector<const TableSpec*> scalar_tables;
  for (const TableSpec& t : spec.tables) {
    bool ok = true;
    for (const ColumnSpec& c : t.columns) {
      if (c.type.is_la()) ok = false;
    }
    if (ok) scalar_tables.push_back(&t);
  }
  if (scalar_tables.empty()) return "";
  const TableSpec& t =
      *scalar_tables[rng->NextBelow(scalar_tables.size())];
  std::string sql = "INSERT INTO " + t.name + " VALUES (";
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += ChurnLiteral(t.columns[i].type, rng);
  }
  return sql + ")";
}

}  // namespace

CacheDiffOutcome RunCacheDiffRounds(const CatalogSpec& spec, uint64_t seed,
                                    size_t rounds) {
  Database::Config on;
  on.num_workers = 8;
  on.num_threads = 1;
  on.obs.enable_metrics = true;
  // Small result budget: eviction and fill-refusal paths run under
  // ordinary fuzz traffic, not only in targeted tests.
  on.cache.result_cache_bytes = 1u << 20;
  Database::Config off = on;
  off.cache.enable_plan_cache = false;
  off.cache.enable_result_cache = false;

  Database cached(on);
  Database plain(off);
  CacheDiffOutcome out;
  {
    const Status s1 = LoadCatalog(spec, &cached);
    const Status s2 = LoadCatalog(spec, &plain);
    if (!s1.ok() || !s2.ok()) {
      out.diverged = true;
      out.report = "cache differ: catalog load failed: " +
                   (s1.ok() ? s2 : s1).ToString();
      return out;
    }
  }

  auto diverge = [&](const std::string& sql, const std::string& detail) {
    out.diverged = true;
    std::ostringstream os;
    os << "CACHE DIVERGENCE (caches-on vs caches-off) on:\n  " << sql << "\n"
       << detail << "  catalog seed: " << spec.seed << "\n";
    out.report = os.str();
  };

  // Runs `sql` on both databases; true when they agree.
  auto run_both = [&](const std::string& sql) {
    const Result<ResultSet> a = ExecLast(cached, sql);
    const Result<ResultSet> b = ExecLast(plain, sql);
    ++out.statements_run;
    if (a.ok() != b.ok()) {
      diverge(sql, "  cached: " + OutcomeToString(a) +
                       "  uncached: " + OutcomeToString(b));
      return false;
    }
    if (!a.ok()) {
      if (a.status().code() != b.status().code()) {
        diverge(sql, "  cached: " + OutcomeToString(a) +
                         "  uncached: " + OutcomeToString(b));
        return false;
      }
      return true;
    }
    if (!SameCells(Normalized(a->rows), Normalized(b->rows))) {
      diverge(sql, "  cached: " + OutcomeToString(a) +
                       "  uncached: " + OutcomeToString(b));
      return false;
    }
    return true;
  };

  Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  std::vector<std::string> hot;
  bool scratch_exists = false;
  int64_t scratch_value = 0;

  for (size_t r = 0; r < rounds && !out.diverged; ++r) {
    // Keep a small hot pool so replays genuinely hit the caches.
    if (hot.size() < 4 || rng.NextBelow(4) == 0) {
      hot.push_back(GenerateQuery(spec, &rng).ToSql());
      if (hot.size() > 8) hot.erase(hot.begin());
    }
    // Cold then warm: the second run is served from cache on the
    // cached side and must still match the cache-less database.
    const std::string& sql = hot[rng.NextBelow(hot.size())];
    if (!run_both(sql) || !run_both(sql)) break;

    const uint64_t churn = rng.NextBelow(6);
    std::string ddl;
    if (churn == 0) {
      ddl = ChurnInsert(spec, &rng);
    } else if (churn == 1) {
      // CREATE/DROP cycle of one scratch name with fresh contents each
      // generation: a cache keyed without table identity would keep
      // serving the previous incarnation's rows.
      if (scratch_exists) {
        ddl = "DROP TABLE fuzz_scratch";
        scratch_exists = false;
      } else {
        ++scratch_value;
        ddl = "CREATE TABLE fuzz_scratch (k INTEGER); INSERT INTO "
              "fuzz_scratch VALUES (" +
              std::to_string(scratch_value) + ")";
        scratch_exists = true;
      }
    } else if (churn == 2) {
      // Prepared round: the template re-binds across catalog churn and
      // parameters substitute per execution.
      const TableSpec& t = spec.tables[rng.NextBelow(spec.tables.size())];
      const int64_t v = static_cast<int64_t>(rng.NextBelow(7)) - 3;
      const std::string script =
          "PREPARE fz AS SELECT k FROM " + t.name +
          " WHERE k = ?; EXECUTE fz(" + std::to_string(v) +
          "); DEALLOCATE fz";
      if (!run_both(script)) break;
    }
    if (!ddl.empty()) {
      if (!run_both(ddl)) break;
      // Staleness probe: every hot query (plus the scratch-table scan,
      // which must flip between contents and "no such table" in
      // lockstep) replayed right after the catalog changed.
      if (!run_both("SELECT k FROM fuzz_scratch")) break;
      bool ok = true;
      for (const std::string& q : hot) {
        if (!run_both(q)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
  }
  return out;
}

namespace {

/// True when the (catalog, query) pair still diverges. Builds a fresh
/// Differ per call — candidate catalogs are tiny, so this is cheap.
bool StillDiverges(const CatalogSpec& cat, const QuerySpec& q) {
  Differ differ(cat);
  if (!differ.init_status().ok()) return false;
  return differ.RunOne(q.ToSql()).diverged;
}

/// Applies `mutate` to a copy; keeps it if the divergence persists.
template <typename Fn>
bool TryMutation(CatalogSpec* cat, QuerySpec* q, Fn mutate) {
  CatalogSpec c2 = *cat;
  QuerySpec q2 = *q;
  if (!mutate(&c2, &q2)) return false;
  if (!StillDiverges(c2, q2)) return false;
  *cat = std::move(c2);
  *q = std::move(q2);
  return true;
}

/// Does any clause fragment mention alias `rK.`?
bool AliasReferenced(const QuerySpec& q, const std::string& alias) {
  const std::string needle = alias + ".";
  for (const auto& s : q.select_items) {
    if (s.text.find(needle) != std::string::npos) return true;
  }
  for (const auto& w : q.where) {
    if (w.find(needle) != std::string::npos) return true;
  }
  for (const auto& g : q.group_by) {
    if (g.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool TableReferenced(const QuerySpec& q, const std::string& table) {
  for (const auto& f : q.from) {
    if (f.table == table) return true;
  }
  return false;
}

}  // namespace

Repro Shrink(CatalogSpec catalog, QuerySpec query) {
  bool progress = true;
  while (progress) {
    progress = false;

    // Clause-level drops, cheapest first.
    progress |= TryMutation(&catalog, &query, [](CatalogSpec*, QuerySpec* q) {
      if (!q->limit.has_value()) return false;
      q->limit.reset();
      return true;
    });
    progress |= TryMutation(&catalog, &query, [](CatalogSpec*, QuerySpec* q) {
      if (!q->distinct) return false;
      q->distinct = false;
      return true;
    });
    progress |= TryMutation(&catalog, &query, [](CatalogSpec*, QuerySpec* q) {
      if (q->order_by.empty() || q->limit.has_value()) return false;
      q->order_by.clear();
      return true;
    });

    // Drop one WHERE conjunct.
    for (size_t i = 0; i < query.where.size(); ++i) {
      progress |=
          TryMutation(&catalog, &query, [i](CatalogSpec*, QuerySpec* q) {
            if (i >= q->where.size()) return false;
            q->where.erase(q->where.begin() + static_cast<long>(i));
            return true;
          });
    }

    // Drop one GROUP BY key (and select items textually equal to it).
    for (size_t i = 0; i < query.group_by.size(); ++i) {
      progress |=
          TryMutation(&catalog, &query, [i](CatalogSpec*, QuerySpec* q) {
            if (i >= q->group_by.size()) return false;
            const std::string key = q->group_by[i];
            q->group_by.erase(q->group_by.begin() + static_cast<long>(i));
            for (size_t s = q->select_items.size(); s > 0; --s) {
              if (q->select_items[s - 1].text == key) {
                if (q->select_items.size() == 1) return false;
                // Fix up ORDER BY indexes for the removed item.
                const size_t gone = s - 1;
                std::vector<QuerySpec::OrderKey> keep;
                for (const auto& ok : q->order_by) {
                  if (ok.item == gone) continue;
                  keep.push_back(
                      {ok.item > gone ? ok.item - 1 : ok.item, ok.desc});
                }
                q->order_by = std::move(keep);
                q->select_items.erase(q->select_items.begin() +
                                      static_cast<long>(gone));
              }
            }
            return true;
          });
    }

    // Drop one select item (keeping at least one; LIMIT queries must
    // keep ORDER BY covering all items, so drop LIMIT first there).
    for (size_t i = 0; i < query.select_items.size(); ++i) {
      progress |=
          TryMutation(&catalog, &query, [i](CatalogSpec*, QuerySpec* q) {
            if (q->select_items.size() <= 1 || i >= q->select_items.size()) {
              return false;
            }
            if (q->limit.has_value()) return false;
            std::vector<QuerySpec::OrderKey> keep;
            for (const auto& ok : q->order_by) {
              if (ok.item == i) continue;
              keep.push_back({ok.item > i ? ok.item - 1 : ok.item, ok.desc});
            }
            q->order_by = std::move(keep);
            q->select_items.erase(q->select_items.begin() +
                                  static_cast<long>(i));
            return true;
          });
    }

    // Drop one FROM item whose alias no clause mentions.
    for (size_t i = 0; i < query.from.size(); ++i) {
      progress |=
          TryMutation(&catalog, &query, [i](CatalogSpec*, QuerySpec* q) {
            if (q->from.size() <= 1 || i >= q->from.size()) return false;
            if (AliasReferenced(*q, q->from[i].alias)) return false;
            q->from.erase(q->from.begin() + static_cast<long>(i));
            return true;
          });
    }

    // Shrink table data: halve row counts, then drop rows one by one.
    for (size_t t = 0; t < catalog.tables.size(); ++t) {
      progress |=
          TryMutation(&catalog, &query, [t](CatalogSpec* c, QuerySpec*) {
            TableSpec& tab = c->tables[t];
            if (tab.rows.size() < 2) return false;
            tab.rows.resize(tab.rows.size() / 2);
            return true;
          });
      const size_t nrows = catalog.tables[t].rows.size();
      for (size_t r = 0; r < nrows; ++r) {
        progress |=
            TryMutation(&catalog, &query, [t, r](CatalogSpec* c, QuerySpec*) {
              TableSpec& tab = c->tables[t];
              if (r >= tab.rows.size()) return false;
              tab.rows.erase(tab.rows.begin() + static_cast<long>(r));
              return true;
            });
      }
    }

    // Drop whole tables the query never names.
    for (size_t t = catalog.tables.size(); t > 0; --t) {
      progress |= TryMutation(
          &catalog, &query, [t, &query](CatalogSpec* c, QuerySpec*) {
            if (t - 1 >= c->tables.size()) return false;
            if (TableReferenced(query, c->tables[t - 1].name)) return false;
            c->tables.erase(c->tables.begin() + static_cast<long>(t - 1));
            return true;
          });
    }
  }
  return Repro{std::move(catalog), std::move(query)};
}

std::string ReproReport(const Repro& repro) {
  std::ostringstream os;
  os << "=== shrunk repro ===\n";
  os << repro.catalog.ToString();
  os << "  SQL: " << repro.query.ToSql() << "\n";
  Differ differ(repro.catalog);
  if (!differ.init_status().ok()) {
    os << "  (catalog reload failed: " << differ.init_status().message()
       << ")\n";
    return os.str();
  }
  DiffOutcome outcome = differ.RunOne(repro.query.ToSql());
  os << (outcome.diverged ? outcome.report
                          : "  (no longer diverges after reload?)\n");
  os << "=== end repro ===\n";
  return os.str();
}

}  // namespace radb::testing
