#include "testing/catalog_gen.h"

#include <cmath>
#include <sstream>

#include "la/sparse/sparse.h"

namespace radb::testing {

namespace {

/// Integers small enough that any product/sum chain the query
/// generator can build stays exactly representable.
int64_t RandInt(Rng* rng) {
  return static_cast<int64_t>(rng->NextBelow(7)) - 3;  // [-3, 3]
}

/// Doubles on a 0.25 grid in [-3, 3]: sums and products of such
/// values (at the depths the query generator emits) are exact in
/// binary floating point, so aggregation order cannot matter.
double RandDouble(Rng* rng) {
  return (static_cast<double>(rng->NextBelow(25)) - 12.0) * 0.25;
}

/// Vector/matrix entries on a 0.5 grid in [-2, 2].
double RandEntry(Rng* rng) {
  return (static_cast<double>(rng->NextBelow(9)) - 4.0) * 0.5;
}

std::string RandString(Rng* rng) {
  static const char* kPool[] = {"a", "b", "c", "dd", "e"};
  return kPool[rng->NextBelow(5)];
}

/// Nonzero vector/matrix entries on the same 0.5 grid (sparse tiles
/// must not *store* 0.0: stored zero means "no entry").
double RandNonzeroEntry(Rng* rng) {
  const size_t i = rng->NextBelow(8);
  return i < 4 ? (static_cast<double>(i) - 4.0) * 0.5
               : (static_cast<double>(i) - 3.0) * 0.5;
}

Value RandValue(const ColumnSpec& col, Rng* rng) {
  const DataType& t = col.type;
  if (t.kind() == TypeKind::kMatrix && col.sparse_density > 0.0) {
    // Bernoulli(density) per cell. At density 0.01 most 2x2..4x4 tiles
    // come out empty — deliberately exercising the all-zero-tile path.
    const size_t one_in =
        static_cast<size_t>(std::llround(1.0 / col.sparse_density));
    la::Matrix m(static_cast<size_t>(*t.rows()),
                 static_cast<size_t>(*t.cols()));
    for (size_t i = 0; i < m.rows() * m.cols(); ++i) {
      if (rng->NextBelow(one_in) == 0) m.data()[i] = RandNonzeroEntry(rng);
    }
    return Value::FromSparseMatrix(la::sparse::CsrMatrix::FromDense(m));
  }
  switch (t.kind()) {
    case TypeKind::kInteger:
      return Value::Int(RandInt(rng));
    case TypeKind::kDouble:
      return Value::Double(RandDouble(rng));
    case TypeKind::kBoolean:
      return Value::Bool(rng->NextBelow(2) == 1);
    case TypeKind::kString:
      return Value::String(RandString(rng));
    case TypeKind::kVector: {
      la::Vector v(static_cast<size_t>(*t.rows()));
      for (size_t i = 0; i < v.size(); ++i) v[i] = RandEntry(rng);
      return Value::FromVector(std::move(v));
    }
    case TypeKind::kMatrix: {
      la::Matrix m(static_cast<size_t>(*t.rows()),
                   static_cast<size_t>(*t.cols()));
      for (size_t i = 0; i < m.rows() * m.cols(); ++i) {
        m.data()[i] = RandEntry(rng);
      }
      return Value::FromMatrix(std::move(m));
    }
    default:
      return Value::Null();
  }
}

/// Densities for generated sparse-matrix columns (ISSUE: exercise the
/// empty/hot ends of the dispatch threshold).
constexpr double kSparseDensities[] = {0.01, 0.1, 0.5};

DataType RandColumnType(Rng* rng) {
  // Weighted toward scalars; every LA column gets fully declared
  // dimensions so the binder can type-check calls at bind time.
  switch (rng->NextBelow(10)) {
    case 0:
    case 1:
    case 2:
      return DataType::Integer();
    case 3:
    case 4:
      return DataType::Double();
    case 5:
      return DataType::Boolean();
    case 6:
      return DataType::String();
    case 7:
    case 8:
      return DataType::MakeVector(2 + static_cast<int64_t>(rng->NextBelow(3)));
    default:
      return DataType::MakeMatrix(
          2 + static_cast<int64_t>(rng->NextBelow(3)),
          2 + static_cast<int64_t>(rng->NextBelow(3)));
  }
}

}  // namespace

CatalogSpec GenerateCatalog(uint64_t seed) {
  Rng rng(seed ^ 0x9d2c5680a76b1c3dULL);
  CatalogSpec spec;
  spec.seed = seed;
  const size_t num_tables = 2 + rng.NextBelow(4);  // 2-5
  for (size_t t = 0; t < num_tables; ++t) {
    TableSpec table;
    table.name = "t" + std::to_string(t);
    // Always lead with an INTEGER column: the join-key / group-key
    // workhorse. Then 0-4 random extras.
    table.columns.push_back(ColumnSpec{"k", DataType::Integer()});
    const size_t extras = rng.NextBelow(5);
    for (size_t c = 0; c < extras; ++c) {
      ColumnSpec col{"c" + std::to_string(c), RandColumnType(&rng)};
      // Half the matrix columns hold sparse CSR values, so every
      // fuzzer config sees mixed-representation operands.
      if (col.type.kind() == TypeKind::kMatrix && rng.NextBelow(2) == 0) {
        col.sparse_density = kSparseDensities[rng.NextBelow(3)];
      }
      table.columns.push_back(std::move(col));
    }
    // 0-8 rows; empty tables keep the empty-input paths honest.
    const size_t num_rows = rng.NextBelow(9);
    for (size_t r = 0; r < num_rows; ++r) {
      Row row;
      for (const ColumnSpec& col : table.columns) {
        row.push_back(RandValue(col, &rng));
      }
      table.rows.push_back(std::move(row));
    }
    spec.tables.push_back(std::move(table));
  }
  return spec;
}

Status LoadCatalog(const CatalogSpec& spec, Database* db) {
  for (const TableSpec& t : spec.tables) {
    Schema schema;
    for (const ColumnSpec& c : t.columns) {
      schema.Add(Column{"", c.name, c.type});
    }
    RADB_RETURN_NOT_OK(db->CreateTable(t.name, schema).status());
    RADB_RETURN_NOT_OK(db->BulkInsert(t.name, t.rows));
  }
  return Status::OK();
}

std::string CatalogSpec::ToString() const {
  std::ostringstream os;
  os << "catalog seed=" << seed << "\n";
  for (const TableSpec& t : tables) {
    os << "  TABLE " << t.name << " (";
    for (size_t i = 0; i < t.columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << t.columns[i].name << " " << t.columns[i].type.ToString();
      if (t.columns[i].sparse_density > 0.0) {
        os << " /*sparse d=" << t.columns[i].sparse_density << "*/";
      }
    }
    os << ")  -- " << t.rows.size() << " rows\n";
    for (const Row& row : t.rows) {
      os << "    (";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) os << ", ";
        os << row[i].ToString();
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace radb::testing
