#ifndef RADB_TESTING_DIFFER_H_
#define RADB_TESTING_DIFFER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "testing/catalog_gen.h"
#include "testing/query_gen.h"

namespace radb::testing {

/// One engine configuration under differential test.
struct FuzzConfig {
  std::string name;
  Database::Config config;
};

/// The twelve standard configurations: {DP join search, greedy join
/// search, early projection off} x {1 thread, 8 threads} x {row
/// engine, vectorized batch engine}. All use 8 simulated workers so
/// shuffle/merge paths are always exercised; the row/batch axis
/// cross-checks the columnar kernels against the row engine on every
/// generated query (configs[0], dp-1t-row, is the baseline).
std::vector<FuzzConfig> StandardConfigs();

/// Canonicalizes a row set for order-insensitive comparison: rows are
/// sorted by a total order over values (kind rank first — NULL < BOOL
/// < INTEGER < DOUBLE < STRING < LABELED < VECTOR < MATRIX — then
/// value-wise within a kind, element-wise for LA types). Generated
/// data contains no NaNs, so the order is total.
RowSet Normalized(RowSet rows);

/// Cell-exact comparison of two normalized row sets (Value::Equals:
/// Int(1) != Double(1.0), NULLs equal, -0.0 == 0.0).
bool SameCells(const RowSet& a, const RowSet& b);

/// Outcome of running one query through every configuration.
struct DiffOutcome {
  bool diverged = false;
  /// Human-readable divergence report (empty when !diverged).
  std::string report;
};

/// Holds one Database per FuzzConfig, all loaded with the same
/// CatalogSpec, plus the reference evaluator. A query "passes" when
/// all engine configurations and the reference agree on either the
/// exact multiset of result cells or the error StatusCode.
class Differ {
 public:
  explicit Differ(const CatalogSpec& spec);

  /// Non-OK when catalog loading failed (generator bug; fatal).
  const Status& init_status() const { return init_status_; }

  /// Runs `sql` through the reference and every configuration and
  /// compares. Row order is normalized away unless the query's LIMIT
  /// rules make it semantically binding (see query_gen.h).
  ///
  /// Queries mentioning radb_ system tables are compared in SHAPE
  /// mode instead: their contents are volatile (each configuration's
  /// metric values and query history legitimately differ), so the
  /// oracle is "all configurations agree on the status code, and on
  /// success on the result schema (column count, names, type kinds)".
  /// The reference evaluator is skipped — it has no system tables.
  DiffOutcome RunOne(const std::string& sql);

  /// Cumulative optimizer.plans_considered per configuration, read
  /// from each Database's metrics registry.
  std::vector<uint64_t> PlansConsidered() const;

  size_t num_configs() const { return dbs_.size(); }

 private:
  /// The shape-mode comparison (see RunOne).
  DiffOutcome RunOneSystem(const std::string& sql);

  std::vector<FuzzConfig> configs_;
  std::vector<std::unique_ptr<Database>> dbs_;
  Status init_status_;
};

/// Outcome of a DDL-interleaved cache differential run.
struct CacheDiffOutcome {
  bool diverged = false;
  /// Human-readable divergence report (empty when !diverged).
  std::string report;
  /// Statements executed on EACH of the two databases.
  size_t statements_run = 0;
};

/// Differential test of the caching layer: two identically loaded
/// Databases — one with the plan and result caches enabled (with a
/// deliberately small result budget so eviction is exercised), one
/// with both disabled — run the same statement stream and must agree
/// on every outcome (status code, or cell-exact normalized rows).
///
/// The stream is built to stress stale-cache bugs specifically: a
/// small pool of hot queries is replayed so the cached side serves
/// plan and result hits, interleaved with INSERT churn, CREATE/DROP
/// cycles of a scratch table (re-creating the same name with
/// different contents — the classic cache-aliasing trap), and
/// PREPARE/EXECUTE/DEALLOCATE rounds; after every churn statement the
/// whole hot pool is replayed and compared.
CacheDiffOutcome RunCacheDiffRounds(const CatalogSpec& spec, uint64_t seed,
                                    size_t rounds);

/// Greedily minimizes a diverging (catalog, query) pair: drops
/// relations, conjuncts, select items, ORDER BY / LIMIT / DISTINCT /
/// GROUP BY clauses, table rows and unreferenced tables, keeping each
/// mutation only if the divergence persists. Returns the smallest
/// still-diverging pair.
struct Repro {
  CatalogSpec catalog;
  QuerySpec query;
};
Repro Shrink(CatalogSpec catalog, QuerySpec query);

/// Renders a standalone repro: the shrunk SQL, the catalog seed and
/// dump, and the per-configuration divergence report — everything
/// needed to paste into regression_seeds.h.
std::string ReproReport(const Repro& repro);

}  // namespace radb::testing

#endif  // RADB_TESTING_DIFFER_H_
