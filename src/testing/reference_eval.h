#ifndef RADB_TESTING_REFERENCE_EVAL_H_
#define RADB_TESTING_REFERENCE_EVAL_H_

#include <string>

#include "api/database.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace radb::testing {

/// Brute-force reference executor: parses and binds `sql` against
/// `catalog`, then evaluates the bound query with the simplest
/// possible strategy — a nested-loop cross product over the FROM list
/// with every WHERE conjunct applied as a post-filter, single-phase
/// hash aggregation, and no optimizer, no partitioning, no thread
/// pool. Deliberately shares only the leaf components with the real
/// engine (parser, binder, EvalExpr, the Aggregator registry, Value
/// semantics) so that plan-level bugs — join ordering, early
/// projection, shuffle/merge logic, two-phase aggregation — cannot
/// cancel out.
///
/// Row order of the result is unspecified; callers must compare in
/// sorted canonical form (see Differ::Normalized).
Result<ResultSet> ReferenceExecute(const std::string& sql,
                                   const Catalog& catalog);

}  // namespace radb::testing

#endif  // RADB_TESTING_REFERENCE_EVAL_H_
