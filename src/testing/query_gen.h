#ifndef RADB_TESTING_QUERY_GEN_H_
#define RADB_TESTING_QUERY_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "testing/catalog_gen.h"

namespace radb::testing {

/// A generated query kept as structured clause fragments rather than a
/// flat SQL string, so the shrinker can delete relations / conjuncts /
/// select items independently and re-render.
struct QuerySpec {
  struct FromItem {
    std::string table;
    std::string alias;  // r0..r4, single digit, so "rK." searches are exact
  };
  struct SelectItem {
    std::string text;
    /// True when the item's type supports Value::Compare (int, double,
    /// bool, string) — the precondition for using it as an ORDER BY
    /// key and hence for a deterministic LIMIT.
    bool orderable = false;
  };
  struct OrderKey {
    size_t item;  // index into select_items (rendered alias oN)
    bool desc;
  };

  std::vector<FromItem> from;
  std::vector<SelectItem> select_items;
  std::vector<std::string> where;     // conjunct texts, ANDed
  std::vector<std::string> group_by;  // group key texts
  bool distinct = false;
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;

  /// Renders "SELECT ... AS o0, ... FROM t AS r0, ... WHERE ...".
  std::string ToSql() const;
};

/// Generates one random query over the catalog: 1-5 relations
/// (repeats allowed, always aliased), equi-join conjuncts on INTEGER
/// columns, scalar and LA expressions, optional GROUP BY with the full
/// aggregate roster, optional DISTINCT / ORDER BY / LIMIT.
///
/// Determinism-by-construction rules (DESIGN.md §9): every generated
/// expression is total (no division, no partial builtins, indexes in
/// range), all data-driven arithmetic is exact in double precision,
/// ORDER BY uses only orderable select items, and LIMIT appears only
/// when ORDER BY covers every select item (so ties are full-row
/// duplicates and any stable order yields the same multiset prefix).
QuerySpec GenerateQuery(const CatalogSpec& catalog, Rng* rng);

/// Curated column subsets of the radb_ system tables the fuzzer may
/// query (rows are always empty — only the schemas matter). This is a
/// deliberate SUBSET of the live columns: the contract is that every
/// listed column binds with the listed type kind; the engine may add
/// columns freely without touching the fuzzer. systab_test pins each
/// schema against the live tables so drift is caught immediately.
std::vector<TableSpec> SystemTableFuzzSchemas();

/// Generates a query over one system table, optionally joined against
/// a user table from `catalog`. System-table contents are volatile
/// (metrics move between runs, each config's query history differs),
/// so the differ compares these in SHAPE mode — status codes and
/// result schemas across configurations, never cell values. Generated
/// shapes: plain column selections, COUNT(*)/MIN/MAX aggregates, and
/// INTEGER-column join predicates against the user table's `k` key.
QuerySpec GenerateSystemTableQuery(const CatalogSpec& catalog, Rng* rng);

}  // namespace radb::testing

#endif  // RADB_TESTING_QUERY_GEN_H_
