#ifndef RADB_TESTING_CATALOG_GEN_H_
#define RADB_TESTING_CATALOG_GEN_H_

#include <string>
#include <vector>

#include "api/database.h"
#include "common/result.h"
#include "common/rng.h"
#include "types/data_type.h"
#include "types/value.h"

namespace radb::testing {

/// One column of a generated table.
struct ColumnSpec {
  std::string name;
  DataType type;
  /// > 0 for MATRIX columns whose values are generated as sparse CSR
  /// tiles: each cell is nonzero with this probability. 0 means dense
  /// values (the default for every other column).
  double sparse_density = 0.0;
};

/// One generated table: schema plus fully materialized rows.
struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
  std::vector<Row> rows;
};

/// A reproducible random catalog. The spec is pure data — it can be
/// loaded into any number of Databases (one per fuzzer config) and
/// dumped as text for a standalone repro.
struct CatalogSpec {
  uint64_t seed = 0;
  std::vector<TableSpec> tables;

  /// Human-readable dump (schemas + row data) for divergence repros.
  std::string ToString() const;
};

/// Generates a random catalog: 2-5 tables, 1-5 columns each (always at
/// least one INTEGER column so joins and group keys are available),
/// 0-8 rows per table.
///
/// Data values are deliberately restricted so that every arithmetic
/// fold the engine can produce is *exact* in double precision
/// regardless of evaluation order: integers in [-3, 3], doubles on a
/// 0.25 grid, vector/matrix entries on a 0.5 grid with dimensions
/// 2-4. See DESIGN.md §9 (float exactness policy).
CatalogSpec GenerateCatalog(uint64_t seed);

/// Creates the spec's tables in `db` (CreateTable + BulkInsert). The
/// same spec loaded into several databases yields identical storage:
/// BulkInsert round-robins rows across partitions deterministically.
Status LoadCatalog(const CatalogSpec& spec, Database* db);

}  // namespace radb::testing

#endif  // RADB_TESTING_CATALOG_GEN_H_
