#ifndef RADB_TESTING_REGRESSION_SEEDS_H_
#define RADB_TESTING_REGRESSION_SEEDS_H_

#include <cstdint>

namespace radb::testing {

/// Pinned differential-test cases. This is the permanent home for
/// shrunk fuzzer repros: when `fuzz_queries` reports a divergence, it
/// prints a catalog seed + SQL pair — append it here (with a comment
/// naming the bug) and it will be replayed by fuzz_test and by every
/// `fuzz_queries` run forever after.
///
/// The catalog is regenerated from `catalog_seed` via
/// GenerateCatalog(), so entries stay valid as long as catalog_gen's
/// seeded generation stays stable; if the generator ever changes
/// shape, freeze the affected entries as explicit CREATE/INSERT SQL
/// in fuzz_test instead.
struct RegressionSeed {
  uint64_t catalog_seed;
  const char* sql;
};

inline constexpr RegressionSeed kRegressionSeeds[] = {
    // Hand-pinned sentinels for the three PR-3 bug fixes and the
    // trickiest executor paths (empty inputs, two-phase aggregation,
    // DISTINCT over mixed kinds). None of these diverged at pin time;
    // they guard against regressions in the paths the fixes touched.
    {1, "SELECT COUNT(*) AS o0 FROM t0 AS r0, t1 AS r1 WHERE r0.k = r1.k"},
    {1, "SELECT r0.k AS o0, COUNT(*) AS o1, SUM(r0.k + 2) AS o2 "
        "FROM t0 AS r0 GROUP BY r0.k"},
    {2, "SELECT DISTINCT r0.k AS o0 FROM t0 AS r0, t1 AS r1"},
    {3, "SELECT SUM(r0.k) AS o0, AVG(r0.k + 0.0) AS o1 FROM t0 AS r0 "
        "WHERE r0.k > 100"},  // empty input: one row, NULL sum
    {4, "SELECT VECTORIZE(label_scalar(r0.k + 0.0, r0.k + 3)) AS o0 "
        "FROM t0 AS r0"},
    {5, "SELECT MIN(r0.k) AS o0, MAX(r0.k) AS o1 FROM t0 AS r0 "
        "GROUP BY r0.k = 0"},
};

inline constexpr size_t kNumRegressionSeeds =
    sizeof(kRegressionSeeds) / sizeof(kRegressionSeeds[0]);

}  // namespace radb::testing

#endif  // RADB_TESTING_REGRESSION_SEEDS_H_
