#include "testing/reference_eval.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "binder/binder.h"
#include "exec/expr_eval.h"
#include "exec/row_key.h"
#include "parser/parser.h"

namespace radb::testing {

namespace {

/// slot -> position map for a list of output columns.
std::map<size_t, size_t> LayoutOf(const std::vector<SlotInfo>& cols) {
  std::map<size_t, size_t> layout;
  for (size_t i = 0; i < cols.size(); ++i) layout[cols[i].slot] = i;
  return layout;
}

/// Evaluates `expr` (still in slot form) against `row` laid out by
/// `layout`.
Result<Value> EvalSlots(const BoundExpr& expr,
                        const std::map<size_t, size_t>& layout,
                        const Row& row) {
  RADB_ASSIGN_OR_RETURN(BoundExprPtr positional,
                        RewriteToPositions(expr, layout));
  return EvalExpr(*positional, row);
}

/// Evaluates a bound query tree to a flat row set shaped like
/// `q.output` (hidden sort columns included; the caller trims).
Result<RowSet> EvalBoundQuery(const BoundQuery& q);

/// Materializes one FROM-list relation: all rows of the base table
/// (partitions concatenated in index order), or the recursively
/// evaluated subquery. Column i of each row corresponds to
/// rel.columns[i].
Result<RowSet> MaterializeRelation(const BoundRelation& rel) {
  if (rel.table != nullptr) {
    return rel.table->Gather();
  }
  RowSet rows;
  RADB_ASSIGN_OR_RETURN(rows, EvalBoundQuery(*rel.subquery));
  // The enclosing query sees the subquery's leading visible columns
  // (rel.columns mirrors them, possibly renamed).
  for (Row& r : rows) {
    if (r.size() > rel.columns.size()) r.resize(rel.columns.size());
  }
  return rows;
}

Result<RowSet> EvalBoundQuery(const BoundQuery& q) {
  // ---- FROM: nested-loop cross product, conjuncts as post-filter. --
  std::map<size_t, size_t> layout;
  size_t width = 0;
  for (const BoundRelation& rel : q.relations) {
    for (size_t i = 0; i < rel.columns.size(); ++i) {
      layout[rel.columns[i].slot] = width + i;
    }
    width += rel.columns.size();
  }

  std::vector<RowSet> inputs;
  for (const BoundRelation& rel : q.relations) {
    RADB_ASSIGN_OR_RETURN(RowSet rows, MaterializeRelation(rel));
    inputs.push_back(std::move(rows));
  }

  std::vector<BoundExprPtr> conjuncts;
  for (const BoundExprPtr& c : q.conjuncts) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr e, RewriteToPositions(*c, layout));
    conjuncts.push_back(std::move(e));
  }

  RowSet joined;
  {
    Row current(width);
    // Recursive cartesian enumeration, relation 0 outermost.
    std::vector<size_t> offsets(inputs.size());
    size_t off = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
      offsets[i] = off;
      off += q.relations[i].columns.size();
    }
    std::function<Status(size_t)> recurse = [&](size_t depth) -> Status {
      if (depth == inputs.size()) {
        for (const BoundExprPtr& c : conjuncts) {
          RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, current));
          if (v.is_null() || !v.bool_value()) return Status::OK();
        }
        joined.push_back(current);
        return Status::OK();
      }
      for (const Row& r : inputs[depth]) {
        for (size_t i = 0; i < r.size(); ++i) current[offsets[depth] + i] = r[i];
        RADB_RETURN_NOT_OK(recurse(depth + 1));
      }
      return Status::OK();
    };
    RADB_RETURN_NOT_OK(recurse(0));
  }

  // ---- Aggregation (single-phase; Update only, never Merge). ----
  RowSet current_rows;
  std::map<size_t, size_t> current_layout;
  if (q.has_aggregate) {
    struct GroupState {
      Row key;
      std::vector<std::unique_ptr<Aggregator>> aggs;
    };
    std::unordered_map<KeyRow, std::unique_ptr<GroupState>, KeyRowHash>
        groups;
    std::vector<KeyRow> group_order;  // first-seen order (cosmetic)

    std::vector<BoundExprPtr> group_exprs;
    for (const BoundExprPtr& g : q.group_exprs) {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr e, RewriteToPositions(*g, layout));
      group_exprs.push_back(std::move(e));
    }
    std::vector<BoundExprPtr> agg_args;
    for (const AggCall& a : q.aggs) {
      if (a.is_count_star) {
        agg_args.push_back(MakeBoundLiteral(Value::Int(1)));
      } else {
        RADB_ASSIGN_OR_RETURN(BoundExprPtr e,
                              RewriteToPositions(*a.arg, layout));
        agg_args.push_back(std::move(e));
      }
    }

    for (const Row& row : joined) {
      Row key_values;
      for (const BoundExprPtr& g : group_exprs) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
        key_values.push_back(std::move(v));
      }
      KeyRow key = KeyRow::Of(std::move(key_values));
      auto it = groups.find(key);
      if (it == groups.end()) {
        auto state = std::make_unique<GroupState>();
        state->key = key.values;
        for (const AggCall& a : q.aggs) state->aggs.push_back(a.fn->make());
        group_order.push_back(key);
        it = groups.emplace(std::move(key), std::move(state)).first;
      }
      for (size_t i = 0; i < agg_args.size(); ++i) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg_args[i], row));
        RADB_RETURN_NOT_OK(it->second->aggs[i]->Update(v));
      }
    }

    for (const KeyRow& key : group_order) {
      GroupState& state = *groups.at(key);
      Row out = state.key;
      for (const auto& agg : state.aggs) {
        RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
        out.push_back(std::move(v));
      }
      current_rows.push_back(std::move(out));
    }
    // SQL scalar-aggregate semantics: zero input rows still produce
    // one output row (COUNT = 0, SUM = NULL).
    if (group_exprs.empty() && current_rows.empty()) {
      Row out;
      for (const AggCall& a : q.aggs) {
        auto agg = a.fn->make();
        RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
        out.push_back(std::move(v));
      }
      current_rows.push_back(std::move(out));
    }

    std::vector<SlotInfo> agg_cols = q.group_outputs;
    for (const AggCall& a : q.aggs) {
      agg_cols.push_back(SlotInfo{a.out_slot, a.name, a.result_type});
    }
    current_layout = LayoutOf(agg_cols);

    if (q.having != nullptr) {
      RowSet kept;
      for (Row& row : current_rows) {
        RADB_ASSIGN_OR_RETURN(Value v,
                              EvalSlots(*q.having, current_layout, row));
        if (!v.is_null() && v.bool_value()) kept.push_back(std::move(row));
      }
      current_rows = std::move(kept);
    }
  } else {
    current_rows = std::move(joined);
    current_layout = layout;
  }

  // ---- Projection to the declared output. ----
  std::vector<BoundExprPtr> select_exprs;
  for (const BoundExprPtr& e : q.select_exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr p,
                          RewriteToPositions(*e, current_layout));
    select_exprs.push_back(std::move(p));
  }
  RowSet projected;
  for (const Row& row : current_rows) {
    Row out;
    for (const BoundExprPtr& e : select_exprs) {
      RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
      out.push_back(std::move(v));
    }
    projected.push_back(std::move(out));
  }

  // ---- DISTINCT (first duplicate wins, like the executor). ----
  if (q.distinct) {
    std::unordered_map<KeyRow, bool, KeyRowHash> seen;
    RowSet unique;
    for (Row& row : projected) {
      KeyRow key = KeyRow::Of(row);
      if (seen.emplace(std::move(key), true).second) {
        unique.push_back(std::move(row));
      }
    }
    projected = std::move(unique);
  }

  // ---- ORDER BY over the output columns. ----
  if (!q.order_by.empty()) {
    const std::map<size_t, size_t> out_layout = LayoutOf(q.output);
    std::vector<std::pair<BoundExprPtr, bool>> keys;
    for (const auto& [e, desc] : q.order_by) {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr p,
                            RewriteToPositions(*e, out_layout));
      keys.emplace_back(std::move(p), desc);
    }
    Status sort_status = Status::OK();
    std::stable_sort(projected.begin(), projected.end(),
                     [&](const Row& a, const Row& b) {
                       if (!sort_status.ok()) return false;
                       for (const auto& [e, desc] : keys) {
                         auto va = EvalExpr(*e, a);
                         auto vb = EvalExpr(*e, b);
                         if (!va.ok() || !vb.ok()) {
                           sort_status =
                               va.ok() ? vb.status() : va.status();
                           return false;
                         }
                         auto c = va->Compare(*vb);
                         if (!c.ok()) {
                           sort_status = c.status();
                           return false;
                         }
                         if (*c != 0) return desc ? *c > 0 : *c < 0;
                       }
                       return false;
                     });
    RADB_RETURN_NOT_OK(sort_status);
  }

  if (q.limit.has_value()) {
    const size_t n =
        static_cast<size_t>(std::max<int64_t>(0, *q.limit));
    if (projected.size() > n) projected.resize(n);
  }
  return projected;
}

}  // namespace

Result<ResultSet> ReferenceExecute(const std::string& sql,
                                   const Catalog& catalog) {
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<parser::SelectStmt> stmt,
                        parser::ParseSelect(sql));
  Binder binder(catalog);
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                        binder.Bind(*stmt));

  const size_t visible = bound->num_visible_outputs == 0
                             ? bound->output.size()
                             : bound->num_visible_outputs;

  RADB_ASSIGN_OR_RETURN(RowSet rows, EvalBoundQuery(*bound));

  ResultSet rs;
  rs.columns = bound->output;
  rs.columns.resize(std::min(visible, rs.columns.size()));
  for (Row& row : rows) {
    if (row.size() > rs.columns.size()) row.resize(rs.columns.size());
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

}  // namespace radb::testing
