#ifndef RADB_TESTING_CONCURRENT_DIFFER_H_
#define RADB_TESTING_CONCURRENT_DIFFER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "testing/catalog_gen.h"

namespace radb::testing {

/// Outcome of one concurrent differential round.
struct ConcurrentDiffOutcome {
  bool diverged = false;
  size_t queries_run = 0;
  /// Human-readable divergence report (empty when !diverged).
  std::string report;
};

/// Multi-session differential round: loads `spec` into one Database,
/// runs every query in `sqls` serially to collect the oracle (result
/// fingerprint or error StatusCode per query), then replays the same
/// queries across `num_sessions` concurrent service sessions
/// (round-robin assignment) and requires each concurrent result to be
/// BIT-IDENTICAL to its serial oracle — same cells in the same order,
/// or the same error code. This is the determinism contract extended
/// to the query service: admission, the catalog latch, and fair
/// scheduling may change timing only, never results.
ConcurrentDiffOutcome RunConcurrentRound(const CatalogSpec& spec,
                                         const std::vector<std::string>& sqls,
                                         size_t num_sessions);

}  // namespace radb::testing

#endif  // RADB_TESTING_CONCURRENT_DIFFER_H_
