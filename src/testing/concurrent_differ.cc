#include "testing/concurrent_differ.h"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

#include "api/database.h"
#include "service/session.h"
#include "storage/serialize.h"

namespace radb::testing {

namespace {

/// Per-query oracle: either a binary fingerprint of the result rows
/// (exact order, exact FP bits) or the error code.
struct Oracle {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string fingerprint;
};

std::string Fingerprint(const ResultSet& rs) {
  std::ostringstream os(std::ios::binary);
  for (const Row& row : rs.rows) WriteRowBinary(os, row);
  return os.str();
}

Oracle OracleFor(const Result<ScriptResult>& result) {
  Oracle o;
  if (result.ok()) {
    o.ok = true;
    if (result->has_results()) o.fingerprint = Fingerprint(result->last());
  } else {
    o.code = result.status().code();
  }
  return o;
}

Database::Config ServiceFuzzConfig() {
  Database::Config config;
  config.num_workers = 8;
  config.num_threads = 8;
  return config;
}

}  // namespace

ConcurrentDiffOutcome RunConcurrentRound(const CatalogSpec& spec,
                                         const std::vector<std::string>& sqls,
                                         size_t num_sessions) {
  ConcurrentDiffOutcome outcome;
  if (num_sessions == 0) num_sessions = 1;

  Database db(ServiceFuzzConfig());
  if (Status s = LoadCatalog(spec, &db); !s.ok()) {
    outcome.diverged = true;
    outcome.report = "concurrent round: catalog load failed: " + s.ToString();
    return outcome;
  }

  // Serial oracle, straight through the Database.
  std::vector<Oracle> oracles;
  oracles.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    oracles.push_back(OracleFor(db.Execute(sql)));
  }

  // Concurrent replay: session s takes queries s, s+N, s+2N, ...
  service::SessionManager manager(&db);
  std::mutex report_mu;
  std::ostringstream report;
  std::atomic<size_t> divergences{0};
  std::vector<std::thread> threads;
  for (size_t s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = manager.CreateSession();
      for (size_t q = s; q < sqls.size(); q += num_sessions) {
        const Oracle got = OracleFor(session->Execute(sqls[q]));
        const Oracle& want = oracles[q];
        if (got.ok == want.ok && got.code == want.code &&
            got.fingerprint == want.fingerprint) {
          continue;
        }
        divergences.fetch_add(1);
        std::lock_guard<std::mutex> lock(report_mu);
        report << "concurrent divergence (session " << s << ", "
               << num_sessions << " sessions):\n  " << sqls[q]
               << "\n  serial:     "
               << (want.ok ? "ok, " + std::to_string(want.fingerprint.size()) +
                                 " result bytes"
                           : std::string(StatusCodeName(want.code)))
               << "\n  concurrent: "
               << (got.ok ? "ok, " + std::to_string(got.fingerprint.size()) +
                                " result bytes" +
                                (got.fingerprint != want.fingerprint &&
                                         got.ok == want.ok
                                     ? " (bits differ)"
                                     : "")
                          : std::string(StatusCodeName(got.code)))
               << "\n";
      }
    });
  }
  for (auto& t : threads) t.join();

  outcome.queries_run = sqls.size();
  if (divergences.load() > 0) {
    outcome.diverged = true;
    outcome.report = report.str();
  }
  return outcome;
}

}  // namespace radb::testing
