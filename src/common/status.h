#ifndef RADB_COMMON_STATUS_H_
#define RADB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace radb {

/// Error categories used across the system. The taxonomy follows the
/// phases of query processing plus generic runtime failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kParseError,        // SQL text could not be parsed
  kBindError,         // name resolution / semantic analysis failed
  kTypeError,         // type checking or dimension unification failed
  kCatalogError,      // missing/duplicate table, view, or function
  kExecutionError,    // runtime failure while evaluating a plan
  kDimensionMismatch, // runtime linear-algebra shape mismatch
  kNumericError,      // singular matrix, overflow, ...
  kResourceExhausted, // per-query memory budget exceeded (unspillable)
  kCancelled,         // query cancelled via CancellationToken
  kDeadlineExceeded,  // QueryOptions::deadline_ms elapsed
  kNotImplemented,
  kInternal,
};

/// Returns a short human-readable name for a code ("TypeError", ...).
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object: cheap to move, carries a code and
/// a message. All fallible paths in this codebase return Status or
/// Result<T>; the library never throws.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status CatalogError(std::string msg) {
    return Status(StatusCode::kCatalogError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status DimensionMismatch(std::string msg) {
    return Status(StatusCode::kDimensionMismatch, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "TypeError: cannot unify dimension b" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace radb

/// Propagates a non-OK Status from the current function.
#define RADB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::radb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // RADB_COMMON_STATUS_H_
