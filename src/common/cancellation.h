#ifndef RADB_COMMON_CANCELLATION_H_
#define RADB_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace radb {

/// Cooperative cancellation handle shared between a query's submitter
/// and its execution pipeline. The executor and the LA kernels poll
/// `Check()` at row-batch / tile granularity; callers flip the flag
/// from any thread via `Cancel()` or arm a wall-clock deadline before
/// the query starts. Header-only so exec/, la/, and mem/ can use it
/// without a new library dependency.
///
/// Thread-safety: all members are safe to call concurrently. The
/// token is usually held by std::shared_ptr because the submitting
/// thread (Session::Cancel) and the executing thread race on
/// lifetime.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Requests cancellation. Idempotent; visible to all threads that
  /// subsequently call Check()/cancelled().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms a deadline `deadline_ms` milliseconds from now. A query's
  /// deadline covers queue wait too, so this is called at submission
  /// time — the token can expire while the query is still waiting in
  /// admission. Passing 0 disarms.
  void ArmDeadlineMs(uint64_t deadline_ms) {
    if (deadline_ms == 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    deadline_ns_.store(now_ns + static_cast<int64_t>(deadline_ms) * 1000000,
                       std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Steady-clock deadline in nanoseconds since epoch, or 0 if none.
  /// Admission uses this to bound its condition-variable wait.
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  bool deadline_expired() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           d;
  }

  /// OK while the query may keep running; Cancelled after Cancel();
  /// DeadlineExceeded once the armed deadline passes. Cancellation
  /// takes priority over the deadline so a Cancel() near the deadline
  /// reports deterministically.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (deadline_expired())
      return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

}  // namespace radb

#endif  // RADB_COMMON_CANCELLATION_H_
