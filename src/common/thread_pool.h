#ifndef RADB_COMMON_THREAD_POOL_H_
#define RADB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radb {

/// Fixed-size thread pool driving fork/join `ParallelFor` regions.
///
/// One pool is owned per Database (sized by Config::num_threads) and
/// shared by the executor's per-worker partition loops and, through
/// the GlobalPool() hook, by the dense LA kernels. There is no work
/// stealing and no general task queue: a region hands every pool
/// thread the same body, indices are claimed from one atomic cursor,
/// and the caller blocks (and participates) until all n indices ran.
///
/// Sequential guarantees, relied on for determinism:
///  - a pool built with num_threads <= 1 spawns no threads and runs
///    every region inline on the caller;
///  - a region started from inside a pool worker (nested parallelism,
///    e.g. an LA kernel invoked from a parallel executor loop) runs
///    inline on that worker instead of deadlocking on busy threads;
///  - bodies must write only disjoint state per index, which is how
///    the executor keeps per-worker Dist outputs bit-identical at any
///    thread count.
class ThreadPool {
 public:
  /// `num_threads` = 0 picks one thread per hardware core.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) and blocks until all are
  /// done. The calling thread participates. Concurrent ParallelFor
  /// calls from different threads serialize on the region lock.
  /// n must fit in 32 bits (indices share an atomic with the region
  /// generation).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Splits [0, total) into contiguous ranges (several per thread, so
  /// dynamic claiming balances uneven work) and runs body(begin, end)
  /// for each. Used by the LA kernels for row-band parallelism; each
  /// output row is produced entirely by one range, so results are
  /// identical to the sequential loop.
  void ParallelRanges(size_t total,
                      const std::function<void(size_t, size_t)>& body);

  /// True when the calling thread is one of this process's pool
  /// workers (any pool) — the signal that a region must run inline.
  static bool InWorker();

  /// hardware_concurrency, clamped to >= 1.
  static size_t HardwareThreads();

 private:
  static constexpr size_t kNoIndex = static_cast<size_t>(-1);

  void WorkerLoop();
  void RunRegion(size_t n, const std::function<void(size_t)>& body);
  /// Claims the next index of region `generation`, or kNoIndex when
  /// the region is exhausted or no longer current.
  size_t ClaimIndex(uint64_t generation, size_t n);

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex region_mu_;  // serializes whole ParallelFor regions

  std::mutex mu_;  // guards the per-region fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t job_size_ = 0;
  const std::function<void(size_t)>* job_ = nullptr;
  /// (generation low bits << 32) | next unclaimed index.
  std::atomic<uint64_t> cursor_{0};
  std::atomic<size_t> completed_{0};
  bool shutdown_ = false;
};

/// Process-global pool hook for call sites with no natural path to a
/// Database (the LA kernels), mirroring obs::GlobalMetrics(). Null
/// means sequential execution — callers must test. A Database installs
/// its pool here for the duration of its lifetime.
ThreadPool* GlobalPool();
/// Installs (or, with nullptr, uninstalls) the global pool; returns
/// the previous one.
ThreadPool* SetGlobalPool(ThreadPool* pool);

}  // namespace radb

#endif  // RADB_COMMON_THREAD_POOL_H_
