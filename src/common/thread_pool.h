#ifndef RADB_COMMON_THREAD_POOL_H_
#define RADB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radb {

/// Ambient per-thread task tag (usually a query id). Regions started
/// without an explicit tag inherit it, so LA kernels reached through
/// GlobalPool() are attributed to the query that called them without
/// plumbing a tag through every signature.
uint64_t CurrentTaskTag();

/// RAII setter for the ambient task tag; restores the previous tag on
/// destruction. The executor opens one at the top of each query.
class ScopedTaskTag {
 public:
  explicit ScopedTaskTag(uint64_t tag);
  ~ScopedTaskTag();
  ScopedTaskTag(const ScopedTaskTag&) = delete;
  ScopedTaskTag& operator=(const ScopedTaskTag&) = delete;

 private:
  uint64_t previous_;
};

/// Fixed-size thread pool driving fork/join `ParallelFor` regions.
///
/// One pool is owned per Database (sized by Config::num_threads) and
/// shared by the executor's per-worker partition loops and, through
/// the GlobalPool() hook, by the dense LA kernels. There is no work
/// stealing and no general task queue: a region hands every claimant
/// the same body and indices are claimed one at a time under the pool
/// lock (bodies are chunky — a partition, a tile product, a row band —
/// so per-claim locking is noise).
///
/// Concurrency model: many regions may be live at once, one per
/// submitting thread. Pool workers multiplex across live regions and
/// pick, at every claim, a region whose *tag* has gone longest without
/// service — per-query fair scheduling, so a heavy tiled multiply
/// (many long regions under one tag) cannot starve a short scan that
/// arrives under another tag. The submitting caller participates but
/// claims only from its own region, which guarantees every region
/// makes progress even when all workers are busy elsewhere.
///
/// Sequential guarantees, relied on for determinism:
///  - a pool built with num_threads <= 1 spawns no threads and runs
///    every region inline on the caller;
///  - a region started from inside a pool worker (nested parallelism,
///    e.g. an LA kernel invoked from a parallel executor loop) runs
///    inline on that worker instead of deadlocking on busy threads;
///  - bodies must write only disjoint state per index, which is how
///    the executor keeps per-worker Dist outputs bit-identical at any
///    thread count.
class ThreadPool {
 public:
  /// `num_threads` = 0 picks one thread per hardware core.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) and blocks until all are
  /// done. The calling thread participates. Concurrent ParallelFor
  /// calls from different threads proceed as concurrent regions and
  /// share the workers fairly by tag. `tag` = 0 inherits the ambient
  /// CurrentTaskTag().
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   uint64_t tag = 0);

  /// Splits [0, total) into contiguous ranges (several per thread, so
  /// dynamic claiming balances uneven work) and runs body(begin, end)
  /// for each. Used by the LA kernels for row-band parallelism; each
  /// output row is produced entirely by one range, so results are
  /// identical to the sequential loop.
  void ParallelRanges(size_t total,
                      const std::function<void(size_t, size_t)>& body,
                      uint64_t tag = 0);

  /// True when the calling thread is one of this process's pool
  /// workers (any pool) — the signal that a region must run inline.
  static bool InWorker();

  /// Cumulative per-thread accounting: bodies run, time spent running
  /// them, time spent blocked waiting for work.
  struct WorkerStats {
    uint64_t tasks = 0;
    double busy_seconds = 0.0;
    double wait_seconds = 0.0;
  };
  /// A live region as seen at snapshot time; queue_depth = n - next is
  /// the number of still-unclaimed indices.
  struct RegionStats {
    uint64_t id = 0;
    uint64_t tag = 0;
    size_t n = 0;
    size_t next = 0;
    size_t completed = 0;
    double age_seconds = 0.0;
  };
  /// Point-in-time pool snapshot (the radb_threads system table).
  struct PoolStats {
    size_t num_threads = 1;
    std::vector<WorkerStats> workers;  // one per spawned worker thread
    WorkerStats caller;  // aggregate over submitting threads' own claims
    std::vector<RegionStats> regions;  // live regions, oldest first
    uint64_t regions_started = 0;
    uint64_t regions_completed = 0;
  };
  /// Thread-safe; takes the pool lock briefly, never blocks on work.
  PoolStats Stats() const;

  /// Observer called once per retired region (outside the pool lock,
  /// on the submitting thread) with the region's startup wait — time
  /// from submission to first index claim — and its total run time.
  /// Set once, before concurrent use; the Database installs one that
  /// feeds the pool.region_* wait histograms.
  void SetRegionObserver(
      std::function<void(double wait_seconds, double run_seconds)> observer);

  /// hardware_concurrency, clamped to >= 1.
  static size_t HardwareThreads();

 private:
  /// A live fork/join region. Stack-allocated by RunRegion; the entry
  /// in regions_ is removed (under mu_) before RunRegion returns, and
  /// workers never touch a Region pointer after bumping `completed`
  /// past the claim they served.
  struct Region {
    uint64_t id = 0;
    uint64_t tag = 0;
    size_t n = 0;
    const std::function<void(size_t)>* body = nullptr;
    size_t next = 0;       // next unclaimed index
    size_t completed = 0;  // bodies that have returned
    std::chrono::steady_clock::time_point created;
    /// Set (under mu_) when the first index is claimed; the gap from
    /// `created` is the region's queue wait.
    std::chrono::steady_clock::time_point first_claim;
    bool claimed = false;
  };

  void WorkerLoop(size_t worker_index);
  void RunRegion(size_t n, const std::function<void(size_t)>& body,
                 uint64_t tag);
  /// Under mu_: true if any live region still has unclaimed indices.
  bool HasClaimableLocked() const;
  /// Under mu_: fair pick — least-recently-served tag, oldest region
  /// breaking ties. Returns nullptr when nothing is claimable.
  Region* PickRegionLocked();
  /// Under mu_: records that `tag` was just served.
  void TouchTagLocked(uint64_t tag);

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  // guards regions_, tag bookkeeping, shutdown_
  std::condition_variable work_cv_;  // workers: a region gained work
  std::condition_variable done_cv_;  // callers: some region completed
  std::vector<Region*> regions_;
  /// tag -> logical tick of its most recent index claim. Entries are
  /// erased when the last live region with the tag retires.
  std::vector<std::pair<uint64_t, uint64_t>> tag_service_;
  uint64_t service_clock_ = 0;
  uint64_t region_counter_ = 0;
  uint64_t regions_completed_ = 0;
  bool shutdown_ = false;
  /// Per-worker accounting, indexed like workers_; updated only under
  /// mu_ at points where the loops already hold it.
  std::vector<WorkerStats> worker_stats_;
  WorkerStats caller_stats_;
  std::function<void(double, double)> region_observer_;
};

/// Process-global pool hook for call sites with no natural path to a
/// Database (the LA kernels), mirroring obs::GlobalMetrics(). Null
/// means sequential execution — callers must test. A Database installs
/// its pool here for the duration of its lifetime.
ThreadPool* GlobalPool();
/// Installs (or, with nullptr, uninstalls) the global pool; returns
/// the previous one. Prefer the scoped Install/Uninstall pair below —
/// raw save/restore breaks when two installers are destroyed out of
/// LIFO order (the restorer can resurrect a freed pool).
ThreadPool* SetGlobalPool(ThreadPool* pool);

/// Scoped installation: pushes `pool` onto a registration stack and
/// makes it current. UninstallGlobalPool removes `pool` from anywhere
/// in the stack (not just the top), then the newest surviving entry
/// becomes current again — so two Databases (or a Database plus a
/// temporary per-query override pool) may come and go in any order
/// without one resurrecting the other's freed pool. No-ops on nullptr.
void InstallGlobalPool(ThreadPool* pool);
void UninstallGlobalPool(ThreadPool* pool);

}  // namespace radb

#endif  // RADB_COMMON_THREAD_POOL_H_
