#include "common/thread_pool.h"

#include <algorithm>

namespace radb {

namespace {

/// Set while a thread is executing region bodies (worker thread or
/// participating caller inside another pool's region); nested regions
/// started under it run inline.
thread_local bool tls_in_worker = false;

/// Ambient task tag; inherited by regions started without an explicit
/// tag and re-established on worker threads while they run a region's
/// bodies, so nested GlobalPool() use stays attributed to the query.
thread_local uint64_t tls_task_tag = 0;

}  // namespace

uint64_t CurrentTaskTag() { return tls_task_tag; }

ScopedTaskTag::ScopedTaskTag(uint64_t tag) : previous_(tls_task_tag) {
  tls_task_tag = tag;
}

ScopedTaskTag::~ScopedTaskTag() { tls_task_tag = previous_; }

size_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  // The caller participates in every region, so only n-1 extra
  // threads are needed; a 1-thread pool is purely inline.
  workers_.reserve(num_threads_ - 1);
  worker_stats_.resize(num_threads_ == 0 ? 0 : num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::HasClaimableLocked() const {
  for (const Region* r : regions_) {
    if (r->next < r->n) return true;
  }
  return false;
}

ThreadPool::Region* ThreadPool::PickRegionLocked() {
  Region* best = nullptr;
  uint64_t best_service = 0;
  for (Region* r : regions_) {
    if (r->next >= r->n) continue;
    uint64_t service = 0;
    for (const auto& [tag, tick] : tag_service_) {
      if (tag == r->tag) {
        service = tick;
        break;
      }
    }
    // Least-recently-served tag wins; within a tag, the oldest region
    // (smallest id) so a query's own regions finish in FIFO order.
    if (best == nullptr || service < best_service ||
        (service == best_service && r->id < best->id)) {
      best = r;
      best_service = service;
    }
  }
  return best;
}

void ThreadPool::TouchTagLocked(uint64_t tag) {
  ++service_clock_;
  for (auto& [t, tick] : tag_service_) {
    if (t == tag) {
      tick = service_clock_;
      return;
    }
  }
  tag_service_.emplace_back(tag, service_clock_);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  using Clock = std::chrono::steady_clock;
  WorkerStats& stats = worker_stats_[worker_index];
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto wait_start = Clock::now();
    work_cv_.wait(lock, [&] { return shutdown_ || HasClaimableLocked(); });
    stats.wait_seconds +=
        std::chrono::duration<double>(Clock::now() - wait_start).count();
    if (shutdown_) return;
    Region* r = PickRegionLocked();
    if (r == nullptr) continue;
    const size_t i = r->next++;
    if (!r->claimed) {
      r->claimed = true;
      r->first_claim = Clock::now();
    }
    const uint64_t tag = r->tag;
    const std::function<void(size_t)>* body = r->body;
    TouchTagLocked(tag);
    lock.unlock();
    tls_in_worker = true;
    tls_task_tag = tag;
    const auto body_start = Clock::now();
    (*body)(i);
    const double body_seconds =
        std::chrono::duration<double>(Clock::now() - body_start).count();
    tls_task_tag = 0;
    tls_in_worker = false;
    lock.lock();
    ++stats.tasks;
    stats.busy_seconds += body_seconds;
    // After this increment the submitting caller may retire the
    // region, so `r` must not be dereferenced again once we notify.
    if (++r->completed == r->n) done_cv_.notify_all();
  }
}

void ThreadPool::RunRegion(size_t n, const std::function<void(size_t)>& body,
                           uint64_t tag) {
  using Clock = std::chrono::steady_clock;
  Region region;
  region.tag = tag;
  region.n = n;
  region.body = &body;
  region.created = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    region.id = ++region_counter_;
    regions_.push_back(&region);
  }
  work_cv_.notify_all();
  // The submitting thread claims indices alongside the workers, but
  // only from its own region: it never blocks on another query's
  // bodies, so every region is guaranteed forward progress even when
  // all pool workers are busy elsewhere.
  tls_in_worker = true;
  const uint64_t previous_tag = tls_task_tag;
  tls_task_tag = tag;
  std::unique_lock<std::mutex> lock(mu_);
  while (region.next < region.n) {
    const size_t i = region.next++;
    if (!region.claimed) {
      region.claimed = true;
      region.first_claim = Clock::now();
    }
    TouchTagLocked(tag);
    lock.unlock();
    const auto body_start = Clock::now();
    body(i);
    const double body_seconds =
        std::chrono::duration<double>(Clock::now() - body_start).count();
    lock.lock();
    ++caller_stats_.tasks;
    caller_stats_.busy_seconds += body_seconds;
    ++region.completed;
  }
  done_cv_.wait(lock, [&] { return region.completed == region.n; });
  ++regions_completed_;
  const std::function<void(double, double)> observer = region_observer_;
  regions_.erase(std::find(regions_.begin(), regions_.end(), &region));
  // Drop the tag's service entry once its last live region retires so
  // a long-lived service does not accumulate one slot per query ever
  // run.
  bool tag_live = false;
  for (const Region* r : regions_) {
    if (r->tag == tag) {
      tag_live = true;
      break;
    }
  }
  if (!tag_live) {
    for (auto it = tag_service_.begin(); it != tag_service_.end(); ++it) {
      if (it->first == tag) {
        tag_service_.erase(it);
        break;
      }
    }
  }
  lock.unlock();
  tls_task_tag = previous_tag;
  tls_in_worker = false;
  if (observer) {
    const auto end = Clock::now();
    const auto first = region.claimed ? region.first_claim : end;
    observer(std::chrono::duration<double>(first - region.created).count(),
             std::chrono::duration<double>(end - region.created).count());
  }
}

ThreadPool::PoolStats ThreadPool::Stats() const {
  using Clock = std::chrono::steady_clock;
  const auto now = Clock::now();
  PoolStats out;
  out.num_threads = num_threads_;
  std::lock_guard<std::mutex> lock(mu_);
  out.workers = worker_stats_;
  out.caller = caller_stats_;
  out.regions_started = region_counter_;
  out.regions_completed = regions_completed_;
  out.regions.reserve(regions_.size());
  for (const Region* r : regions_) {
    RegionStats s;
    s.id = r->id;
    s.tag = r->tag;
    s.n = r->n;
    s.next = r->next;
    s.completed = r->completed;
    s.age_seconds = std::chrono::duration<double>(now - r->created).count();
    out.regions.push_back(s);
  }
  return out;
}

void ThreadPool::SetRegionObserver(
    std::function<void(double wait_seconds, double run_seconds)> observer) {
  std::lock_guard<std::mutex> lock(mu_);
  region_observer_ = std::move(observer);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             uint64_t tag) {
  if (n == 0) return;
  if (n == 1 || num_threads_ <= 1 || tls_in_worker) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  RunRegion(n, body, tag == 0 ? tls_task_tag : tag);
}

void ThreadPool::ParallelRanges(size_t total,
                                const std::function<void(size_t, size_t)>& body,
                                uint64_t tag) {
  if (total == 0) return;
  if (num_threads_ <= 1 || tls_in_worker) {
    body(0, total);
    return;
  }
  // A few chunks per thread so dynamic index claiming evens out
  // ranges with unequal cost (e.g. the triangular TSMM bands).
  const size_t target_chunks = num_threads_ * 4;
  const size_t chunk =
      std::max<size_t>(1, (total + target_chunks - 1) / target_chunks);
  const size_t n_chunks = (total + chunk - 1) / chunk;
  ParallelFor(
      n_chunks,
      [&](size_t c) {
        const size_t begin = c * chunk;
        body(begin, std::min(begin + chunk, total));
      },
      tag);
}

namespace {
std::atomic<ThreadPool*> g_pool{nullptr};
// Registration stack behind Install/UninstallGlobalPool; mirrors
// obs::InstallGlobalMetrics. The atomic stays the lock-free read
// path.
std::mutex g_pool_stack_mu;
std::vector<ThreadPool*> g_pool_stack;
}  // namespace

ThreadPool* GlobalPool() { return g_pool.load(std::memory_order_acquire); }

ThreadPool* SetGlobalPool(ThreadPool* pool) {
  return g_pool.exchange(pool, std::memory_order_acq_rel);
}

void InstallGlobalPool(ThreadPool* pool) {
  if (pool == nullptr) return;
  std::lock_guard<std::mutex> lock(g_pool_stack_mu);
  g_pool_stack.push_back(pool);
  g_pool.store(pool, std::memory_order_release);
}

void UninstallGlobalPool(ThreadPool* pool) {
  if (pool == nullptr) return;
  std::lock_guard<std::mutex> lock(g_pool_stack_mu);
  for (auto it = g_pool_stack.rbegin(); it != g_pool_stack.rend(); ++it) {
    if (*it == pool) {
      g_pool_stack.erase(std::next(it).base());
      break;
    }
  }
  g_pool.store(g_pool_stack.empty() ? nullptr : g_pool_stack.back(),
               std::memory_order_release);
}

}  // namespace radb
