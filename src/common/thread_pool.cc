#include "common/thread_pool.h"

#include <algorithm>

namespace radb {

namespace {

/// Set while a thread is executing region bodies (worker thread or
/// participating caller inside another pool's region); nested regions
/// started under it run inline.
thread_local bool tls_in_worker = false;

}  // namespace

size_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  // The caller participates in every region, so only n-1 extra
  // threads are needed; a 1-thread pool is purely inline.
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

// The claim cursor packs (generation low bits << 32 | next index) into
// one atomic so a straggler that wakes after its region already
// finished — and after a newer region reset the index — sees the
// generation mismatch and claims nothing, instead of running a stale
// body on the new region's indices.
size_t ThreadPool::ClaimIndex(uint64_t generation, size_t n) {
  const uint64_t tag = (generation & 0xffffffffULL) << 32;
  uint64_t c = cursor_.load(std::memory_order_relaxed);
  for (;;) {
    if ((c & 0xffffffff00000000ULL) != tag) return kNoIndex;
    const size_t i = static_cast<size_t>(c & 0xffffffffULL);
    if (i >= n) return kNoIndex;
    if (cursor_.compare_exchange_weak(c, c + 1, std::memory_order_relaxed)) {
      return i;
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    size_t n = 0;
    uint64_t generation = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      generation = generation_;
      job = job_;
      n = job_size_;
    }
    tls_in_worker = true;
    size_t ran = 0;
    for (;;) {
      const size_t i = ClaimIndex(generation, n);
      if (i == kNoIndex) break;
      (*job)(i);
      ++ran;
    }
    tls_in_worker = false;
    if (ran > 0 &&
        completed_.fetch_add(ran, std::memory_order_acq_rel) + ran == n) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunRegion(size_t n, const std::function<void(size_t)>& body) {
  std::lock_guard<std::mutex> region_lock(region_mu_);
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &body;
    job_size_ = n;
    completed_.store(0, std::memory_order_relaxed);
    generation = ++generation_;
    cursor_.store((generation & 0xffffffffULL) << 32,
                  std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  // The driver claims indices alongside the workers.
  tls_in_worker = true;
  size_t ran = 0;
  for (;;) {
    const size_t i = ClaimIndex(generation, n);
    if (i == kNoIndex) break;
    body(i);
    ++ran;
  }
  tls_in_worker = false;
  completed_.fetch_add(ran, std::memory_order_acq_rel);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == n;
    });
    job_ = nullptr;
    job_size_ = 0;
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || num_threads_ <= 1 || tls_in_worker) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  RunRegion(n, body);
}

void ThreadPool::ParallelRanges(
    size_t total, const std::function<void(size_t, size_t)>& body) {
  if (total == 0) return;
  if (num_threads_ <= 1 || tls_in_worker) {
    body(0, total);
    return;
  }
  // A few chunks per thread so dynamic index claiming evens out
  // ranges with unequal cost (e.g. the triangular TSMM bands).
  const size_t target_chunks = num_threads_ * 4;
  const size_t chunk =
      std::max<size_t>(1, (total + target_chunks - 1) / target_chunks);
  const size_t n_chunks = (total + chunk - 1) / chunk;
  ParallelFor(n_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    body(begin, std::min(begin + chunk, total));
  });
}

namespace {
std::atomic<ThreadPool*> g_pool{nullptr};
}  // namespace

ThreadPool* GlobalPool() { return g_pool.load(std::memory_order_acquire); }

ThreadPool* SetGlobalPool(ThreadPool* pool) {
  return g_pool.exchange(pool, std::memory_order_acq_rel);
}

}  // namespace radb
