#ifndef RADB_COMMON_STRING_UTIL_H_
#define RADB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace radb {

/// ASCII lower-casing (SQL identifiers and keywords are
/// case-insensitive in this dialect).
std::string ToLower(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Formats seconds as the paper's HH:MM:SS figures do (fractional
/// seconds kept to two digits when under a minute).
std::string FormatHms(double seconds);

/// Formats a byte count with binary units ("1.25 MiB").
std::string FormatBytes(double bytes);

/// Parses a byte-size string: a plain number ("16777216") or a number
/// with a binary-unit suffix ("16MB", "16MiB", "4k", "1g" — B/KB/MB/GB
/// and their *iB forms, case-insensitive, all meaning powers of 1024).
/// Returns 0 for empty/unparseable input.
size_t ParseByteSize(const std::string& s);

}  // namespace radb

#endif  // RADB_COMMON_STRING_UTIL_H_
