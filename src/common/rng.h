#ifndef RADB_COMMON_RNG_H_
#define RADB_COMMON_RNG_H_

#include <cstdint>

namespace radb {

/// Small, fast, deterministic PRNG (xoshiro256**). Used by workload
/// generators and property tests; deterministic seeding keeps bench
/// inputs and test cases reproducible across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextUint64() % n; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace radb

#endif  // RADB_COMMON_RNG_H_
