#include "common/status.h"

namespace radb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCatalogError:
      return "CatalogError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kDimensionMismatch:
      return "DimensionMismatch";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace radb
