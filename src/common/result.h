#ifndef RADB_COMMON_RESULT_H_
#define RADB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace radb {

/// A value-or-error type in the spirit of arrow::Result. Holds either a
/// T (status is OK) or a non-OK Status. Construction from a bare T or a
/// Status is implicit so `return Status::TypeError(...)` and
/// `return value;` both work inside a Result-returning function.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace radb

/// Propagates the error of a Result-returning expression, otherwise
/// assigns the unwrapped value to `lhs` (which must be declarable).
#define RADB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define RADB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define RADB_ASSIGN_OR_RETURN_NAME(a, b) RADB_ASSIGN_OR_RETURN_CONCAT(a, b)

#define RADB_ASSIGN_OR_RETURN(lhs, expr) \
  RADB_ASSIGN_OR_RETURN_IMPL(            \
      RADB_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // RADB_COMMON_RESULT_H_
