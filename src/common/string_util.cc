#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace radb {

std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatHms(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1000.0);
    return buf;
  }
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    return buf;
  }
  const long total = static_cast<long>(std::llround(seconds));
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const long s = total % 60;
  std::snprintf(buf, sizeof(buf), "%02ld:%02ld:%02ld", h, m, s);
  return buf;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace radb
