#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace radb {

std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatHms(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1000.0);
    return buf;
  }
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    return buf;
  }
  const long total = static_cast<long>(std::llround(seconds));
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const long s = total % 60;
  std::snprintf(buf, sizeof(buf), "%02ld:%02ld:%02ld", h, m, s);
  return buf;
}

size_t ParseByteSize(const std::string& s) {
  size_t i = 0;
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  double value = 0.0;
  bool any_digit = false;
  for (; i < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i]));
       ++i) {
    value = value * 10.0 + (s[i] - '0');
    any_digit = true;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    double frac = 0.1;
    for (; i < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[i]));
         ++i, frac /= 10.0) {
      value += (s[i] - '0') * frac;
      any_digit = true;
    }
  }
  if (!any_digit) return 0;
  std::string unit;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    unit.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    mult = 1024.0;
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    mult = 1024.0 * 1024.0;
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else {
    return 0;
  }
  return static_cast<size_t>(value * mult);
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace radb
