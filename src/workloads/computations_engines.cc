#include <chrono>
#include <limits>

#include "engines/spark/block_matrix.h"
#include "workloads/computations.h"

namespace radb::workloads {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void FillFromMetrics(RunOutcome* out, const QueryMetrics& m,
                     Clock::time_point t0) {
  out->wall_seconds = SecondsSince(t0);
  out->simulated_seconds = m.SimulatedParallelSeconds();
  out->bytes_shuffled = m.TotalBytesShuffled();
  out->metrics = m;
  out->metrics.wall_seconds = out->wall_seconds;
}

la::Matrix OutcomesAsColumn(const Dataset& data) {
  la::Matrix y(data.n, 1);
  for (size_t i = 0; i < data.n; ++i) y.At(i, 0) = data.outcomes[i];
  return y;
}

}  // namespace

// ----------------------------------------------------------------------
// SystemML-style (DML over square blocks, hybrid local/distributed)
// ----------------------------------------------------------------------

Result<RunOutcome> GramSystemML(const Dataset& data,
                                const systemml::DmlConfig& config) {
  systemml::DmlContext ctx(config);
  systemml::DmlMatrix x =
      systemml::DmlMatrix::FromDense(&ctx, PointsAsMatrix(data));
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // DML: result = t(X) %*% X
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix gram, x.Tsmm());
  RunOutcome out;
  RADB_ASSIGN_OR_RETURN(out.gram, gram.ToDense());
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> LinRegSystemML(const Dataset& data,
                                  const systemml::DmlConfig& config) {
  systemml::DmlContext ctx(config);
  systemml::DmlMatrix x =
      systemml::DmlMatrix::FromDense(&ctx, PointsAsMatrix(data));
  systemml::DmlMatrix y =
      systemml::DmlMatrix::FromDense(&ctx, OutcomesAsColumn(data));
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // DML: beta = solve(t(X) %*% X, t(X) %*% y)
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix xtx, x.Tsmm());
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix xt, x.Transpose());
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix xty, xt.Multiply(y));
  RADB_ASSIGN_OR_RETURN(la::Matrix xty_dense, xty.ToDense());
  RADB_ASSIGN_OR_RETURN(la::Vector beta,
                        systemml::DmlMatrix::Solve(xtx, xty_dense.Col(0)));
  RunOutcome out;
  out.beta = std::move(beta);
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> DistanceSystemML(const Dataset& data,
                                    const systemml::DmlConfig& config) {
  systemml::DmlContext ctx(config);
  systemml::DmlMatrix x =
      systemml::DmlMatrix::FromDense(&ctx, PointsAsMatrix(data));
  systemml::DmlMatrix m =
      systemml::DmlMatrix::FromDense(&ctx, data.metric);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // DML (paper §5): all_dist = X %*% m %*% t(X)
  //                 all_dist = all_dist + diag(diag_inf)
  //                 min_dist = rowMins(all_dist)
  //                 result   = rowIndexMax(t(min_dist))
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix xm, x.Multiply(m));
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix xt, x.Transpose());
  RADB_ASSIGN_OR_RETURN(systemml::DmlMatrix all, xm.Multiply(xt));
  la::Vector diag_inf(data.n, 1e300);
  RADB_ASSIGN_OR_RETURN(all, all.AddToDiagonal(diag_inf));
  RADB_ASSIGN_OR_RETURN(la::Vector min_dist, all.RowMins());
  RunOutcome out;
  out.distance.point_id = min_dist.ArgMax();
  out.distance.value = min_dist.Max();
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

// ----------------------------------------------------------------------
// SciDB-style (chunked arrays, AQL gemm/filter/aggregate)
// ----------------------------------------------------------------------

Result<RunOutcome> GramSciDB(const Dataset& data, size_t instances,
                             size_t chunk) {
  scidb::ArrayContext ctx(instances);
  scidb::Array2D x =
      scidb::Array2D::FromDense(&ctx, PointsAsMatrix(data), chunk);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // AQL: SELECT * FROM gemm(transpose(x), x, build(<val>[d, d], 0))
  RADB_ASSIGN_OR_RETURN(scidb::Array2D xt, scidb::Transpose(x));
  scidb::Array2D zero =
      scidb::Array2D::Build(&ctx, data.d, data.d, chunk, 0.0);
  RADB_ASSIGN_OR_RETURN(scidb::Array2D gram, scidb::Gemm(xt, x, zero));
  RunOutcome out;
  RADB_ASSIGN_OR_RETURN(out.gram, gram.ToDense());
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> LinRegSciDB(const Dataset& data, size_t instances,
                               size_t chunk) {
  scidb::ArrayContext ctx(instances);
  scidb::Array2D x =
      scidb::Array2D::FromDense(&ctx, PointsAsMatrix(data), chunk);
  scidb::Array2D y =
      scidb::Array2D::FromDense(&ctx, OutcomesAsColumn(data), chunk);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  RADB_ASSIGN_OR_RETURN(scidb::Array2D xt, scidb::Transpose(x));
  scidb::Array2D zdd = scidb::Array2D::Build(&ctx, data.d, data.d, chunk);
  scidb::Array2D zd1 = scidb::Array2D::Build(&ctx, data.d, 1, chunk);
  RADB_ASSIGN_OR_RETURN(scidb::Array2D xtx, scidb::Gemm(xt, x, zdd));
  RADB_ASSIGN_OR_RETURN(scidb::Array2D xty, scidb::Gemm(xt, y, zd1));
  RADB_ASSIGN_OR_RETURN(la::Matrix xtx_d, xtx.ToDense());
  RADB_ASSIGN_OR_RETURN(la::Matrix xty_d, xty.ToDense());
  RADB_ASSIGN_OR_RETURN(la::Vector beta, la::Solve(xtx_d, xty_d.Col(0)));
  RunOutcome out;
  out.beta = std::move(beta);
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> DistanceSciDB(const Dataset& data, size_t instances,
                                 size_t chunk) {
  scidb::ArrayContext ctx(instances);
  scidb::Array2D x =
      scidb::Array2D::FromDense(&ctx, PointsAsMatrix(data), chunk);
  scidb::Array2D m = scidb::Array2D::FromDense(&ctx, data.metric, chunk);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // AQL (paper §5): mxt = gemm(m, transpose(x), 0);
  //   all_distance = filter(gemm(x, mxt, 0), t1 <> t2);
  //   distance = min(all_distance) GROUP BY t1; then max + lookup.
  RADB_ASSIGN_OR_RETURN(scidb::Array2D xt, scidb::Transpose(x));
  scidb::Array2D zdn = scidb::Array2D::Build(&ctx, data.d, data.n, chunk);
  RADB_ASSIGN_OR_RETURN(scidb::Array2D mxt, scidb::Gemm(m, xt, zdn));
  scidb::Array2D znn = scidb::Array2D::Build(&ctx, data.n, data.n, chunk);
  RADB_ASSIGN_OR_RETURN(scidb::Array2D all, scidb::Gemm(x, mxt, znn));
  constexpr double kEmpty = 1e300;
  RADB_ASSIGN_OR_RETURN(
      scidb::Array2D filtered,
      scidb::FilterCells(
          all, [](size_t i, size_t j, double) { return i != j; }, kEmpty));
  RADB_ASSIGN_OR_RETURN(la::Vector mins,
                        scidb::MinOverRows(filtered, kEmpty));
  RADB_ASSIGN_OR_RETURN(double max_min, scidb::MaxOfVector(&ctx, mins));
  RunOutcome out;
  out.distance.point_id = mins.ArgMax();
  out.distance.value = max_min;
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

// ----------------------------------------------------------------------
// Spark-mllib-style (RDD closures + BlockMatrix)
// ----------------------------------------------------------------------

Result<RunOutcome> GramSpark(const Dataset& data, size_t partitions) {
  spark::SparkContext ctx(partitions);
  auto rdd = spark::Rdd<la::Vector>::Parallelize(&ctx, data.points);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // Faithful to the paper's mllib code: each row materializes its
  // d x d outer product, then element-wise adds (zipped map _+_).
  RADB_ASSIGN_OR_RETURN(
      la::Matrix gram,
      rdd.Aggregate<la::Matrix>(
          la::Matrix(data.d, data.d),
          [](la::Matrix acc, const la::Vector& x) {
            la::Matrix op = la::OuterProduct(x, x);
            Result<la::Matrix> sum = la::Add(acc, op);
            return std::move(sum).value();
          },
          [](la::Matrix a, const la::Matrix& b) {
            Result<la::Matrix> sum = la::Add(a, b);
            return std::move(sum).value();
          },
          "gram: map(outer) + reduce(add)"));
  RunOutcome out;
  out.gram = std::move(gram);
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> LinRegSpark(const Dataset& data, size_t partitions) {
  spark::SparkContext ctx(partitions);
  std::vector<std::pair<la::Vector, double>> paired;
  paired.reserve(data.n);
  for (size_t i = 0; i < data.n; ++i) {
    paired.emplace_back(data.points[i], data.outcomes[i]);
  }
  auto rdd = spark::Rdd<std::pair<la::Vector, double>>::Parallelize(
      &ctx, std::move(paired));
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  RADB_ASSIGN_OR_RETURN(
      la::Matrix xtx,
      rdd.Aggregate<la::Matrix>(
          la::Matrix(data.d, data.d),
          [](la::Matrix acc, const std::pair<la::Vector, double>& p) {
            la::Matrix op = la::OuterProduct(p.first, p.first);
            Result<la::Matrix> sum = la::Add(acc, op);
            return std::move(sum).value();
          },
          [](la::Matrix a, const la::Matrix& b) {
            Result<la::Matrix> sum = la::Add(a, b);
            return std::move(sum).value();
          },
          "xtx: map(outer) + reduce(add)"));
  RADB_ASSIGN_OR_RETURN(
      la::Vector xty,
      rdd.Aggregate<la::Vector>(
          la::Vector(data.d),
          [](la::Vector acc, const std::pair<la::Vector, double>& p) {
            Result<la::Vector> sum =
                la::Add(acc, la::MulScalar(p.first, p.second));
            return std::move(sum).value();
          },
          [](la::Vector a, const la::Vector& b) {
            Result<la::Vector> sum = la::Add(a, b);
            return std::move(sum).value();
          },
          "xty: map(scale) + reduce(add)"));
  RADB_ASSIGN_OR_RETURN(la::Vector beta, la::Solve(xtx, xty));
  RunOutcome out;
  out.beta = std::move(beta);
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

Result<RunOutcome> DistanceSpark(const Dataset& data, size_t partitions,
                                 size_t block) {
  spark::SparkContext ctx(partitions);
  spark::BlockMatrix xb =
      spark::BlockMatrix::FromDense(&ctx, PointsAsMatrix(data), block, block);
  spark::BlockMatrix mb =
      spark::BlockMatrix::FromDense(&ctx, data.metric, block, block);
  ctx.ResetMetrics();
  const auto t0 = Clock::now();
  // Paper: dist_matrix = X.multiply(M).multiply(X.transpose), then a
  // per-row pass that knocks out the self-distance and takes the min,
  // then a max by value.
  RADB_ASSIGN_OR_RETURN(spark::BlockMatrix xm, xb.Multiply(mb));
  RADB_ASSIGN_OR_RETURN(spark::BlockMatrix dist, xm.Multiply(xb.Transpose()));
  auto rows = dist.ToIndexedRows();
  auto mins = rows.Map(
      [](const std::pair<size_t, la::Vector>& row) {
        la::Vector v = row.second;
        v[row.first] = std::numeric_limits<double>::infinity();
        return std::make_pair(row.first, v.Min());
      },
      "rowMins(excluding self)");
  RADB_ASSIGN_OR_RETURN(
      auto best,
      mins.MaxBy(
          [](const std::pair<size_t, double>& a,
             const std::pair<size_t, double>& b) {
            return a.second < b.second;
          },
          "max by min-distance"));
  RunOutcome out;
  out.distance.point_id = best.first;
  out.distance.value = best.second;
  FillFromMetrics(&out, ctx.metrics(), t0);
  return out;
}

}  // namespace radb::workloads
