#ifndef RADB_WORKLOADS_COMPUTATIONS_H_
#define RADB_WORKLOADS_COMPUTATIONS_H_

#include <memory>
#include <string>

#include "api/database.h"
#include "engines/scidb/array.h"
#include "engines/spark/rdd.h"
#include "engines/systemml/dml.h"
#include "workloads/datagen.h"

namespace radb::workloads {

/// Result of one (computation, platform) run: timings + the numeric
/// answer so correctness can be cross-checked against the reference.
struct RunOutcome {
  /// Matches the paper's "Fail" entries (tuple-based distance): the
  /// run was refused/aborted because intermediates exceed the budget.
  bool failed = false;
  std::string fail_reason;

  double wall_seconds = 0.0;
  double simulated_seconds = 0.0;  // per-stage max-over-workers sum
  size_t bytes_shuffled = 0;
  /// Spill volume and tracked peak memory across all statements (SQL
  /// runs only; zero for the comparator engines).
  size_t spill_bytes = 0;
  size_t peak_tracked_bytes = 0;
  /// Real execution threads the run used (Database::num_threads()).
  /// 1 for the non-SQL comparator engines, which stay sequential.
  size_t num_threads = 1;
  QueryMetrics metrics;  // merged over all statements/stages

  la::Matrix gram;          // Gram computation
  la::Vector beta;          // linear regression
  DistanceAnswer distance;  // distance computation
};

/// SQL-based runs on the extended relational engine (the paper's
/// Tuple / Vector / Block SimSQL rows). One instance owns a fresh
/// Database; call a Load* method, then one computation.
class SqlWorkload {
 public:
  explicit SqlWorkload(size_t num_workers);
  /// With explicit optimizer options (used by the §4.1 bench).
  SqlWorkload(size_t num_workers, const Optimizer::Options& opts);
  /// Full control over the Database (thread count, obs — used by the
  /// thread-scaling bench).
  explicit SqlWorkload(const Database::Config& config);

  Database& db() { return db_; }

  /// Loads the pure-tuple encodings: x_tuple(row_index, col_index,
  /// value), y(i, y_i), a_tuple(row_index, col_index, value).
  Status LoadTuple(const Dataset& data);
  /// Loads the vector/matrix encodings: x_vm(id, value VECTOR[d]),
  /// y(i, y_i), mm(mapping MATRIX[d][d]).
  Status LoadVector(const Dataset& data);

  // --- Gram matrix (Figure 1) ---
  Result<RunOutcome> GramTuple();
  Result<RunOutcome> GramVector();
  /// Includes the time to group vectors into blocks, as the paper
  /// does. `block` must divide into the data reasonably; the last
  /// block may be ragged for Gram/regression.
  Result<RunOutcome> GramBlock(size_t block);

  // --- Least squares linear regression (Figure 2) ---
  Result<RunOutcome> LinRegTuple();
  Result<RunOutcome> LinRegVector();
  Result<RunOutcome> LinRegBlock(size_t block);

  // --- Distance computation (Figure 3) ---
  /// Refuses to run (returns failed=true) when the estimated
  /// intermediate tuple count exceeds `tuple_budget` — reproducing the
  /// paper's "Fail" row.
  Result<RunOutcome> DistanceTuple(size_t tuple_budget = 50'000'000);
  Result<RunOutcome> DistanceVector();
  /// Requires block | n (uniform square blocks, as in the paper's
  /// 10^5-points / 1000-block setup).
  Result<RunOutcome> DistanceBlock(size_t block);

 private:
  Result<RunOutcome> RunScript(const std::vector<std::string>& statements,
                               ResultSet* last);

  Database db_;
  size_t n_ = 0;
  size_t d_ = 0;
};

// --- SystemML-style comparator --------------------------------------
Result<RunOutcome> GramSystemML(const Dataset& data,
                                const systemml::DmlConfig& config);
Result<RunOutcome> LinRegSystemML(const Dataset& data,
                                  const systemml::DmlConfig& config);
Result<RunOutcome> DistanceSystemML(const Dataset& data,
                                    const systemml::DmlConfig& config);

// --- SciDB-style comparator ------------------------------------------
Result<RunOutcome> GramSciDB(const Dataset& data, size_t instances,
                             size_t chunk);
Result<RunOutcome> LinRegSciDB(const Dataset& data, size_t instances,
                               size_t chunk);
Result<RunOutcome> DistanceSciDB(const Dataset& data, size_t instances,
                                 size_t chunk);

// --- Spark-mllib-style comparator --------------------------------------
Result<RunOutcome> GramSpark(const Dataset& data, size_t partitions);
Result<RunOutcome> LinRegSpark(const Dataset& data, size_t partitions);
Result<RunOutcome> DistanceSpark(const Dataset& data, size_t partitions,
                                 size_t block);

}  // namespace radb::workloads

#endif  // RADB_WORKLOADS_COMPUTATIONS_H_
