#ifndef RADB_WORKLOADS_DATAGEN_H_
#define RADB_WORKLOADS_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::workloads {

/// The synthetic dense dataset the paper's experiments use (§5:
/// "All data sets were dense, and all data were synthetic"): n points
/// of dimensionality d, regression outcomes, and an SPD Riemannian
/// metric for the distance computation.
struct Dataset {
  size_t n = 0;
  size_t d = 0;
  std::vector<la::Vector> points;  // n vectors of length d
  std::vector<double> outcomes;    // y_i
  la::Matrix metric;               // d x d, symmetric positive definite
};

/// Deterministic generator (same seed -> same data across platforms,
/// so results can be cross-checked bit-for-bit).
Dataset GenerateDataset(uint64_t seed, size_t n, size_t d);

/// Points stacked into an n x d matrix (row = point).
la::Matrix PointsAsMatrix(const Dataset& data);

// --- Single-node reference implementations (ground truth) ----------

/// G = XᵀX.
la::Matrix ReferenceGram(const Dataset& data);

/// β̂ = (XᵀX)⁻¹ Xᵀy.
Result<la::Vector> ReferenceLinReg(const Dataset& data);

/// The paper's distance computation: for each i, m_i = min_{j≠i}
/// x_iᵀ A x_j; report argmax_i m_i and the max value.
struct DistanceAnswer {
  size_t point_id = 0;
  double value = 0.0;
};
Result<DistanceAnswer> ReferenceDistance(const Dataset& data);

}  // namespace radb::workloads

#endif  // RADB_WORKLOADS_DATAGEN_H_
