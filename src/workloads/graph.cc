#include "workloads/graph.h"

#include <cmath>
#include <map>
#include <utility>

#include "la/vector.h"

namespace radb::workloads {

namespace {

/// Best-effort drop of a table that may not exist (fresh Database).
void DropIfPresent(Database* db, const std::string& name) {
  (void)db->Execute("DROP TABLE " + name);
}

}  // namespace

GraphAnalytics::GraphAnalytics(Database* db, std::string prefix)
    : db_(db), prefix_(std::move(prefix)) {}

Status GraphAnalytics::LoadEdges(size_t num_nodes,
                                 const std::vector<GraphEdge>& edges) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("graph needs at least one node");
  }
  const int64_t n = static_cast<int64_t>(num_nodes);
  // Collapse duplicate (src, dst) pairs keeping the minimum weight:
  // correct for min-plus, and any positive weight is "true" for or-and.
  std::map<std::pair<int64_t, int64_t>, double> best;
  for (const GraphEdge& e : edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(e.src) + ", " +
          std::to_string(e.dst) + ") with " + std::to_string(num_nodes) +
          " nodes");
    }
    if (!std::isfinite(e.weight) || e.weight <= 0.0) {
      return Status::InvalidArgument(
          "edge weights must be finite and > 0 (0.0 means \"no edge\" in "
          "the sparse adjacency), got " +
          std::to_string(e.weight));
    }
    auto [it, inserted] = best.emplace(std::make_pair(e.src, e.dst), e.weight);
    if (!inserted && e.weight < it->second) it->second = e.weight;
  }

  std::vector<Row> rows;
  rows.reserve(best.size() + num_nodes);
  for (const auto& [key, w] : best) {
    rows.push_back({Value::Int(key.first), Value::Int(key.second),
                    Value::Double(w)});
  }
  // Pad every source with a structural-zero entry at column n-1 unless
  // a real edge is already there: VECTORIZE then yields a full-width
  // row vector for every node, and ROWMATRIX sees all n row labels.
  for (int64_t s = 0; s < n; ++s) {
    if (best.find(std::make_pair(s, n - 1)) == best.end()) {
      rows.push_back({Value::Int(s), Value::Int(n - 1), Value::Double(0.0)});
    }
  }

  for (const char* suffix :
       {"_edges", "_adj", "_adj_dense", "_rows", "_state", "_state_next"}) {
    DropIfPresent(db_, prefix_ + suffix);
  }
  if (auto r = db_->Execute("CREATE TABLE " + prefix_ +
                            "_edges (src INTEGER, dst INTEGER, w DOUBLE)");
      !r.ok()) {
    return r.status();
  }
  RADB_RETURN_NOT_OK(db_->BulkInsert(prefix_ + "_edges", std::move(rows)));

  // Edge list -> labeled row vectors -> dense matrix -> sparse tile,
  // all through ordinary SQL (paper §3.3 vectorization plus SPARSIFY).
  if (auto r = db_->Execute(
          "CREATE TABLE " + prefix_ + "_rows AS SELECT src AS r, "
          "VECTORIZE(label_scalar(w, dst)) AS vec FROM " + prefix_ +
          "_edges GROUP BY src; "
          "CREATE TABLE " + prefix_ + "_adj_dense AS SELECT "
          "ROWMATRIX(label_vector(vec, r)) AS mat FROM " + prefix_ +
          "_rows; "
          "CREATE TABLE " + prefix_ + "_adj AS SELECT SPARSIFY(mat) AS mat "
          "FROM " + prefix_ + "_adj_dense; "
          "DROP TABLE " + prefix_ + "_adj_dense; "
          "DROP TABLE " + prefix_ + "_rows");
      !r.ok()) {
    return r.status();
  }
  n_ = num_nodes;
  return Status::OK();
}

Result<TraversalResult> GraphAnalytics::Iterate(
    const std::vector<double>& init, const std::string& semiring,
    size_t max_iters) {
  if (n_ == 0) {
    return Status::InvalidArgument("GraphAnalytics: call LoadEdges first");
  }
  const std::string state = prefix_ + "_state";
  const std::string next = prefix_ + "_state_next";
  DropIfPresent(db_, state);
  DropIfPresent(db_, next);
  if (auto r = db_->Execute("CREATE TABLE " + state + " (vec VECTOR[" +
                            std::to_string(n_) + "])");
      !r.ok()) {
    return r.status();
  }
  std::vector<Row> seed;
  seed.push_back({Value::FromVector(la::Vector(std::vector<double>(init)))});
  RADB_RETURN_NOT_OK(db_->BulkInsert(state, std::move(seed)));

  const std::string step =
      "CREATE TABLE " + next + " AS SELECT vector_elementwise_add(s.vec, "
      "vector_matrix_multiply(s.vec, a.mat, '" + semiring + "'), '" +
      semiring + "') AS vec FROM " + state + " AS s, " + prefix_ +
      "_adj AS a; "
      "DROP TABLE " + state + "; "
      "CREATE TABLE " + state + " AS SELECT vec FROM " + next + "; "
      "DROP TABLE " + next;

  TraversalResult out;
  out.values = init;
  for (size_t iter = 0; iter < max_iters; ++iter) {
    if (auto r = db_->Execute(step); !r.ok()) return r.status();
    auto rs = db_->Execute("SELECT vec FROM " + state);
    if (!rs.ok()) return rs.status();
    if (rs->last().num_rows() != 1) {
      return Status::ExecutionError("traversal state table lost its row");
    }
    RADB_ASSIGN_OR_RETURN(Value cell, rs->last().Get(0, 0));
    const la::Vector& v = cell.vector();
    if (v.size() != n_) {
      return Status::ExecutionError("traversal state has wrong width");
    }
    size_t changed = 0;
    for (size_t i = 0; i < n_; ++i) {
      if (v[i] != out.values[i]) ++changed;
    }
    out.frontier_sizes.push_back(changed);
    for (size_t i = 0; i < n_; ++i) out.values[i] = v[i];
    if (changed == 0) break;
  }
  DropIfPresent(db_, state);
  return out;
}

Result<TraversalResult> GraphAnalytics::Sssp(size_t source,
                                             size_t max_iters) {
  if (source >= n_) {
    return Status::InvalidArgument("SSSP source out of range");
  }
  std::vector<double> init(n_, kUnreachable);
  init[source] = 0.0;
  return Iterate(init, "min_plus", max_iters == 0 ? n_ : max_iters);
}

Result<TraversalResult> GraphAnalytics::KHop(size_t source, size_t k) {
  if (source >= n_) {
    return Status::InvalidArgument("k-hop source out of range");
  }
  std::vector<double> init(n_, 0.0);
  init[source] = 1.0;
  return Iterate(init, "or_and", k);
}

std::vector<double> SsspOracle(size_t num_nodes,
                               const std::vector<GraphEdge>& edges,
                               size_t source, size_t max_iters) {
  std::vector<double> dist(num_nodes, kUnreachable);
  dist[source] = 0.0;
  const size_t cap = max_iters == 0 ? num_nodes : max_iters;
  for (size_t iter = 0; iter < cap; ++iter) {
    std::vector<double> step = dist;
    for (const GraphEdge& e : edges) {
      if (e.weight == 0.0) continue;  // structural zero: no edge
      const double cand = dist[e.src] + e.weight;
      if (cand < step[e.dst]) step[e.dst] = cand;
    }
    const bool changed = step != dist;
    dist = std::move(step);
    if (!changed) break;
  }
  return dist;
}

std::vector<double> KHopOracle(size_t num_nodes,
                               const std::vector<GraphEdge>& edges,
                               size_t source, size_t k) {
  std::vector<double> reach(num_nodes, 0.0);
  reach[source] = 1.0;
  for (size_t iter = 0; iter < k; ++iter) {
    std::vector<double> step = reach;
    for (const GraphEdge& e : edges) {
      if (e.weight != 0.0 && reach[e.src] != 0.0) step[e.dst] = 1.0;
    }
    const bool changed = step != reach;
    reach = std::move(step);
    if (!changed) break;
  }
  return reach;
}

}  // namespace radb::workloads
