#ifndef RADB_WORKLOADS_GRAPH_H_
#define RADB_WORKLOADS_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/database.h"

namespace radb::workloads {

/// One directed edge. Weights must be finite and > 0: the sparse
/// adjacency matrix stores "no edge" as 0.0 (the structural-zero
/// convention), so a genuine zero-weight edge cannot be represented.
struct GraphEdge {
  int64_t src = 0;
  int64_t dst = 0;
  double weight = 1.0;
};

/// Distance assigned to nodes the traversal never reaches. Kept finite
/// so the state vector round-trips exactly through SQL literals and
/// VECTOR values; min-plus relaxations through an "unreachable" node
/// produce values > kUnreachable and never win a min against it.
inline constexpr double kUnreachable = 1e18;

/// Outcome of an iterated-semiring traversal.
struct TraversalResult {
  /// Per node: min-plus distance (kUnreachable if unreached) for SSSP,
  /// or 0.0 / 1.0 reachability for k-hop.
  std::vector<double> values;
  /// Entries improved by each completed iteration. The traversal stops
  /// after the first iteration whose frontier is empty, so the final
  /// element is 0 unless the iteration cap cut the run short.
  std::vector<size_t> frontier_sizes;
};

/// Graph analytics as iterated semiring vector-matrix multiplies over
/// an edge-list table, driven entirely through ordinary SQL:
///
///   adjacency  = SPARSIFY(ROWMATRIX(...))  built from the edge list,
///   relaxation = vector_elementwise_add(d, vector_matrix_multiply(
///                    d, A, '<semiring>'), '<semiring>')
///
/// with 'min_plus' giving single-source shortest paths and 'or_and'
/// giving k-hop reachability. One instance manages a family of tables
/// named <prefix>_edges / <prefix>_adj in the caller's Database.
class GraphAnalytics {
 public:
  explicit GraphAnalytics(Database* db, std::string prefix = "g");

  /// Loads a directed graph with `num_nodes` nodes (ids 0..n-1) and
  /// builds the sparse adjacency matrix through SQL. Duplicate (src,
  /// dst) edges are collapsed keeping the minimum weight (harmless for
  /// both supported semirings). Rejects out-of-range endpoints and
  /// non-finite or <= 0 weights.
  Status LoadEdges(size_t num_nodes, const std::vector<GraphEdge>& edges);

  /// Single-source shortest paths under the min-plus semiring.
  /// `max_iters` of 0 means "until the frontier is empty" (bounded by
  /// n iterations, enough for any shortest path).
  Result<TraversalResult> Sssp(size_t source, size_t max_iters = 0);

  /// Nodes reachable from `source` in at most `k` hops under the
  /// or-and semiring (the source itself is always reachable in 0).
  Result<TraversalResult> KHop(size_t source, size_t k);

  size_t num_nodes() const { return n_; }

 private:
  Result<TraversalResult> Iterate(const std::vector<double>& init,
                                  const std::string& semiring,
                                  size_t max_iters);

  Database* db_;
  std::string prefix_;
  size_t n_ = 0;
};

/// Synchronous-relaxation reference oracles. They apply exactly the
/// per-round update the SQL path computes, so results match the engine
/// bit for bit (min/or folds are order-independent and the per-edge
/// double additions are identical).
std::vector<double> SsspOracle(size_t num_nodes,
                               const std::vector<GraphEdge>& edges,
                               size_t source, size_t max_iters = 0);
std::vector<double> KHopOracle(size_t num_nodes,
                               const std::vector<GraphEdge>& edges,
                               size_t source, size_t k);

}  // namespace radb::workloads

#endif  // RADB_WORKLOADS_GRAPH_H_
