#include "workloads/computations.h"

#include <chrono>

namespace radb::workloads {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

SqlWorkload::SqlWorkload(size_t num_workers)
    : SqlWorkload(num_workers, Optimizer::Options{}) {}

SqlWorkload::SqlWorkload(size_t num_workers, const Optimizer::Options& opts)
    : db_([&] {
        Database::Config config;
        config.num_workers = num_workers;
        config.optimizer = opts;
        // Benches compare simulated runtimes across encodings; a
        // fixed single thread keeps wall clocks comparable run to
        // run. The thread-scaling bench opts in via the Config ctor.
        config.num_threads = 1;
        return config;
      }()) {}

SqlWorkload::SqlWorkload(const Database::Config& config) : db_(config) {}

Status SqlWorkload::LoadTuple(const Dataset& data) {
  n_ = data.n;
  d_ = data.d;
  RADB_RETURN_NOT_OK(
      db_.Execute("CREATE TABLE x_tuple (row_index INTEGER, "
                     "col_index INTEGER, value DOUBLE)")
          .status());
  RADB_RETURN_NOT_OK(
      db_.Execute("CREATE TABLE y (i INTEGER, y_i DOUBLE)").status());
  RADB_RETURN_NOT_OK(
      db_.Execute("CREATE TABLE a_tuple (row_index INTEGER, "
                     "col_index INTEGER, value DOUBLE)")
          .status());
  std::vector<Row> x_rows;
  x_rows.reserve(data.n * data.d);
  for (size_t i = 0; i < data.n; ++i) {
    for (size_t j = 0; j < data.d; ++j) {
      x_rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                           Value::Int(static_cast<int64_t>(j)),
                           Value::Double(data.points[i][j])});
    }
  }
  RADB_RETURN_NOT_OK(db_.BulkInsert("x_tuple", std::move(x_rows)));
  std::vector<Row> y_rows;
  for (size_t i = 0; i < data.n; ++i) {
    y_rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                         Value::Double(data.outcomes[i])});
  }
  RADB_RETURN_NOT_OK(db_.BulkInsert("y", std::move(y_rows)));
  std::vector<Row> a_rows;
  for (size_t i = 0; i < data.d; ++i) {
    for (size_t j = 0; j < data.d; ++j) {
      a_rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                           Value::Int(static_cast<int64_t>(j)),
                           Value::Double(data.metric.At(i, j))});
    }
  }
  return db_.BulkInsert("a_tuple", std::move(a_rows));
}

Status SqlWorkload::LoadVector(const Dataset& data) {
  n_ = data.n;
  d_ = data.d;
  const std::string d_str = std::to_string(data.d);
  RADB_RETURN_NOT_OK(db_.Execute("CREATE TABLE x_vm (id INTEGER, value "
                                    "VECTOR[" +
                                    d_str + "])")
                         .status());
  RADB_RETURN_NOT_OK(
      db_.Execute("CREATE TABLE y (i INTEGER, y_i DOUBLE)").status());
  RADB_RETURN_NOT_OK(db_.Execute("CREATE TABLE mm (mapping MATRIX[" +
                                    d_str + "][" + d_str + "])")
                         .status());
  std::vector<Row> x_rows;
  x_rows.reserve(data.n);
  for (size_t i = 0; i < data.n; ++i) {
    x_rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                         Value::FromVector(data.points[i])});
  }
  RADB_RETURN_NOT_OK(db_.BulkInsert("x_vm", std::move(x_rows)));
  std::vector<Row> y_rows;
  for (size_t i = 0; i < data.n; ++i) {
    y_rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                         Value::Double(data.outcomes[i])});
  }
  RADB_RETURN_NOT_OK(db_.BulkInsert("y", std::move(y_rows)));
  return db_.BulkInsert("mm", {Row{Value::FromMatrix(data.metric)}});
}

Result<RunOutcome> SqlWorkload::RunScript(
    const std::vector<std::string>& statements, ResultSet* last) {
  RunOutcome out;
  out.num_threads = db_.num_threads();
  const auto t0 = Clock::now();
  for (const std::string& sql : statements) {
    RADB_ASSIGN_OR_RETURN(ScriptResult script, db_.Execute(sql));
    if (script.has_results()) *last = std::move(script.result_sets.back());
    const QueryMetrics& m = db_.last_metrics();
    out.simulated_seconds += m.SimulatedParallelSeconds();
    out.bytes_shuffled += m.TotalBytesShuffled();
    out.spill_bytes += db_.last_spill_bytes();
    if (db_.last_peak_memory_bytes() > out.peak_tracked_bytes) {
      out.peak_tracked_bytes = db_.last_peak_memory_bytes();
    }
    for (const OperatorMetrics& op : m.operators) {
      out.metrics.operators.push_back(op);
    }
  }
  out.wall_seconds = SecondsSince(t0);
  out.metrics.wall_seconds = out.wall_seconds;
  return out;
}

namespace {

/// SQL that groups the row vectors of x_vm into blocked matrices, one
/// matrix of up to `block` rows per tuple — the paper's MLX view. The
/// block_index table must exist.
std::vector<std::string> BlockingSql(size_t n, size_t block) {
  const std::string b = std::to_string(block);
  const size_t num_blocks = (n + block - 1) / block;
  std::string insert = "INSERT INTO block_index VALUES ";
  for (size_t i = 0; i < num_blocks; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ")";
  }
  return {
      "CREATE TABLE block_index (mi INTEGER)",
      insert,
      "CREATE VIEW mlx (mi, m) AS "
      "SELECT ind.mi, ROWMATRIX(label_vector(x.value, x.id - ind.mi * " +
          b +
          ")) "
          "FROM x_vm AS x, block_index AS ind "
          "WHERE x.id / " +
          b +
          " = ind.mi "
          "GROUP BY ind.mi",
  };
}

Result<DistanceAnswer> DistanceFromIdDist(const ResultSet& rs) {
  if (rs.num_rows() == 0 || rs.num_columns() < 2) {
    return Status::ExecutionError("distance query returned no rows");
  }
  DistanceAnswer ans;
  RADB_ASSIGN_OR_RETURN(int64_t id, rs.at(0, 0).AsInt());
  ans.point_id = static_cast<size_t>(id);
  RADB_ASSIGN_OR_RETURN(ans.value, rs.at(0, 1).AsDouble());
  return ans;
}

}  // namespace

// ----------------------------------------------------------------------
// Gram matrix (Figure 1)
// ----------------------------------------------------------------------

Result<RunOutcome> SqlWorkload::GramTuple() {
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript({// The paper's tuple-based Gram code, verbatim.
                 "SELECT x1.col_index, x2.col_index, "
                 "SUM(x1.value * x2.value) "
                 "FROM x_tuple AS x1, x_tuple AS x2 "
                 "WHERE x1.row_index = x2.row_index "
                 "GROUP BY x1.col_index, x2.col_index"},
                &rs));
  la::Matrix gram(d_, d_);
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    RADB_ASSIGN_OR_RETURN(int64_t i, rs.at(r, 0).AsInt());
    RADB_ASSIGN_OR_RETURN(int64_t j, rs.at(r, 1).AsInt());
    RADB_ASSIGN_OR_RETURN(double v, rs.at(r, 2).AsDouble());
    gram.At(static_cast<size_t>(i), static_cast<size_t>(j)) = v;
  }
  out.gram = std::move(gram);
  return out;
}

Result<RunOutcome> SqlWorkload::GramVector() {
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript({"SELECT SUM(outer_product(x.value, x.value)) "
                 "FROM x_vm AS x"},
                &rs));
  RADB_ASSIGN_OR_RETURN(out.gram, rs.ScalarMatrix());
  return out;
}

Result<RunOutcome> SqlWorkload::GramBlock(size_t block) {
  std::vector<std::string> script = BlockingSql(n_, block);
  script.push_back(
      "SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) "
      "FROM mlx");
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(RunOutcome out, RunScript(script, &rs));
  RADB_ASSIGN_OR_RETURN(out.gram, rs.ScalarMatrix());
  return out;
}

// ----------------------------------------------------------------------
// Least squares linear regression (Figure 2)
// ----------------------------------------------------------------------

Result<RunOutcome> SqlWorkload::LinRegTuple() {
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript(
          {// XᵀX and Xᵀy as triple tables, then de-normalize into a
           // matrix and vector (§3.3) and solve.
           "CREATE VIEW xtx_tuple (i, j, val) AS "
           "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) "
           "FROM x_tuple AS x1, x_tuple AS x2 "
           "WHERE x1.row_index = x2.row_index "
           "GROUP BY x1.col_index, x2.col_index",
           "CREATE VIEW xty_tuple (i, val) AS "
           "SELECT x.col_index, SUM(x.value * y.y_i) "
           "FROM x_tuple AS x, y "
           "WHERE x.row_index = y.i "
           "GROUP BY x.col_index",
           "CREATE VIEW xtx_rows (i, vec) AS "
           "SELECT t.i, VECTORIZE(label_scalar(t.val, t.j)) "
           "FROM xtx_tuple AS t GROUP BY t.i",
           "CREATE VIEW xtx_mat (m) AS "
           "SELECT ROWMATRIX(label_vector(r.vec, r.i)) FROM xtx_rows AS r",
           "CREATE VIEW xty_vec (v) AS "
           "SELECT VECTORIZE(label_scalar(t.val, t.i)) FROM xty_tuple AS t",
           "SELECT matrix_solve(a.m, b.v) FROM xtx_mat AS a, xty_vec AS b"},
          &rs));
  RADB_ASSIGN_OR_RETURN(out.beta, rs.ScalarVector());
  return out;
}

Result<RunOutcome> SqlWorkload::LinRegVector() {
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript({// The paper's §3.2 code, verbatim.
                 "SELECT matrix_vector_multiply("
                 "  matrix_inverse(SUM(outer_product(x.x_i, x.x_i))), "
                 "  SUM(x.x_i * y.y_i)) "
                 "FROM (SELECT id AS i, value AS x_i FROM x_vm) AS x, y "
                 "WHERE x.i = y.i"},
                &rs));
  RADB_ASSIGN_OR_RETURN(out.beta, rs.ScalarVector());
  return out;
}

Result<RunOutcome> SqlWorkload::LinRegBlock(size_t block) {
  const std::string b = std::to_string(block);
  std::vector<std::string> script = BlockingSql(n_, block);
  script.push_back(
      "CREATE VIEW yb (mi, v) AS "
      "SELECT ind.mi, VECTORIZE(label_scalar(y.y_i, y.i - ind.mi * " +
      b +
      ")) "
      "FROM y, block_index AS ind "
      "WHERE y.i / " +
      b + " = ind.mi GROUP BY ind.mi");
  script.push_back(
      "SELECT matrix_vector_multiply(matrix_inverse(g.gm), c.cv) "
      "FROM (SELECT SUM(matrix_multiply(trans_matrix(m.m), m.m)) AS gm "
      "      FROM mlx AS m) AS g, "
      "     (SELECT SUM(matrix_vector_multiply(trans_matrix(m.m), yv.v)) "
      "AS cv FROM mlx AS m, yb AS yv WHERE m.mi = yv.mi) AS c");
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(RunOutcome out, RunScript(script, &rs));
  RADB_ASSIGN_OR_RETURN(out.beta, rs.ScalarVector());
  return out;
}

// ----------------------------------------------------------------------
// Distance computation (Figure 3)
// ----------------------------------------------------------------------

Result<RunOutcome> SqlWorkload::DistanceTuple(size_t tuple_budget) {
  // Pre-aggregation intermediate: n points x n points x d dims.
  const double intermediate = static_cast<double>(n_) * n_ * d_;
  if (intermediate > static_cast<double>(tuple_budget)) {
    RunOutcome out;
    out.failed = true;
    out.fail_reason =
        "tuple-based distance needs ~" + std::to_string(intermediate) +
        " intermediate tuples; exceeds budget (paper reports Fail)";
    return out;
  }
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript(
          {"CREATE VIEW xa (i, col, val) AS "
           "SELECT x1.row_index, a.col_index, SUM(x1.value * a.value) "
           "FROM x_tuple AS x1, a_tuple AS a "
           "WHERE x1.col_index = a.row_index "
           "GROUP BY x1.row_index, a.col_index",
           "CREATE VIEW pairdist (i, j, dist) AS "
           "SELECT xa.i, x2.row_index, SUM(xa.val * x2.value) "
           "FROM xa, x_tuple AS x2 "
           "WHERE xa.col = x2.col_index AND xa.i <> x2.row_index "
           "GROUP BY xa.i, x2.row_index",
           "CREATE VIEW mind (i, dist) AS "
           "SELECT p.i, MIN(p.dist) FROM pairdist AS p GROUP BY p.i",
           "SELECT m.i, m.dist FROM mind AS m, "
           "(SELECT MAX(dist) AS mx FROM mind) AS t WHERE m.dist = t.mx"},
          &rs));
  RADB_ASSIGN_OR_RETURN(out.distance, DistanceFromIdDist(rs));
  return out;
}

Result<RunOutcome> SqlWorkload::DistanceVector() {
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(
      RunOutcome out,
      RunScript(
          {// The paper's §5 vector-based code: MX holds xᵀA.
           "CREATE VIEW mx (id, mx_data) AS "
           "SELECT x.id, vector_matrix_multiply(x.value, mp.mapping) "
           "FROM x_vm AS x, mm AS mp",
           "CREATE VIEW distancesm (id, dist) AS "
           "SELECT a.id, MIN(inner_product(mxx.mx_data, a.value)) "
           "FROM x_vm AS a, mx AS mxx "
           "WHERE a.id <> mxx.id "
           "GROUP BY a.id",
           "SELECT d.id, d.dist FROM distancesm AS d, "
           "(SELECT MAX(dist) AS mx FROM distancesm) AS t "
           "WHERE d.dist = t.mx"},
          &rs));
  RADB_ASSIGN_OR_RETURN(out.distance, DistanceFromIdDist(rs));
  return out;
}

Result<RunOutcome> SqlWorkload::DistanceBlock(size_t block) {
  if (n_ % block != 0) {
    return Status::InvalidArgument(
        "DistanceBlock requires block | n (uniform square blocks)");
  }
  std::vector<std::string> script = BlockingSql(n_, block);
  script.push_back(
      // The paper's §5 DISTANCES view, with the block-diagonal
      // self-distances knocked out by an indicator-scaled diagonal
      // (this dialect has no CASE).
      "CREATE VIEW distances (id1, id2, dm) AS "
      "SELECT t.id1, t.id2, t.dm + diag_matrix(ones_vector("
      "matrix_rows(t.dm)) * (1e300 * eq_indicator(t.id1, t.id2))) "
      "FROM (SELECT mxx.mi AS id1, mx.mi AS id2, "
      "   matrix_multiply(mxx.m, matrix_multiply(mp.mapping, "
      "     trans_matrix(mx.m))) AS dm "
      "   FROM mlx AS mx, mlx AS mxx, mm AS mp) AS t");
  script.push_back(
      "CREATE VIEW blockmin (id1, mins) AS "
      "SELECT d.id1, EMIN(row_mins(d.dm)) FROM distances AS d "
      "GROUP BY d.id1");
  script.push_back(
      "SELECT b.id1, argmax_vector(b.mins), max_vector(b.mins) "
      "FROM blockmin AS b, "
      "(SELECT MAX(max_vector(mins)) AS mx FROM blockmin) AS t "
      "WHERE max_vector(b.mins) = t.mx");
  ResultSet rs;
  RADB_ASSIGN_OR_RETURN(RunOutcome out, RunScript(script, &rs));
  if (rs.num_rows() == 0 || rs.num_columns() < 3) {
    return Status::ExecutionError("block distance query returned no rows");
  }
  RADB_ASSIGN_OR_RETURN(int64_t bid, rs.at(0, 0).AsInt());
  RADB_ASSIGN_OR_RETURN(int64_t idx, rs.at(0, 1).AsInt());
  RADB_ASSIGN_OR_RETURN(double val, rs.at(0, 2).AsDouble());
  out.distance.point_id =
      static_cast<size_t>(bid) * block + static_cast<size_t>(idx);
  out.distance.value = val;
  return out;
}

}  // namespace radb::workloads
