#include "workloads/datagen.h"

#include <limits>

#include "common/rng.h"
#include "la/random.h"

namespace radb::workloads {

Dataset GenerateDataset(uint64_t seed, size_t n, size_t d) {
  Rng rng(seed);
  Dataset data;
  data.n = n;
  data.d = d;
  data.points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.points.push_back(la::RandomVector(rng, d));
  }
  data.outcomes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.outcomes.push_back(rng.Uniform(-1.0, 1.0));
  }
  data.metric = la::RandomSpdMatrix(rng, d);
  return data;
}

la::Matrix PointsAsMatrix(const Dataset& data) {
  la::Matrix x(data.n, data.d);
  for (size_t i = 0; i < data.n; ++i) x.SetRow(i, data.points[i]);
  return x;
}

la::Matrix ReferenceGram(const Dataset& data) {
  return la::TransposeSelfMultiply(PointsAsMatrix(data));
}

Result<la::Vector> ReferenceLinReg(const Dataset& data) {
  const la::Matrix x = PointsAsMatrix(data);
  la::Matrix xtx = la::TransposeSelfMultiply(x);
  la::Vector xty(data.d);
  for (size_t i = 0; i < data.n; ++i) {
    for (size_t j = 0; j < data.d; ++j) {
      xty[j] += data.points[i][j] * data.outcomes[i];
    }
  }
  return la::Solve(xtx, xty);
}

Result<DistanceAnswer> ReferenceDistance(const Dataset& data) {
  if (data.n < 2) {
    return Status::InvalidArgument("distance computation needs >= 2 points");
  }
  const la::Matrix x = PointsAsMatrix(data);
  // all = X A Xᵀ, one n x n pass.
  RADB_ASSIGN_OR_RETURN(la::Matrix xa, la::Multiply(x, data.metric));
  RADB_ASSIGN_OR_RETURN(la::Matrix all, la::Multiply(xa, la::Transpose(x)));
  DistanceAnswer best;
  best.value = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < data.n; ++i) {
    double min_d = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < data.n; ++j) {
      if (j == i) continue;
      min_d = std::min(min_d, all.At(i, j));
    }
    if (min_d > best.value) {
      best.value = min_d;
      best.point_id = i;
    }
  }
  return best;
}

}  // namespace radb::workloads
