#include "optimizer/query_cache.h"

#include <algorithm>

namespace radb {

namespace {

void CollectDepsRec(const LogicalOp& op, PlanDeps* out) {
  if (op.kind == LogicalOp::Kind::kScan && op.table) {
    if (Catalog::IsSystemName(op.table->name())) {
      out->has_system_table = true;
    } else {
      const uint64_t id = op.table->id();
      bool seen = false;
      for (const TableDep& d : out->deps) {
        if (d.table_id == id) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        out->deps.push_back(
            TableDep{op.table->name(), id, op.table->version()});
      }
    }
  }
  for (const auto& c : op.children) CollectDepsRec(*c, out);
}

Status SubstituteExpr(BoundExpr* e, const std::vector<Value>& args) {
  if (e->kind == BoundExpr::Kind::kParam) {
    if (e->slot >= args.size()) {
      return Status::Internal("parameter $" + std::to_string(e->slot) +
                              " has no bound argument");
    }
    e->kind = BoundExpr::Kind::kLiteral;
    e->literal = args[e->slot];
    return Status::OK();
  }
  for (auto& c : e->children) {
    RADB_RETURN_NOT_OK(SubstituteExpr(c.get(), args));
  }
  return Status::OK();
}

Status SubstituteOp(LogicalOp* op, const std::vector<Value>& args) {
  for (auto& p : op->predicates) {
    RADB_RETURN_NOT_OK(SubstituteExpr(p.get(), args));
  }
  for (auto& [l, r] : op->equi_keys) {
    RADB_RETURN_NOT_OK(SubstituteExpr(l.get(), args));
    RADB_RETURN_NOT_OK(SubstituteExpr(r.get(), args));
  }
  for (auto& p : op->residual) {
    RADB_RETURN_NOT_OK(SubstituteExpr(p.get(), args));
  }
  for (auto& e : op->exprs) {
    RADB_RETURN_NOT_OK(SubstituteExpr(e.get(), args));
  }
  for (auto& g : op->group_exprs) {
    RADB_RETURN_NOT_OK(SubstituteExpr(g.get(), args));
  }
  for (auto& agg : op->aggs) {
    if (agg.arg) RADB_RETURN_NOT_OK(SubstituteExpr(agg.arg.get(), args));
  }
  for (auto& [k, desc] : op->sort_keys) {
    (void)desc;
    RADB_RETURN_NOT_OK(SubstituteExpr(k.get(), args));
  }
  for (auto& c : op->children) {
    RADB_RETURN_NOT_OK(SubstituteOp(c.get(), args));
  }
  return Status::OK();
}

}  // namespace

PlanDeps CollectTableDeps(const LogicalOp& plan) {
  PlanDeps out;
  CollectDepsRec(plan, &out);
  return out;
}

bool DepsCurrent(const std::vector<TableDep>& deps, const Catalog& catalog) {
  for (const TableDep& d : deps) {
    auto table = catalog.GetTable(d.name);
    if (!table.ok()) return false;
    if ((*table)->id() != d.table_id) return false;
    if ((*table)->version() != d.version) return false;
  }
  return true;
}

Status SubstituteParams(LogicalOp* plan, const std::vector<Value>& args) {
  return SubstituteOp(plan, args);
}

size_t ResultBytes(const RowSet& rows) {
  size_t bytes = 0;
  for (const Row& r : rows) bytes += RowByteSize(r);
  return bytes;
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t catalog_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->plan->catalog_version != catalog_version) {
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

CacheStatsSnapshot PlanCache::stats() const {
  CacheStatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

void ResultCache::EraseLocked(std::list<Node>::iterator it) {
  tracker_.Release(it->entry->bytes);
  index_.erase(it->key);
  lru_.erase(it);
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key, const Catalog& catalog,
    size_t caller_budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const CachedResult& e = *it->second->entry;
  if (e.schema_version != catalog.schema_version() ||
      !DepsCurrent(e.deps, catalog)) {
    EraseLocked(it->second);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (caller_budget_bytes != 0 && e.fill_peak_bytes > caller_budget_bytes) {
    // Entry stays resident (other callers may afford it), but this
    // caller must run cold and hit its own honest ResourceExhausted.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->entry;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const CachedResult> entry) {
  if (budget_bytes_ == 0 || entry->bytes > budget_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  while (!tracker_.TryReserve(entry->bytes)) {
    if (lru_.empty()) return;  // cannot happen with bytes <= budget
    EraseLocked(std::prev(lru_.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(Node{key, std::move(entry)});
  index_[key] = lru_.begin();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) EraseLocked(std::prev(lru_.end()));
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

CacheStatsSnapshot ResultCache::stats() const {
  CacheStatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace radb
