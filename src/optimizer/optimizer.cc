#include "optimizer/optimizer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace radb {

namespace {

/// Placement marker for slots that exist only hypothetically while
/// TryEarlyProjection evaluates the §4.1 rule. Must not collide with a
/// real slot id — 0 is a real slot, so SIZE_MAX is used.
constexpr size_t kHypotheticalSlot = SIZE_MAX;

/// Selectivity guesses for non-join predicates, in the tradition of
/// System R's magic numbers.
double PredicateSelectivity(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kCompare) {
    switch (e.compare_op) {
      case CompareOp::kEq:
        return 0.1;
      case CompareOp::kNe:
        return 0.9;
      default:
        return 0.4;
    }
  }
  return 0.25;
}

// ---- Index selection (post-pass) ------------------------------------
//
// Runs over the finished plan: every Filter-over-Scan whose conjuncts
// bound an indexed INTEGER column becomes an index range scan (the
// filter stays — the index is a pre-filter, so residual predicates and
// the bounds themselves are still re-checked row by row), and a hash
// join whose inner is a bare indexed scan with a much larger
// cardinality becomes an index-nested-loop join.

struct IndexSelectionStats {
  size_t index_scans = 0;
  size_t index_nl_joins = 0;
};

/// Maps a slot emitted by `scan` back to its table column index.
bool SlotToScanColumn(const LogicalOp& scan, size_t slot, size_t* col) {
  for (size_t i = 0; i < scan.output.size(); ++i) {
    if (scan.output[i].slot == slot) {
      *col = scan.scan_columns[i];
      return true;
    }
  }
  return false;
}

/// Inclusive integer bounds accumulated for one table column.
struct ColumnBounds {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  bool bounded = false;
  bool eq() const { return bounded && lo == hi; }
};

/// Folds `col op literal` into `b`. `op` is already oriented with the
/// column on the left.
void FoldBound(CompareOp op, int64_t v, ColumnBounds* b) {
  switch (op) {
    case CompareOp::kEq:
      b->lo = std::max(b->lo, v);
      b->hi = std::min(b->hi, v);
      break;
    case CompareOp::kLt:
      if (v == INT64_MIN) return;  // always false; leave to the filter
      b->hi = std::min(b->hi, v - 1);
      break;
    case CompareOp::kLe:
      b->hi = std::min(b->hi, v);
      break;
    case CompareOp::kGt:
      if (v == INT64_MAX) return;
      b->lo = std::max(b->lo, v + 1);
      break;
    case CompareOp::kGe:
      b->lo = std::max(b->lo, v);
      break;
    case CompareOp::kNe:
      return;  // not a range
  }
  b->bounded = true;
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

/// Extracts `slot op int64` from a conjunct of shape
/// `colref op int-literal` (either orientation). NULL-safe: the
/// rewritten probe only ever *narrows* the scan, and the filter above
/// re-evaluates the predicate (false on NULL) anyway.
bool MatchSimpleComparison(const BoundExpr& e, size_t* slot, CompareOp* op,
                           int64_t* value) {
  if (e.kind != BoundExpr::Kind::kCompare || e.children.size() != 2) {
    return false;
  }
  const BoundExpr* l = e.children[0].get();
  const BoundExpr* r = e.children[1].get();
  CompareOp oriented = e.compare_op;
  if (l->kind == BoundExpr::Kind::kLiteral &&
      r->kind == BoundExpr::Kind::kColumnRef) {
    std::swap(l, r);
    oriented = FlipCompare(oriented);
  }
  if (l->kind != BoundExpr::Kind::kColumnRef ||
      r->kind != BoundExpr::Kind::kLiteral) {
    return false;
  }
  if (r->literal.kind() != TypeKind::kInteger) return false;
  *slot = l->slot;
  *op = oriented;
  *value = r->literal.int_value();
  return true;
}

/// Annotates `scan` with the best usable index for `bounds`
/// (table-column -> accumulated bounds). Composite B+ tree semantics:
/// the second key column's bounds only narrow the probe when the first
/// is equality-bound; otherwise it stays open.
bool ChooseIndex(LogicalOp& scan,
                 const std::map<size_t, ColumnBounds>& bounds) {
  const IndexDef* best = nullptr;
  int best_score = 0;
  for (const auto& idx : scan.table->indexes()) {
    if (!idx->usable()) continue;
    auto first = bounds.find(idx->columns[0]);
    if (first == bounds.end() || !first->second.bounded) continue;
    int score = first->second.eq() ? 2 : 1;
    if (first->second.eq() && idx->columns.size() > 1) {
      auto second = bounds.find(idx->columns[1]);
      if (second != bounds.end() && second->second.bounded) {
        score += second->second.eq() ? 2 : 1;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = idx.get();
    }
  }
  if (best == nullptr) return false;

  scan.index_name = best->name;
  scan.index_lo.assign(best->columns.size(), INT64_MIN);
  scan.index_hi.assign(best->columns.size(), INT64_MAX);
  double selectivity = 1.0;
  for (size_t k = 0; k < best->columns.size(); ++k) {
    auto it = bounds.find(best->columns[k]);
    if (it == bounds.end() || !it->second.bounded) break;
    scan.index_lo[k] = it->second.lo;
    scan.index_hi[k] = it->second.hi;
    selectivity *= it->second.eq() ? 0.1 : 0.4;
    if (!it->second.eq()) break;  // range stops the composite prefix
  }
  scan.est_rows = std::max(1.0, scan.est_rows * selectivity);
  return true;
}

void SelectIndexes(LogicalOp& op, IndexSelectionStats* stats) {
  for (auto& child : op.children) SelectIndexes(*child, stats);

  if (op.kind == LogicalOp::Kind::kFilter && !op.children.empty() &&
      op.children[0]->kind == LogicalOp::Kind::kScan) {
    LogicalOp& scan = *op.children[0];
    if (!scan.table || scan.table->indexes().empty()) return;
    std::map<size_t, ColumnBounds> bounds;
    for (const BoundExprPtr& pred : op.predicates) {
      size_t slot, col;
      CompareOp cmp;
      int64_t value;
      if (!MatchSimpleComparison(*pred, &slot, &cmp, &value)) continue;
      if (!SlotToScanColumn(scan, slot, &col)) continue;
      FoldBound(cmp, value, &bounds[col]);
    }
    if (ChooseIndex(scan, bounds)) ++stats->index_scans;
    return;
  }

  if (op.kind == LogicalOp::Kind::kJoin && !op.equi_keys.empty() &&
      op.children.size() == 2 &&
      op.children[1]->kind == LogicalOp::Kind::kScan) {
    // Index-nested-loop: the inner must be a *bare* indexed scan (a
    // filtered inner would lose its pushed predicates if probed) whose
    // first index column is equi-probed, and the outer meaningfully
    // smaller — otherwise the hash join's single build pass wins.
    LogicalOp& inner = *op.children[1];
    const LogicalOp& outer = *op.children[0];
    if (!inner.table || inner.table->indexes().empty()) return;
    if (!inner.index_name.empty()) return;  // already a range scan
    if (outer.est_rows * 4.0 > inner.est_rows) return;
    // Table columns equi-probed by a bare inner-side column ref.
    std::set<size_t> probed;
    for (const auto& [l, r] : op.equi_keys) {
      size_t col;
      if (r->kind == BoundExpr::Kind::kColumnRef &&
          r->type.kind() == TypeKind::kInteger &&
          SlotToScanColumn(inner, r->slot, &col)) {
        probed.insert(col);
      }
    }
    for (const auto& idx : inner.table->indexes()) {
      if (!idx->usable()) continue;
      if (!probed.count(idx->columns[0])) continue;
      inner.index_name = idx->name;
      op.index_nl = true;
      ++stats->index_nl_joins;
      break;
    }
  }
}

}  // namespace

class Optimizer::PlanBuilder {
 public:
  PlanBuilder(const Options& options, size_t next_slot,
              obs::ObsContext obs = {})
      : options_(options), next_slot_(next_slot), obs_(obs) {}

  Result<LogicalOpPtr> Build(BoundQuery& q);

 private:
  /// One WHERE conjunct with the metadata the join search needs.
  struct Conjunct {
    BoundExprPtr expr;
    uint64_t rel_mask = 0;
    // Equi-join decomposition (a = b with each side touching exactly
    // one distinct relation group).
    bool is_equi = false;
    uint64_t lhs_mask = 0, rhs_mask = 0;
  };

  /// An expression that could be computed early: a whole SELECT item,
  /// GROUP BY key, or aggregate argument.
  struct Pending {
    enum class Target { kSelect, kGroup, kAggArg };
    Target target;
    size_t index;          // into the corresponding BoundQuery list
    const BoundExpr* expr; // borrowed from the query
    uint64_t rel_mask = 0;
    std::set<size_t> slots;
    double result_bytes = 0.0;
  };

  /// A candidate plan for a subset of relations.
  struct SubPlan {
    LogicalOpPtr op;
    double cost = 0.0;
    /// pending index -> slot carrying the precomputed value.
    std::map<size_t, size_t> placed;
    /// conjunct indexes already enforced inside this plan.
    std::set<size_t> applied;
  };

  double TypeWidth(const DataType& t) const {
    if (!options_.la_aware_costing && t.is_la()) return 16.0;
    return t.EstimatedByteSize(options_.default_dim);
  }

  double RowWidth(const LogicalOp& op) const {
    double w = 8.0;  // per-tuple overhead
    for (const SlotInfo& s : op.output) w += TypeWidth(s.type);
    return w;
  }

  void Annotate(LogicalOp* op, double rows) const {
    op->est_rows = std::max(rows, 1.0);
    op->est_row_bytes = RowWidth(*op);
  }

  double NodeCost(const LogicalOp& op) const {
    return op.est_rows * (op.est_row_bytes + options_.per_row_cpu_cost);
  }

  uint64_t MaskOfSlots(const std::set<size_t>& slots) const {
    uint64_t mask = 0;
    for (size_t s : slots) {
      auto it = slot_to_rel_.find(s);
      if (it != slot_to_rel_.end()) mask |= (1ULL << it->second);
    }
    return mask;
  }

  Result<SubPlan> MakeLeaf(size_t rel_index);
  Result<SubPlan> JoinPlans(const SubPlan& left, const SubPlan& right,
                            uint64_t left_mask, uint64_t right_mask);
  /// Applies the early-projection rule (§4.1) to `plan`, whose output
  /// covers `mask`. May fuse computations into a join node or append a
  /// Project.
  Status TryEarlyProjection(SubPlan* plan, uint64_t mask);

  /// Slots that must still be visible above a plan covering `mask`
  /// given its placement state.
  std::set<size_t> NeededAbove(uint64_t mask, const SubPlan& plan) const;

  /// Replaces pending expressions that were placed early by column
  /// references in the final select/group/agg expressions.
  void ApplyPlacements(BoundQuery& q, const SubPlan& plan) const;

  const Options& options_;
  size_t next_slot_;
  obs::ObsContext obs_;
  /// Candidate (sub)plans costed during the join-order search — the
  /// optimizer.plans_considered counter.
  size_t plans_considered_ = 0;
  size_t early_projections_ = 0;

  std::vector<Conjunct> conjuncts_;
  std::vector<Pending> pendings_;
  std::set<size_t> always_needed_;  // slots referenced outside pendings
  std::map<size_t, size_t> slot_to_rel_;
  std::vector<const BoundRelation*> relations_;
};

// ---------------------------------------------------------------------

std::set<size_t> Optimizer::PlanBuilder::NeededAbove(
    uint64_t mask, const SubPlan& plan) const {
  std::set<size_t> needed = always_needed_;
  for (size_t ci = 0; ci < conjuncts_.size(); ++ci) {
    if (plan.applied.count(ci)) continue;
    std::set<size_t> slots;
    conjuncts_[ci].expr->CollectSlots(&slots);
    needed.insert(slots.begin(), slots.end());
  }
  for (size_t pi = 0; pi < pendings_.size(); ++pi) {
    auto it = plan.placed.find(pi);
    if (it != plan.placed.end()) {
      // The computed value itself — unless it is only hypothetically
      // placed, in which case it has no slot yet.
      if (it->second != kHypotheticalSlot) needed.insert(it->second);
    } else {
      needed.insert(pendings_[pi].slots.begin(), pendings_[pi].slots.end());
    }
  }
  (void)mask;
  return needed;
}

Result<Optimizer::PlanBuilder::SubPlan> Optimizer::PlanBuilder::MakeLeaf(
    size_t rel_index) {
  const BoundRelation& rel = *relations_[rel_index];
  SubPlan plan;

  if (rel.table) {
    // Column pruning: emit only slots referenced anywhere.
    std::set<size_t> referenced = always_needed_;
    for (const Conjunct& c : conjuncts_) {
      std::set<size_t> s;
      c.expr->CollectSlots(&s);
      referenced.insert(s.begin(), s.end());
    }
    for (const Pending& p : pendings_) {
      referenced.insert(p.slots.begin(), p.slots.end());
    }
    std::vector<size_t> cols;
    std::vector<SlotInfo> out;
    for (size_t i = 0; i < rel.columns.size(); ++i) {
      if (referenced.count(rel.columns[i].slot)) {
        cols.push_back(i);
        out.push_back(rel.columns[i]);
      }
    }
    plan.op = MakeScan(rel.table, rel.alias, std::move(cols), std::move(out));
    Annotate(plan.op.get(), static_cast<double>(rel.table->num_rows()));
    plan.cost = NodeCost(*plan.op);
  } else {
    // Derived table / view: plan the nested query independently.
    PlanBuilder nested(options_, next_slot_, obs_);
    RADB_ASSIGN_OR_RETURN(plan.op, nested.Build(*rel.subquery));
    next_slot_ = std::max(next_slot_, nested.next_slot_);
    plan.cost = plan.op->est_cost;
    // The relation exposes (possibly renamed) subquery outputs; keep
    // the plan's own SlotInfos (same slots, original names).
  }

  // Push down single-relation predicates.
  const uint64_t my_mask = 1ULL << rel_index;
  std::vector<BoundExprPtr> preds;
  double selectivity = 1.0;
  for (size_t ci = 0; ci < conjuncts_.size(); ++ci) {
    const Conjunct& c = conjuncts_[ci];
    if (c.rel_mask == my_mask && c.rel_mask != 0) {
      preds.push_back(c.expr->Clone());
      selectivity *= PredicateSelectivity(*c.expr);
      plan.applied.insert(ci);
    }
  }
  if (!preds.empty()) {
    auto filter = std::make_unique<LogicalOp>();
    filter->kind = LogicalOp::Kind::kFilter;
    filter->predicates = std::move(preds);
    filter->output = plan.op->output;
    const double rows = plan.op->est_rows * selectivity;
    filter->children.push_back(std::move(plan.op));
    Annotate(filter.get(), rows);
    plan.cost += NodeCost(*filter);
    plan.op = std::move(filter);
  }
  RADB_RETURN_NOT_OK(TryEarlyProjection(&plan, my_mask));
  return plan;
}

Result<Optimizer::PlanBuilder::SubPlan> Optimizer::PlanBuilder::JoinPlans(
    const SubPlan& left, const SubPlan& right, uint64_t left_mask,
    uint64_t right_mask) {
  const uint64_t mask = left_mask | right_mask;
  ++plans_considered_;
  SubPlan plan;
  plan.placed = left.placed;
  plan.placed.insert(right.placed.begin(), right.placed.end());
  plan.applied = left.applied;
  plan.applied.insert(right.applied.begin(), right.applied.end());
  plan.cost = left.cost + right.cost;

  auto join = std::make_unique<LogicalOp>();
  join->kind = LogicalOp::Kind::kJoin;

  // Classify the conjuncts that become enforceable at this node.
  double selectivity = 1.0;
  const double lrows = left.op->est_rows;
  const double rrows = right.op->est_rows;
  for (size_t ci = 0; ci < conjuncts_.size(); ++ci) {
    if (plan.applied.count(ci)) continue;
    const Conjunct& c = conjuncts_[ci];
    if (c.rel_mask == 0 || (c.rel_mask & mask) != c.rel_mask) continue;
    if (c.is_equi &&
        ((c.lhs_mask & left_mask) == c.lhs_mask &&
         (c.rhs_mask & right_mask) == c.rhs_mask)) {
      join->equi_keys.emplace_back(c.expr->children[0]->Clone(),
                                   c.expr->children[1]->Clone());
    } else if (c.is_equi &&
               ((c.lhs_mask & right_mask) == c.lhs_mask &&
                (c.rhs_mask & left_mask) == c.rhs_mask)) {
      join->equi_keys.emplace_back(c.expr->children[1]->Clone(),
                                   c.expr->children[0]->Clone());
    } else {
      join->residual.push_back(c.expr->Clone());
      selectivity *= PredicateSelectivity(*c.expr);
      plan.applied.insert(ci);
      continue;
    }
    selectivity *= 1.0 / std::max(1.0, std::max(lrows, rrows));
    plan.applied.insert(ci);
  }

  join->output = left.op->output;
  join->output.insert(join->output.end(), right.op->output.begin(),
                      right.op->output.end());
  const double rows = std::max(1.0, lrows * rrows * selectivity);
  join->children.push_back(left.op->Clone());
  join->children.push_back(right.op->Clone());
  Annotate(join.get(), rows);
  plan.op = std::move(join);
  plan.cost += NodeCost(*plan.op);
  RADB_RETURN_NOT_OK(TryEarlyProjection(&plan, mask));
  return plan;
}

Status Optimizer::PlanBuilder::TryEarlyProjection(SubPlan* plan,
                                                  uint64_t mask) {
  if (!options_.enable_early_projection) return Status::OK();

  // Collect candidates: unplaced pendings whose inputs are all here.
  std::vector<size_t> candidates;
  for (size_t pi = 0; pi < pendings_.size(); ++pi) {
    const Pending& p = pendings_[pi];
    if (plan->placed.count(pi)) continue;
    if (p.rel_mask == 0 || (p.rel_mask & mask) != p.rel_mask) continue;
    candidates.push_back(pi);
  }
  if (candidates.empty()) return Status::OK();

  // What must survive if we place every candidate.
  SubPlan hypothetical;
  hypothetical.applied = plan->applied;
  hypothetical.placed = plan->placed;
  for (size_t pi : candidates) hypothetical.placed[pi] = kHypotheticalSlot;
  std::set<size_t> needed = NeededAbove(mask, hypothetical);

  // Benefit: bytes of columns we could drop vs bytes of the computed
  // results we would add.
  double dropped = 0.0;
  for (const SlotInfo& s : plan->op->output) {
    if (!needed.count(s.slot)) dropped += TypeWidth(s.type);
  }
  double added = 0.0;
  for (size_t pi : candidates) added += pendings_[pi].result_bytes;
  if (dropped <= added) return Status::OK();
  ++early_projections_;
  obs::ScopedSpan rule_span(obs_.tracer, "rule:early_projection",
                            "optimizer");

  // Build the projection: surviving columns plus computed values.
  std::vector<BoundExprPtr> exprs;
  std::vector<SlotInfo> out;
  for (const SlotInfo& s : plan->op->output) {
    if (!needed.count(s.slot)) continue;
    exprs.push_back(MakeBoundColumnRef(s.slot, s.type, s.name));
    out.push_back(s);
  }
  for (size_t pi : candidates) {
    const Pending& p = pendings_[pi];
    const size_t slot = next_slot_++;
    exprs.push_back(p.expr->Clone());
    out.push_back(SlotInfo{slot, p.expr->ToString(), p.expr->type});
    plan->placed[pi] = slot;
  }

  if (plan->op->kind == LogicalOp::Kind::kJoin && plan->op->exprs.empty()) {
    // Fuse into the join so the wide row is never materialized; the
    // node's cost is recomputed with the narrow output.
    plan->cost -= NodeCost(*plan->op);
    plan->op->exprs = std::move(exprs);
    plan->op->output = std::move(out);
    Annotate(plan->op.get(), plan->op->est_rows);
    plan->cost += NodeCost(*plan->op);
  } else {
    auto project = std::make_unique<LogicalOp>();
    project->kind = LogicalOp::Kind::kProject;
    project->exprs = std::move(exprs);
    project->output = std::move(out);
    const double rows = plan->op->est_rows;
    project->children.push_back(std::move(plan->op));
    Annotate(project.get(), rows);
    plan->cost += NodeCost(*project);
    plan->op = std::move(project);
  }
  return Status::OK();
}

void Optimizer::PlanBuilder::ApplyPlacements(BoundQuery& q,
                                             const SubPlan& plan) const {
  for (const auto& [pi, slot] : plan.placed) {
    const Pending& p = pendings_[pi];
    BoundExprPtr ref =
        MakeBoundColumnRef(slot, p.expr->type, p.expr->ToString());
    switch (p.target) {
      case Pending::Target::kSelect:
        q.select_exprs[p.index] = std::move(ref);
        break;
      case Pending::Target::kGroup:
        q.group_exprs[p.index] = std::move(ref);
        break;
      case Pending::Target::kAggArg:
        q.aggs[p.index].arg = std::move(ref);
        break;
    }
  }
}

Result<LogicalOpPtr> Optimizer::PlanBuilder::Build(BoundQuery& q) {
  // ---- Setup: relation indexes and slot ownership. ----
  relations_.clear();
  slot_to_rel_.clear();
  conjuncts_.clear();
  pendings_.clear();
  always_needed_.clear();
  for (size_t i = 0; i < q.relations.size(); ++i) {
    relations_.push_back(&q.relations[i]);
    for (const SlotInfo& s : q.relations[i].columns) {
      slot_to_rel_[s.slot] = i;
    }
  }
  if (relations_.size() > 63) {
    return Status::NotImplemented("more than 63 relations in one query");
  }

  // ---- Conjunct classification. ----
  for (BoundExprPtr& c : q.conjuncts) {
    Conjunct conj;
    std::set<size_t> slots;
    c->CollectSlots(&slots);
    conj.rel_mask = MaskOfSlots(slots);
    if (c->kind == BoundExpr::Kind::kCompare &&
        c->compare_op == CompareOp::kEq) {
      std::set<size_t> ls, rs;
      c->children[0]->CollectSlots(&ls);
      c->children[1]->CollectSlots(&rs);
      const uint64_t lm = MaskOfSlots(ls), rm = MaskOfSlots(rs);
      if (lm != 0 && rm != 0 && (lm & rm) == 0 &&
          std::popcount(lm) == 1 && std::popcount(rm) == 1) {
        conj.is_equi = true;
        conj.lhs_mask = lm;
        conj.rhs_mask = rm;
      }
    }
    conj.expr = std::move(c);
    conjuncts_.push_back(std::move(conj));
  }
  q.conjuncts.clear();

  // ---- Pending (early-computable) expressions. ----
  auto consider_pending = [&](Pending::Target target, size_t index,
                              const BoundExpr* expr) {
    if (expr == nullptr) return;
    if (expr->kind == BoundExpr::Kind::kColumnRef ||
        expr->kind == BoundExpr::Kind::kLiteral) {
      // Nothing to compute; just mark its slots as needed at the top.
      std::set<size_t> slots;
      expr->CollectSlots(&slots);
      always_needed_.insert(slots.begin(), slots.end());
      return;
    }
    Pending p;
    p.target = target;
    p.index = index;
    p.expr = expr;
    expr->CollectSlots(&p.slots);
    p.rel_mask = MaskOfSlots(p.slots);
    p.result_bytes = TypeWidth(expr->type);
    if (p.rel_mask == 0) {
      return;  // constant expression: computed at the top for free
    }
    pendings_.push_back(std::move(p));
  };

  if (q.has_aggregate) {
    for (size_t i = 0; i < q.group_exprs.size(); ++i) {
      consider_pending(Pending::Target::kGroup, i, q.group_exprs[i].get());
    }
    for (size_t i = 0; i < q.aggs.size(); ++i) {
      consider_pending(Pending::Target::kAggArg, i, q.aggs[i].arg.get());
    }
    // Select expressions in aggregate queries reference group/agg
    // output slots, which live above the join anyway.
  } else {
    for (size_t i = 0; i < q.select_exprs.size(); ++i) {
      consider_pending(Pending::Target::kSelect, i, q.select_exprs[i].get());
    }
  }

  // ---- Join order search. ----
  const size_t n = relations_.size();
  SubPlan best;
  obs::ScopedSpan search_span(obs_.tracer, "rule:join_order_search",
                              "optimizer");
  if (n == 1) {
    RADB_ASSIGN_OR_RETURN(best, MakeLeaf(0));
  } else if (n <= options_.dp_relation_limit) {
    // Subset DP (bushy, cross products allowed).
    std::vector<std::unique_ptr<SubPlan>> memo(1ULL << n);
    for (size_t i = 0; i < n; ++i) {
      RADB_ASSIGN_OR_RETURN(SubPlan leaf, MakeLeaf(i));
      memo[1ULL << i] = std::make_unique<SubPlan>(std::move(leaf));
    }
    for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
      if (std::popcount(mask) < 2) continue;
      // Enumerate proper subset splits; canonical: lowest bit in lhs.
      const uint64_t lowest = mask & (~mask + 1);
      for (uint64_t sub = (mask - 1) & mask; sub > 0;
           sub = (sub - 1) & mask) {
        if (!(sub & lowest)) continue;
        const uint64_t other = mask ^ sub;
        if (other == 0) continue;
        if (!memo[sub] || !memo[other]) continue;
        RADB_ASSIGN_OR_RETURN(
            SubPlan cand, JoinPlans(*memo[sub], *memo[other], sub, other));
        if (!memo[mask] || cand.cost < memo[mask]->cost) {
          memo[mask] = std::make_unique<SubPlan>(std::move(cand));
        }
      }
    }
    best = std::move(*memo[(1ULL << n) - 1]);
  } else {
    // Greedy: start from the cheapest pair, add the relation that
    // yields the cheapest next join.
    std::vector<std::unique_ptr<SubPlan>> leaves(n);
    for (size_t i = 0; i < n; ++i) {
      RADB_ASSIGN_OR_RETURN(SubPlan leaf, MakeLeaf(i));
      leaves[i] = std::make_unique<SubPlan>(std::move(leaf));
    }
    std::set<size_t> remaining;
    for (size_t i = 0; i < n; ++i) remaining.insert(i);
    // Seed with the cheapest leaf.
    size_t seed = 0;
    for (size_t i = 1; i < n; ++i) {
      if (leaves[i]->cost < leaves[seed]->cost) seed = i;
    }
    SubPlan current = std::move(*leaves[seed]);
    uint64_t mask = 1ULL << seed;
    remaining.erase(seed);
    while (!remaining.empty()) {
      std::unique_ptr<SubPlan> best_next;
      size_t best_rel = 0;
      for (size_t i : remaining) {
        RADB_ASSIGN_OR_RETURN(
            SubPlan cand, JoinPlans(current, *leaves[i], mask, 1ULL << i));
        if (!best_next || cand.cost < best_next->cost) {
          best_next = std::make_unique<SubPlan>(std::move(cand));
          best_rel = i;
        }
      }
      current = std::move(*best_next);
      mask |= 1ULL << best_rel;
      remaining.erase(best_rel);
    }
    best = std::move(current);
  }
  search_span.AddArg("plans_considered", std::to_string(plans_considered_));
  search_span.End();

  // Leftover conjuncts (e.g. slot-free predicates like WHERE 1 = 0).
  std::vector<BoundExprPtr> leftovers;
  for (size_t ci = 0; ci < conjuncts_.size(); ++ci) {
    if (!best.applied.count(ci)) {
      leftovers.push_back(conjuncts_[ci].expr->Clone());
    }
  }
  if (!leftovers.empty()) {
    auto filter = std::make_unique<LogicalOp>();
    filter->kind = LogicalOp::Kind::kFilter;
    filter->predicates = std::move(leftovers);
    filter->output = best.op->output;
    const double rows = best.op->est_rows * 0.25;
    filter->children.push_back(std::move(best.op));
    Annotate(filter.get(), rows);
    best.cost += NodeCost(*filter);
    best.op = std::move(filter);
  }

  // ---- Rewrite placed expressions, then assemble the top. ----
  ApplyPlacements(q, best);

  LogicalOpPtr root = std::move(best.op);
  double cost = best.cost;

  if (q.has_aggregate) {
    auto agg = std::make_unique<LogicalOp>();
    agg->kind = LogicalOp::Kind::kAggregate;
    for (auto& g : q.group_exprs) agg->group_exprs.push_back(std::move(g));
    for (auto& a : q.aggs) agg->aggs.push_back(std::move(a));
    for (size_t i = 0; i < q.group_outputs.size(); ++i) {
      agg->output.push_back(q.group_outputs[i]);
    }
    for (const AggCall& a : agg->aggs) {
      agg->output.push_back(SlotInfo{
          a.out_slot, a.name + "(...)", a.result_type});
    }
    const double rows = agg->group_exprs.empty()
                            ? 1.0
                            : std::max(1.0, root->est_rows * 0.1);
    agg->children.push_back(std::move(root));
    Annotate(agg.get(), rows);
    cost += NodeCost(*agg);
    root = std::move(agg);

    if (q.having) {
      auto having = std::make_unique<LogicalOp>();
      having->kind = LogicalOp::Kind::kFilter;
      having->predicates.push_back(std::move(q.having));
      having->output = root->output;
      const double hrows = std::max(1.0, root->est_rows * 0.25);
      having->children.push_back(std::move(root));
      Annotate(having.get(), hrows);
      cost += NodeCost(*having);
      root = std::move(having);
    }
  }

  // Final projection to the declared output.
  {
    auto project = std::make_unique<LogicalOp>();
    project->kind = LogicalOp::Kind::kProject;
    for (size_t i = 0; i < q.select_exprs.size(); ++i) {
      project->exprs.push_back(std::move(q.select_exprs[i]));
      project->output.push_back(q.output[i]);
    }
    const double rows = root->est_rows;
    project->children.push_back(std::move(root));
    Annotate(project.get(), rows);
    cost += NodeCost(*project);
    root = std::move(project);
  }

  if (q.distinct) {
    auto distinct = std::make_unique<LogicalOp>();
    distinct->kind = LogicalOp::Kind::kDistinct;
    distinct->output = root->output;
    const double rows = std::max(1.0, root->est_rows * 0.5);
    distinct->children.push_back(std::move(root));
    Annotate(distinct.get(), rows);
    cost += NodeCost(*distinct);
    root = std::move(distinct);
  }
  if (!q.order_by.empty()) {
    auto sort = std::make_unique<LogicalOp>();
    sort->kind = LogicalOp::Kind::kSort;
    for (auto& [e, desc] : q.order_by) {
      sort->sort_keys.emplace_back(std::move(e), desc);
    }
    sort->output = root->output;
    const double rows = root->est_rows;
    sort->children.push_back(std::move(root));
    Annotate(sort.get(), rows);
    cost += NodeCost(*sort);
    root = std::move(sort);
  }
  if (q.limit) {
    auto limit = std::make_unique<LogicalOp>();
    limit->kind = LogicalOp::Kind::kLimit;
    limit->limit = *q.limit;
    limit->output = root->output;
    const double rows =
        std::min(root->est_rows, static_cast<double>(*q.limit));
    limit->children.push_back(std::move(root));
    Annotate(limit.get(), rows);
    cost += NodeCost(*limit);
    root = std::move(limit);
  }

  root->est_cost = cost;
  if (obs_.metrics != nullptr) {
    obs_.metrics->Add("optimizer.queries_planned", 1);
    obs_.metrics->Add("optimizer.plans_considered", plans_considered_);
    obs_.metrics->Add("optimizer.early_projections", early_projections_);
    obs_.metrics->Observe("optimizer.relations_per_query",
                          static_cast<double>(relations_.size()));
  }
  return root;
}

Result<LogicalOpPtr> Optimizer::Plan(std::unique_ptr<BoundQuery> query,
                                     obs::ObsContext obs) {
  PlanBuilder builder(options_, query->next_slot, obs);
  RADB_ASSIGN_OR_RETURN(LogicalOpPtr plan, builder.Build(*query));
  if (options_.enable_index_selection) {
    IndexSelectionStats stats;
    SelectIndexes(*plan, &stats);
    if (obs.metrics != nullptr &&
        (stats.index_scans > 0 || stats.index_nl_joins > 0)) {
      obs.metrics->Add("optimizer.index_scans", stats.index_scans);
      obs.metrics->Add("optimizer.index_nl_joins", stats.index_nl_joins);
    }
  }
  // Physical annotation pass: mark which nodes the columnar engine can
  // take, so the executor's pipeline choice is a plan property (visible
  // in EXPLAIN ANALYZE) rather than a runtime guess.
  AnnotateBatchCapability(*plan);
  return plan;
}

}  // namespace radb
