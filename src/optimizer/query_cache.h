#ifndef RADB_OPTIMIZER_QUERY_CACHE_H_
#define RADB_OPTIMIZER_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "mem/memory_tracker.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace radb {

// ---------------------------------------------------------------------------
// Dependency tracking
// ---------------------------------------------------------------------------

/// One base table a cached entry was built from, identified by name
/// AND process-unique table id (so DROP + CREATE under the same name
/// never aliases) at a specific data version.
struct TableDep {
  std::string name;
  uint64_t table_id = 0;
  uint64_t version = 0;
};

/// What a plan reads: one dep per distinct Scan table, plus whether
/// any scan hits a radb_* virtual table. System-table scans make a
/// statement uncacheable — each scan materializes a fresh
/// point-in-time snapshot, so replaying old rows would be wrong.
struct PlanDeps {
  std::vector<TableDep> deps;
  bool has_system_table = false;
};

PlanDeps CollectTableDeps(const LogicalOp& plan);

/// True when every dep still resolves to the same physical table
/// (same id) at the same data version.
bool DepsCurrent(const std::vector<TableDep>& deps, const Catalog& catalog);

// ---------------------------------------------------------------------------
// Prepared-statement parameter substitution
// ---------------------------------------------------------------------------

/// Rewrites every kParam expression in the plan into a literal from
/// `args` (in place; the plan must be a private clone). Internal error
/// on an out-of-range parameter ordinal.
Status SubstituteParams(LogicalOp* plan, const std::vector<Value>& args);

/// Serialized byte size of a result (what a ResultCache entry charges
/// against its memory budget).
size_t ResultBytes(const RowSet& rows);

// ---------------------------------------------------------------------------
// Stats (shared by both caches)
// ---------------------------------------------------------------------------

struct CacheStatsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// An optimized plan ready for re-execution. The LogicalOp tree is
/// immutable after caching (the executor takes it by const ref and
/// keeps per-run state externally), so one entry is safely shared by
/// any number of concurrent executions.
struct CachedPlan {
  std::shared_ptr<const LogicalOp> plan;
  /// Visible output columns (hidden ORDER BY sort keys trimmed).
  std::vector<SlotInfo> out_columns;
  /// Catalog::version() at plan time. A cached plan embeds table
  /// pointers and cardinality estimates, so ANY catalog change —
  /// schema or data — retires it.
  uint64_t catalog_version = 0;
  /// Catalog::schema_version() at plan time (result-entry validation).
  uint64_t schema_version = 0;
  std::vector<TableDep> deps;
  /// Whether results of this plan may be cached (deterministic,
  /// no system-table scans).
  bool result_cacheable = false;
};

/// LRU map: normalized statement text -> CachedPlan, capped by entry
/// count. Thread-safe; lookups validate the catalog version and drop
/// stale entries.
class PlanCache {
 public:
  explicit PlanCache(size_t max_entries) : max_entries_(max_entries) {}

  /// Returns the entry for `key` when present AND planned at exactly
  /// `catalog_version`; a stale entry is erased (counted as an
  /// invalidation and a miss).
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t catalog_version);

  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  void Clear();
  size_t entries() const;
  CacheStatsSnapshot stats() const;

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  mutable std::mutex mu_;
  size_t max_entries_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// A materialized result set pinned with everything needed to decide
/// whether serving it is still correct.
struct CachedResult {
  std::vector<SlotInfo> columns;
  RowSet rows;
  /// Bytes charged against the cache's memory budget.
  size_t bytes = 0;
  /// Peak query-memory high-water mark of the run that filled this
  /// entry. A hit is served only to callers whose effective budget is
  /// unlimited or >= this value, so a budget that would have failed
  /// the cold run with ResourceExhausted still fails on a warm one.
  size_t fill_peak_bytes = 0;
  /// Catalog::schema_version() at fill time. Table deps alone cannot
  /// catch a view being redefined over different tables.
  uint64_t schema_version = 0;
  std::vector<TableDep> deps;
};

/// Memory-governed LRU of materialized results, keyed by normalized
/// statement text. Entry bytes are charged against a dedicated
/// standalone MemoryTracker root; inserting past the budget evicts
/// from the cold end. Served entries are shared_ptr, so eviction never
/// invalidates an in-flight reader.
class ResultCache {
 public:
  /// `budget_bytes` == 0 disables insertion entirely (nothing is ever
  /// cached), NOT "unlimited" — an unbounded result cache would be a
  /// memory leak with a good excuse.
  ResultCache(std::string label, size_t budget_bytes,
              obs::MetricsRegistry* metrics = nullptr)
      : budget_bytes_(budget_bytes),
        tracker_(std::move(label), budget_bytes, metrics) {}

  /// Validating lookup: serves only entries whose schema version and
  /// every table dep are still current; stale entries are erased
  /// (invalidation + miss). `caller_budget_bytes` is the looking-up
  /// query's effective memory budget (0 = unlimited): an entry whose
  /// filling run peaked above it is refused (counted as a miss, kept
  /// resident), so a budget that would have failed the cold run with
  /// ResourceExhausted is never satisfied from cache.
  std::shared_ptr<const CachedResult> Lookup(const std::string& key,
                                             const Catalog& catalog,
                                             size_t caller_budget_bytes = 0);

  /// Inserts (replacing any previous entry for `key`), evicting LRU
  /// entries until `entry->bytes` fits the budget. Entries larger than
  /// the whole budget are dropped silently.
  void Insert(const std::string& key, std::shared_ptr<const CachedResult> entry);

  void Clear();
  size_t entries() const;
  size_t bytes_in_use() const { return tracker_.bytes_in_use(); }
  size_t budget_bytes() const { return budget_bytes_; }
  CacheStatsSnapshot stats() const;

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const CachedResult> entry;
  };

  /// Unlinks the node at `it`, releasing its charge. Caller holds mu_.
  void EraseLocked(std::list<Node>::iterator it);

  mutable std::mutex mu_;
  size_t budget_bytes_;
  mem::MemoryTracker tracker_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace radb

#endif  // RADB_OPTIMIZER_QUERY_CACHE_H_
