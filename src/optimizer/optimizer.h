#ifndef RADB_OPTIMIZER_OPTIMIZER_H_
#define RADB_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "binder/binder.h"
#include "common/result.h"
#include "obs/obs.h"
#include "plan/logical_plan.h"

namespace radb {

/// Cost-based optimizer. The pipeline is classical — predicate
/// pushdown, column pruning, join-order search — with the paper's two
/// additions (§4):
///
///  1. *LA-aware costing*: intermediate-result widths are computed
///     from the inferred MATRIX/VECTOR dimensions that templated
///     function signatures propagate, so an 80 MB-per-tuple join is
///     costed as such rather than as a generic attribute.
///  2. *Early (fused) projection*: a SELECT expression (or aggregate
///     argument / group key) whose inputs are all available at an
///     intermediate join is evaluated right there when doing so
///     shrinks the data — including plans that take a cross product
///     first, which is exactly how §4.1's (π(S × R)) ⋈ T plan beats
///     π((S ⋈ T) ⋈ R) by three orders of magnitude of intermediate
///     volume.
class Optimizer {
 public:
  struct Options {
    /// Master switch for the §4.1 rule (off = the "rule-based
    /// optimizer" strawman the paper compares against).
    bool enable_early_projection = true;
    /// When false, MATRIX/VECTOR columns are costed like any other
    /// attribute (fixed small width) — the "optimizer without access
    /// to good size information" of §4.1.
    bool la_aware_costing = true;
    /// Width assumed for LA objects with unknown dims (and for all LA
    /// objects when la_aware_costing is off).
    double default_dim = 100.0;
    /// Per-row CPU charge, expressed in byte-equivalents.
    double per_row_cpu_cost = 64.0;
    /// Subset-DP join search is used up to this many relations;
    /// beyond it a greedy heuristic takes over.
    size_t dp_relation_limit = 10;
    /// Post-pass that turns Filter-over-Scan integer comparisons into
    /// B+ tree index range scans and eligible hash joins into
    /// index-nested-loop joins (off = always full scans).
    bool enable_index_selection = true;
  };

  Optimizer() : options_(Options{}) {}
  explicit Optimizer(const Options& options) : options_(options) {}

  /// Produces an executable logical plan; consumes the bound query.
  Result<LogicalOpPtr> Plan(std::unique_ptr<BoundQuery> query) {
    return Plan(std::move(query), obs::ObsContext{});
  }
  /// As above, with tracing/metrics: emits per-rule sub-spans
  /// (join-order search, early projection) and counters such as
  /// optimizer.plans_considered.
  Result<LogicalOpPtr> Plan(std::unique_ptr<BoundQuery> query,
                            obs::ObsContext obs);

  const Options& options() const { return options_; }

 private:
  class PlanBuilder;
  Options options_;
};

}  // namespace radb

#endif  // RADB_OPTIMIZER_OPTIMIZER_H_
