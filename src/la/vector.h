#ifndef RADB_LA_VECTOR_H_
#define RADB_LA_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace radb::la {

/// Dense vector of doubles. This is the runtime payload of the SQL
/// VECTOR type. There is no row/column distinction; orientation is up
/// to the interpretation of each operation (paper §3.1).
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t n, double fill = 0.0) : data_(n, fill) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  const std::vector<double>& values() const { return data_; }

  /// Number of bytes of payload (used by the optimizer's cost model).
  size_t ByteSize() const { return data_.size() * sizeof(double); }

  bool operator==(const Vector& other) const { return data_ == other.data_; }

  /// Max |a_i - b_i|; returns infinity on size mismatch.
  double MaxAbsDiff(const Vector& other) const;

  /// Sum of entries.
  double Sum() const;
  /// Euclidean norm.
  double Norm2() const;
  double Min() const;
  double Max() const;
  /// Index of the smallest / largest entry (first on ties).
  size_t ArgMin() const;
  size_t ArgMax() const;

  std::string ToString(size_t max_elems = 8) const;

 private:
  std::vector<double> data_;
};

/// dst += src, shape-checked, allocation-free (see matrix.h).
Status AddInPlace(Vector* dst, const Vector& src);

/// a + b, element-wise. Shape-checked.
Result<Vector> Add(const Vector& a, const Vector& b);
/// a - b, element-wise. Shape-checked.
Result<Vector> Sub(const Vector& a, const Vector& b);
/// a ∘ b (Hadamard), element-wise. Shape-checked.
Result<Vector> Mul(const Vector& a, const Vector& b);
/// a / b element-wise. Shape-checked; division by zero yields inf/nan
/// per IEEE-754 (matches SQL double semantics).
Result<Vector> Div(const Vector& a, const Vector& b);

/// Broadcast ops with a scalar on either side.
Vector AddScalar(const Vector& a, double s);
Vector SubScalar(const Vector& a, double s);   // a - s
Vector RsubScalar(double s, const Vector& a);  // s - a
Vector MulScalar(const Vector& a, double s);
Vector DivScalar(const Vector& a, double s);   // a / s
Vector RdivScalar(double s, const Vector& a);  // s / a

/// Dot product <a, b>. Shape-checked.
Result<double> InnerProduct(const Vector& a, const Vector& b);

}  // namespace radb::la

#endif  // RADB_LA_VECTOR_H_
