#ifndef RADB_LA_RANDOM_H_
#define RADB_LA_RANDOM_H_

#include "common/rng.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::la {

/// Uniform [lo, hi) random vector.
Vector RandomVector(Rng& rng, size_t n, double lo = -1.0, double hi = 1.0);

/// Uniform [lo, hi) random matrix.
Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols, double lo = -1.0,
                    double hi = 1.0);

/// Random symmetric positive-definite matrix (A = BᵀB + eps·I); used
/// for Riemannian metrics and well-conditioned inverses in tests.
Matrix RandomSpdMatrix(Rng& rng, size_t n, double eps = 0.5);

}  // namespace radb::la

#endif  // RADB_LA_RANDOM_H_
