#include "la/tiled.h"

#include "common/thread_pool.h"
#include "mem/spill_file.h"
#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <utility>

namespace radb::la {

std::vector<Tile> SplitIntoTiles(const Matrix& m, size_t tile_rows,
                                 size_t tile_cols) {
  std::vector<Tile> tiles;
  for (size_t r0 = 0, tr = 0; r0 < m.rows(); r0 += tile_rows, ++tr) {
    const size_t r1 = std::min(r0 + tile_rows, m.rows());
    for (size_t c0 = 0, tc = 0; c0 < m.cols(); c0 += tile_cols, ++tc) {
      const size_t c1 = std::min(c0 + tile_cols, m.cols());
      Matrix t(r1 - r0, c1 - c0);
      for (size_t r = r0; r < r1; ++r) {
        for (size_t c = c0; c < c1; ++c) t.At(r - r0, c - c0) = m.At(r, c);
      }
      tiles.push_back(Tile{tr, tc, std::move(t)});
    }
  }
  return tiles;
}

Result<Matrix> AssembleTiles(const std::vector<Tile>& tiles) {
  if (tiles.empty()) return Matrix();
  size_t n_tr = 0, n_tc = 0;
  for (const Tile& t : tiles) {
    n_tr = std::max(n_tr, t.tile_row + 1);
    n_tc = std::max(n_tc, t.tile_col + 1);
  }
  // Row heights and column widths must be consistent across the grid.
  std::vector<size_t> row_h(n_tr, 0), col_w(n_tc, 0);
  std::vector<char> seen(n_tr * n_tc, 0);
  for (const Tile& t : tiles) {
    const size_t idx = t.tile_row * n_tc + t.tile_col;
    if (seen[idx]) {
      return Status::InvalidArgument("duplicate tile (" +
                                     std::to_string(t.tile_row) + "," +
                                     std::to_string(t.tile_col) + ")");
    }
    seen[idx] = 1;
    if (row_h[t.tile_row] == 0) {
      row_h[t.tile_row] = t.mat.rows();
    } else if (row_h[t.tile_row] != t.mat.rows()) {
      return Status::InvalidArgument("inconsistent tile heights in tile row " +
                                     std::to_string(t.tile_row));
    }
    if (col_w[t.tile_col] == 0) {
      col_w[t.tile_col] = t.mat.cols();
    } else if (col_w[t.tile_col] != t.mat.cols()) {
      return Status::InvalidArgument("inconsistent tile widths in tile col " +
                                     std::to_string(t.tile_col));
    }
  }
  for (char s : seen) {
    if (!s) return Status::InvalidArgument("tile grid has holes");
  }
  std::vector<size_t> row_off(n_tr + 1, 0), col_off(n_tc + 1, 0);
  for (size_t i = 0; i < n_tr; ++i) row_off[i + 1] = row_off[i] + row_h[i];
  for (size_t i = 0; i < n_tc; ++i) col_off[i + 1] = col_off[i] + col_w[i];

  Matrix out(row_off[n_tr], col_off[n_tc]);
  for (const Tile& t : tiles) {
    const size_t r0 = row_off[t.tile_row];
    const size_t c0 = col_off[t.tile_col];
    for (size_t r = 0; r < t.mat.rows(); ++r) {
      for (size_t c = 0; c < t.mat.cols(); ++c) {
        out.At(r0 + r, c0 + c) = t.mat.At(r, c);
      }
    }
  }
  return out;
}

namespace {

/// One per-group accumulator tile under the budgeted path: either
/// resident (mat holds the running sum, `bytes` charged) or evicted
/// to spill run `run_index`.
struct TileAcc {
  Matrix mat;
  size_t rows = 0, cols = 0;
  size_t bytes = 0;
  size_t last_used = 0;  // LRU clock value of the latest update
  bool resident = false;
  size_t run_index = 0;
};

}  // namespace

Result<std::vector<Tile>> TiledMultiply(const std::vector<Tile>& lhs,
                                        const std::vector<Tile>& rhs) {
  return TiledMultiply(lhs, rhs, TiledOptions{});
}

Result<std::vector<Tile>> TiledMultiply(const std::vector<Tile>& lhs,
                                        const std::vector<Tile>& rhs,
                                        const TiledOptions& options) {
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("la.tiled_multiply_calls", 1);
    reg->Add("la.tiles_in", lhs.size() + rhs.size());
  }

  // Group rhs tiles by tile_row for the "join".
  std::map<size_t, std::vector<const Tile*>> rhs_by_row;
  for (const Tile& t : rhs) rhs_by_row[t.tile_row].push_back(&t);

  // "GROUP BY lhs.tileRow, rhs.tileCol" with SUM(matrix_multiply(..)).
  // Both paths below fold products into their group in match order —
  // the accumulation order of the all-sequential code — so results
  // are bit-identical at any thread count and any budget.
  std::vector<std::pair<const Tile*, const Tile*>> matches;
  for (const Tile& l : lhs) {
    auto it = rhs_by_row.find(l.tile_col);
    if (it == rhs_by_row.end()) continue;
    for (const Tile* r : it->second) matches.emplace_back(&l, r);
  }

  const bool budgeted =
      options.tracker != nullptr && options.tracker->has_budget();
  if (!budgeted) {
    // Unbudgeted: materialize every product (in parallel, each into
    // its own slot), then fold sequentially.
    std::vector<Matrix> products(matches.size());
    std::vector<Status> statuses(matches.size(), Status::OK());
    const auto compute = [&](size_t i) {
      // Tile-granular cancellation: a fired token skips the remaining
      // products; the lowest-index status wins below, so the reported
      // error does not depend on which thread noticed first.
      if (options.cancel != nullptr) {
        Status cancelled = options.cancel->Check();
        if (!cancelled.ok()) {
          statuses[i] = std::move(cancelled);
          return;
        }
      }
      auto prod = Multiply(matches[i].first->mat, matches[i].second->mat);
      if (prod.ok()) {
        products[i] = std::move(*prod);
      } else {
        statuses[i] = prod.status();
      }
    };
    ThreadPool* pool = GlobalPool();
    if (pool != nullptr && pool->num_threads() > 1 && matches.size() > 1) {
      pool->ParallelFor(matches.size(), compute);
    } else {
      for (size_t i = 0; i < matches.size(); ++i) compute(i);
    }
    for (Status& s : statuses) RADB_RETURN_NOT_OK(std::move(s));
    std::map<std::pair<size_t, size_t>, Matrix> groups;
    for (size_t i = 0; i < matches.size(); ++i) {
      auto key = std::make_pair(matches[i].first->tile_row,
                                matches[i].second->tile_col);
      auto g = groups.find(key);
      if (g == groups.end()) {
        groups.emplace(key, std::move(products[i]));
      } else {
        RADB_ASSIGN_OR_RETURN(g->second, Add(g->second, products[i]));
      }
    }
    std::vector<Tile> out;
    out.reserve(groups.size());
    for (auto& [key, mat] : groups) {
      out.push_back(Tile{key.first, key.second, std::move(mat)});
    }
    return out;
  }

  // Budgeted: stream one product at a time and keep the accumulator
  // tiles under the budget, evicting the least-recently-updated one
  // to a spill file when room is needed. Eviction round-trips raw
  // doubles, so a reloaded accumulator is bit-identical to one that
  // never left memory; the per-group fold order is still match order.
  // Spillable class: accumulators are evictable, so their residency
  // is gated against the TOTAL budget, not the unspillable pool.
  mem::MemoryTracker tracker("TiledMultiply accumulators", options.tracker,
                             /*unspillable=*/false);
  std::map<std::pair<size_t, size_t>, TileAcc> groups;
  std::unique_ptr<mem::SpillFile> file;
  size_t tick = 0;

  auto evict_lru = [&]() -> Result<bool> {
    TileAcc* victim = nullptr;
    for (auto& [key, acc] : groups) {
      if (!acc.resident) continue;
      if (victim == nullptr || acc.last_used < victim->last_used) {
        victim = &acc;
      }
    }
    if (victim == nullptr) return false;
    if (file == nullptr) {
      file = std::make_unique<mem::SpillFile>();
      const std::string tag =
          options.query_id == 0
              ? std::string()
              : "q" + std::to_string(options.query_id) + "-tiles";
      RADB_RETURN_NOT_OK(file->Create(options.spill_dir, tag));
    }
    const size_t n = victim->rows * victim->cols * sizeof(double);
    RADB_ASSIGN_OR_RETURN(
        victim->run_index,
        file->WriteRun(reinterpret_cast<const char*>(victim->mat.data()), n));
    victim->mat = Matrix();
    victim->resident = false;
    tracker.Release(victim->bytes);
    tracker.RecordSpill(n, 1);
    if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
      reg->Add("la.tile_evictions", 1);
    }
    return true;
  };
  auto make_room = [&](size_t bytes) -> Status {
    while (!tracker.TryReserve(bytes)) {
      RADB_ASSIGN_OR_RETURN(bool evicted, evict_lru());
      // Nothing left to evict: surface ResourceExhausted via the
      // hard reserve.
      if (!evicted) return tracker.Reserve(bytes);
    }
    return Status::OK();
  };
  auto reload = [&](TileAcc& acc) -> Status {
    RADB_RETURN_NOT_OK(make_room(acc.bytes));
    RADB_ASSIGN_OR_RETURN(std::string blob, file->ReadRun(acc.run_index));
    std::vector<double> data(acc.rows * acc.cols);
    std::memcpy(data.data(), blob.data(), blob.size());
    acc.mat = Matrix(acc.rows, acc.cols, std::move(data));
    acc.resident = true;
    return Status::OK();
  };

  for (const auto& [l, r] : matches) {
    if (options.cancel != nullptr) RADB_RETURN_NOT_OK(options.cancel->Check());
    const size_t prod_bytes = l->mat.rows() * r->mat.cols() * sizeof(double);
    RADB_RETURN_NOT_OK(make_room(prod_bytes));
    RADB_ASSIGN_OR_RETURN(Matrix prod, Multiply(l->mat, r->mat));
    const auto key = std::make_pair(l->tile_row, r->tile_col);
    auto g = groups.find(key);
    if (g == groups.end()) {
      // First product of this group becomes its accumulator; the
      // product's charge transfers to it.
      TileAcc acc;
      acc.rows = prod.rows();
      acc.cols = prod.cols();
      acc.bytes = prod_bytes;
      acc.mat = std::move(prod);
      acc.resident = true;
      acc.last_used = ++tick;
      groups.emplace(key, std::move(acc));
      continue;
    }
    TileAcc& acc = g->second;
    if (!acc.resident) RADB_RETURN_NOT_OK(reload(acc));
    RADB_ASSIGN_OR_RETURN(acc.mat, Add(acc.mat, prod));
    acc.last_used = ++tick;
    tracker.Release(prod_bytes);
  }

  std::vector<Tile> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    if (!acc.resident) RADB_RETURN_NOT_OK(reload(acc));
    out.push_back(Tile{key.first, key.second, std::move(acc.mat)});
    // Ownership (and memory responsibility) passes to the caller.
    acc.resident = false;
    tracker.Release(acc.bytes);
  }
  return out;
}

}  // namespace radb::la
