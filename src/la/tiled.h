#ifndef RADB_LA_TILED_H_
#define RADB_LA_TILED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "la/matrix.h"
#include "mem/memory_tracker.h"

namespace radb::la {

/// One tile of a large logically-single matrix stored relationally
/// (paper §3.4: bigMatrix(tileRow, tileCol, mat MATRIX[b][b])).
struct Tile {
  size_t tile_row = 0;
  size_t tile_col = 0;
  Matrix mat;
};

/// Splits `m` into tiles of at most `tile_rows` x `tile_cols` (edge
/// tiles may be smaller). Tiles are emitted row-major.
std::vector<Tile> SplitIntoTiles(const Matrix& m, size_t tile_rows,
                                 size_t tile_cols);

/// Reassembles tiles into a dense matrix. Tiles must form a complete,
/// non-overlapping grid; InvalidArgument otherwise.
Result<Matrix> AssembleTiles(const std::vector<Tile>& tiles);

/// Memory-governance knobs for TiledMultiply. With a budgeted tracker
/// the kernel streams tile products one at a time and keeps the
/// per-group accumulator tiles under the budget by evicting the
/// least-recently-updated ones to a spill file (raw doubles, so a
/// reloaded accumulator is bit-identical to one that never left
/// memory). Accumulation order stays match order in every case, so
/// budgeted and unbudgeted results are bit-identical.
struct TiledOptions {
  mem::MemoryTracker* tracker = nullptr;
  std::string spill_dir;  // "" = system temp dir
  /// Owning query's id; embedded in accumulator spill-file names.
  uint64_t query_id = 0;
  /// Checked once per tile-product match (tile granularity); a fired
  /// token aborts the multiply with Cancelled/DeadlineExceeded.
  const CancellationToken* cancel = nullptr;
};

/// Reference tiled multiply: joins tiles on lhs.tile_col ==
/// rhs.tile_row, multiplies, and sums per (tile_row, tile_col) group —
/// exactly the relational plan of the SQL in paper §3.4. Exposed for
/// testing the SQL path against a standalone implementation.
Result<std::vector<Tile>> TiledMultiply(const std::vector<Tile>& lhs,
                                        const std::vector<Tile>& rhs);
/// Same, under a memory budget (see TiledOptions).
Result<std::vector<Tile>> TiledMultiply(const std::vector<Tile>& lhs,
                                        const std::vector<Tile>& rhs,
                                        const TiledOptions& options);

}  // namespace radb::la

#endif  // RADB_LA_TILED_H_
