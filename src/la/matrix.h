#ifndef RADB_LA_MATRIX_H_
#define RADB_LA_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "la/vector.h"

namespace radb::la {

/// Dense row-major matrix of doubles; the runtime payload of the SQL
/// MATRIX type. All kernels are written from scratch (no BLAS/LAPACK,
/// per the reproduction rules); GEMM uses a cache-blocked i-k-j loop.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  /// r-by-r identity.
  static Matrix Identity(size_t r);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Allocation-exact heap bytes (capacity-aware) — the number the
  /// MemoryTracker is charged. Serialized size is rows*cols*8 and is
  /// computed by Value::ByteSize directly.
  size_t ByteSize() const { return data_.capacity() * sizeof(double); }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Max |a_ij - b_ij|; infinity on shape mismatch.
  double MaxAbsDiff(const Matrix& other) const;

  Vector Row(size_t r) const;
  Vector Col(size_t c) const;
  /// Copies `v` into row `r` (sizes must already match; asserts).
  void SetRow(size_t r, const Vector& v);
  void SetCol(size_t c, const Vector& v);

  double Sum() const;
  double Min() const;
  double Max() const;
  /// Frobenius norm.
  double NormF() const;

  /// Per-row minima as a column vector (used by the SystemML-style
  /// engine's rowMins).
  Vector RowMins() const;
  Vector RowMaxs() const;

  std::string ToString(size_t max_rows = 4, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// out = a * b. Shape-checked: a.cols == b.rows.
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);
/// out = aᵀ * a without materializing aᵀ (the "tsmm" pattern the
/// SystemML engine exploits for Gram matrices).
Matrix TransposeSelfMultiply(const Matrix& a);
/// out = a * v (v interpreted as a column vector). Shape-checked.
Result<Vector> MatrixVectorMultiply(const Matrix& a, const Vector& v);
/// out = vᵀ * a (v interpreted as a row vector). Shape-checked.
Result<Vector> VectorMatrixMultiply(const Vector& v, const Matrix& a);
/// Outer product a bᵀ: (|a| x |b|) matrix.
Matrix OuterProduct(const Vector& a, const Vector& b);
/// aᵀ.
Matrix Transpose(const Matrix& a);
/// Main diagonal of a square matrix. Shape-checked (paper §4.2:
/// diag(MATRIX[a][a]) -> VECTOR[a]).
Result<Vector> Diagonal(const Matrix& a);
/// Square diagonal matrix with `v` on the diagonal.
Matrix DiagonalMatrix(const Vector& v);

/// dst += src, shape-checked. The allocation-free accumulate path the
/// SUM aggregate uses (one fresh matrix per row would dominate Gram
/// computations otherwise).
Status AddInPlace(Matrix* dst, const Matrix& src);

/// Element-wise arithmetic, shape-checked.
Result<Matrix> Add(const Matrix& a, const Matrix& b);
Result<Matrix> Sub(const Matrix& a, const Matrix& b);
Result<Matrix> Mul(const Matrix& a, const Matrix& b);  // Hadamard
Result<Matrix> Div(const Matrix& a, const Matrix& b);

/// Scalar broadcast.
Matrix AddScalar(const Matrix& a, double s);
Matrix SubScalar(const Matrix& a, double s);   // a - s
Matrix RsubScalar(double s, const Matrix& a);  // s - a
Matrix MulScalar(const Matrix& a, double s);
Matrix DivScalar(const Matrix& a, double s);   // a / s
Matrix RdivScalar(double s, const Matrix& a);  // s / a

/// LU decomposition with partial pivoting, in place on a copy.
/// Returns {LU, perm, sign} or NumericError for singular input.
struct LuDecomposition {
  Matrix lu;
  std::vector<size_t> perm;
  int sign = 1;
};
Result<LuDecomposition> LuDecompose(const Matrix& a);

/// Solves a x = b for square a via LU. Shape-checked.
Result<Vector> Solve(const Matrix& a, const Vector& b);
/// Solves a X = B column-by-column. Shape-checked.
Result<Matrix> SolveMatrix(const Matrix& a, const Matrix& b);
/// a⁻¹ for square non-singular a. NumericError when singular.
Result<Matrix> Inverse(const Matrix& a);
/// Cholesky factor L with a = L Lᵀ (lower triangular). NumericError
/// when `a` is not (numerically) symmetric positive definite.
Result<Matrix> Cholesky(const Matrix& a);
/// SPD solve through Cholesky — the right factorization for normal
/// equations XᵀX β = Xᵀy (about half the flops of LU).
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);
/// det(a) via LU. Shape-checked.
Result<double> Determinant(const Matrix& a);
/// Trace of a square matrix.
Result<double> Trace(const Matrix& a);

}  // namespace radb::la

#endif  // RADB_LA_MATRIX_H_
