#include "la/random.h"

namespace radb::la {

Vector RandomVector(Rng& rng, size_t n, double lo, double hi) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.Uniform(lo, hi);
  return v;
}

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols, double lo,
                    double hi) {
  Matrix m(rows, cols);
  double* p = m.data();
  for (size_t i = 0; i < rows * cols; ++i) p[i] = rng.Uniform(lo, hi);
  return m;
}

Matrix RandomSpdMatrix(Rng& rng, size_t n, double eps) {
  Matrix b = RandomMatrix(rng, n, n);
  Matrix spd = TransposeSelfMultiply(b);
  for (size_t i = 0; i < n; ++i) spd.At(i, i) += eps;
  return spd;
}

}  // namespace radb::la
