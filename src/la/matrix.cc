#include "la/matrix.h"

#include "common/thread_pool.h"
#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace radb::la {

namespace {

Status ShapeMismatch(const char* op, size_t ar, size_t ac, size_t br,
                     size_t bc) {
  return Status::DimensionMismatch(
      std::string(op) + ": shapes " + std::to_string(ar) + "x" +
      std::to_string(ac) + " and " + std::to_string(br) + "x" +
      std::to_string(bc) + " are incompatible");
}

/// Dispatches band(row_begin, row_end) over contiguous bands of
/// output rows on the process-global thread pool, or inline when
/// there is no pool, the product is too small to amortize the
/// fork/join (below ~64K flops), or we are already inside a pool
/// worker (the executor's per-worker loops — ParallelRanges then runs
/// inline by itself). Every output row is produced entirely by one
/// band with the same inner-loop order as the sequential code, so
/// kernel results are bit-identical at any thread count.
void ForRowBands(size_t rows, size_t flops,
                 const std::function<void(size_t, size_t)>& band) {
  constexpr size_t kMinParallelFlops = 1 << 16;
  ThreadPool* pool = GlobalPool();
  if (pool == nullptr || pool->num_threads() <= 1 ||
      flops < kMinParallelFlops) {
    band(0, rows);
    return;
  }
  pool->ParallelRanges(rows, band);
}

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows * cols);
}

Matrix Matrix::Identity(size_t r) {
  Matrix m(r, r);
  for (size_t i = 0; i < r; ++i) m.At(i, i) = 1.0;
  return m;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

Vector Matrix::Row(size_t r) const {
  Vector v(cols_);
  const double* p = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) v[c] = p[c];
  return v;
}

Vector Matrix::Col(size_t c) const {
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = At(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  assert(v.size() == cols_);
  double* p = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) p[c] = v[c];
}

void Matrix::SetCol(size_t c, const Vector& v) {
  assert(v.size() == rows_);
  for (size_t r = 0; r < rows_; ++r) At(r, c) = v[r];
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Min() const {
  double m = std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::min(m, v);
  return m;
}

double Matrix::Max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::max(m, v);
  return m;
}

double Matrix::NormF() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Vector Matrix::RowMins() const {
  Vector out(rows_, std::numeric_limits<double>::infinity());
  for (size_t r = 0; r < rows_; ++r) {
    const double* p = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out[r] = std::min(out[r], p[c]);
  }
  return out;
}

Vector Matrix::RowMaxs() const {
  Vector out(rows_, -std::numeric_limits<double>::infinity());
  for (size_t r = 0; r < rows_; ++r) {
    const double* p = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out[r] = std::max(out[r], p[c]);
  }
  return out;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_ && r < max_rows; ++r) {
    if (r > 0) os << "; ";
    for (size_t c = 0; c < cols_ && c < max_cols; ++c) {
      if (c > 0) os << " ";
      os << At(r, c);
    }
    if (cols_ > max_cols) os << " ...";
  }
  if (rows_ > max_rows) os << "; ...";
  os << "]";
  return os.str();
}

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return ShapeMismatch("matrix_multiply", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("la.matmul_calls", 1);
    reg->Add("la.matmul_flops", 2 * m * k * n);
  }
  Matrix out(m, n);
  // Cache-blocked i-k-j: the inner loop streams over contiguous rows of
  // b and out, which is the right access pattern for row-major data.
  // Parallel bands split only the i dimension, so each output row keeps
  // the sequential k-accumulation order.
  constexpr size_t kBlock = 64;
  ForRowBands(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
    for (size_t i0 = r0; i0 < r1; i0 += kBlock) {
      const size_t i1 = std::min(i0 + kBlock, r1);
      for (size_t k0 = 0; k0 < k; k0 += kBlock) {
        const size_t k1 = std::min(k0 + kBlock, k);
        for (size_t i = i0; i < i1; ++i) {
          double* out_row = out.RowPtr(i);
          const double* a_row = a.RowPtr(i);
          for (size_t kk = k0; kk < k1; ++kk) {
            const double aik = a_row[kk];
            if (aik == 0.0) continue;
            const double* b_row = b.RowPtr(kk);
            for (size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

Matrix TransposeSelfMultiply(const Matrix& a) {
  const size_t n = a.cols();
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("la.tsmm_calls", 1);
    reg->Add("la.tsmm_flops", a.rows() * n * n);  // symmetric half x2
  }
  Matrix out(n, n);
  // Accumulate rank-1 updates row by row; exploit symmetry. Parallel
  // bands split the output rows i: every band streams all data rows r
  // in order, so each output element sees the sequential accumulation
  // order.
  ForRowBands(n, a.rows() * n * n, [&](size_t i_begin, size_t i_end) {
    for (size_t r = 0; r < a.rows(); ++r) {
      const double* row = a.RowPtr(r);
      for (size_t i = i_begin; i < i_end; ++i) {
        const double v = row[i];
        if (v == 0.0) continue;
        double* out_row = out.RowPtr(i);
        for (size_t j = i; j < n; ++j) out_row[j] += v * row[j];
      }
    }
  });
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

Result<Vector> MatrixVectorMultiply(const Matrix& a, const Vector& v) {
  if (a.cols() != v.size()) {
    return ShapeMismatch("matrix_vector_multiply", a.rows(), a.cols(),
                         v.size(), 1);
  }
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("la.matvec_calls", 1);
    reg->Add("la.matvec_flops", 2 * a.rows() * a.cols());
  }
  Vector out(a.rows());
  // Each out[r] is an independent dot product — trivially band-safe.
  ForRowBands(a.rows(), 2 * a.rows() * a.cols(), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const double* row = a.RowPtr(r);
      double s = 0.0;
      for (size_t c = 0; c < a.cols(); ++c) s += row[c] * v[c];
      out[r] = s;
    }
  });
  return out;
}

Result<Vector> VectorMatrixMultiply(const Vector& v, const Matrix& a) {
  if (v.size() != a.rows()) {
    return ShapeMismatch("vector_matrix_multiply", 1, v.size(), a.rows(),
                         a.cols());
  }
  Vector out(a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double* row = a.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) out[c] += vr * row[c];
  }
  return out;
}

Matrix OuterProduct(const Vector& a, const Vector& b) {
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("la.outer_product_calls", 1);
    reg->Add("la.outer_product_flops", a.size() * b.size());
  }
  Matrix out(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    const double ar = a[r];
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < b.size(); ++c) row[c] = ar * b[c];
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  // Tiled transpose to stay cache-friendly on large matrices.
  constexpr size_t kTile = 32;
  for (size_t r0 = 0; r0 < a.rows(); r0 += kTile) {
    const size_t r1 = std::min(r0 + kTile, a.rows());
    for (size_t c0 = 0; c0 < a.cols(); c0 += kTile) {
      const size_t c1 = std::min(c0 + kTile, a.cols());
      for (size_t r = r0; r < r1; ++r) {
        for (size_t c = c0; c < c1; ++c) out.At(c, r) = a.At(r, c);
      }
    }
  }
  return out;
}

Result<Vector> Diagonal(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::DimensionMismatch(
        "diag: matrix is " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + ", expected square");
  }
  Vector out(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) out[i] = a.At(i, i);
  return out;
}

Matrix DiagonalMatrix(const Vector& v) {
  Matrix out(v.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) out.At(i, i) = v[i];
  return out;
}

namespace {

template <typename F>
Result<Matrix> ElementWise(const char* op, const Matrix& a, const Matrix& b,
                           F f) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeMismatch(op, a.rows(), a.cols(), b.rows(), b.cols());
  }
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const size_t n = a.rows() * a.cols();
  for (size_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Matrix ScalarWise(const Matrix& a, F f) {
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  double* po = out.data();
  const size_t n = a.rows() * a.cols();
  for (size_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Status AddInPlace(Matrix* dst, const Matrix& src) {
  if (dst->rows() != src.rows() || dst->cols() != src.cols()) {
    return ShapeMismatch("add", dst->rows(), dst->cols(), src.rows(),
                         src.cols());
  }
  double* d = dst->data();
  const double* s = src.data();
  const size_t n = src.rows() * src.cols();
  for (size_t i = 0; i < n; ++i) d[i] += s[i];
  return Status::OK();
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  return ElementWise("add", a, b, [](double x, double y) { return x + y; });
}
Result<Matrix> Sub(const Matrix& a, const Matrix& b) {
  return ElementWise("sub", a, b, [](double x, double y) { return x - y; });
}
Result<Matrix> Mul(const Matrix& a, const Matrix& b) {
  return ElementWise("mul", a, b, [](double x, double y) { return x * y; });
}
Result<Matrix> Div(const Matrix& a, const Matrix& b) {
  return ElementWise("div", a, b, [](double x, double y) { return x / y; });
}

Matrix AddScalar(const Matrix& a, double s) {
  return ScalarWise(a, [s](double x) { return x + s; });
}
Matrix SubScalar(const Matrix& a, double s) {
  return ScalarWise(a, [s](double x) { return x - s; });
}
Matrix RsubScalar(double s, const Matrix& a) {
  return ScalarWise(a, [s](double x) { return s - x; });
}
Matrix MulScalar(const Matrix& a, double s) {
  return ScalarWise(a, [s](double x) { return x * s; });
}
Matrix DivScalar(const Matrix& a, double s) {
  return ScalarWise(a, [s](double x) { return x / s; });
}
Matrix RdivScalar(double s, const Matrix& a) {
  return ScalarWise(a, [s](double x) { return s / x; });
}

Result<LuDecomposition> LuDecompose(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::DimensionMismatch(
        "lu: matrix is " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + ", expected square");
  }
  const size_t n = a.rows();
  LuDecomposition d;
  d.lu = a;
  d.perm.resize(n);
  for (size_t i = 0; i < n; ++i) d.perm[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |value| in column k.
    size_t pivot = k;
    double best = std::fabs(d.lu.At(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(d.lu.At(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      return Status::NumericError("matrix is singular (zero pivot at column " +
                                  std::to_string(k) + ")");
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(d.lu.At(k, c), d.lu.At(pivot, c));
      }
      std::swap(d.perm[k], d.perm[pivot]);
      d.sign = -d.sign;
    }
    const double pivot_val = d.lu.At(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = d.lu.At(r, k) / pivot_val;
      d.lu.At(r, k) = factor;
      if (factor == 0.0) continue;
      double* row_r = d.lu.RowPtr(r);
      const double* row_k = d.lu.RowPtr(k);
      for (size_t c = k + 1; c < n; ++c) row_r[c] -= factor * row_k[c];
    }
  }
  return d;
}

namespace {

// Forward/back substitution using a finished LU decomposition.
Vector LuSolveOne(const LuDecomposition& d, const Vector& b) {
  const size_t n = d.perm.size();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[d.perm[i]];
    const double* row = d.lu.RowPtr(i);
    for (size_t j = 0; j < i; ++j) s -= row[j] * y[j];
    y[i] = s;
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    const double* row = d.lu.RowPtr(ii);
    for (size_t j = ii + 1; j < n; ++j) s -= row[j] * x[j];
    x[ii] = s / row[ii];
  }
  return x;
}

}  // namespace

Result<Vector> Solve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return ShapeMismatch("solve", a.rows(), a.cols(), b.size(), 1);
  }
  RADB_ASSIGN_OR_RETURN(LuDecomposition d, LuDecompose(a));
  return LuSolveOne(d, b);
}

Result<Matrix> SolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return ShapeMismatch("solve", a.rows(), a.cols(), b.rows(), b.cols());
  }
  RADB_ASSIGN_OR_RETURN(LuDecomposition d, LuDecompose(a));
  Matrix out(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    out.SetCol(c, LuSolveOne(d, b.Col(c)));
  }
  return out;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::DimensionMismatch(
        "matrix_inverse: matrix is " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + ", expected square");
  }
  return SolveMatrix(a, Matrix::Identity(a.rows()));
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::DimensionMismatch("cholesky: expected square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0) {
      return Status::NumericError(
          "matrix is not positive definite (pivot " + std::to_string(diag) +
          " at column " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l.At(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a.At(i, j);
      const double* row_i = l.RowPtr(i);
      const double* row_j = l.RowPtr(j);
      for (size_t k = 0; k < j; ++k) s -= row_i[k] * row_j[k];
      l.At(i, j) = s / ljj;
    }
  }
  return l;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return ShapeMismatch("solve_spd", a.rows(), a.cols(), b.size(), 1);
  }
  RADB_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  const size_t n = b.size();
  // Forward substitution L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l.RowPtr(i);
    for (size_t j = 0; j < i; ++j) s -= row[j] * y[j];
    y[i] = s / row[i];
  }
  // Back substitution Lᵀ x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l.At(j, ii) * x[j];
    x[ii] = s / l.At(ii, ii);
  }
  return x;
}

Result<double> Determinant(const Matrix& a) {
  auto d = LuDecompose(a);
  if (!d.ok()) {
    if (d.status().code() == StatusCode::kNumericError) return 0.0;
    return d.status();
  }
  double det = d->sign;
  for (size_t i = 0; i < a.rows(); ++i) det *= d->lu.At(i, i);
  return det;
}

Result<double> Trace(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::DimensionMismatch("trace: expected square matrix");
  }
  double t = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) t += a.At(i, i);
  return t;
}

}  // namespace radb::la
