#include "la/vector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace radb::la {

namespace {

Status SizeMismatch(const char* op, size_t a, size_t b) {
  return Status::DimensionMismatch(
      std::string(op) + ": vector sizes " + std::to_string(a) + " and " +
      std::to_string(b) + " do not match");
}

}  // namespace

double Vector::MaxAbsDiff(const Vector& other) const {
  if (size() != other.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

double Vector::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Vector::Norm2() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Vector::Min() const {
  double m = std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::min(m, v);
  return m;
}

double Vector::Max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::max(m, v);
  return m;
}

size_t Vector::ArgMin() const {
  size_t best = 0;
  for (size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] < data_[best]) best = i;
  }
  return best;
}

size_t Vector::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

std::string Vector::ToString(size_t max_elems) const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < size() && i < max_elems; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (size() > max_elems) os << ", ... (" << size() << " entries)";
  os << "]";
  return os.str();
}

Status AddInPlace(Vector* dst, const Vector& src) {
  if (dst->size() != src.size()) {
    return SizeMismatch("add", dst->size(), src.size());
  }
  for (size_t i = 0; i < src.size(); ++i) (*dst)[i] += src[i];
  return Status::OK();
}

Result<Vector> Add(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return SizeMismatch("add", a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Result<Vector> Sub(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return SizeMismatch("sub", a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Result<Vector> Mul(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return SizeMismatch("mul", a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Result<Vector> Div(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return SizeMismatch("div", a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] / b[i];
  return out;
}

Vector AddScalar(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s;
  return out;
}

Vector SubScalar(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - s;
  return out;
}

Vector RsubScalar(double s, const Vector& a) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = s - a[i];
  return out;
}

Vector MulScalar(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Vector DivScalar(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] / s;
  return out;
}

Vector RdivScalar(double s, const Vector& a) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = s / a[i];
  return out;
}

Result<double> InnerProduct(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    return SizeMismatch("inner_product", a.size(), b.size());
  }
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace radb::la
