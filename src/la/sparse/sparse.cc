#include "la/sparse/sparse.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics_registry.h"

namespace radb::la::sparse {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status ShapeMismatch(const char* op, size_t ar, size_t ac, size_t br,
                     size_t bc) {
  return Status::DimensionMismatch(
      std::string(op) + ": shapes " + std::to_string(ar) + "x" +
      std::to_string(ac) + " and " + std::to_string(br) + "x" +
      std::to_string(bc) + " are incompatible");
}

void Count(const char* metric, uint64_t n) {
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) reg->Add(metric, n);
}

/// True when a computed matrix cell maps back to "no entry".
bool IsStructural(double v, const Semiring& s) {
  return v == 0.0 || v == s.zero;
}

}  // namespace

// ------------------------------------------------------------------
// Semiring
// ------------------------------------------------------------------

double Semiring::Add(double a, double b) const {
  switch (kind) {
    case SemiringKind::kPlusTimes:
      return a + b;
    case SemiringKind::kMinPlus:
      return b < a ? b : a;
    case SemiringKind::kMaxPlus:
      return b > a ? b : a;
    case SemiringKind::kOrAnd:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  return a + b;
}

double Semiring::Mul(double a, double b) const {
  switch (kind) {
    case SemiringKind::kPlusTimes:
      return a * b;
    case SemiringKind::kMinPlus:
    case SemiringKind::kMaxPlus:
      return a + b;
    case SemiringKind::kOrAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
  return a * b;
}

const Semiring& PlusTimes() {
  static const Semiring kPlus{SemiringKind::kPlusTimes, "plus_times", 0.0,
                              1.0};
  return kPlus;
}

Result<Semiring> SemiringByName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  if (lower == "plus_times") return PlusTimes();
  if (lower == "min_plus") {
    return Semiring{SemiringKind::kMinPlus, "min_plus", kInf, 0.0};
  }
  if (lower == "max_plus") {
    return Semiring{SemiringKind::kMaxPlus, "max_plus", -kInf, 0.0};
  }
  if (lower == "or_and") {
    return Semiring{SemiringKind::kOrAnd, "or_and", 0.0, 1.0};
  }
  return Status::InvalidArgument(
      "unknown semiring '" + name +
      "' (expected plus_times, min_plus, max_plus, or or_and)");
}

const std::vector<std::string>& SemiringNames() {
  static const std::vector<std::string> kNames = {"plus_times", "min_plus",
                                                  "max_plus", "or_and"};
  return kNames;
}

// ------------------------------------------------------------------
// CsrMatrix
// ------------------------------------------------------------------

void CsrMatrix::PushEntry(size_t row, size_t col, double v) {
  (void)row;  // rows are sealed explicitly, ascending
  col_.push_back(static_cast<uint32_t>(col));
  val_.push_back(v);
}

void CsrMatrix::SealRowsThrough(size_t row) {
  row_ptr_[row + 1] = col_.size();
}

CsrMatrix CsrMatrix::FromDense(const Matrix& m, double threshold) {
  CsrMatrix out(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      if (std::fabs(row[c]) > threshold) out.PushEntry(r, c, row[c]);
    }
    out.SealRowsThrough(r);
  }
  Count("la.sparse.compress_calls", 1);
  return out;
}

Result<CsrMatrix> CsrMatrix::FromCoo(const CooMatrix& coo) {
  std::vector<CooEntry> sorted = coo.entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix out(coo.rows, coo.cols);
  size_t cur_row = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const CooEntry& e = sorted[i];
    if (e.row >= coo.rows || e.col >= coo.cols) {
      return Status::InvalidArgument(
          "COO entry (" + std::to_string(e.row) + ", " +
          std::to_string(e.col) + ") out of range for " +
          std::to_string(coo.rows) + "x" + std::to_string(coo.cols));
    }
    if (i > 0 && sorted[i - 1].row == e.row && sorted[i - 1].col == e.col) {
      return Status::InvalidArgument(
          "duplicate COO entry at (" + std::to_string(e.row) + ", " +
          std::to_string(e.col) + ")");
    }
    while (cur_row < e.row) out.SealRowsThrough(cur_row++);
    if (e.val != 0.0) out.PushEntry(e.row, e.col, e.val);
  }
  while (cur_row < coo.rows) out.SealRowsThrough(cur_row++);
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = out.RowPtr(r);
    for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      row[col_[i]] = val_[i];
    }
  }
  Count("la.sparse.densify_calls", 1);
  return out;
}

CooMatrix CsrMatrix::ToCoo() const {
  CooMatrix out;
  out.rows = rows_;
  out.cols = cols_;
  out.entries.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r) {
    for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out.entries.push_back(CooEntry{r, col_[i], val_[i]});
    }
  }
  return out;
}

double CsrMatrix::At(size_t r, size_t c) const {
  const uint64_t b = row_ptr_[r], e = row_ptr_[r + 1];
  auto it = std::lower_bound(col_.begin() + static_cast<ptrdiff_t>(b),
                             col_.begin() + static_cast<ptrdiff_t>(e),
                             static_cast<uint32_t>(c));
  if (it != col_.begin() + static_cast<ptrdiff_t>(e) &&
      *it == static_cast<uint32_t>(c)) {
    return val_[static_cast<size_t>(it - col_.begin())];
  }
  return 0.0;
}

std::string CsrMatrix::ToString(size_t max_entries) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " sparse nnz=" << nnz() << " [";
  size_t shown = 0;
  for (size_t r = 0; r < rows_ && shown < max_entries; ++r) {
    for (uint64_t i = row_ptr_[r];
         i < row_ptr_[r + 1] && shown < max_entries; ++i, ++shown) {
      if (shown > 0) os << " ";
      os << "(" << r << "," << col_[i] << ")=" << val_[i];
    }
  }
  if (nnz() > max_entries) os << " ...";
  os << "]";
  return os.str();
}

// ------------------------------------------------------------------
// Sparse kernels
// ------------------------------------------------------------------

Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const Semiring& s) {
  if (a.cols() != b.rows()) {
    return ShapeMismatch("matrix_multiply", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  const size_t n = b.cols();
  CsrMatrix out(a.rows(), n);
  // Gustavson with a dense accumulator row. Per output cell the ⊕
  // order is k ascending (CSR rows are sorted), matching the dense
  // i-k-j kernel's accumulation order for bit-identical plus-times.
  //
  // Occupied columns are tracked in a word bitmap instead of the
  // classic unsorted touched-list: scanning set bits emits columns in
  // ascending order for free, where sorting a per-row touched list
  // dominated the whole kernel at low density (hundreds of tiny
  // std::sort calls per multiply). Plus-times additionally gets a
  // specialized inner loop — the semiring indirection is a
  // non-inlined call per element, exactly the margin the
  // density-adaptive dispatch exists to win. Accumulation order is
  // unchanged either way, so results stay bit-for-bit the same.
  std::vector<double> acc(n, s.zero);
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> occupied(words, 0);
  uint64_t flops = 0;
  const bool plus_times = s.kind == SemiringKind::kPlusTimes;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (uint64_t ai = a.row_ptr()[i]; ai < a.row_ptr()[i + 1]; ++ai) {
      const double aik = a.values()[ai];
      const size_t k = a.col_idx()[ai];
      const uint64_t b_end = b.row_ptr()[k + 1];
      if (plus_times) {
        for (uint64_t bi = b.row_ptr()[k]; bi < b_end; ++bi) {
          const uint32_t j = b.col_idx()[bi];
          acc[j] += aik * b.values()[bi];
          occupied[j >> 6] |= uint64_t{1} << (j & 63);
        }
        flops += b_end - b.row_ptr()[k];
        continue;
      }
      for (uint64_t bi = b.row_ptr()[k]; bi < b_end; ++bi) {
        const uint32_t j = b.col_idx()[bi];
        acc[j] = s.Add(acc[j], s.Mul(aik, b.values()[bi]));
        occupied[j >> 6] |= uint64_t{1} << (j & 63);
        ++flops;
      }
    }
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = occupied[w];
      if (bits == 0) continue;
      occupied[w] = 0;
      while (bits != 0) {
        const size_t j = w * 64 + static_cast<size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (!IsStructural(acc[j], s)) out.PushEntry(i, j, acc[j]);
        acc[j] = s.zero;
      }
    }
    out.SealRowsThrough(i);
  }
  Count("la.sparse.spgemm_calls", 1);
  Count("la.sparse.flops", 2 * flops);
  Count("la.sparse.nnz_out", out.nnz());
  return out;
}

Result<Matrix> SpMm(const CsrMatrix& a, const Matrix& b, const Semiring& s) {
  if (a.cols() != b.rows()) {
    return ShapeMismatch("matrix_multiply", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  const size_t n = b.cols();
  Matrix out(a.rows(), n, s.zero);
  uint64_t flops = 0;
  for (size_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.RowPtr(i);
    for (uint64_t ai = a.row_ptr()[i]; ai < a.row_ptr()[i + 1]; ++ai) {
      const double aik = a.values()[ai];
      const double* b_row = b.RowPtr(a.col_idx()[ai]);
      for (size_t j = 0; j < n; ++j) {
        if (b_row[j] == 0.0) continue;  // structural
        out_row[j] = s.Add(out_row[j], s.Mul(aik, b_row[j]));
        ++flops;
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (IsStructural(out_row[j], s)) out_row[j] = 0.0;
    }
  }
  Count("la.sparse.spmm_calls", 1);
  Count("la.sparse.flops", 2 * flops);
  return out;
}

Matrix SpTransposeSelfMultiply(const CsrMatrix& a, const Semiring& s) {
  const size_t n = a.cols();
  Matrix out(n, n, s.zero);
  uint64_t flops = 0;
  // Rank-1 updates row by row over the symmetric upper half, like the
  // dense tsmm; all our semirings have commutative ⊗ so mirroring is
  // exact.
  for (size_t r = 0; r < a.rows(); ++r) {
    for (uint64_t ai = a.row_ptr()[r]; ai < a.row_ptr()[r + 1]; ++ai) {
      const size_t i = a.col_idx()[ai];
      const double v = a.values()[ai];
      double* out_row = out.RowPtr(i);
      for (uint64_t aj = ai; aj < a.row_ptr()[r + 1]; ++aj) {
        const size_t j = a.col_idx()[aj];
        out_row[j] = s.Add(out_row[j], s.Mul(v, a.values()[aj]));
        ++flops;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
    for (size_t j = i; j < n; ++j) {
      if (IsStructural(out.At(i, j), s)) out.At(i, j) = 0.0;
    }
  }
  // Re-mirror after the structural fixup so both halves agree.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  Count("la.sparse.sptsmm_calls", 1);
  Count("la.sparse.flops", 2 * flops);
  return out;
}

Result<Vector> SpMV(const CsrMatrix& a, const Vector& x, const Semiring& s) {
  if (a.cols() != x.size()) {
    return ShapeMismatch("matrix_vector_multiply", a.rows(), a.cols(),
                         x.size(), 1);
  }
  Vector out(a.rows(), s.zero);
  uint64_t flops = 0;
  for (size_t i = 0; i < a.rows(); ++i) {
    double acc = s.zero;
    for (uint64_t ai = a.row_ptr()[i]; ai < a.row_ptr()[i + 1]; ++ai) {
      acc = s.Add(acc, s.Mul(a.values()[ai], x[a.col_idx()[ai]]));
      ++flops;
    }
    out[i] = acc;  // vector results stay literal (may be s.zero)
  }
  Count("la.sparse.spmv_calls", 1);
  Count("la.sparse.flops", 2 * flops);
  return out;
}

Result<Vector> SpVM(const Vector& x, const CsrMatrix& a, const Semiring& s) {
  if (x.size() != a.rows()) {
    return ShapeMismatch("vector_matrix_multiply", 1, x.size(), a.rows(),
                         a.cols());
  }
  Vector out(a.cols(), s.zero);
  uint64_t flops = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    for (uint64_t ai = a.row_ptr()[r]; ai < a.row_ptr()[r + 1]; ++ai) {
      const uint32_t c = a.col_idx()[ai];
      out[c] = s.Add(out[c], s.Mul(xr, a.values()[ai]));
      ++flops;
    }
  }
  Count("la.sparse.spvm_calls", 1);
  Count("la.sparse.flops", 2 * flops);
  return out;
}

CsrMatrix SpTranspose(const CsrMatrix& a) {
  CsrMatrix out(a.cols(), a.rows());
  // Counting sort by column: bucket sizes, then stable placement —
  // output rows come out with ascending column indexes.
  std::vector<uint64_t> counts(a.cols() + 1, 0);
  for (uint32_t c : a.col_idx()) ++counts[c + 1];
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  std::vector<uint32_t> tcol(a.nnz());
  std::vector<double> tval(a.nnz());
  std::vector<uint64_t> next = counts;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (uint64_t ai = a.row_ptr()[r]; ai < a.row_ptr()[r + 1]; ++ai) {
      const uint64_t pos = next[a.col_idx()[ai]]++;
      tcol[pos] = static_cast<uint32_t>(r);
      tval[pos] = a.values()[ai];
    }
  }
  size_t pos = 0;
  for (size_t r = 0; r < a.cols(); ++r) {
    while (pos < counts[r + 1]) {
      out.PushEntry(r, tcol[pos], tval[pos]);
      ++pos;
    }
    out.SealRowsThrough(r);
  }
  return out;
}

Result<CsrMatrix> EWiseAdd(const CsrMatrix& a, const CsrMatrix& b,
                           const Semiring& s) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeMismatch("elementwise_add", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  CsrMatrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    uint64_t i = a.row_ptr()[r], j = b.row_ptr()[r];
    const uint64_t ie = a.row_ptr()[r + 1], je = b.row_ptr()[r + 1];
    while (i < ie || j < je) {
      double v;
      size_t c;
      if (j >= je || (i < ie && a.col_idx()[i] < b.col_idx()[j])) {
        c = a.col_idx()[i];
        v = a.values()[i++];  // ⊕ with missing = identity
      } else if (i >= ie || b.col_idx()[j] < a.col_idx()[i]) {
        c = b.col_idx()[j];
        v = b.values()[j++];
      } else {
        c = a.col_idx()[i];
        v = s.Add(a.values()[i++], b.values()[j++]);
      }
      if (!IsStructural(v, s)) out.PushEntry(r, c, v);
    }
    out.SealRowsThrough(r);
  }
  Count("la.sparse.ewise_calls", 1);
  return out;
}

Result<CsrMatrix> EWiseMul(const CsrMatrix& a, const CsrMatrix& b,
                           const Semiring& s) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeMismatch("elementwise_multiply", a.rows(), a.cols(),
                         b.rows(), b.cols());
  }
  CsrMatrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    uint64_t i = a.row_ptr()[r], j = b.row_ptr()[r];
    const uint64_t ie = a.row_ptr()[r + 1], je = b.row_ptr()[r + 1];
    while (i < ie && j < je) {
      if (a.col_idx()[i] < b.col_idx()[j]) {
        ++i;
      } else if (b.col_idx()[j] < a.col_idx()[i]) {
        ++j;
      } else {
        const double v = s.Mul(a.values()[i], b.values()[j]);
        if (!IsStructural(v, s)) out.PushEntry(r, a.col_idx()[i], v);
        ++i;
        ++j;
      }
    }
    out.SealRowsThrough(r);
  }
  Count("la.sparse.ewise_calls", 1);
  return out;
}

Result<CsrMatrix> Mask(const CsrMatrix& a, const CsrMatrix& mask,
                       bool complement) {
  if (a.rows() != mask.rows() || a.cols() != mask.cols()) {
    return ShapeMismatch("matrix_mask", a.rows(), a.cols(), mask.rows(),
                         mask.cols());
  }
  CsrMatrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    uint64_t j = mask.row_ptr()[r];
    const uint64_t je = mask.row_ptr()[r + 1];
    for (uint64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const uint32_t c = a.col_idx()[i];
      while (j < je && mask.col_idx()[j] < c) ++j;
      const bool present = j < je && mask.col_idx()[j] == c;
      if (present != complement) out.PushEntry(r, c, a.values()[i]);
    }
    out.SealRowsThrough(r);
  }
  Count("la.sparse.mask_calls", 1);
  return out;
}

// ------------------------------------------------------------------
// Dense semiring kernels (oracle + dense non-plus-times path)
// ------------------------------------------------------------------

Result<Matrix> DenseMultiply(const Matrix& a, const Matrix& b,
                             const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return Multiply(a, b);
  if (a.cols() != b.rows()) {
    return ShapeMismatch("matrix_multiply", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n, s.zero);
  for (size_t i = 0; i < m; ++i) {
    double* out_row = out.RowPtr(i);
    const double* a_row = a.RowPtr(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const double aik = a_row[kk];
      if (aik == 0.0) continue;  // structural
      const double* b_row = b.RowPtr(kk);
      for (size_t j = 0; j < n; ++j) {
        if (b_row[j] == 0.0) continue;
        out_row[j] = s.Add(out_row[j], s.Mul(aik, b_row[j]));
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (IsStructural(out_row[j], s)) out_row[j] = 0.0;
    }
  }
  return out;
}

Matrix DenseTransposeSelfMultiply(const Matrix& a, const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return TransposeSelfMultiply(a);
  const size_t n = a.cols();
  Matrix out(n, n, s.zero);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (size_t i = 0; i < n; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* out_row = out.RowPtr(i);
      for (size_t j = i; j < n; ++j) {
        if (row[j] == 0.0) continue;
        out_row[j] = s.Add(out_row[j], s.Mul(v, row[j]));
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      if (IsStructural(out.At(i, j), s)) out.At(i, j) = 0.0;
    }
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

Result<Vector> DenseMatVec(const Matrix& a, const Vector& x,
                           const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return MatrixVectorMultiply(a, x);
  if (a.cols() != x.size()) {
    return ShapeMismatch("matrix_vector_multiply", a.rows(), a.cols(),
                         x.size(), 1);
  }
  Vector out(a.rows(), s.zero);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    double acc = s.zero;
    for (size_t c = 0; c < a.cols(); ++c) {
      if (row[c] == 0.0) continue;  // structural matrix entry
      acc = s.Add(acc, s.Mul(row[c], x[c]));
    }
    out[r] = acc;
  }
  return out;
}

Result<Vector> DenseVecMat(const Vector& x, const Matrix& a,
                           const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return VectorMatrixMultiply(x, a);
  if (x.size() != a.rows()) {
    return ShapeMismatch("vector_matrix_multiply", 1, x.size(), a.rows(),
                         a.cols());
  }
  Vector out(a.cols(), s.zero);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      if (row[c] == 0.0) continue;
      out[c] = s.Add(out[c], s.Mul(x[r], row[c]));
    }
  }
  return out;
}

Result<Matrix> DenseEWiseAdd(const Matrix& a, const Matrix& b,
                             const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return Add(a, b);
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeMismatch("elementwise_add", a.rows(), a.cols(), b.rows(),
                         b.cols());
  }
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
    const double av = a.data()[i], bv = b.data()[i];
    double v;
    if (av == 0.0) {
      v = bv;
    } else if (bv == 0.0) {
      v = av;
    } else {
      v = s.Add(av, bv);
    }
    out.data()[i] = IsStructural(v, s) ? 0.0 : v;
  }
  return out;
}

Result<Matrix> DenseEWiseMul(const Matrix& a, const Matrix& b,
                             const Semiring& s) {
  if (s.kind == SemiringKind::kPlusTimes) return Mul(a, b);
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeMismatch("elementwise_multiply", a.rows(), a.cols(),
                         b.rows(), b.cols());
  }
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
    const double av = a.data()[i], bv = b.data()[i];
    if (av == 0.0 || bv == 0.0) continue;  // ⊗ annihilator
    const double v = s.Mul(av, bv);
    out.data()[i] = IsStructural(v, s) ? 0.0 : v;
  }
  return out;
}

Result<Vector> VectorEWiseAdd(const Vector& a, const Vector& b,
                              const Semiring& s) {
  if (a.size() != b.size()) {
    return ShapeMismatch("vector_elementwise_add", 1, a.size(), 1, b.size());
  }
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = s.Add(a[i], b[i]);
  return out;
}

size_t DenseNnz(const Matrix& m) {
  size_t n = 0;
  for (size_t i = 0; i < m.rows() * m.cols(); ++i) {
    if (m.data()[i] != 0.0) ++n;
  }
  return n;
}

// ------------------------------------------------------------------
// Dispatch policy
// ------------------------------------------------------------------

namespace {
std::atomic<bool> g_auto_enabled{true};
std::atomic<double> g_threshold{0.05};
}  // namespace

bool DispatchPolicy::AutoEnabled() {
  return g_auto_enabled.load(std::memory_order_relaxed);
}
double DispatchPolicy::Threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void DispatchPolicy::Set(bool auto_enabled, double threshold) {
  g_auto_enabled.store(auto_enabled, std::memory_order_relaxed);
  g_threshold.store(threshold, std::memory_order_relaxed);
}

}  // namespace radb::la::sparse
