#ifndef RADB_LA_SPARSE_SPARSE_H_
#define RADB_LA_SPARSE_SPARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::la::sparse {

// ---------------------------------------------------------------------
// Semiring descriptor (LaraDB-style): one pair of operations (⊕, ⊗)
// parameterizes every kernel in this file, so numeric LA and graph
// algorithms (min-plus shortest paths, or-and reachability) share one
// implementation.
//
// Storage convention ("structural zero"): in both representations the
// stored value 0.0 means "no entry". Sparse matrices simply omit such
// entries; dense matrices hold a literal 0.0 cell. Every MATRIX kernel
// interprets a missing/0.0 entry as the semiring's ⊕-identity (`zero`
// below): under plus-times that IS ordinary arithmetic (and the dense
// plus-times path delegates to the existing kernels, bit for bit);
// under min-plus a 0.0 cell means "no edge" (+inf), so edge weights
// must be > 0. VECTOR arguments are always fully-stored and literal —
// a 0.0 vector entry is the number zero (e.g. the source distance in
// SSSP), never a structural hole. Computed matrix cells equal to the
// semiring's `zero` (or to 0.0) map back to "no entry".
// ---------------------------------------------------------------------
enum class SemiringKind { kPlusTimes, kMinPlus, kMaxPlus, kOrAnd };

struct Semiring {
  SemiringKind kind = SemiringKind::kPlusTimes;
  const char* name = "plus_times";
  double zero = 0.0;  // ⊕ identity and ⊗ annihilator
  double one = 1.0;   // ⊗ identity

  double Add(double a, double b) const;
  double Mul(double a, double b) const;
};

/// The default arithmetic semiring (+, *, 0, 1).
const Semiring& PlusTimes();
/// Lookup by SQL-visible name: "plus_times", "min_plus", "max_plus",
/// "or_and". InvalidArgument for anything else.
Result<Semiring> SemiringByName(const std::string& name);
/// All registered names, for error messages and the fuzzer.
const std::vector<std::string>& SemiringNames();

// ---------------------------------------------------------------------
// COO: the construction / interchange format. Entries need not be
// sorted; FromCoo sorts them. Explicit 0.0 values are dropped on
// conversion (structural convention above); duplicate coordinates are
// an InvalidArgument.
// ---------------------------------------------------------------------
struct CooEntry {
  uint64_t row = 0;
  uint64_t col = 0;
  double val = 0.0;
};

struct CooMatrix {
  uint64_t rows = 0;
  uint64_t cols = 0;
  std::vector<CooEntry> entries;

  /// Allocation-exact heap bytes (capacity-aware) for tracker charges.
  size_t ByteSize() const {
    return entries.capacity() * sizeof(CooEntry);
  }
};

// ---------------------------------------------------------------------
// CSR: the compute format. Canonical invariants (established by every
// constructor and kernel here): column indexes strictly ascending
// within each row, and no stored value equals 0.0 — so two CSR
// matrices are logically equal iff their arrays are equal.
// ---------------------------------------------------------------------
class CsrMatrix {
 public:
  CsrMatrix() : row_ptr_(1, 0) {}
  /// An empty (all-structural-zero) matrix of the given shape.
  CsrMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Compresses a dense matrix, keeping entries with |v| > threshold.
  /// The default threshold 0.0 drops exactly the (structural) zeros.
  static CsrMatrix FromDense(const Matrix& m, double threshold = 0.0);
  /// Sorts + validates COO input. InvalidArgument on out-of-range
  /// coordinates or duplicate (row, col) pairs.
  static Result<CsrMatrix> FromCoo(const CooMatrix& coo);

  Matrix ToDense() const;
  CooMatrix ToCoo() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return val_.size(); }
  /// nnz / (rows*cols); 1.0 for a degenerate 0-cell shape so empty
  /// tiles never look "sparse" to the dispatcher.
  double density() const {
    const size_t cells = rows_ * cols_;
    return cells == 0 ? 1.0 : static_cast<double>(nnz()) / cells;
  }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_; }
  const std::vector<double>& values() const { return val_; }

  /// Entry at (r, c): the stored value or 0.0. O(log row-nnz).
  double At(size_t r, size_t c) const;

  /// Allocation-exact heap bytes (capacity-aware), the number the
  /// MemoryTracker is charged. The serialized size is different —
  /// see SerializedByteSize.
  size_t ByteSize() const {
    return row_ptr_.capacity() * sizeof(uint64_t) +
           col_.capacity() * sizeof(uint32_t) +
           val_.capacity() * sizeof(double);
  }
  /// Exact payload bytes WriteValueBinary emits for this matrix
  /// (excluding the 1-byte value tag): dims + nnz + row_ptr + cols
  /// (as u64) + values.
  size_t SerializedByteSize() const {
    return 8 * 3 + (rows_ + 1) * 8 + nnz() * 16;
  }

  bool operator==(const CsrMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && row_ptr_ == o.row_ptr_ &&
           col_ == o.col_ && val_ == o.val_;
  }

  std::string ToString(size_t max_entries = 6) const;

  /// Internal: appends one entry; caller must respect the canonical
  /// order and never pass 0.0. Used by kernels and deserialization.
  void PushEntry(size_t row, size_t col, double v);
  /// Internal: closes out rows up to and including `row`.
  void SealRowsThrough(size_t row);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint64_t> row_ptr_;  // rows+1, cumulative nnz
  std::vector<uint32_t> col_;      // per-row ascending
  std::vector<double> val_;        // never 0.0
};

// ---------------------------------------------------------------------
// Sparse kernels. All written from scratch (no BLAS); accumulation
// visits k in ascending order per output cell — the same order as the
// dense kernels — so the plus-times results are bit-identical to
// la::Multiply / la::TransposeSelfMultiply / la::*VectorMultiply on
// matrices that sparsify losslessly.
// ---------------------------------------------------------------------

/// Gustavson SpGEMM: c = a ⊗ b under `s`. DimensionMismatch on shape.
Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const Semiring& s);
/// Sparse × dense: c = a * b with a sparse, result dense.
Result<Matrix> SpMm(const CsrMatrix& a, const Matrix& b, const Semiring& s);
/// aᵀ ⊗ a without materializing aᵀ (sparse Gram); dense result.
Matrix SpTransposeSelfMultiply(const CsrMatrix& a, const Semiring& s);
/// y = a ⊗ x (x a literal column vector).
Result<Vector> SpMV(const CsrMatrix& a, const Vector& x, const Semiring& s);
/// y = xᵀ ⊗ a (x a literal row vector).
Result<Vector> SpVM(const Vector& x, const CsrMatrix& a, const Semiring& s);
/// aᵀ (counting sort over columns; stays canonical).
CsrMatrix SpTranspose(const CsrMatrix& a);
/// Element-wise union c_ij = a_ij ⊕ b_ij (missing = s.zero).
Result<CsrMatrix> EWiseAdd(const CsrMatrix& a, const CsrMatrix& b,
                           const Semiring& s);
/// Element-wise intersection c_ij = a_ij ⊗ b_ij.
Result<CsrMatrix> EWiseMul(const CsrMatrix& a, const CsrMatrix& b,
                           const Semiring& s);
/// Keeps a's entries where `mask` has an entry (complement = false) or
/// has none (complement = true).
Result<CsrMatrix> Mask(const CsrMatrix& a, const CsrMatrix& mask,
                       bool complement);

// ---------------------------------------------------------------------
// Dense semiring kernels: the oracle path for the sparse kernels and
// the execution path for non-plus-times multiplies of dense values.
// For plus-times these delegate to the existing dense kernels, so
// today's results stay bit-identical.
// ---------------------------------------------------------------------
Result<Matrix> DenseMultiply(const Matrix& a, const Matrix& b,
                             const Semiring& s);
Matrix DenseTransposeSelfMultiply(const Matrix& a, const Semiring& s);
Result<Vector> DenseMatVec(const Matrix& a, const Vector& x,
                           const Semiring& s);
Result<Vector> DenseVecMat(const Vector& x, const Matrix& a,
                           const Semiring& s);
Result<Matrix> DenseEWiseAdd(const Matrix& a, const Matrix& b,
                             const Semiring& s);
Result<Matrix> DenseEWiseMul(const Matrix& a, const Matrix& b,
                             const Semiring& s);
/// Literal element-wise v_i ⊕ w_i over two equal-length vectors (no
/// structural interpretation — see the convention above).
Result<Vector> VectorEWiseAdd(const Vector& a, const Vector& b,
                              const Semiring& s);

/// Number of cells not equal to 0.0 (for a dense matrix) — the dense
/// counterpart of CsrMatrix::nnz() under the storage convention.
size_t DenseNnz(const Matrix& m);

// ---------------------------------------------------------------------
// Density-adaptive dispatch policy. Process-global (builtins have no
// Database handle); Database's constructor installs its
// Config::SparseOptions here, last writer wins. When enabled, a dense
// matrix argument of a multiply whose density is <= threshold is
// compressed on the fly and routed through the sparse kernel; the
// result representation still follows the inputs' representations
// (sparse results only appear when an input was explicitly sparse),
// so auto-dispatch is purely a kernel-selection device and results
// stay bit-identical.
// ---------------------------------------------------------------------
struct DispatchPolicy {
  static bool AutoEnabled();
  static double Threshold();
  static void Set(bool auto_enabled, double threshold);
};

}  // namespace radb::la::sparse

#endif  // RADB_LA_SPARSE_SPARSE_H_
