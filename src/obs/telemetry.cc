#include "obs/telemetry.h"

namespace radb::obs {

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kQueue:
      return "queue";
    case QueryPhase::kLatch:
      return "latch";
    case QueryPhase::kParse:
      return "parse";
    case QueryPhase::kBind:
      return "bind";
    case QueryPhase::kOptimize:
      return "optimize";
    case QueryPhase::kExecute:
      return "execute";
    case QueryPhase::kSerialize:
      return "serialize";
  }
  return "unknown";
}

TelemetryStore::TelemetryStore(Options options) : options_(options) {}

std::string TelemetryStore::Truncated(const std::string& sql) const {
  if (sql.size() <= options_.max_sql_bytes) return sql;
  return sql.substr(0, options_.max_sql_bytes) + "...";
}

uint64_t TelemetryStore::RecordQuery(QueryRecord record) {
  record.sql = Truncated(record.sql);
  if (record.operators.size() > options_.max_operators_per_query) {
    record.operators.resize(options_.max_operators_per_query);
  }
  std::lock_guard<std::mutex> lock(mu_);
  record.ordinal = next_ordinal_++;
  const uint64_t ordinal = record.ordinal;
  queries_.push_back(std::move(record));
  while (queries_.size() > options_.query_capacity) queries_.pop_front();
  return ordinal;
}

std::vector<QueryRecord> TelemetryStore::SnapshotQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryRecord>(queries_.begin(), queries_.end());
}

std::vector<QueryRecord> TelemetryStore::SnapshotQueriesSince(
    uint64_t after) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  for (const QueryRecord& q : queries_) {
    if (q.ordinal > after) out.push_back(q);
  }
  return out;
}

void TelemetryStore::RegisterSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionRecord& s = sessions_[session_id];
  s.session_id = session_id;
  s.state = "idle";
}

void TelemetryStore::DeregisterSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

void TelemetryStore::SetSessionState(uint64_t session_id,
                                     const std::string& state,
                                     uint64_t query_id,
                                     const std::string& sql) {
  const std::string text = Truncated(sql);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionRecord& s = it->second;
  if (state == "running" && s.state != "running") ++s.queries;
  s.state = state;
  s.current_query_id = query_id;
  s.current_sql = text;
}

std::vector<SessionRecord> TelemetryStore::SnapshotSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionRecord> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) out.push_back(s);
  return out;
}

uint64_t TelemetryStore::queries_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ordinal_ - 1;
}

}  // namespace radb::obs
