#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace radb::obs {

void Histogram::Observe(double v) {
  // Non-finite samples would otherwise poison the aggregates forever:
  // one NaN turns sum_/min_/max_ (and every percentile derived from
  // them) into NaN in the JSON export, and +inf both saturates sum_
  // and — because the bucket index is only computed for finite values
  // — lands in bucket 0 as if it were a tiny sample. Drop NaN outright
  // and clamp ±inf to the finite extremes so the event is still
  // counted where it belongs.
  if (std::isnan(v)) return;
  if (std::isinf(v)) {
    v = v > 0.0 ? std::numeric_limits<double>::max()
                : std::numeric_limits<double>::lowest();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  size_t b = 0;
  if (v > 1.0) {
    b = std::min<size_t>(kBuckets - 1,
                         static_cast<size_t>(std::ceil(std::log2(v))));
  }
  ++buckets_[b];
}

double Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Nearest-rank over the bucket cumulative counts, then linear
  // interpolation between the bucket's bounds for a smoother value.
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = i == 0 ? 0.0 : std::exp2(static_cast<double>(i) - 1);
    const double upper = std::exp2(static_cast<double>(i));
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets_[i]);
    const double v = lower + (upper - lower) * frac;
    return std::min(max_, std::max(min_, v));
  }
  return max_;
}

std::vector<std::pair<double, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<double, uint64_t>> out;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(std::exp2(static_cast<double>(i)), buckets_[i]);
    }
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << JsonNumber(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h->count() << ", \"sum\": " << JsonNumber(h->sum())
       << ", \"min\": " << JsonNumber(h->min())
       << ", \"max\": " << JsonNumber(h->max())
       << ", \"mean\": " << JsonNumber(h->mean())
       << ", \"p50\": " << JsonNumber(h->Percentile(0.50))
       << ", \"p95\": " << JsonNumber(h->Percentile(0.95))
       << ", \"p99\": " << JsonNumber(h->Percentile(0.99)) << ", \"buckets\": [";
    const auto buckets = h->NonEmptyBuckets();
    for (size_t i = 0; i < buckets.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "{\"le\": " << JsonNumber(buckets[i].first)
         << ", \"count\": " << buckets[i].second << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

const char* MetricKindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.count = c->value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.value = h->mean();
    s.p50 = h->Percentile(0.50);
    s.p95 = h->Percentile(0.95);
    s.p99 = h->Percentile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
// Registration stack behind Install/UninstallGlobalMetrics. The
// atomic above stays the lock-free read path; the stack (under its
// own mutex) only exists so uninstalls can remove an entry from the
// middle without resurrecting an already-destroyed registry.
std::mutex g_metrics_stack_mu;
std::vector<MetricsRegistry*> g_metrics_stack;
}  // namespace

MetricsRegistry* GlobalMetrics() {
  return g_metrics.load(std::memory_order_acquire);
}

MetricsRegistry* SetGlobalMetrics(MetricsRegistry* m) {
  return g_metrics.exchange(m, std::memory_order_acq_rel);
}

void InstallGlobalMetrics(MetricsRegistry* m) {
  if (m == nullptr) return;
  std::lock_guard<std::mutex> lock(g_metrics_stack_mu);
  g_metrics_stack.push_back(m);
  g_metrics.store(m, std::memory_order_release);
}

void UninstallGlobalMetrics(MetricsRegistry* m) {
  if (m == nullptr) return;
  std::lock_guard<std::mutex> lock(g_metrics_stack_mu);
  for (auto it = g_metrics_stack.rbegin(); it != g_metrics_stack.rend();
       ++it) {
    if (*it == m) {
      g_metrics_stack.erase(std::next(it).base());
      break;
    }
  }
  g_metrics.store(g_metrics_stack.empty() ? nullptr : g_metrics_stack.back(),
                  std::memory_order_release);
}

}  // namespace radb::obs
