#ifndef RADB_OBS_OBS_H_
#define RADB_OBS_OBS_H_

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace radb::obs {

/// The observability handles a pipeline stage receives. Both pointers
/// null = observability disabled, the zero-cost default; everything
/// downstream must treat them as optional.
struct ObsContext {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace radb::obs

#endif  // RADB_OBS_OBS_H_
