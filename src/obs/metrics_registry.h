#ifndef RADB_OBS_METRICS_REGISTRY_H_
#define RADB_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace radb::obs {

/// Monotonic counter ("exec.rows_shuffled"). The pointer returned by
/// MetricsRegistry::counter() is stable for the registry's lifetime,
/// so hot paths can hoist the lookup.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value ("exec.workers").
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary with power-of-two buckets. Bucket i counts
/// observations in (2^(i-1), 2^i] (bucket 0: <= 1). Cheap, fixed
/// memory, good enough to see operator-time and shuffle-size shapes.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(double v);

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : max_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Approximate quantile (q in [0,1]): nearest-rank bucket walk with
  /// linear interpolation inside the winning power-of-two bucket,
  /// clamped to the observed min/max so small samples stay exact at
  /// the extremes.
  double Percentile(double q) const;
  /// Non-empty buckets as (upper_bound, count) pairs.
  std::vector<std::pair<double, uint64_t>> NonEmptyBuckets() const;

 private:
  friend class MetricsRegistry;
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t buckets_[kBuckets] = {};
};

/// One instrument's point-in-time reading, in a uniform shape the
/// radb_metrics system table and the TelemetryExporter both consume.
/// Counters fill only `value` (== count); gauges only `value`;
/// histograms fill everything (`value` is the mean).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
const char* MetricKindName(MetricSample::Kind kind);

/// Named metric store. Names follow "<subsystem>.<metric>" snake_case
/// ("la.matmul_flops", "optimizer.plans_considered"); see DESIGN.md §7
/// for the convention. Instrument lookup is mutex-guarded; the handles
/// themselves update lock-free (counters/gauges) or under a per-
/// histogram mutex.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Convenience one-shot updates (lookup + mutate).
  void Add(const std::string& name, uint64_t delta) { counter(name)->Add(delta); }
  void Set(const std::string& name, double v) { gauge(name)->Set(v); }
  void Observe(const std::string& name, double v) { histogram(name)->Observe(v); }

  /// Point-in-time JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///  min,max,mean,buckets:[{"le":..,"count":..}]}}}
  std::string ToJson() const;

  /// Point-in-time structured snapshot of every instrument, sorted by
  /// (name, kind). The relational twin of ToJson(): radb_metrics rows
  /// and the Prometheus exporter are both rendered from this.
  std::vector<MetricSample> Snapshot() const;

  /// Drops every instrument (used between bench figures).
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry hook for call sites with no natural path to
/// a Database (the LA kernels, storage I/O). Null when observability
/// is off — callers must test. A Database with metrics enabled
/// installs its registry here for the duration of its lifetime.
MetricsRegistry* GlobalMetrics();
/// Installs (or, with nullptr, uninstalls) the global registry;
/// returns the previous one. Prefer the scoped Install/Uninstall pair
/// below — raw save/restore breaks when two installers are destroyed
/// out of LIFO order (the restorer can resurrect a freed registry).
MetricsRegistry* SetGlobalMetrics(MetricsRegistry* m);

/// Scoped installation: pushes `m` onto a registration stack and makes
/// it current. UninstallGlobalMetrics removes `m` from *anywhere* in
/// the stack (not just the top), then the newest surviving entry
/// becomes current again — so two Databases may be constructed and
/// destroyed in any order without one resurrecting the other's freed
/// registry. No-ops on nullptr.
void InstallGlobalMetrics(MetricsRegistry* m);
void UninstallGlobalMetrics(MetricsRegistry* m);

}  // namespace radb::obs

#endif  // RADB_OBS_METRICS_REGISTRY_H_
