#ifndef RADB_OBS_JSON_H_
#define RADB_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace radb::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Formats a double the way JSON expects: no inf/nan (clamped to
/// null-safe large values), enough digits to round-trip timings.
std::string JsonNumber(double v);

/// A parsed JSON value. This is deliberately minimal — just enough to
/// round-trip the trace and metrics artifacts the obs layer emits, so
/// tests can assert well-formedness without an external dependency.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Key order preserved as encountered (duplicate keys: last wins).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document. Trailing garbage, unterminated
/// strings, or malformed literals produce InvalidArgument.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace radb::obs

#endif  // RADB_OBS_JSON_H_
