#include "obs/exporter.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace radb::obs {

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
/// snake_case names map by replacing every other byte with '_' and
/// prefixing the exporter namespace.
std::string PrometheusName(const std::string& name) {
  std::string out = "radb_";
  out.reserve(name.size() + 5);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusNumber(double v) {
  // Prometheus accepts Go-style floats; JsonNumber's clamped rendering
  // is a compatible subset.
  return JsonNumber(v);
}

}  // namespace

TelemetryExporter::TelemetryExporter(const MetricsRegistry* registry,
                                     const TelemetryStore* store)
    : TelemetryExporter(registry, store, Options()) {}

TelemetryExporter::TelemetryExporter(const MetricsRegistry* registry,
                                     const TelemetryStore* store,
                                     Options options)
    : registry_(registry), store_(store), options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { StopSampler(); }

std::string TelemetryExporter::RenderPrometheus() const {
  std::ostringstream os;
  if (registry_ == nullptr) return os.str();
  for (const MetricSample& s : registry_->Snapshot()) {
    const std::string name = PrometheusName(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << s.count << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << PrometheusNumber(s.value) << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        os << "# TYPE " << name << " summary\n"
           << name << "{quantile=\"0.5\"} " << PrometheusNumber(s.p50) << "\n"
           << name << "{quantile=\"0.95\"} " << PrometheusNumber(s.p95) << "\n"
           << name << "{quantile=\"0.99\"} " << PrometheusNumber(s.p99) << "\n"
           << name << "_sum " << PrometheusNumber(s.sum) << "\n"
           << name << "_count " << s.count << "\n";
        break;
    }
  }
  return os.str();
}

std::string TelemetryExporter::QueryRecordJson(const QueryRecord& r) {
  std::ostringstream os;
  os << "{\"query_id\": " << r.query_id << ", \"session_id\": " << r.session_id
     << ", \"status\": \"" << JsonEscape(r.status) << "\""
     << ", \"rows\": " << r.rows
     << ", \"peak_memory_bytes\": " << r.peak_memory_bytes
     << ", \"spill_bytes\": " << r.spill_bytes
     << ", \"cache_plan_hits\": " << r.cache_plan_hits
     << ", \"cache_result_hits\": " << r.cache_result_hits
     << ", \"total_micros\": " << r.total_micros << ", \"phases\": {";
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    os << (i == 0 ? "" : ", ") << "\""
       << QueryPhaseName(static_cast<QueryPhase>(i))
       << "\": " << r.phases.micros[i];
  }
  os << "}, \"sql\": \"" << JsonEscape(r.sql) << "\", \"operators\": [";
  for (size_t i = 0; i < r.operators.size(); ++i) {
    const OperatorRecord& op = r.operators[i];
    os << (i == 0 ? "" : ", ") << "{\"op\": " << op.op_index << ", \"name\": \""
       << JsonEscape(op.name) << "\", \"est_rows\": "
       << JsonNumber(op.estimated_rows) << ", \"actual_rows\": "
       << op.actual_rows << ", \"rows_in\": " << op.rows_in
       << ", \"worker_seconds\": " << JsonNumber(op.worker_seconds)
       << ", \"max_worker_seconds\": " << JsonNumber(op.max_worker_seconds)
       << ", \"skew\": " << JsonNumber(op.skew)
       << ", \"rows_shuffled\": " << op.rows_shuffled
       << ", \"bytes_shuffled\": " << op.bytes_shuffled
       << ", \"bytes_spilled\": " << op.bytes_spilled
       << ", \"spill_runs\": " << op.spill_runs << "}";
  }
  os << "]}";
  return os.str();
}

std::string TelemetryExporter::RenderJsonl() {
  if (store_ == nullptr) return "";
  uint64_t after;
  {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    after = jsonl_cursor_;
  }
  const std::vector<QueryRecord> records = store_->SnapshotQueriesSince(after);
  std::ostringstream os;
  uint64_t last = after;
  for (const QueryRecord& r : records) {
    os << QueryRecordJson(r) << "\n";
    last = r.ordinal;
  }
  {
    std::lock_guard<std::mutex> lock(cursor_mu_);
    if (last > jsonl_cursor_) jsonl_cursor_ = last;
  }
  return os.str();
}

Status TelemetryExporter::ExportOnce() {
  Status result = Status::OK();
  const std::string prom = RenderPrometheus();
  if (options_.prometheus_callback) options_.prometheus_callback(prom);
  if (!options_.prometheus_path.empty()) {
    std::ofstream out(options_.prometheus_path, std::ios::trunc);
    out << prom;
    if (!out && result.ok()) {
      result = Status::ExecutionError("cannot write Prometheus export to " +
                                      options_.prometheus_path);
    }
  }
  const std::string jsonl = RenderJsonl();
  if (options_.jsonl_callback) options_.jsonl_callback(jsonl);
  if (!options_.jsonl_path.empty() && !jsonl.empty()) {
    std::ofstream out(options_.jsonl_path, std::ios::app);
    out << jsonl;
    if (!out && result.ok()) {
      result = Status::ExecutionError("cannot append JSONL export to " +
                                      options_.jsonl_path);
    }
  }
  return result;
}

void TelemetryExporter::StartSampler() {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_running_) return;
  sampler_stop_ = false;
  sampler_running_ = true;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void TelemetryExporter::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_running_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mu_);
  sampler_running_ = false;
}

bool TelemetryExporter::sampler_running() const {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  return sampler_running_;
}

void TelemetryExporter::SamplerLoop() {
  const auto period = std::chrono::milliseconds(
      options_.interval_ms == 0 ? 1000 : options_.interval_ms);
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    (void)ExportOnce();
    lock.lock();
    sampler_cv_.wait_for(lock, period, [this] { return sampler_stop_; });
  }
}

}  // namespace radb::obs
