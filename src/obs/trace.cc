#include "obs/trace.h"

#include <cassert>
#include <mutex>
#include <sstream>

#include "obs/json.h"

namespace radb::obs {

size_t Tracer::BeginSpan(std::string name, std::string category) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.parent = open_.empty() ? Span::kNoParent : open_.back();
  s.start_seconds = NowSeconds();
  spans_.push_back(std::move(s));
  const size_t id = spans_.size() - 1;
  open_.push_back(id);
  return id;
}

void Tracer::EndSpan(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(!open_.empty() && open_.back() == id &&
         "spans must close innermost-first");
  if (id < spans_.size() && !spans_[id].closed()) {
    spans_[id].duration_seconds = NowSeconds() - spans_[id].start_seconds;
  }
  if (!open_.empty() && open_.back() == id) open_.pop_back();
}

size_t Tracer::AddCompleteSpan(std::string name, std::string category,
                               size_t parent, double start_seconds,
                               double duration_seconds, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.parent = parent;
  s.start_seconds = start_seconds;
  s.duration_seconds = duration_seconds < 0.0 ? 0.0 : duration_seconds;
  s.tid = tid;
  spans_.push_back(std::move(s));
  return spans_.size() - 1;
}

void Tracer::AddArg(size_t id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < spans_.size()) {
    spans_[id].args.emplace_back(std::move(key), std::move(value));
  }
}

void Tracer::SetName(size_t id, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < spans_.size()) spans_[id].name = std::move(name);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    const double dur = s.closed() ? s.duration_seconds : 0.0;
    os << "\n{\"name\":\"" << JsonEscape(s.name) << "\","
       << "\"cat\":\"" << JsonEscape(s.category.empty() ? "radb" : s.category)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << JsonNumber(s.start_seconds * 1e6)
       << ",\"dur\":" << JsonNumber(dur * 1e6);
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << JsonEscape(s.args[i].first) << "\":\""
           << JsonEscape(s.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

namespace {

void RenderTree(const std::vector<Span>& spans,
                const std::vector<std::vector<size_t>>& children, size_t id,
                int depth, std::ostringstream* os) {
  const Span& s = spans[id];
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += s.name;
  (*os) << label;
  if (label.size() < 48) (*os) << std::string(48 - label.size(), ' ');
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %9.3f ms",
                (s.closed() ? s.duration_seconds : 0.0) * 1e3);
  (*os) << buf;
  for (const auto& [k, v] : s.args) (*os) << "  " << k << "=" << v;
  (*os) << "\n";
  for (size_t c : children[id]) {
    RenderTree(spans, children, c, depth + 1, os);
  }
}

}  // namespace

std::string Tracer::ToTextTree() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<size_t>> children(spans_.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == Span::kNoParent) {
      roots.push_back(i);
    } else {
      children[spans_[i].parent].push_back(i);
    }
  }
  std::ostringstream os;
  for (size_t r : roots) RenderTree(spans_, children, r, 0, &os);
  return os.str();
}

}  // namespace radb::obs
