#ifndef RADB_OBS_TRACE_H_
#define RADB_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace radb::obs {

/// One completed (or still-open) wall-clock phase. Spans form a tree:
/// `parent` indexes into the owning Tracer's span list (kNoParent for
/// roots). `tid` is the lane the span renders on in chrome://tracing —
/// lane 0 is the query pipeline, lanes 1..N are simulated workers.
struct Span {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  std::string name;
  std::string category;  // "query", "optimizer", "exec", "worker", ...
  size_t parent = kNoParent;
  double start_seconds = 0.0;  // relative to the tracer epoch
  double duration_seconds = -1.0;  // < 0 while still open
  int tid = 0;
  /// Free-form annotations (SQL text, row counts, ...).
  std::vector<std::pair<std::string, std::string>> args;

  bool closed() const { return duration_seconds >= 0.0; }
};

/// Span-based wall-clock tracer for one Database's query pipeline.
///
/// The tracer records every span since construction (or the last
/// Clear()); exports render the whole recording. A null Tracer* is the
/// disabled fast path — ScopedSpan and the Instrument* helpers all
/// no-op on nullptr, so production code pays one pointer test when
/// observability is off.
///
/// Thread-safe: all mutators and exports are serialized by an
/// internal mutex, so pool workers may record spans or annotations
/// concurrently with the driver. Begin/EndSpan nesting is still
/// tracked by one shared stack — interleaving *open* spans from
/// several threads mis-parents them, so the query pipeline keeps
/// driving nested spans from the driver thread and parallel workers
/// use AddCompleteSpan (parent given explicitly) instead. The
/// spans()/span() accessors return references into live storage:
/// call them only while no other thread is recording (tests and
/// post-query exports), like any container.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since the tracer was created.
  double NowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Opens a span as a child of the innermost open span and returns
  /// its id.
  size_t BeginSpan(std::string name, std::string category = "");
  /// Closes the span; must be the innermost open one (spans nest
  /// strictly, like stack frames).
  void EndSpan(size_t id);

  /// Records an already-timed span (used to synthesize per-worker
  /// lanes from accumulated per-worker seconds). `parent` may be any
  /// span id.
  size_t AddCompleteSpan(std::string name, std::string category,
                         size_t parent, double start_seconds,
                         double duration_seconds, int tid);

  /// Attaches a key/value annotation to an open or closed span.
  void AddArg(size_t id, std::string key, std::string value);
  /// Replaces a span's name (operators learn their physical name —
  /// e.g. "HashJoin(bcast right)" — after dispatch).
  void SetName(size_t id, std::string name);

  const std::vector<Span>& spans() const { return spans_; }
  const Span& span(size_t id) const { return spans_[id]; }
  void Clear();

  /// chrome://tracing "trace event" export: a JSON array of complete
  /// ("ph":"X") events with microsecond timestamps. Load via
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ToChromeJson() const;

  /// Indented text rendering of the span tree with durations, for
  /// terminals and tests.
  std::string ToTextTree() const;

 private:
  std::chrono::steady_clock::time_point epoch_;  // immutable after ctor
  mutable std::mutex mu_;     // guards spans_ and open_
  std::vector<Span> spans_;
  std::vector<size_t> open_;  // stack of open span ids
};

/// RAII span handle. Null tracer = disabled: construction and
/// destruction are branch-on-null only.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category = "")
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(std::move(name), std::move(category));
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span early (e.g. before exporting the trace while this
  /// handle is still in scope). Idempotent; the destructor then no-ops.
  void End() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
    tracer_ = nullptr;
  }

  Tracer* tracer() const { return tracer_; }
  /// Valid only when tracer() != nullptr.
  size_t id() const { return id_; }

  void AddArg(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      tracer_->AddArg(id_, std::move(key), std::move(value));
    }
  }
  void SetName(std::string name) {
    if (tracer_ != nullptr) tracer_->SetName(id_, std::move(name));
  }

 private:
  Tracer* tracer_;
  size_t id_ = 0;
};

}  // namespace radb::obs

#endif  // RADB_OBS_TRACE_H_
