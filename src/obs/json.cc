#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace radb::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers print without an exponent or trailing zeros.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last wins
  }
  return found;
}

namespace {

/// Single-pass recursive-descent JSON parser.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    RADB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    JsonValue v;
    if (ConsumeLiteral("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (ConsumeLiteral("null")) return v;
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return v;
    do {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      RADB_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      RADB_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.object.emplace_back(std::move(key.string_value), std::move(val));
    } while (Consume(','));
    if (!Consume('}')) return Error("expected '}' or ',' in object");
    return v;
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return v;
    do {
      RADB_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.array.push_back(std::move(item));
    } while (Consume(','));
    if (!Consume(']')) return Error("expected ']' or ',' in array");
    return v;
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            v.string_value += esc;
            break;
          case 'n':
            v.string_value += '\n';
            break;
          case 't':
            v.string_value += '\t';
            break;
          case 'r':
            v.string_value += '\r';
            break;
          case 'b':
            v.string_value += '\b';
            break;
          case 'f':
            v.string_value += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid hex digit in \\u escape");
              }
            }
            // Keep it simple: encode as UTF-8 for BMP code points.
            if (code < 0x80) {
              v.string_value += static_cast<char>(code);
            } else if (code < 0x800) {
              v.string_value += static_cast<char>(0xC0 | (code >> 6));
              v.string_value += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              v.string_value += static_cast<char>(0xE0 | (code >> 12));
              v.string_value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              v.string_value += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape sequence");
        }
      } else {
        v.string_value += c;
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      size_t used = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) return Error("malformed number");
    } catch (const std::exception&) {
      return Error("malformed number");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace radb::obs
