#ifndef RADB_OBS_EXPORTER_H_
#define RADB_OBS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace radb::obs {

/// Renders the metrics registry and the telemetry store's query
/// records to external formats:
///
///  - Prometheus text exposition format (RenderPrometheus): counters
///    and gauges as single samples, histograms as summaries with
///    quantile labels plus _sum/_count. Metric names are sanitized
///    ("service.query_seconds" -> "radb_service_query_seconds").
///  - JSONL (RenderJsonl): one JSON object per completed query record,
///    with the phase breakdown and per-operator est-vs-actual stats
///    nested — the machine-readable feed for a learned-cardinality
///    pass. An internal cursor makes repeated renders incremental
///    (each record is emitted exactly once).
///
/// ExportOnce() writes both renders to the configured sinks (file
/// paths or callbacks; JSONL files are appended to, the Prometheus
/// file is rewritten). StartSampler() runs ExportOnce on a background
/// thread every interval_ms; the destructor (or StopSampler) joins it
/// cleanly. Either source may be null — that side is simply skipped.
class TelemetryExporter {
 public:
  struct Options {
    /// Rewritten with the full Prometheus render on each export.
    std::string prometheus_path;
    /// Appended with new query records on each export.
    std::string jsonl_path;
    /// Callback sinks; invoked with the rendered text when set. The
    /// JSONL callback receives only new-since-last-export records
    /// (possibly the empty string).
    std::function<void(const std::string&)> prometheus_callback;
    std::function<void(const std::string&)> jsonl_callback;
    /// Sampler period. The sampler is only ever started explicitly.
    uint64_t interval_ms = 1000;
  };

  TelemetryExporter(const MetricsRegistry* registry,
                    const TelemetryStore* store);
  TelemetryExporter(const MetricsRegistry* registry,
                    const TelemetryStore* store, Options options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Full Prometheus exposition of the registry snapshot. Stateless.
  std::string RenderPrometheus() const;
  /// JSONL of query records newer than the cursor; advances the
  /// cursor. Thread-safe.
  std::string RenderJsonl();
  /// One line for a single record (used by the slow-query log too).
  static std::string QueryRecordJson(const QueryRecord& record);

  /// Renders and writes to every configured sink. Returns the first
  /// I/O error, after attempting all sinks.
  Status ExportOnce();

  /// Starts the periodic sampler thread (no-op when already running).
  void StartSampler();
  /// Stops and joins the sampler (no-op when not running).
  void StopSampler();
  bool sampler_running() const;

 private:
  void SamplerLoop();

  const MetricsRegistry* registry_;  // may be null
  const TelemetryStore* store_;      // may be null
  const Options options_;

  std::mutex cursor_mu_;
  uint64_t jsonl_cursor_ = 0;

  mutable std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  bool sampler_running_ = false;
  std::thread sampler_;
};

}  // namespace radb::obs

#endif  // RADB_OBS_EXPORTER_H_
