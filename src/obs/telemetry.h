#ifndef RADB_OBS_TELEMETRY_H_
#define RADB_OBS_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace radb::obs {

/// Phases a query passes through, in pipeline order. Queue and latch
/// are service-side (admission wait, catalog-latch wait) and are zero
/// for standalone Database::Execute calls.
enum class QueryPhase {
  kQueue = 0,
  kLatch,
  kParse,
  kBind,
  kOptimize,
  kExecute,
  kSerialize,
};
inline constexpr size_t kNumQueryPhases = 7;
const char* QueryPhaseName(QueryPhase phase);

/// Per-phase wall time in microseconds, indexed by QueryPhase.
struct PhaseBreakdown {
  uint64_t micros[kNumQueryPhases] = {};

  uint64_t& operator[](QueryPhase p) { return micros[static_cast<size_t>(p)]; }
  uint64_t operator[](QueryPhase p) const {
    return micros[static_cast<size_t>(p)];
  }
  uint64_t Total() const {
    uint64_t t = 0;
    for (size_t i = 0; i < kNumQueryPhases; ++i) t += micros[i];
    return t;
  }
};

/// One operator's execution summary, persisted from QueryMetrics into
/// the radb_operators ring. The schema is deliberately flat and
/// numeric: a future learned-cardinality pass consumes
/// (name, estimated_rows, actual_rows) pairs directly.
struct OperatorRecord {
  int64_t op_index = 0;       // position in the query's operator list
  std::string name;           // "Scan(t)", "HashJoin", ...
  double estimated_rows = 0;  // optimizer estimate (0 = none recorded)
  int64_t actual_rows = 0;    // rows_out
  int64_t rows_in = 0;
  double worker_seconds = 0;      // sum across workers
  double max_worker_seconds = 0;  // slowest worker
  double skew = 0;                // max/mean worker seconds
  int64_t rows_shuffled = 0;
  int64_t bytes_shuffled = 0;
  int64_t bytes_spilled = 0;
  int64_t spill_runs = 0;
  /// "batch" when the columnar engine executed this operator, "row"
  /// otherwise; `batches` counts column batches processed (0 on row).
  std::string exec_mode = "row";
  int64_t batches = 0;
};

/// One completed (or failed) Execute call. Everything radb_queries /
/// radb_query_phases / radb_operators serves is derived from these.
struct QueryRecord {
  uint64_t ordinal = 0;  // assigned by the store; monotone insert order
  uint64_t query_id = 0;
  uint64_t session_id = 0;  // 0 = standalone (no service session)
  std::string sql;          // possibly truncated to max_sql_bytes
  std::string status;       // StatusCodeName: "OK", "CANCELLED", ...
  int64_t rows = 0;         // total rows across the script's result sets
  int64_t peak_memory_bytes = 0;
  int64_t spill_bytes = 0;
  /// Statements of this call served from the plan / result cache
  /// (a result hit skips parse, bind, optimize AND execute).
  int64_t cache_plan_hits = 0;
  int64_t cache_result_hits = 0;
  PhaseBreakdown phases;
  uint64_t total_micros = 0;  // queue + latch + parse..serialize wall
  std::vector<OperatorRecord> operators;
};

/// Live session state mirrored into radb_sessions.
struct SessionRecord {
  uint64_t session_id = 0;
  std::string state;  // "idle" | "queued" | "running"
  uint64_t queries = 0;
  uint64_t current_query_id = 0;  // 0 when idle
  std::string current_sql;        // "" when idle
};

/// Bounded in-memory telemetry store behind the system tables: a ring
/// buffer of completed-query records plus a live session registry.
/// All methods are thread-safe behind one leaf mutex — the store never
/// calls out while holding it, so it can be read from a system-table
/// snapshot while any number of sessions record into it.
class TelemetryStore {
 public:
  struct Options {
    size_t query_capacity = 256;       // ring size for radb_queries
    size_t max_operators_per_query = 64;
    size_t max_sql_bytes = 1024;
  };

  TelemetryStore() : TelemetryStore(Options{}) {}
  explicit TelemetryStore(Options options);

  /// Appends one completed-query record, evicting the oldest when the
  /// ring is full. Truncates sql / operator lists to the configured
  /// caps and assigns the record's ordinal (returned).
  uint64_t RecordQuery(QueryRecord record);

  /// Oldest-to-newest copy of the ring.
  std::vector<QueryRecord> SnapshotQueries() const;
  /// Records with ordinal > after, oldest first (exporter cursor).
  std::vector<QueryRecord> SnapshotQueriesSince(uint64_t after) const;

  /// Live session registry, keyed by session id.
  void RegisterSession(uint64_t session_id);
  void DeregisterSession(uint64_t session_id);
  /// Updates a live session's state; bumps `queries` when a query
  /// transitions to "running". Unknown ids are ignored (the session
  /// may already be closed).
  void SetSessionState(uint64_t session_id, const std::string& state,
                       uint64_t query_id, const std::string& sql);
  std::vector<SessionRecord> SnapshotSessions() const;

  size_t query_capacity() const { return options_.query_capacity; }
  /// Total records ever inserted (not just retained).
  uint64_t queries_recorded() const;

 private:
  std::string Truncated(const std::string& sql) const;

  const Options options_;
  mutable std::mutex mu_;
  uint64_t next_ordinal_ = 1;
  std::deque<QueryRecord> queries_;
  std::map<uint64_t, SessionRecord> sessions_;
};

}  // namespace radb::obs

#endif  // RADB_OBS_TELEMETRY_H_
