#ifndef RADB_ENGINES_SPARK_BLOCK_MATRIX_H_
#define RADB_ENGINES_SPARK_BLOCK_MATRIX_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/result.h"
#include "engines/spark/rdd.h"
#include "la/matrix.h"

namespace radb::spark {

/// One block of a distributed BlockMatrix, addressed by block indexes
/// (mirrors mllib's ((i, j), Matrix) pairs).
struct MatrixBlock {
  size_t bi = 0;
  size_t bj = 0;
  la::Matrix mat;
};

inline size_t PayloadBytes(const MatrixBlock& b) {
  return 16 + b.mat.ByteSize();
}

/// mllib.linalg.distributed.BlockMatrix equivalent: a grid of dense
/// blocks partitioned across the cluster; multiply shuffles co-grouped
/// blocks exactly like Spark's simulate-and-aggregate implementation.
class BlockMatrix {
 public:
  BlockMatrix(SparkContext* ctx, std::vector<MatrixBlock> blocks,
              size_t rows_per_block, size_t cols_per_block, size_t num_rows,
              size_t num_cols);

  /// Splits a dense matrix into blocks distributed round-robin.
  static BlockMatrix FromDense(SparkContext* ctx, const la::Matrix& m,
                               size_t rows_per_block, size_t cols_per_block);

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return num_cols_; }
  size_t rows_per_block() const { return rows_per_block_; }
  size_t cols_per_block() const { return cols_per_block_; }

  Result<BlockMatrix> Multiply(const BlockMatrix& other) const;
  BlockMatrix Transpose() const;

  /// Collects all blocks into a local dense matrix (toLocalMatrix).
  Result<la::Matrix> ToLocal() const;

  /// IndexedRowMatrix conversion: one (row index, row vector) pair per
  /// matrix row.
  Rdd<std::pair<size_t, la::Vector>> ToIndexedRows() const;

  SparkContext* context() const { return ctx_; }
  const std::vector<std::vector<MatrixBlock>>& partitions() const {
    return partitions_;
  }

 private:
  SparkContext* ctx_;
  std::vector<std::vector<MatrixBlock>> partitions_;
  size_t rows_per_block_;
  size_t cols_per_block_;
  size_t num_rows_;
  size_t num_cols_;
};

}  // namespace radb::spark

#endif  // RADB_ENGINES_SPARK_BLOCK_MATRIX_H_
