#ifndef RADB_ENGINES_SPARK_RDD_H_
#define RADB_ENGINES_SPARK_RDD_H_

#include <chrono>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::spark {

/// Byte sizing for shuffle accounting. Overload for payload types that
/// flow through RDDs.
inline size_t PayloadBytes(double) { return 8; }
inline size_t PayloadBytes(int64_t) { return 8; }
inline size_t PayloadBytes(size_t) { return 8; }
inline size_t PayloadBytes(const la::Vector& v) { return v.ByteSize(); }
inline size_t PayloadBytes(const la::Matrix& m) { return m.ByteSize(); }
template <typename A, typename B>
size_t PayloadBytes(const std::pair<A, B>& p) {
  return PayloadBytes(p.first) + PayloadBytes(p.second);
}
template <typename T>
size_t PayloadBytes(const std::vector<T>& v) {
  size_t s = 8;
  for (const T& x : v) s += PayloadBytes(x);
  return s;
}

/// Execution context of the Spark-style comparator engine: partition
/// count (the paper runs Spark 1.6 standalone on 10 machines) and
/// per-stage metrics compatible with the relational engine's.
class SparkContext {
 public:
  explicit SparkContext(size_t num_partitions)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {}

  size_t num_partitions() const { return num_partitions_; }
  QueryMetrics& metrics() { return metrics_; }
  const QueryMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = QueryMetrics{}; }

  OperatorMetrics* NewStage(std::string name) {
    metrics_.operators.push_back(OperatorMetrics{});
    OperatorMetrics* m = &metrics_.operators.back();
    m->name = std::move(name);
    m->worker_seconds.assign(num_partitions_, 0.0);
    return m;
  }

 private:
  size_t num_partitions_;
  QueryMetrics metrics_;
};

/// A minimal RDD: partitioned in-memory data with the map / filter /
/// reduce / collect operations the paper's mllib codes use. Transforms
/// here are eager (no lineage), which is fine for benchmarking since
/// each code path materializes the same intermediates Spark would.
template <typename T>
class Rdd {
 public:
  Rdd(SparkContext* ctx, std::vector<std::vector<T>> partitions)
      : ctx_(ctx), partitions_(std::move(partitions)) {}

  /// Round-robin parallelize.
  static Rdd<T> Parallelize(SparkContext* ctx, std::vector<T> data) {
    std::vector<std::vector<T>> parts(ctx->num_partitions());
    for (size_t i = 0; i < data.size(); ++i) {
      parts[i % parts.size()].push_back(std::move(data[i]));
    }
    return Rdd<T>(ctx, std::move(parts));
  }

  SparkContext* context() const { return ctx_; }
  const std::vector<std::vector<T>>& partitions() const {
    return partitions_;
  }

  size_t Count() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  template <typename F>
  auto Map(F f, const std::string& stage = "map") const
      -> Rdd<decltype(f(std::declval<const T&>()))> {
    using U = decltype(f(std::declval<const T&>()));
    OperatorMetrics* m = ctx_->NewStage(stage);
    std::vector<std::vector<U>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      out[p].reserve(partitions_[p].size());
      for (const T& x : partitions_[p]) out[p].push_back(f(x));
      m->worker_seconds[p] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      m->rows_out += out[p].size();
      for (const U& u : out[p]) m->bytes_out += PayloadBytes(u);
    }
    return Rdd<U>(ctx_, std::move(out));
  }

  template <typename F>
  Rdd<T> Filter(F pred, const std::string& stage = "filter") const {
    OperatorMetrics* m = ctx_->NewStage(stage);
    std::vector<std::vector<T>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const T& x : partitions_[p]) {
        if (pred(x)) out[p].push_back(x);
      }
      m->worker_seconds[p] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      m->rows_out += out[p].size();
    }
    return Rdd<T>(ctx_, std::move(out));
  }

  /// Tree-style reduce: local fold per partition, then a driver-side
  /// combine of one partial per partition (the partials are charged to
  /// the shuffle).
  template <typename F>
  Result<T> Reduce(F f, const std::string& stage = "reduce") const {
    OperatorMetrics* m = ctx_->NewStage(stage);
    std::vector<T> partials;
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (partitions_[p].empty()) continue;
      const auto t0 = std::chrono::steady_clock::now();
      T acc = partitions_[p][0];
      for (size_t i = 1; i < partitions_[p].size(); ++i) {
        acc = f(acc, partitions_[p][i]);
      }
      m->worker_seconds[p] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      partials.push_back(std::move(acc));
    }
    if (partials.empty()) {
      return Status::ExecutionError("reduce on empty RDD");
    }
    for (size_t i = 1; i < partials.size(); ++i) {
      m->bytes_shuffled += PayloadBytes(partials[i]);
      ++m->rows_shuffled;
    }
    const auto t0 = std::chrono::steady_clock::now();
    T acc = std::move(partials[0]);
    for (size_t i = 1; i < partials.size(); ++i) {
      acc = f(acc, partials[i]);
    }
    m->worker_seconds[0] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    m->rows_out = 1;
    m->bytes_out = PayloadBytes(acc);
    return acc;
  }

  /// treeAggregate-style fold: `seq` folds each element into a
  /// per-partition accumulator, `comb` merges partition accumulators
  /// at the driver. Memory stays bounded by one U per partition while
  /// `seq` still pays the per-element cost of the user closure —
  /// faithful to what mllib codes like
  /// `map(x => outer(x)).reduce(add)` cost on real Spark.
  template <typename U, typename Seq, typename Comb>
  Result<U> Aggregate(U zero, Seq seq, Comb comb,
                      const std::string& stage = "aggregate") const {
    OperatorMetrics* m = ctx_->NewStage(stage);
    std::vector<U> partials;
    for (size_t p = 0; p < partitions_.size(); ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      U acc = zero;
      for (const T& x : partitions_[p]) acc = seq(std::move(acc), x);
      m->worker_seconds[p] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      partials.push_back(std::move(acc));
    }
    for (size_t i = 1; i < partials.size(); ++i) {
      m->bytes_shuffled += PayloadBytes(partials[i]);
      ++m->rows_shuffled;
    }
    const auto t0 = std::chrono::steady_clock::now();
    U acc = std::move(partials.empty() ? zero : partials[0]);
    for (size_t i = 1; i < partials.size(); ++i) {
      acc = comb(std::move(acc), partials[i]);
    }
    if (!partials.empty()) {
      m->worker_seconds[0] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
    m->rows_out = 1;
    m->bytes_out = PayloadBytes(acc);
    return acc;
  }

  /// Max element under a comparator (mirrors `.max()(Ordering...)`).
  template <typename Less>
  Result<T> MaxBy(Less less, const std::string& stage = "max") const {
    return Reduce(
        [less](const T& a, const T& b) { return less(a, b) ? b : a; }, stage);
  }

  std::vector<T> Collect() const {
    std::vector<T> all;
    for (const auto& p : partitions_) {
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  }

 private:
  SparkContext* ctx_;
  std::vector<std::vector<T>> partitions_;
};

}  // namespace radb::spark

#endif  // RADB_ENGINES_SPARK_RDD_H_
