#include "engines/spark/block_matrix.h"

#include <chrono>

#include "la/tiled.h"

namespace radb::spark {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

BlockMatrix::BlockMatrix(SparkContext* ctx, std::vector<MatrixBlock> blocks,
                         size_t rows_per_block, size_t cols_per_block,
                         size_t num_rows, size_t num_cols)
    : ctx_(ctx),
      partitions_(ctx->num_partitions()),
      rows_per_block_(rows_per_block),
      cols_per_block_(cols_per_block),
      num_rows_(num_rows),
      num_cols_(num_cols) {
  // Blocks are partitioned by a grid hash, mirroring mllib's
  // GridPartitioner.
  for (MatrixBlock& b : blocks) {
    const size_t h = b.bi * 31 + b.bj;
    partitions_[h % partitions_.size()].push_back(std::move(b));
  }
}

BlockMatrix BlockMatrix::FromDense(SparkContext* ctx, const la::Matrix& m,
                                   size_t rows_per_block,
                                   size_t cols_per_block) {
  std::vector<la::Tile> tiles =
      la::SplitIntoTiles(m, rows_per_block, cols_per_block);
  std::vector<MatrixBlock> blocks;
  blocks.reserve(tiles.size());
  for (la::Tile& t : tiles) {
    blocks.push_back(MatrixBlock{t.tile_row, t.tile_col, std::move(t.mat)});
  }
  return BlockMatrix(ctx, std::move(blocks), rows_per_block, cols_per_block,
                     m.rows(), m.cols());
}

Result<BlockMatrix> BlockMatrix::Multiply(const BlockMatrix& other) const {
  if (num_cols_ != other.num_rows_ ||
      cols_per_block_ != other.rows_per_block_) {
    return Status::DimensionMismatch(
        "BlockMatrix multiply: incompatible shapes or block sizes");
  }
  OperatorMetrics* m = ctx_->NewStage("BlockMatrix.multiply");
  const size_t w = ctx_->num_partitions();

  // Simulate the cogroup shuffle: both sides are re-keyed so that
  // lhs(i, k) meets rhs(k, j) on the worker owning output block
  // (i, j). Each lhs block is sent to every output column group, each
  // rhs block to every output row group (Spark's replication factor).
  const size_t out_row_blocks =
      (num_rows_ + rows_per_block_ - 1) / rows_per_block_;
  const size_t out_col_blocks =
      (other.num_cols_ + other.cols_per_block_ - 1) / other.cols_per_block_;

  struct Acc {
    bool init = false;
    la::Matrix mat;
  };
  std::vector<std::map<std::pair<size_t, size_t>, Acc>> partials(w);

  // Gather rhs blocks by row-block index for the join.
  std::map<size_t, std::vector<const MatrixBlock*>> rhs_by_row;
  for (const auto& part : other.partitions_) {
    for (const MatrixBlock& b : part) rhs_by_row[b.bi].push_back(&b);
  }
  // Shuffle accounting: lhs blocks replicated across output column
  // groups, rhs across output row groups.
  for (const auto& part : partitions_) {
    for (const MatrixBlock& b : part) {
      m->bytes_shuffled += PayloadBytes(b) * (out_col_blocks > 0
                                                  ? out_col_blocks - 1
                                                  : 0);
    }
  }
  for (const auto& part : other.partitions_) {
    for (const MatrixBlock& b : part) {
      m->bytes_shuffled +=
          PayloadBytes(b) * (out_row_blocks > 0 ? out_row_blocks - 1 : 0);
    }
  }

  for (const auto& part : partitions_) {
    for (const MatrixBlock& lb : part) {
      auto it = rhs_by_row.find(lb.bj);
      if (it == rhs_by_row.end()) continue;
      for (const MatrixBlock* rb : it->second) {
        const auto key = std::make_pair(lb.bi, rb->bj);
        const size_t wkr = (key.first * 31 + key.second) % w;
        const auto t0 = Clock::now();
        RADB_ASSIGN_OR_RETURN(la::Matrix prod, la::Multiply(lb.mat, rb->mat));
        Acc& acc = partials[wkr][key];
        if (!acc.init) {
          acc.mat = std::move(prod);
          acc.init = true;
        } else {
          RADB_ASSIGN_OR_RETURN(acc.mat, la::Add(acc.mat, prod));
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
      }
    }
  }

  std::vector<MatrixBlock> out_blocks;
  for (size_t wkr = 0; wkr < w; ++wkr) {
    for (auto& [key, acc] : partials[wkr]) {
      m->rows_out += 1;
      m->bytes_out += acc.mat.ByteSize();
      out_blocks.push_back(
          MatrixBlock{key.first, key.second, std::move(acc.mat)});
    }
  }
  return BlockMatrix(ctx_, std::move(out_blocks), rows_per_block_,
                     other.cols_per_block_, num_rows_, other.num_cols_);
}

BlockMatrix BlockMatrix::Transpose() const {
  OperatorMetrics* m = ctx_->NewStage("BlockMatrix.transpose");
  std::vector<MatrixBlock> out;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const auto t0 = Clock::now();
    for (const MatrixBlock& b : partitions_[p]) {
      out.push_back(MatrixBlock{b.bj, b.bi, la::Transpose(b.mat)});
      m->rows_out += 1;
      m->bytes_out += b.mat.ByteSize();
    }
    m->worker_seconds[p] += SecondsSince(t0);
  }
  return BlockMatrix(ctx_, std::move(out), cols_per_block_, rows_per_block_,
                     num_cols_, num_rows_);
}

Result<la::Matrix> BlockMatrix::ToLocal() const {
  std::vector<la::Tile> tiles;
  for (const auto& part : partitions_) {
    for (const MatrixBlock& b : part) {
      tiles.push_back(la::Tile{b.bi, b.bj, b.mat});
    }
  }
  return la::AssembleTiles(tiles);
}

Rdd<std::pair<size_t, la::Vector>> BlockMatrix::ToIndexedRows() const {
  OperatorMetrics* m = ctx_->NewStage("BlockMatrix.toIndexedRowMatrix");
  const size_t w = ctx_->num_partitions();
  // Rows of one block row may span several blocks; assemble by global
  // row index, shuffling row fragments (charged below).
  std::map<size_t, la::Vector> rows;
  for (const auto& part : partitions_) {
    for (const MatrixBlock& b : part) {
      for (size_t r = 0; r < b.mat.rows(); ++r) {
        const size_t global_row = b.bi * rows_per_block_ + r;
        auto it = rows.find(global_row);
        if (it == rows.end()) {
          it = rows.emplace(global_row, la::Vector(num_cols_)).first;
        }
        const size_t col0 = b.bj * cols_per_block_;
        for (size_t c = 0; c < b.mat.cols(); ++c) {
          it->second[col0 + c] = b.mat.At(r, c);
        }
        m->bytes_shuffled += b.mat.cols() * 8;
      }
    }
  }
  std::vector<std::vector<std::pair<size_t, la::Vector>>> parts(w);
  for (auto& [idx, vec] : rows) {
    m->rows_out += 1;
    m->bytes_out += vec.ByteSize();
    parts[idx % w].emplace_back(idx, std::move(vec));
  }
  return Rdd<std::pair<size_t, la::Vector>>(ctx_, std::move(parts));
}

}  // namespace radb::spark
