#ifndef RADB_ENGINES_SYSTEMML_DML_H_
#define RADB_ENGINES_SYSTEMML_DML_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::systemml {

/// Runtime configuration of the SystemML-style comparator. SystemML
/// V0.9 stores matrices as square blocks and chooses between local
/// (single-node, in-memory) and distributed (MR) execution per
/// operation — the paper's Figure 1/2 footnote marks the 10-dim runs
/// as "local mode". `local_threshold_bytes` models that hybrid
/// decision.
struct DmlConfig {
  size_t num_workers = 8;
  size_t block_size = 1000;  // SystemML default square block
  /// Operands smaller than this run in local mode (no distribution,
  /// no shuffle, no per-block bookkeeping).
  size_t local_threshold_bytes = 2u << 20;  // 2 MiB
};

/// Execution context: metrics + config.
class DmlContext {
 public:
  explicit DmlContext(DmlConfig config) : config_(config) {}

  const DmlConfig& config() const { return config_; }
  QueryMetrics& metrics() { return metrics_; }
  void ResetMetrics() { metrics_ = QueryMetrics{}; }

  OperatorMetrics* NewOp(std::string name) {
    metrics_.operators.push_back(OperatorMetrics{});
    OperatorMetrics* m = &metrics_.operators.back();
    m->name = std::move(name);
    m->worker_seconds.assign(config_.num_workers, 0.0);
    return m;
  }

 private:
  DmlConfig config_;
  QueryMetrics metrics_;
};

/// A SystemML matrix: square-blocked, distributed across workers (or
/// held locally when small — the hybrid runtime decides per op).
/// The API mirrors the DML constructs the paper's codes use:
///   t(X) %*% X, X %*% m, rowMins, rowIndexMax, diag, +, cell access.
class DmlMatrix {
 public:
  struct Block {
    size_t bi = 0, bj = 0;
    la::Matrix mat;
  };

  DmlMatrix() : ctx_(nullptr), num_rows_(0), num_cols_(0) {}

  /// Loads a dense matrix, blocking and distributing it.
  static DmlMatrix FromDense(DmlContext* ctx, const la::Matrix& m);

  DmlContext* context() const { return ctx_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return num_cols_; }
  size_t ByteSize() const { return 8 * num_rows_ * num_cols_; }
  bool IsLocal() const;

  /// t(this) %*% this — SystemML's TSMM fused operator: each worker
  /// computes the Gram of its block-rows locally, partials are
  /// tree-reduced. This is why SystemML is strong on Gram/regression.
  Result<DmlMatrix> Tsmm() const;

  /// this %*% other. Broadcast (MapMM) when one side is small,
  /// otherwise a replicated-join multiply (CPMM/RMM).
  Result<DmlMatrix> Multiply(const DmlMatrix& other) const;

  Result<DmlMatrix> Transpose() const;
  Result<DmlMatrix> Add(const DmlMatrix& other) const;

  /// diag(v): vector -> diagonal matrix semantics are covered by
  /// FromDense; this is diag(M): extract the main diagonal.
  Result<la::Vector> Diag() const;

  /// rowMins(this) as a local vector.
  Result<la::Vector> RowMins() const;
  /// rowIndexMax over a vector-shaped (1 x n or n x 1) matrix —
  /// returns the index of the max entry.
  Result<size_t> IndexMax() const;

  /// Adds `v[i]` to cell (i, i) (the paper's `all_dist +
  /// diag(diag_inf)` trick to knock out self-distances).
  Result<DmlMatrix> AddToDiagonal(const la::Vector& v) const;

  /// Solve(A, b) via local LU once operands are gathered — SystemML
  /// runs small solves locally.
  static Result<la::Vector> Solve(const DmlMatrix& a, const la::Vector& b);

  /// Gathers into a dense local matrix.
  Result<la::Matrix> ToDense() const;

 private:
  DmlMatrix(DmlContext* ctx, size_t rows, size_t cols);

  /// Distributes blocks across workers by block-coordinate hash.
  void Partition(std::vector<Block> blocks);

  DmlContext* ctx_;
  size_t num_rows_, num_cols_;
  std::vector<std::vector<Block>> partitions_;  // per worker
  /// Local-mode payload (exclusive with partitions_ content).
  std::shared_ptr<la::Matrix> local_;
};

}  // namespace radb::systemml

#endif  // RADB_ENGINES_SYSTEMML_DML_H_
