#include "engines/systemml/dml.h"

#include <chrono>
#include <map>

#include "la/tiled.h"

namespace radb::systemml {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

DmlMatrix::DmlMatrix(DmlContext* ctx, size_t rows, size_t cols)
    : ctx_(ctx),
      num_rows_(rows),
      num_cols_(cols),
      partitions_(ctx->config().num_workers) {}

bool DmlMatrix::IsLocal() const { return local_ != nullptr; }

void DmlMatrix::Partition(std::vector<Block> blocks) {
  for (Block& b : blocks) {
    const size_t h = b.bi * 131071 + b.bj;
    partitions_[h % partitions_.size()].push_back(std::move(b));
  }
}

DmlMatrix DmlMatrix::FromDense(DmlContext* ctx, const la::Matrix& m) {
  DmlMatrix out(ctx, m.rows(), m.cols());
  if (out.ByteSize() <= ctx->config().local_threshold_bytes) {
    out.local_ = std::make_shared<la::Matrix>(m);
    return out;
  }
  const size_t bs = ctx->config().block_size;
  std::vector<la::Tile> tiles = la::SplitIntoTiles(m, bs, bs);
  std::vector<Block> blocks;
  blocks.reserve(tiles.size());
  for (la::Tile& t : tiles) {
    blocks.push_back(Block{t.tile_row, t.tile_col, std::move(t.mat)});
  }
  out.Partition(std::move(blocks));
  return out;
}

Result<la::Matrix> DmlMatrix::ToDense() const {
  if (local_) return *local_;
  std::vector<la::Tile> tiles;
  for (const auto& part : partitions_) {
    for (const Block& b : part) tiles.push_back(la::Tile{b.bi, b.bj, b.mat});
  }
  if (tiles.empty()) return la::Matrix(num_rows_, num_cols_);
  return la::AssembleTiles(tiles);
}

Result<DmlMatrix> DmlMatrix::Tsmm() const {
  OperatorMetrics* m =
      ctx_->NewOp(local_ ? "tsmm(local)" : "tsmm(distributed)");
  if (local_) {
    const auto t0 = Clock::now();
    la::Matrix gram = la::TransposeSelfMultiply(*local_);
    m->worker_seconds[0] += SecondsSince(t0);
    m->rows_out = 1;
    m->bytes_out = gram.ByteSize();
    DmlMatrix out(ctx_, num_cols_, num_cols_);
    out.local_ = std::make_shared<la::Matrix>(std::move(gram));
    return out;
  }
  // Distributed TSMM: each worker computes t(B) %*% B over its block
  // rows (only valid when the matrix is a single block column — the
  // Gram pattern: tall-skinny X). Otherwise fall back to
  // transpose-multiply.
  const size_t col_blocks =
      (num_cols_ + ctx_->config().block_size - 1) / ctx_->config().block_size;
  if (col_blocks > 1) {
    RADB_ASSIGN_OR_RETURN(DmlMatrix t, Transpose());
    return t.Multiply(*this);
  }
  la::Matrix acc(num_cols_, num_cols_);
  bool first = true;
  for (size_t wkr = 0; wkr < partitions_.size(); ++wkr) {
    const auto t0 = Clock::now();
    for (const Block& b : partitions_[wkr]) {
      la::Matrix partial = la::TransposeSelfMultiply(b.mat);
      if (first) {
        acc = std::move(partial);
        first = false;
      } else {
        RADB_ASSIGN_OR_RETURN(acc, la::Add(acc, partial));
        m->bytes_shuffled += partial.ByteSize();  // partial to reducer
      }
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
  }
  m->rows_out = 1;
  m->bytes_out = acc.ByteSize();
  DmlMatrix out(ctx_, num_cols_, num_cols_);
  if (out.ByteSize() <= ctx_->config().local_threshold_bytes) {
    out.local_ = std::make_shared<la::Matrix>(std::move(acc));
  } else {
    const size_t bs = ctx_->config().block_size;
    std::vector<la::Tile> tiles = la::SplitIntoTiles(acc, bs, bs);
    std::vector<Block> blocks;
    for (la::Tile& t : tiles) {
      blocks.push_back(Block{t.tile_row, t.tile_col, std::move(t.mat)});
    }
    out.Partition(std::move(blocks));
  }
  return out;
}

Result<DmlMatrix> DmlMatrix::Multiply(const DmlMatrix& other) const {
  if (num_cols_ != other.num_rows_) {
    return Status::DimensionMismatch("DML %*%: incompatible shapes");
  }
  // Fully local?
  if (local_ && other.local_) {
    OperatorMetrics* m = ctx_->NewOp("mapmm(local)");
    const auto t0 = Clock::now();
    RADB_ASSIGN_OR_RETURN(la::Matrix prod, la::Multiply(*local_, *other.local_));
    m->worker_seconds[0] += SecondsSince(t0);
    m->rows_out = 1;
    m->bytes_out = prod.ByteSize();
    DmlMatrix out(ctx_, num_rows_, other.num_cols_);
    out.local_ = std::make_shared<la::Matrix>(std::move(prod));
    return out;
  }
  // MapMM: broadcast the small (local) side to every worker holding
  // blocks of the big side; no shuffle of the big side.
  if (local_ || other.local_) {
    OperatorMetrics* m = ctx_->NewOp("mapmm(broadcast)");
    const bool small_left = (local_ != nullptr);
    const DmlMatrix& big = small_left ? other : *this;
    const la::Matrix& small = small_left ? *local_ : *other.local_;
    m->bytes_shuffled +=
        small.ByteSize() * (ctx_->config().num_workers - 1);
    std::map<std::pair<size_t, size_t>, la::Matrix> outputs;
    const size_t bs = ctx_->config().block_size;
    for (size_t wkr = 0; wkr < big.partitions_.size(); ++wkr) {
      const auto t0 = Clock::now();
      for (const Block& b : big.partitions_[wkr]) {
        // Slice the broadcast side to match this block.
        if (small_left) {
          // small (r x k) * big block rows [b.bi*bs ...]: small cols
          // slice aligned with block rows.
          const size_t k0 = b.bi * bs;
          la::Matrix slice(num_rows_, b.mat.rows());
          for (size_t r = 0; r < num_rows_; ++r) {
            for (size_t c = 0; c < b.mat.rows(); ++c) {
              slice.At(r, c) = small.At(r, k0 + c);
            }
          }
          RADB_ASSIGN_OR_RETURN(la::Matrix prod, la::Multiply(slice, b.mat));
          auto key = std::make_pair(size_t{0}, b.bj);
          auto it = outputs.find(key);
          if (it == outputs.end()) {
            outputs.emplace(key, std::move(prod));
          } else {
            RADB_ASSIGN_OR_RETURN(it->second, la::Add(it->second, prod));
          }
        } else {
          const size_t k0 = b.bj * bs;
          la::Matrix slice(b.mat.cols(), other.num_cols_);
          for (size_t r = 0; r < b.mat.cols(); ++r) {
            for (size_t c = 0; c < other.num_cols_; ++c) {
              slice.At(r, c) = small.At(k0 + r, c);
            }
          }
          RADB_ASSIGN_OR_RETURN(la::Matrix prod, la::Multiply(b.mat, slice));
          auto key = std::make_pair(b.bi, size_t{0});
          auto it = outputs.find(key);
          if (it == outputs.end()) {
            outputs.emplace(key, std::move(prod));
          } else {
            RADB_ASSIGN_OR_RETURN(it->second, la::Add(it->second, prod));
          }
        }
      }
      m->worker_seconds[wkr] += SecondsSince(t0);
    }
    // Assemble.
    std::vector<la::Tile> tiles;
    for (auto& [key, mat] : outputs) {
      m->rows_out += 1;
      m->bytes_out += mat.ByteSize();
      tiles.push_back(la::Tile{key.first, key.second, std::move(mat)});
    }
    RADB_ASSIGN_OR_RETURN(la::Matrix dense, la::AssembleTiles(tiles));
    return FromDense(ctx_, dense);
  }
  // CPMM: both distributed — replicated-join multiply over blocks.
  OperatorMetrics* m = ctx_->NewOp("cpmm(distributed)");
  std::map<size_t, std::vector<const Block*>> rhs_by_row;
  size_t rhs_bytes = 0;
  for (const auto& part : other.partitions_) {
    for (const Block& b : part) {
      rhs_by_row[b.bi].push_back(&b);
      rhs_bytes += b.mat.ByteSize();
    }
  }
  m->bytes_shuffled += rhs_bytes;  // co-location shuffle of one side
  const size_t w = ctx_->config().num_workers;
  std::vector<std::map<std::pair<size_t, size_t>, la::Matrix>> partials(w);
  for (const auto& part : partitions_) {
    for (const Block& lb : part) {
      auto it = rhs_by_row.find(lb.bj);
      if (it == rhs_by_row.end()) continue;
      for (const Block* rb : it->second) {
        const auto key = std::make_pair(lb.bi, rb->bj);
        const size_t wkr = (key.first * 131071 + key.second) % w;
        const auto t0 = Clock::now();
        RADB_ASSIGN_OR_RETURN(la::Matrix prod, la::Multiply(lb.mat, rb->mat));
        auto pit = partials[wkr].find(key);
        if (pit == partials[wkr].end()) {
          partials[wkr].emplace(key, std::move(prod));
        } else {
          RADB_ASSIGN_OR_RETURN(pit->second, la::Add(pit->second, prod));
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
      }
    }
  }
  DmlMatrix out(ctx_, num_rows_, other.num_cols_);
  std::vector<Block> blocks;
  for (size_t wkr = 0; wkr < w; ++wkr) {
    for (auto& [key, mat] : partials[wkr]) {
      m->rows_out += 1;
      m->bytes_out += mat.ByteSize();
      blocks.push_back(Block{key.first, key.second, std::move(mat)});
    }
  }
  out.Partition(std::move(blocks));
  return out;
}

Result<DmlMatrix> DmlMatrix::Transpose() const {
  OperatorMetrics* m = ctx_->NewOp("r'(transpose)");
  if (local_) {
    const auto t0 = Clock::now();
    la::Matrix t = la::Transpose(*local_);
    m->worker_seconds[0] += SecondsSince(t0);
    DmlMatrix out(ctx_, num_cols_, num_rows_);
    out.local_ = std::make_shared<la::Matrix>(std::move(t));
    return out;
  }
  DmlMatrix out(ctx_, num_cols_, num_rows_);
  std::vector<Block> blocks;
  for (size_t wkr = 0; wkr < partitions_.size(); ++wkr) {
    const auto t0 = Clock::now();
    for (const Block& b : partitions_[wkr]) {
      blocks.push_back(Block{b.bj, b.bi, la::Transpose(b.mat)});
      m->bytes_shuffled += b.mat.ByteSize();
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
  }
  out.Partition(std::move(blocks));
  return out;
}

Result<DmlMatrix> DmlMatrix::Add(const DmlMatrix& other) const {
  if (num_rows_ != other.num_rows_ || num_cols_ != other.num_cols_) {
    return Status::DimensionMismatch("DML +: incompatible shapes");
  }
  OperatorMetrics* m = ctx_->NewOp("b(+)");
  RADB_ASSIGN_OR_RETURN(la::Matrix a, ToDense());
  RADB_ASSIGN_OR_RETURN(la::Matrix b, other.ToDense());
  const auto t0 = Clock::now();
  RADB_ASSIGN_OR_RETURN(la::Matrix sum, la::Add(a, b));
  m->worker_seconds[0] += SecondsSince(t0);
  m->bytes_out = sum.ByteSize();
  return FromDense(ctx_, sum);
}

Result<la::Vector> DmlMatrix::Diag() const {
  OperatorMetrics* m = ctx_->NewOp("diag");
  RADB_ASSIGN_OR_RETURN(la::Matrix dense, ToDense());
  const auto t0 = Clock::now();
  RADB_ASSIGN_OR_RETURN(la::Vector d, la::Diagonal(dense));
  m->worker_seconds[0] += SecondsSince(t0);
  m->bytes_out = d.ByteSize();
  return d;
}

Result<la::Vector> DmlMatrix::RowMins() const {
  OperatorMetrics* m = ctx_->NewOp("rowMins");
  if (local_) {
    const auto t0 = Clock::now();
    la::Vector mins = local_->RowMins();
    m->worker_seconds[0] += SecondsSince(t0);
    m->bytes_out = mins.ByteSize();
    return mins;
  }
  la::Vector mins(num_rows_, std::numeric_limits<double>::infinity());
  const size_t bs = ctx_->config().block_size;
  for (size_t wkr = 0; wkr < partitions_.size(); ++wkr) {
    const auto t0 = Clock::now();
    for (const Block& b : partitions_[wkr]) {
      la::Vector part = b.mat.RowMins();
      const size_t r0 = b.bi * bs;
      for (size_t r = 0; r < part.size(); ++r) {
        if (part[r] < mins[r0 + r]) mins[r0 + r] = part[r];
      }
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
  }
  m->bytes_shuffled += mins.ByteSize() * (partitions_.size() - 1);
  m->bytes_out = mins.ByteSize();
  return mins;
}

Result<size_t> DmlMatrix::IndexMax() const {
  RADB_ASSIGN_OR_RETURN(la::Matrix dense, ToDense());
  if (dense.rows() != 1 && dense.cols() != 1) {
    return Status::InvalidArgument("rowIndexMax expects a vector shape");
  }
  OperatorMetrics* m = ctx_->NewOp("rowIndexMax");
  const auto t0 = Clock::now();
  la::Vector v = dense.rows() == 1 ? dense.Row(0) : dense.Col(0);
  const size_t idx = v.ArgMax();
  m->worker_seconds[0] += SecondsSince(t0);
  return idx;
}

Result<DmlMatrix> DmlMatrix::AddToDiagonal(const la::Vector& v) const {
  if (num_rows_ != num_cols_ || v.size() != num_rows_) {
    return Status::DimensionMismatch("AddToDiagonal: shape mismatch");
  }
  OperatorMetrics* m = ctx_->NewOp("b(+) diag");
  RADB_ASSIGN_OR_RETURN(la::Matrix dense, ToDense());
  const auto t0 = Clock::now();
  for (size_t i = 0; i < v.size(); ++i) dense.At(i, i) += v[i];
  m->worker_seconds[0] += SecondsSince(t0);
  return FromDense(ctx_, dense);
}

Result<la::Vector> DmlMatrix::Solve(const DmlMatrix& a, const la::Vector& b) {
  OperatorMetrics* m = a.ctx_->NewOp("solve(local)");
  RADB_ASSIGN_OR_RETURN(la::Matrix dense, a.ToDense());
  const auto t0 = Clock::now();
  RADB_ASSIGN_OR_RETURN(la::Vector x, la::Solve(dense, b));
  m->worker_seconds[0] += SecondsSince(t0);
  return x;
}

}  // namespace radb::systemml
