#include "engines/scidb/array.h"

#include <chrono>
#include <limits>
#include <map>

#include "la/tiled.h"

namespace radb::scidb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

size_t ChunkBytes(const Chunk& c) { return 16 + c.data.ByteSize(); }

}  // namespace

Array2D::Array2D(ArrayContext* ctx, size_t num_rows, size_t num_cols,
                 size_t chunk, std::vector<Chunk> chunks)
    : ctx_(ctx),
      partitions_(ctx->num_instances()),
      num_rows_(num_rows),
      num_cols_(num_cols),
      chunk_(chunk == 0 ? 1 : chunk) {
  for (Chunk& c : chunks) {
    const size_t h = c.ci * 1000003 + c.cj;
    partitions_[h % partitions_.size()].push_back(std::move(c));
  }
}

Array2D Array2D::Build(ArrayContext* ctx, size_t num_rows, size_t num_cols,
                       size_t chunk, double fill) {
  la::Matrix dense(num_rows, num_cols, fill);
  return FromDense(ctx, dense, chunk);
}

Array2D Array2D::FromDense(ArrayContext* ctx, const la::Matrix& m,
                           size_t chunk) {
  std::vector<la::Tile> tiles = la::SplitIntoTiles(m, chunk, chunk);
  std::vector<Chunk> chunks;
  chunks.reserve(tiles.size());
  for (la::Tile& t : tiles) {
    chunks.push_back(Chunk{t.tile_row, t.tile_col, std::move(t.mat)});
  }
  return Array2D(ctx, m.rows(), m.cols(), chunk, std::move(chunks));
}

Result<la::Matrix> Array2D::ToDense() const {
  std::vector<la::Tile> tiles;
  for (const auto& part : partitions_) {
    for (const Chunk& c : part) tiles.push_back(la::Tile{c.ci, c.cj, c.data});
  }
  if (tiles.empty()) return la::Matrix(num_rows_, num_cols_);
  return la::AssembleTiles(tiles);
}

Result<Array2D> Gemm(const Array2D& a, const Array2D& b, const Array2D& c) {
  if (a.num_cols() != b.num_rows() || a.num_rows() != c.num_rows() ||
      b.num_cols() != c.num_cols()) {
    return Status::DimensionMismatch("gemm: incompatible array shapes");
  }
  if (a.chunk() != b.chunk() || a.chunk() != c.chunk()) {
    return Status::InvalidArgument("gemm: arrays must share chunk size");
  }
  ArrayContext* ctx = a.context();
  OperatorMetrics* m = ctx->NewOp("gemm");
  const size_t w = ctx->num_instances();

  // Index rhs chunks by their row-chunk coordinate.
  std::map<size_t, std::vector<const Chunk*>> b_by_row;
  for (const auto& part : b.partitions()) {
    for (const Chunk& ch : part) b_by_row[ch.ci].push_back(&ch);
  }
  // Rotation shuffle: every a-chunk visits each matching b row group;
  // charge one replication per b column group beyond the first.
  const size_t b_col_groups = (b.num_cols() + b.chunk() - 1) / b.chunk();
  for (const auto& part : a.partitions()) {
    for (const Chunk& ch : part) {
      m->bytes_shuffled +=
          ChunkBytes(ch) * (b_col_groups > 0 ? b_col_groups - 1 : 0);
    }
  }

  struct Acc {
    bool init = false;
    la::Matrix mat;
  };
  std::vector<std::map<std::pair<size_t, size_t>, Acc>> partials(w);
  for (const auto& part : a.partitions()) {
    for (const Chunk& ca : part) {
      auto it = b_by_row.find(ca.cj);
      if (it == b_by_row.end()) continue;
      for (const Chunk* cb : it->second) {
        const auto key = std::make_pair(ca.ci, cb->cj);
        const size_t wkr = (key.first * 1000003 + key.second) % w;
        const auto t0 = Clock::now();
        RADB_ASSIGN_OR_RETURN(la::Matrix prod,
                              la::Multiply(ca.data, cb->data));
        Acc& acc = partials[wkr][key];
        if (!acc.init) {
          acc.mat = std::move(prod);
          acc.init = true;
        } else {
          RADB_ASSIGN_OR_RETURN(acc.mat, la::Add(acc.mat, prod));
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
      }
    }
  }

  // Add C.
  std::map<std::pair<size_t, size_t>, const Chunk*> c_chunks;
  for (const auto& part : c.partitions()) {
    for (const Chunk& ch : part) c_chunks[{ch.ci, ch.cj}] = &ch;
  }
  std::vector<Chunk> out;
  for (size_t wkr = 0; wkr < w; ++wkr) {
    const auto t0 = Clock::now();
    for (auto& [key, acc] : partials[wkr]) {
      auto it = c_chunks.find(key);
      if (it != c_chunks.end()) {
        RADB_ASSIGN_OR_RETURN(acc.mat, la::Add(acc.mat, it->second->data));
      }
      m->rows_out += 1;
      m->bytes_out += acc.mat.ByteSize();
      out.push_back(Chunk{key.first, key.second, std::move(acc.mat)});
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
  }
  return Array2D(ctx, a.num_rows(), b.num_cols(), a.chunk(), std::move(out));
}

Result<Array2D> Transpose(const Array2D& a) {
  ArrayContext* ctx = a.context();
  OperatorMetrics* m = ctx->NewOp("transpose");
  std::vector<Chunk> out;
  for (size_t p = 0; p < a.partitions().size(); ++p) {
    const auto t0 = Clock::now();
    for (const Chunk& ch : a.partitions()[p]) {
      out.push_back(Chunk{ch.cj, ch.ci, la::Transpose(ch.data)});
      m->rows_out += 1;
      m->bytes_out += ch.data.ByteSize();
      // Transposed chunks generally land on another instance.
      m->bytes_shuffled += ChunkBytes(ch);
    }
    m->worker_seconds[p] += SecondsSince(t0);
  }
  return Array2D(ctx, a.num_cols(), a.num_rows(), a.chunk(), std::move(out));
}

Result<Array2D> FilterCells(
    const Array2D& a,
    const std::function<bool(size_t, size_t, double)>& pred,
    double empty_value) {
  ArrayContext* ctx = a.context();
  OperatorMetrics* m = ctx->NewOp("filter");
  std::vector<Chunk> out;
  for (size_t p = 0; p < a.partitions().size(); ++p) {
    const auto t0 = Clock::now();
    for (const Chunk& ch : a.partitions()[p]) {
      Chunk filtered{ch.ci, ch.cj,
                     la::Matrix(ch.data.rows(), ch.data.cols())};
      for (size_t r = 0; r < ch.data.rows(); ++r) {
        for (size_t c = 0; c < ch.data.cols(); ++c) {
          const size_t gi = ch.ci * a.chunk() + r;
          const size_t gj = ch.cj * a.chunk() + c;
          const double v = ch.data.At(r, c);
          filtered.data.At(r, c) = pred(gi, gj, v) ? v : empty_value;
        }
      }
      m->rows_out += 1;
      m->bytes_out += filtered.data.ByteSize();
      out.push_back(std::move(filtered));
    }
    m->worker_seconds[p] += SecondsSince(t0);
  }
  return Array2D(ctx, a.num_rows(), a.num_cols(), a.chunk(), std::move(out));
}

Result<la::Vector> MinOverRows(const Array2D& a, double skip_value) {
  ArrayContext* ctx = a.context();
  OperatorMetrics* m = ctx->NewOp("aggregate(min) group by i");
  la::Vector mins(a.num_rows(), std::numeric_limits<double>::infinity());
  for (size_t p = 0; p < a.partitions().size(); ++p) {
    const auto t0 = Clock::now();
    for (const Chunk& ch : a.partitions()[p]) {
      for (size_t r = 0; r < ch.data.rows(); ++r) {
        const size_t gi = ch.ci * a.chunk() + r;
        for (size_t c = 0; c < ch.data.cols(); ++c) {
          const double v = ch.data.At(r, c);
          if (v == skip_value) continue;
          if (v < mins[gi]) mins[gi] = v;
        }
      }
    }
    m->worker_seconds[p] += SecondsSince(t0);
  }
  // Partial mins from each instance are combined at the coordinator.
  m->bytes_shuffled += mins.ByteSize() * (ctx->num_instances() - 1);
  m->rows_out = mins.size();
  m->bytes_out = mins.ByteSize();
  return mins;
}

Result<double> MaxOfVector(ArrayContext* ctx, const la::Vector& v) {
  OperatorMetrics* m = ctx->NewOp("aggregate(max)");
  const auto t0 = Clock::now();
  if (v.empty()) return Status::ExecutionError("max over empty array");
  const double result = v.Max();
  m->worker_seconds[0] += SecondsSince(t0);
  m->rows_out = 1;
  m->bytes_out = 8;
  return result;
}

}  // namespace radb::scidb
