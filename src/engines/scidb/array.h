#ifndef RADB_ENGINES_SCIDB_ARRAY_H_
#define RADB_ENGINES_SCIDB_ARRAY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace radb::scidb {

/// Execution context of the SciDB-style comparator: instance count
/// (SciDB workers) plus per-operator metrics.
class ArrayContext {
 public:
  explicit ArrayContext(size_t num_instances)
      : num_instances_(num_instances == 0 ? 1 : num_instances) {}

  size_t num_instances() const { return num_instances_; }
  QueryMetrics& metrics() { return metrics_; }
  void ResetMetrics() { metrics_ = QueryMetrics{}; }

  OperatorMetrics* NewOp(std::string name) {
    metrics_.operators.push_back(OperatorMetrics{});
    OperatorMetrics* m = &metrics_.operators.back();
    m->name = std::move(name);
    m->worker_seconds.assign(num_instances_, 0.0);
    return m;
  }

 private:
  size_t num_instances_;
  QueryMetrics metrics_;
};

/// One chunk of a dense 2-d array (SciDB chunks along both dims).
struct Chunk {
  size_t ci = 0;  // chunk row index
  size_t cj = 0;  // chunk col index
  la::Matrix data;
};

/// Dense 2-d SciDB-style array: <val:double>[i=0:n-1,chunk,0,
/// j=0:m-1,chunk,0]. Chunks are distributed across instances by a
/// chunk-coordinate hash, as SciDB does.
class Array2D {
 public:
  Array2D() : ctx_(nullptr), num_rows_(0), num_cols_(0), chunk_(1) {}
  Array2D(ArrayContext* ctx, size_t num_rows, size_t num_cols, size_t chunk,
          std::vector<Chunk> chunks);

  /// AQL build(): constant-filled array.
  static Array2D Build(ArrayContext* ctx, size_t num_rows, size_t num_cols,
                       size_t chunk, double fill = 0.0);
  /// Loads a dense local matrix into a distributed array.
  static Array2D FromDense(ArrayContext* ctx, const la::Matrix& m,
                           size_t chunk);

  ArrayContext* context() const { return ctx_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return num_cols_; }
  size_t chunk() const { return chunk_; }
  const std::vector<std::vector<Chunk>>& partitions() const {
    return partitions_;
  }

  /// Gathers into a local dense matrix (scan to coordinator).
  Result<la::Matrix> ToDense() const;

 private:
  ArrayContext* ctx_;
  std::vector<std::vector<Chunk>> partitions_;  // per instance
  size_t num_rows_, num_cols_, chunk_;
};

/// AQL gemm(A, B, C) = A * B + C. Chunk-parallel SUMMA-style multiply
/// with shuffle accounting.
Result<Array2D> Gemm(const Array2D& a, const Array2D& b, const Array2D& c);

/// AQL transpose().
Result<Array2D> Transpose(const Array2D& a);

/// AQL filter(A, pred(i, j, val)): non-matching cells become 0 in the
/// dense representation, and a validity mask is kept implicitly by the
/// caller; SciDB would make them empty cells.
Result<Array2D> FilterCells(
    const Array2D& a,
    const std::function<bool(size_t, size_t, double)>& pred,
    double empty_value);

/// AQL: SELECT min(val) ... GROUP BY i — per-row aggregate over a 2-d
/// array; cells equal to `skip_value` are treated as empty.
Result<la::Vector> MinOverRows(const Array2D& a, double skip_value);

/// AQL: SELECT max(val) over a 1-d result.
Result<double> MaxOfVector(ArrayContext* ctx, const la::Vector& v);

}  // namespace radb::scidb

#endif  // RADB_ENGINES_SCIDB_ARRAY_H_
