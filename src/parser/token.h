#ifndef RADB_PARSER_TOKEN_H_
#define RADB_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace radb::parser {

enum class TokenType {
  kEof = 0,
  kIdentifier,   // foo, x1, matrix_multiply (keywords are identifiers)
  kInteger,      // 42
  kDouble,       // 3.14, 1e-5
  kString,       // 'hello'
  kComma,        // ,
  kDot,          // .
  kSemicolon,    // ;
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kPlus,         // +
  kMinus,        // -
  kStar,         // *
  kSlash,        // /
  kEq,           // =
  kNe,           // <> or !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kQuestion,     // ? (prepared-statement parameter marker)
};

const char* TokenTypeName(TokenType t);

/// One lexical token with source position for error messages.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       // identifier/string contents
  int64_t int_value = 0;  // kInteger
  double double_value = 0.0;  // kDouble
  size_t line = 1;
  size_t column = 1;

  std::string Describe() const;
};

}  // namespace radb::parser

#endif  // RADB_PARSER_TOKEN_H_
