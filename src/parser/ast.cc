#include "parser/ast.h"

#include "common/string_util.h"

namespace radb::parser {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kAdd:
      return "+";
    case OpKind::kSub:
      return "-";
    case OpKind::kMul:
      return "*";
    case OpKind::kDiv:
      return "/";
    case OpKind::kEq:
      return "=";
    case OpKind::kNe:
      return "<>";
    case OpKind::kLt:
      return "<";
    case OpKind::kLe:
      return "<=";
    case OpKind::kGt:
      return ">";
    case OpKind::kGe:
      return ">=";
    case OpKind::kAnd:
      return "AND";
    case OpKind::kOr:
      return "OR";
    case OpKind::kNot:
      return "NOT";
    case OpKind::kNeg:
      return "-";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kIntLiteral:
      return std::to_string(int_value);
    case Kind::kDoubleLiteral:
      return std::to_string(double_value);
    case Kind::kStringLiteral:
      return "'" + string_value + "'";
    case Kind::kBoolLiteral:
      return bool_value ? "TRUE" : "FALSE";
    case Kind::kNullLiteral:
      return "NULL";
    case Kind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kStar:
      return "*";
    case Kind::kUnaryOp:
      return std::string(OpKindName(op)) + "(" + children[0]->ToString() +
             ")";
    case Kind::kBinaryOp:
      return "(" + children[0]->ToString() + " " + OpKindName(op) + " " +
             children[1]->ToString() + ")";
    case Kind::kFunctionCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& c : children) args.push_back(c->ToString());
      return name + "(" + Join(args, ", ") + ")";
    }
    case Kind::kParam:
      return "?";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->param_index = param_index;
  out->int_value = int_value;
  out->double_value = double_value;
  out->bool_value = bool_value;
  out->string_value = string_value;
  out->qualifier = qualifier;
  out->name = name;
  out->op = op;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

ExprPtr MakeIntLiteral(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIntLiteral;
  e->int_value = v;
  return e;
}

ExprPtr MakeDoubleLiteral(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kDoubleLiteral;
  e->double_value = v;
  return e;
}

ExprPtr MakeStringLiteral(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kStringLiteral;
  e->string_value = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinaryOp;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(OpKind op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnaryOp;
  e->op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kFunctionCall;
  e->name = std::move(name);
  e->children = std::move(args);
  return e;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> parts;
  for (const SelectItem& item : items) {
    std::string s = item.is_star ? "*" : item.expr->ToString();
    if (!item.alias.empty()) s += " AS " + item.alias;
    parts.push_back(std::move(s));
  }
  out += Join(parts, ", ");
  if (!from.empty()) {
    out += " FROM ";
    parts.clear();
    for (const TableRef& ref : from) {
      std::string s = ref.kind == TableRef::Kind::kRelation
                          ? ref.name
                          : "(" + ref.subquery->ToString() + ")";
      if (!ref.alias.empty() && ref.alias != ref.name) {
        s += " AS " + ref.alias;
      }
      parts.push_back(std::move(s));
    }
    out += Join(parts, ", ");
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    parts.clear();
    for (const auto& g : group_by) parts.push_back(g->ToString());
    out += " GROUP BY " + Join(parts, ", ");
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    parts.clear();
    for (const auto& o : order_by) {
      parts.push_back(o.expr->ToString() + (o.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(parts, ", ");
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace radb::parser
