#ifndef RADB_PARSER_NORMALIZE_H_
#define RADB_PARSER_NORMALIZE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace radb::parser {

/// Canonical cache-key form of a SQL script: the token stream is
/// re-rendered with single spaces, lowercased identifiers/keywords,
/// and canonical numeric formatting (17 significant digits for
/// doubles, so distinct values never collide), split into one string
/// per non-empty ';'-separated statement. String literals keep their
/// case and are re-quoted with '' escaping, so normalization never
/// changes meaning. "SELECT  1" and "select 1" normalize identically;
/// a lexical error propagates (such scripts are uncacheable).
Result<std::vector<std::string>> NormalizeScript(const std::string& sql);

/// NormalizeScript for a single statement: errors unless the script
/// holds exactly one statement.
Result<std::string> NormalizeStatement(const std::string& sql);

}  // namespace radb::parser

#endif  // RADB_PARSER_NORMALIZE_H_
