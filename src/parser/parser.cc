#include "parser/parser.h"

#include "common/string_util.h"
#include "parser/lexer.h"

namespace radb::parser {

namespace {

/// Recursive-descent parser over the token stream. Keywords are just
/// identifiers matched case-insensitively, so they remain usable as
/// column names in non-keyword positions where unambiguous.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (!AtEof()) {
      if (Accept(TokenType::kSemicolon)) continue;
      RADB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
      if (!AtEof()) {
        RADB_RETURN_NOT_OK(Expect(TokenType::kSemicolon));
      }
    }
    return out;
  }

  Result<Statement> ParseOneStatement() {
    RADB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
    Accept(TokenType::kSemicolon);
    if (!AtEof()) {
      return Error("unexpected input after statement: " +
                   Peek().Describe());
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStmt>> ParseOneSelect() {
    if (!AcceptKeyword("select")) {
      return Error("expected SELECT");
    }
    RADB_ASSIGN_OR_RETURN(auto select, ParseSelectBody());
    Accept(TokenType::kSemicolon);
    if (!AtEof()) {
      return Error("unexpected input after SELECT: " + Peek().Describe());
    }
    return select;
  }

 private:
  // --- token plumbing -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEof() const { return Peek().type == TokenType::kEof; }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Accept(TokenType t) {
    if (Peek().type == t) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t) {
    if (!Accept(t)) {
      return Status::ParseError(std::string("expected ") + TokenTypeName(t) +
                                ", got " + Peek().Describe() + " at line " +
                                std::to_string(Peek().line));
    }
    return Status::OK();
  }
  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && ToLower(t.text) == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got " +
                                Peek().Describe() + " at line " +
                                std::to_string(Peek().line));
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " +
                              std::to_string(Peek().line));
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier, got " + Peek().Describe());
    }
    return Next().text;
  }

  static bool IsReserved(const std::string& lower) {
    static const char* kReserved[] = {
        "select", "from",  "where", "group", "order", "limit",
        "as",     "and",   "or",    "not",   "on",    "join",
        "values", "union", "distinct", "having"};
    for (const char* r : kReserved) {
      if (lower == r) return true;
    }
    return false;
  }

  // --- statements -----------------------------------------------------
  Result<Statement> ParseStatement() {
    if (AcceptKeyword("select")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      RADB_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
      return stmt;
    }
    if (AcceptKeyword("explain")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kExplain;
      stmt.explain_analyze = AcceptKeyword("analyze");
      RADB_RETURN_NOT_OK(ExpectKeyword("select"));
      RADB_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
      return stmt;
    }
    if (AcceptKeyword("create")) {
      if (AcceptKeyword("table")) return ParseCreateTable();
      if (AcceptKeyword("view")) return ParseCreateView();
      if (AcceptKeyword("index")) return ParseCreateIndex();
      return Error("expected TABLE, VIEW, or INDEX after CREATE");
    }
    if (AcceptKeyword("insert")) return ParseInsert();
    if (AcceptKeyword("prepare")) {
      // PREPARE name AS SELECT ... — the only statement form in which
      // ? parameter markers are meaningful. The marker count is
      // recorded so EXECUTE can arity-check without re-walking.
      Statement stmt;
      stmt.kind = Statement::Kind::kPrepare;
      RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
      RADB_RETURN_NOT_OK(ExpectKeyword("as"));
      RADB_RETURN_NOT_OK(ExpectKeyword("select"));
      num_params_ = 0;
      RADB_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
      stmt.num_params = num_params_;
      num_params_ = 0;
      return stmt;
    }
    if (AcceptKeyword("execute")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kExecutePrepared;
      RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
      if (Accept(TokenType::kLParen)) {
        if (Peek().type != TokenType::kRParen) {
          do {
            RADB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            stmt.execute_args.push_back(std::move(arg));
          } while (Accept(TokenType::kComma));
        }
        RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      }
      return stmt;
    }
    if (AcceptKeyword("deallocate")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kDeallocate;
      AcceptKeyword("prepare");  // optional noise word
      RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
      return stmt;
    }
    if (AcceptKeyword("drop")) {
      Statement stmt;
      if (AcceptKeyword("table")) {
        stmt.kind = Statement::Kind::kDropTable;
      } else if (AcceptKeyword("view")) {
        stmt.kind = Statement::Kind::kDropView;
      } else if (AcceptKeyword("index")) {
        stmt.kind = Statement::Kind::kDropIndex;
      } else {
        return Error("expected TABLE, VIEW, or INDEX after DROP");
      }
      RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
      return stmt;
    }
    return Error("expected a statement, got " + Peek().Describe());
  }

  Result<Statement> ParseCreateTable() {
    Statement stmt;
    RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
    if (AcceptKeyword("as")) {
      stmt.kind = Statement::Kind::kCreateTableAs;
      RADB_RETURN_NOT_OK(ExpectKeyword("select"));
      RADB_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
      return stmt;
    }
    stmt.kind = Statement::Kind::kCreateTable;
    RADB_RETURN_NOT_OK(Expect(TokenType::kLParen));
    do {
      ColumnDef def;
      RADB_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
      RADB_ASSIGN_OR_RETURN(def.type, ParseType());
      stmt.columns.push_back(std::move(def));
    } while (Accept(TokenType::kComma));
    RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return stmt;
  }

  Result<DataType> ParseType() {
    RADB_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    const std::string lower = ToLower(name);
    if (lower == "integer" || lower == "int" || lower == "bigint") {
      return DataType::Integer();
    }
    if (lower == "double" || lower == "float" || lower == "real") {
      return DataType::Double();
    }
    if (lower == "boolean" || lower == "bool") return DataType::Boolean();
    if (lower == "string" || lower == "text") return DataType::String();
    if (lower == "varchar" || lower == "char") {
      if (Accept(TokenType::kLParen)) {
        if (Peek().type != TokenType::kInteger) {
          return Error("expected length in VARCHAR(n)");
        }
        Next();
        RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      }
      return DataType::String();
    }
    if (lower == "labeled_scalar") return DataType::LabeledScalar();
    if (lower == "vector") {
      RADB_ASSIGN_OR_RETURN(Dim n, ParseDim());
      return DataType::MakeVector(n);
    }
    if (lower == "matrix") {
      RADB_ASSIGN_OR_RETURN(Dim r, ParseDim());
      RADB_ASSIGN_OR_RETURN(Dim c, ParseDim());
      return DataType::MakeMatrix(r, c);
    }
    return Error("unknown type name '" + name + "'");
  }

  /// Parses one "[n]" or "[]" dimension suffix.
  Result<Dim> ParseDim() {
    RADB_RETURN_NOT_OK(Expect(TokenType::kLBracket));
    Dim d;
    if (Peek().type == TokenType::kInteger) {
      d = Next().int_value;
      if (*d < 0) return Error("negative dimension");
    }
    RADB_RETURN_NOT_OK(Expect(TokenType::kRBracket));
    return d;
  }

  Result<Statement> ParseCreateIndex() {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
    RADB_RETURN_NOT_OK(ExpectKeyword("on"));
    RADB_ASSIGN_OR_RETURN(stmt.index_table, ExpectIdentifier());
    RADB_RETURN_NOT_OK(Expect(TokenType::kLParen));
    do {
      RADB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.index_columns.push_back(std::move(col));
    } while (Accept(TokenType::kComma));
    RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return stmt;
  }

  Result<Statement> ParseCreateView() {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateView;
    RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
    if (Accept(TokenType::kLParen)) {
      do {
        RADB_ASSIGN_OR_RETURN(std::string alias, ExpectIdentifier());
        stmt.view_aliases.push_back(std::move(alias));
      } while (Accept(TokenType::kComma));
      RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
    }
    RADB_RETURN_NOT_OK(ExpectKeyword("as"));
    RADB_RETURN_NOT_OK(ExpectKeyword("select"));
    RADB_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
    // Views are stored as SQL text; the AST's printer round-trips
    // through this same parser.
    stmt.view_sql = stmt.select->ToString();
    return stmt;
  }

  Result<Statement> ParseInsert() {
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    RADB_RETURN_NOT_OK(ExpectKeyword("into"));
    RADB_ASSIGN_OR_RETURN(stmt.relation_name, ExpectIdentifier());
    RADB_RETURN_NOT_OK(ExpectKeyword("values"));
    do {
      RADB_RETURN_NOT_OK(Expect(TokenType::kLParen));
      std::vector<ExprPtr> row;
      do {
        RADB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(TokenType::kComma));
      RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      stmt.insert_rows.push_back(std::move(row));
    } while (Accept(TokenType::kComma));
    return stmt;
  }

  // --- SELECT ----------------------------------------------------------
  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    auto select = std::make_unique<SelectStmt>();
    select->distinct = AcceptKeyword("distinct");
    do {
      SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Next();
        item.is_star = true;
      } else {
        RADB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          RADB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReserved(ToLower(Peek().text))) {
          item.alias = Next().text;
        }
      }
      select->items.push_back(std::move(item));
    } while (Accept(TokenType::kComma));

    if (AcceptKeyword("from")) {
      do {
        RADB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        select->from.push_back(std::move(ref));
        // Explicit JOIN ... ON chains desugar to comma-joins plus WHERE
        // conjuncts; the optimizer rebuilds the join graph anyway.
        while (AcceptKeyword("join")) {
          RADB_ASSIGN_OR_RETURN(TableRef joined, ParseTableRef());
          select->from.push_back(std::move(joined));
          RADB_RETURN_NOT_OK(ExpectKeyword("on"));
          RADB_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
          select->where = select->where
                              ? MakeBinary(OpKind::kAnd,
                                           std::move(select->where),
                                           std::move(cond))
                              : std::move(cond);
        }
      } while (Accept(TokenType::kComma));
    }

    if (AcceptKeyword("where")) {
      RADB_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      select->where = select->where
                          ? MakeBinary(OpKind::kAnd, std::move(select->where),
                                       std::move(cond))
                          : std::move(cond);
    }
    if (AcceptKeyword("group")) {
      RADB_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        RADB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        select->group_by.push_back(std::move(e));
      } while (Accept(TokenType::kComma));
    }
    if (AcceptKeyword("having")) {
      RADB_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      RADB_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        RADB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.descending = true;
        } else {
          AcceptKeyword("asc");
        }
        select->order_by.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
    }
    if (AcceptKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      select->limit = Next().int_value;
    }
    return select;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Accept(TokenType::kLParen)) {
      ref.kind = TableRef::Kind::kSubquery;
      RADB_RETURN_NOT_OK(ExpectKeyword("select"));
      RADB_ASSIGN_OR_RETURN(ref.subquery, ParseSelectBody());
      RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      if (AcceptKeyword("as")) {
        RADB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReserved(ToLower(Peek().text))) {
        ref.alias = Next().text;
      } else {
        return Error("derived table requires an alias");
      }
      return ref;
    }
    ref.kind = TableRef::Kind::kRelation;
    RADB_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    ref.alias = ref.name;
    if (AcceptKeyword("as")) {
      RADB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(ToLower(Peek().text))) {
      ref.alias = Next().text;
    }
    return ref;
  }

  // --- expressions (precedence climbing) -------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    RADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("or")) {
      RADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(OpKind::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    RADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("and")) {
      RADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(OpKind::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      RADB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(OpKind::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    RADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAddSub());
    OpKind op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = OpKind::kEq;
        break;
      case TokenType::kNe:
        op = OpKind::kNe;
        break;
      case TokenType::kLt:
        op = OpKind::kLt;
        break;
      case TokenType::kLe:
        op = OpKind::kLe;
        break;
      case TokenType::kGt:
        op = OpKind::kGt;
        break;
      case TokenType::kGe:
        op = OpKind::kGe;
        break;
      default:
        return lhs;
    }
    Next();
    RADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAddSub() {
    RADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMulDiv());
    while (true) {
      OpKind op;
      if (Accept(TokenType::kPlus)) {
        op = OpKind::kAdd;
      } else if (Accept(TokenType::kMinus)) {
        op = OpKind::kSub;
      } else {
        return lhs;
      }
      RADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMulDiv() {
    RADB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      OpKind op;
      if (Accept(TokenType::kStar)) {
        op = OpKind::kMul;
      } else if (Accept(TokenType::kSlash)) {
        op = OpKind::kDiv;
      } else {
        return lhs;
      }
      RADB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenType::kMinus)) {
      RADB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(OpKind::kNeg, std::move(operand));
    }
    if (Accept(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Next();
        return MakeIntLiteral(t.int_value);
      case TokenType::kDouble:
        Next();
        return MakeDoubleLiteral(t.double_value);
      case TokenType::kString:
        Next();
        return MakeStringLiteral(t.text);
      case TokenType::kLParen: {
        Next();
        RADB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return inner;
      }
      case TokenType::kQuestion: {
        Next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kParam;
        e->param_index = num_params_++;
        return e;
      }
      case TokenType::kIdentifier:
        break;
      default:
        return Error("expected expression, got " + t.Describe());
    }

    const std::string lower = ToLower(t.text);
    if (IsReserved(lower)) {
      return Error("unexpected keyword '" + t.text + "' in expression");
    }
    if (lower == "true" || lower == "false") {
      Next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBoolLiteral;
      e->bool_value = (lower == "true");
      return e;
    }
    if (lower == "null") {
      Next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNullLiteral;
      return e;
    }

    const std::string first = Next().text;
    // Function call?
    if (Accept(TokenType::kLParen)) {
      std::vector<ExprPtr> args;
      if (Peek().type == TokenType::kStar) {
        // COUNT(*)
        Next();
        auto star = std::make_unique<Expr>();
        star->kind = Expr::Kind::kStar;
        args.push_back(std::move(star));
      } else if (Peek().type != TokenType::kRParen) {
        do {
          RADB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Accept(TokenType::kComma));
      }
      RADB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return MakeCall(first, std::move(args));
    }
    // Qualified column?
    if (Accept(TokenType::kDot)) {
      RADB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      return MakeColumnRef(first, std::move(col));
    }
    return MakeColumnRef("", first);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// ? markers seen so far in the current statement (textual order).
  /// Reset by the PREPARE production; markers elsewhere still parse
  /// and are rejected later by the binder with a clear message.
  size_t num_params_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseOneStatement();
}

Result<std::vector<Statement>> ParseScript(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseScript();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseOneSelect();
}

}  // namespace radb::parser
