#ifndef RADB_PARSER_AST_H_
#define RADB_PARSER_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "types/data_type.h"

namespace radb::parser {

struct SelectStmt;

/// Unary / binary operators appearing in SQL expressions.
enum class OpKind {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kNeg,
};

const char* OpKindName(OpKind op);

/// Parse-tree expression. A single tagged struct (instead of a class
/// per node) keeps the tree easy to build and walk.
struct Expr {
  enum class Kind {
    kIntLiteral,
    kDoubleLiteral,
    kStringLiteral,
    kBoolLiteral,
    kNullLiteral,
    kColumnRef,  // qualifier.name or name
    kStar,       // SELECT * or COUNT(*)
    kUnaryOp,    // op = kNot / kNeg, children[0]
    kBinaryOp,   // children[0] op children[1]
    kFunctionCall,  // function_name(children...) — scalar or aggregate
    kParam,      // ? parameter marker in a PREPAREd statement
  };

  Kind kind = Kind::kNullLiteral;
  /// kParam: 0-based ordinal in textual order across the statement.
  size_t param_index = 0;
  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;

  std::string qualifier;  // kColumnRef
  std::string name;       // kColumnRef column / kFunctionCall name

  OpKind op = OpKind::kAdd;
  std::vector<std::unique_ptr<Expr>> children;

  std::string ToString() const;
  std::unique_ptr<Expr> Clone() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeIntLiteral(int64_t v);
ExprPtr MakeDoubleLiteral(double v);
ExprPtr MakeStringLiteral(std::string v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(OpKind op, ExprPtr operand);
ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);

/// One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;       // null when is_star
  std::string alias;  // optional AS alias
  bool is_star = false;
};

/// One entry of the FROM list: a base table/view or a derived table.
struct TableRef {
  enum class Kind { kRelation, kSubquery };
  Kind kind = Kind::kRelation;
  std::string name;   // kRelation
  std::string alias;  // exposed qualifier (defaults to name)
  std::unique_ptr<SelectStmt> subquery;  // kSubquery
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// SELECT [DISTINCT] items FROM refs [WHERE e] [GROUP BY e...]
/// [ORDER BY e [DESC]...] [LIMIT n].
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null; only with GROUP BY/aggregates
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  std::string ToString() const;
};

struct ColumnDef {
  std::string name;
  DataType type;
};

/// Any parsed statement.
struct Statement {
  enum class Kind {
    kSelect,
    kExplain,            // EXPLAIN [ANALYZE] SELECT ... (plan as a result set)
    kCreateTable,        // CREATE TABLE t (col TYPE, ...)
    kCreateTableAs,      // CREATE TABLE t AS SELECT ...
    kCreateView,         // CREATE VIEW v [(aliases)] AS SELECT ...
    kInsert,             // INSERT INTO t VALUES (...), (...)
    kDropTable,
    kDropView,
    kCreateIndex,        // CREATE INDEX name ON t (col [, col])
    kDropIndex,          // DROP INDEX name
    kPrepare,            // PREPARE name AS SELECT ... (? params allowed)
    kExecutePrepared,    // EXECUTE name [(arg, ...)]
    kDeallocate,         // DEALLOCATE [PREPARE] name
  };

  Kind kind = Kind::kSelect;
  bool explain_analyze = false;             // EXPLAIN ANALYZE: run + annotate
  std::unique_ptr<SelectStmt> select;       // kSelect/kCreateView/kCTAS/kPrepare
  std::string relation_name;                // target of CREATE/INSERT/DROP,
                                            // or the prepared-statement name
  std::vector<ColumnDef> columns;           // kCreateTable
  std::vector<std::string> view_aliases;    // kCreateView
  std::string view_sql;                     // original SELECT text for views
  std::vector<std::vector<ExprPtr>> insert_rows;  // kInsert
  /// kCreateIndex: relation_name holds the index name; these hold the
  /// target table and its key column names (1..2, INTEGER-typed).
  std::string index_table;
  std::vector<std::string> index_columns;
  /// kPrepare: count of ? markers in the body (textual order).
  size_t num_params = 0;
  /// kExecutePrepared: constant argument expressions, one per ?.
  std::vector<ExprPtr> execute_args;
};

}  // namespace radb::parser

#endif  // RADB_PARSER_AST_H_
