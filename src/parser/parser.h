#ifndef RADB_PARSER_PARSER_H_
#define RADB_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"

namespace radb::parser {

/// Parses a single SQL statement (trailing ';' optional).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a ';'-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& sql);

/// Parses exactly one SELECT statement (used for view expansion).
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

}  // namespace radb::parser

#endif  // RADB_PARSER_PARSER_H_
