#ifndef RADB_PARSER_LEXER_H_
#define RADB_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace radb::parser {

/// Tokenizes SQL text. Identifiers are case-preserving (comparison is
/// case-insensitive downstream); strings use single quotes with ''
/// escaping; -- starts a line comment.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace radb::parser

#endif  // RADB_PARSER_LEXER_H_
