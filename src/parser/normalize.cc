#include "parser/normalize.h"

#include <cstdio>

#include "common/string_util.h"
#include "parser/lexer.h"

namespace radb::parser {

namespace {

std::string RenderToken(const Token& t) {
  switch (t.type) {
    case TokenType::kIdentifier:
      return ToLower(t.text);
    case TokenType::kInteger:
      return std::to_string(t.int_value);
    case TokenType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", t.double_value);
      return buf;
    }
    case TokenType::kString: {
      std::string out = "'";
      for (char c : t.text) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kLBracket:
      return "[";
    case TokenType::kRBracket:
      return "]";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kStar:
      return "*";
    case TokenType::kSlash:
      return "/";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kQuestion:
      return "?";
    case TokenType::kSemicolon:
    case TokenType::kEof:
      return "";
  }
  return "";
}

}  // namespace

Result<std::vector<std::string>> NormalizeScript(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  std::vector<std::string> statements;
  std::string current;
  for (const Token& t : tokens) {
    if (t.type == TokenType::kSemicolon || t.type == TokenType::kEof) {
      if (!current.empty()) statements.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (!current.empty()) current += ' ';
    current += RenderToken(t);
  }
  return statements;
}

Result<std::string> NormalizeStatement(const std::string& sql) {
  RADB_ASSIGN_OR_RETURN(std::vector<std::string> stmts, NormalizeScript(sql));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return stmts[0];
}

}  // namespace radb::parser
