#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace radb::parser {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEof:
      return "end of input";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kDouble:
      return "double";
    case TokenType::kString:
      return "string";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kQuestion:
      return "'?'";
  }
  return "?";
}

std::string Token::Describe() const {
  if (type == TokenType::kIdentifier) return "'" + text + "'";
  if (type == TokenType::kString) return "string '" + text + "'";
  if (type == TokenType::kInteger) return std::to_string(int_value);
  if (type == TokenType::kDouble) return std::to_string(double_value);
  return TokenTypeName(type);
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token t;
      t.line = line_;
      t.column = column_;
      if (pos_ >= sql_.size()) {
        t.type = TokenType::kEof;
        tokens.push_back(t);
        return tokens;
      }
      const char c = sql_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        t.type = TokenType::kIdentifier;
        t.text = ReadIdentifier();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        RADB_RETURN_NOT_OK(ReadNumber(&t));
      } else if (c == '\'') {
        RADB_RETURN_NOT_OK(ReadString(&t));
      } else {
        RADB_RETURN_NOT_OK(ReadOperator(&t));
      }
      tokens.push_back(std::move(t));
    }
  }

 private:
  void Advance() {
    if (pos_ < sql_.size()) {
      if (sql_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '-') {
        while (pos_ < sql_.size() && sql_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string ReadIdentifier() {
    std::string out;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(c);
        Advance();
      } else {
        break;
      }
    }
    return out;
  }

  Status ReadNumber(Token* t) {
    std::string digits;
    bool is_double = false;
    while (pos_ < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
      digits.push_back(sql_[pos_]);
      Advance();
    }
    // Fractional part: only if followed by a digit (so "x.id" lexes as
    // ident dot ident, and "1." is rejected).
    if (pos_ + 1 < sql_.size() && sql_[pos_] == '.' &&
        std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1]))) {
      is_double = true;
      digits.push_back('.');
      Advance();
      while (pos_ < sql_.size() &&
             std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
        digits.push_back(sql_[pos_]);
        Advance();
      }
    }
    if (pos_ < sql_.size() && (sql_[pos_] == 'e' || sql_[pos_] == 'E')) {
      size_t look = pos_ + 1;
      if (look < sql_.size() && (sql_[look] == '+' || sql_[look] == '-')) {
        ++look;
      }
      if (look < sql_.size() &&
          std::isdigit(static_cast<unsigned char>(sql_[look]))) {
        is_double = true;
        while (pos_ < look) {
          digits.push_back(sql_[pos_]);
          Advance();
        }
        while (pos_ < sql_.size() &&
               std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
          digits.push_back(sql_[pos_]);
          Advance();
        }
      }
    }
    if (is_double) {
      t->type = TokenType::kDouble;
      t->double_value = std::strtod(digits.c_str(), nullptr);
    } else {
      t->type = TokenType::kInteger;
      t->int_value = std::strtoll(digits.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  Status ReadString(Token* t) {
    Advance();  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= sql_.size()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(t->line));
      }
      const char c = sql_[pos_];
      if (c == '\'') {
        Advance();
        if (pos_ < sql_.size() && sql_[pos_] == '\'') {
          out.push_back('\'');  // '' escape
          Advance();
          continue;
        }
        break;
      }
      out.push_back(c);
      Advance();
    }
    t->type = TokenType::kString;
    t->text = std::move(out);
    return Status::OK();
  }

  Status ReadOperator(Token* t) {
    const char c = sql_[pos_];
    auto two = [&](char second) {
      return pos_ + 1 < sql_.size() && sql_[pos_ + 1] == second;
    };
    switch (c) {
      case ',':
        t->type = TokenType::kComma;
        break;
      case '.':
        t->type = TokenType::kDot;
        break;
      case ';':
        t->type = TokenType::kSemicolon;
        break;
      case '(':
        t->type = TokenType::kLParen;
        break;
      case ')':
        t->type = TokenType::kRParen;
        break;
      case '[':
        t->type = TokenType::kLBracket;
        break;
      case ']':
        t->type = TokenType::kRBracket;
        break;
      case '+':
        t->type = TokenType::kPlus;
        break;
      case '-':
        t->type = TokenType::kMinus;
        break;
      case '*':
        t->type = TokenType::kStar;
        break;
      case '/':
        t->type = TokenType::kSlash;
        break;
      case '=':
        t->type = TokenType::kEq;
        break;
      case '?':
        t->type = TokenType::kQuestion;
        break;
      case '!':
        if (two('=')) {
          t->type = TokenType::kNe;
          Advance();
          break;
        }
        return Status::ParseError("unexpected character '!' at line " +
                                  std::to_string(line_));
      case '<':
        if (two('>')) {
          t->type = TokenType::kNe;
          Advance();
        } else if (two('=')) {
          t->type = TokenType::kLe;
          Advance();
        } else {
          t->type = TokenType::kLt;
        }
        break;
      case '>':
        if (two('=')) {
          t->type = TokenType::kGe;
          Advance();
        } else {
          t->type = TokenType::kGt;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line_) +
                                  ", column " + std::to_string(column_));
    }
    Advance();
    return Status::OK();
  }

  const std::string& sql_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  return Lexer(sql).Run();
}

}  // namespace radb::parser
