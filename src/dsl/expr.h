#ifndef RADB_DSL_EXPR_H_
#define RADB_DSL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/result.h"

namespace radb::dsl {

/// A math-like linear algebra DSL that *compiles to the extended SQL*
/// — the architecture the paper proposes in §1: "it would be possible
/// to implement a math-like domain specific language ... that could
/// itself exploit high-level linear algebra transformations, and
/// translate the computation to a database computation".
///
/// The flagship transformation is one the paper points out a plain SQL
/// optimizer cannot do (§1: "may be unable to optimize the order of a
/// chain of distributed matrix multiplies expressed in SQL"): the DSL
/// re-associates multiply chains with the classic matrix-chain-order
/// dynamic program, using dimensions from the database catalog, and
/// only then emits SQL.
///
/// Example:
///   using radb::dsl::Expr;
///   Expr a = Expr::Ref("a", "mat");     // tables holding one MATRIX
///   Expr b = Expr::Ref("b", "mat");
///   Expr c = Expr::Ref("c", "mat");
///   Expr beta = (a.T() * a).Inv() * (a.T() * b);
///   radb::la::Matrix m = beta.Eval(&db).value();
///   std::string sql = beta.ToSql(db.catalog()).value();
class Expr {
 public:
  /// Leaf: a table storing exactly one MATRIX value in `column`.
  static Expr Ref(std::string table, std::string column);

  /// Matrix product (re-associated before SQL emission).
  friend Expr operator*(const Expr& lhs, const Expr& rhs);
  /// Element-wise sum / difference.
  friend Expr operator+(const Expr& lhs, const Expr& rhs);
  friend Expr operator-(const Expr& lhs, const Expr& rhs);

  /// Transpose.
  Expr T() const;
  /// Inverse.
  Expr Inv() const;
  /// Element-wise (Hadamard) product.
  Expr Hadamard(const Expr& other) const;
  /// Scale every element.
  Expr Scale(double s) const;

  /// Infers the result type (dimension-checked against the catalog,
  /// like the SQL binder would).
  Result<DataType> InferType(const Catalog& catalog) const;

  /// Emits a single SELECT statement computing this expression, with
  /// multiply chains re-associated into the cheapest order.
  Result<std::string> ToSql(const Catalog& catalog) const;

  /// Compiles and runs against `db`; returns the resulting matrix.
  Result<la::Matrix> Eval(Database* db) const;

  /// Number of scalar multiplications the emitted plan performs in
  /// its matrix products (the chain DP's objective); exposed so tests
  /// and benches can compare orders.
  Result<double> MultiplyCost(const Catalog& catalog) const;

  struct Node;

 private:
  explicit Expr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace radb::dsl

#endif  // RADB_DSL_EXPR_H_
