#include "dsl/expr.h"

#include <functional>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace radb::dsl {

struct Expr::Node {
  enum class Kind {
    kRef,
    kMultiply,
    kAdd,
    kSub,
    kHadamard,
    kScale,
    kTranspose,
    kInverse,
  };
  Kind kind = Kind::kRef;
  std::string table;
  std::string column;
  double scalar = 0.0;  // kScale factor
  std::vector<std::shared_ptr<const Node>> children;
};

namespace {

using Node = Expr::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr MakeNode(Node::Kind kind, std::vector<NodePtr> children,
                 double scalar = 0.0) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->children = std::move(children);
  n->scalar = scalar;
  return n;
}

/// Looks up the declared type of a leaf reference in the catalog.
Result<DataType> RefType(const Catalog& catalog, const Node& node) {
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                        catalog.GetTable(node.table));
  RADB_ASSIGN_OR_RETURN(size_t idx,
                        table->schema().Resolve("", node.column));
  const DataType& type = table->schema().at(idx).type;
  if (type.kind() != TypeKind::kMatrix) {
    return Status::TypeError("DSL reference " + node.table + "." +
                             node.column + " is " + type.ToString() +
                             ", expected MATRIX");
  }
  return type;
}

Result<DataType> InferNodeType(const Catalog& catalog, const Node& node) {
  switch (node.kind) {
    case Node::Kind::kRef:
      return RefType(catalog, node);
    case Node::Kind::kMultiply: {
      RADB_ASSIGN_OR_RETURN(DataType l,
                            InferNodeType(catalog, *node.children[0]));
      RADB_ASSIGN_OR_RETURN(DataType r,
                            InferNodeType(catalog, *node.children[1]));
      if (l.cols() && r.rows() && *l.cols() != *r.rows()) {
        return Status::TypeError(
            "DSL multiply: inner dimensions disagree (" + l.ToString() +
            " * " + r.ToString() + ")");
      }
      return DataType::MakeMatrix(l.rows(), r.cols());
    }
    case Node::Kind::kAdd:
    case Node::Kind::kSub:
    case Node::Kind::kHadamard: {
      RADB_ASSIGN_OR_RETURN(DataType l,
                            InferNodeType(catalog, *node.children[0]));
      RADB_ASSIGN_OR_RETURN(DataType r,
                            InferNodeType(catalog, *node.children[1]));
      auto unify = [](Dim a, Dim b) -> Result<Dim> {
        if (a && b && *a != *b) {
          return Status::TypeError("DSL element-wise op: shape mismatch");
        }
        return a ? a : b;
      };
      RADB_ASSIGN_OR_RETURN(Dim rows, unify(l.rows(), r.rows()));
      RADB_ASSIGN_OR_RETURN(Dim cols, unify(l.cols(), r.cols()));
      return DataType::MakeMatrix(rows, cols);
    }
    case Node::Kind::kScale:
      return InferNodeType(catalog, *node.children[0]);
    case Node::Kind::kTranspose: {
      RADB_ASSIGN_OR_RETURN(DataType t,
                            InferNodeType(catalog, *node.children[0]));
      return DataType::MakeMatrix(t.cols(), t.rows());
    }
    case Node::Kind::kInverse: {
      RADB_ASSIGN_OR_RETURN(DataType t,
                            InferNodeType(catalog, *node.children[0]));
      if (t.rows() && t.cols() && *t.rows() != *t.cols()) {
        return Status::TypeError("DSL inverse of non-square " +
                                 t.ToString());
      }
      return t;
    }
  }
  return Status::Internal("unhandled DSL node");
}

constexpr double kDefaultDim = 100.0;

double DimOr(Dim d) {
  return d ? static_cast<double>(*d) : kDefaultDim;
}

/// Re-associates every multiply chain in the tree using the classic
/// matrix-chain-order DP; returns the transformed tree. Children are
/// transformed first so nested chains are each optimal.
Result<NodePtr> Reassociate(const Catalog& catalog, const NodePtr& node);

/// Flattens a multiply subtree into its chain factors.
void FlattenChain(const NodePtr& node, std::vector<NodePtr>* factors) {
  if (node->kind == Node::Kind::kMultiply) {
    FlattenChain(node->children[0], factors);
    FlattenChain(node->children[1], factors);
    return;
  }
  factors->push_back(node);
}

Result<NodePtr> Reassociate(const Catalog& catalog, const NodePtr& node) {
  if (node->kind != Node::Kind::kMultiply) {
    if (node->children.empty()) return node;
    auto out = std::make_shared<Node>(*node);
    for (auto& c : out->children) {
      RADB_ASSIGN_OR_RETURN(c, Reassociate(catalog, c));
    }
    return NodePtr(out);
  }
  std::vector<NodePtr> factors;
  FlattenChain(node, &factors);
  for (auto& f : factors) {
    RADB_ASSIGN_OR_RETURN(f, Reassociate(catalog, f));
  }
  const size_t k = factors.size();
  if (k == 2) {
    return MakeNode(Node::Kind::kMultiply,
                    {factors[0], factors[1]});
  }
  // Chain dims: p[0..k], factor i is p[i] x p[i+1].
  std::vector<double> p(k + 1);
  for (size_t i = 0; i < k; ++i) {
    RADB_ASSIGN_OR_RETURN(DataType t, InferNodeType(catalog, *factors[i]));
    if (i == 0) p[0] = DimOr(t.rows());
    p[i + 1] = DimOr(t.cols());
  }
  // Matrix-chain-order DP.
  std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
  std::vector<std::vector<size_t>> split(k, std::vector<size_t>(k, 0));
  for (size_t len = 2; len <= k; ++len) {
    for (size_t i = 0; i + len <= k; ++i) {
      const size_t j = i + len - 1;
      cost[i][j] = -1.0;
      for (size_t s = i; s < j; ++s) {
        const double c =
            cost[i][s] + cost[s + 1][j] + p[i] * p[s + 1] * p[j + 1];
        if (cost[i][j] < 0 || c < cost[i][j]) {
          cost[i][j] = c;
          split[i][j] = s;
        }
      }
    }
  }
  std::function<NodePtr(size_t, size_t)> build = [&](size_t i,
                                                     size_t j) -> NodePtr {
    if (i == j) return factors[i];
    const size_t s = split[i][j];
    return MakeNode(Node::Kind::kMultiply, {build(i, s), build(s + 1, j)});
  };
  return build(0, k - 1);
}

Result<double> CostOf(const Catalog& catalog, const NodePtr& node) {
  double cost = 0.0;
  for (const auto& c : node->children) {
    RADB_ASSIGN_OR_RETURN(double child_cost, CostOf(catalog, c));
    cost += child_cost;
  }
  if (node->kind == Node::Kind::kMultiply) {
    RADB_ASSIGN_OR_RETURN(DataType l,
                          InferNodeType(catalog, *node->children[0]));
    RADB_ASSIGN_OR_RETURN(DataType r,
                          InferNodeType(catalog, *node->children[1]));
    cost += DimOr(l.rows()) * DimOr(l.cols()) * DimOr(r.cols());
  }
  return cost;
}

/// Assigns one FROM alias per distinct referenced table.
void CollectTables(const NodePtr& node,
                   std::map<std::string, std::string>* aliases) {
  if (node->kind == Node::Kind::kRef) {
    const std::string key = ToLower(node->table);
    if (!aliases->count(key)) {
      (*aliases)[key] = "d" + std::to_string(aliases->size());
    }
  }
  for (const auto& c : node->children) CollectTables(c, aliases);
}

std::string EmitExpr(const NodePtr& node,
                     const std::map<std::string, std::string>& aliases) {
  switch (node->kind) {
    case Node::Kind::kRef:
      return aliases.at(ToLower(node->table)) + "." + node->column;
    case Node::Kind::kMultiply:
      return "matrix_multiply(" + EmitExpr(node->children[0], aliases) +
             ", " + EmitExpr(node->children[1], aliases) + ")";
    case Node::Kind::kAdd:
      return "(" + EmitExpr(node->children[0], aliases) + " + " +
             EmitExpr(node->children[1], aliases) + ")";
    case Node::Kind::kSub:
      return "(" + EmitExpr(node->children[0], aliases) + " - " +
             EmitExpr(node->children[1], aliases) + ")";
    case Node::Kind::kHadamard:
      return "(" + EmitExpr(node->children[0], aliases) + " * " +
             EmitExpr(node->children[1], aliases) + ")";
    case Node::Kind::kScale: {
      std::ostringstream os;
      os << "(" << EmitExpr(node->children[0], aliases) << " * "
         << node->scalar << ")";
      return os.str();
    }
    case Node::Kind::kTranspose:
      return "trans_matrix(" + EmitExpr(node->children[0], aliases) + ")";
    case Node::Kind::kInverse:
      return "matrix_inverse(" + EmitExpr(node->children[0], aliases) + ")";
  }
  return "?";
}

}  // namespace

Expr Expr::Ref(std::string table, std::string column) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kRef;
  n->table = std::move(table);
  n->column = std::move(column);
  return Expr(std::move(n));
}

Expr operator*(const Expr& lhs, const Expr& rhs) {
  return Expr(MakeNode(Node::Kind::kMultiply, {lhs.node_, rhs.node_}));
}

Expr operator+(const Expr& lhs, const Expr& rhs) {
  return Expr(MakeNode(Node::Kind::kAdd, {lhs.node_, rhs.node_}));
}

Expr operator-(const Expr& lhs, const Expr& rhs) {
  return Expr(MakeNode(Node::Kind::kSub, {lhs.node_, rhs.node_}));
}

Expr Expr::T() const {
  return Expr(MakeNode(Node::Kind::kTranspose, {node_}));
}

Expr Expr::Inv() const {
  return Expr(MakeNode(Node::Kind::kInverse, {node_}));
}

Expr Expr::Hadamard(const Expr& other) const {
  return Expr(MakeNode(Node::Kind::kHadamard, {node_, other.node_}));
}

Expr Expr::Scale(double s) const {
  return Expr(MakeNode(Node::Kind::kScale, {node_}, s));
}

Result<DataType> Expr::InferType(const Catalog& catalog) const {
  return InferNodeType(catalog, *node_);
}

Result<std::string> Expr::ToSql(const Catalog& catalog) const {
  // Type-check first so dimension errors surface before emission.
  RADB_RETURN_NOT_OK(InferType(catalog).status());
  RADB_ASSIGN_OR_RETURN(NodePtr optimized, Reassociate(catalog, node_));
  std::map<std::string, std::string> aliases;
  CollectTables(optimized, &aliases);
  if (aliases.empty()) {
    return Status::InvalidArgument(
        "DSL expression references no tables");
  }
  std::vector<std::string> from;
  for (const auto& [table, alias] : aliases) {
    from.push_back(table + " AS " + alias);
  }
  return "SELECT " + EmitExpr(optimized, aliases) + " AS result FROM " +
         Join(from, ", ");
}

Result<la::Matrix> Expr::Eval(Database* db) const {
  RADB_ASSIGN_OR_RETURN(std::string sql, ToSql(db->catalog()));
  RADB_ASSIGN_OR_RETURN(ScriptResult script, db->Execute(sql));
  if (!script.has_results()) {
    return Status::ExecutionError("DSL expression produced no result set");
  }
  return script.last().ScalarMatrix();
}

Result<double> Expr::MultiplyCost(const Catalog& catalog) const {
  RADB_ASSIGN_OR_RETURN(NodePtr optimized, Reassociate(catalog, node_));
  return CostOf(catalog, optimized);
}

}  // namespace radb::dsl
