#include "plan/logical_plan.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace radb {

double LogicalOp::ComputeRowBytes() const {
  double bytes = 0.0;
  for (const SlotInfo& s : output) bytes += s.type.EstimatedByteSize();
  return bytes;
}

const char* KindName(LogicalOp::Kind k) {
  switch (k) {
    case LogicalOp::Kind::kScan:
      return "Scan";
    case LogicalOp::Kind::kFilter:
      return "Filter";
    case LogicalOp::Kind::kJoin:
      return "Join";
    case LogicalOp::Kind::kProject:
      return "Project";
    case LogicalOp::Kind::kAggregate:
      return "Aggregate";
    case LogicalOp::Kind::kDistinct:
      return "Distinct";
    case LogicalOp::Kind::kSort:
      return "Sort";
    case LogicalOp::Kind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string LogicalOp::NodeLabel() const {
  std::ostringstream os;
  os << KindName(kind);
  switch (kind) {
    case Kind::kScan:
      os << " " << (table ? table->name() : "?");
      if (!alias.empty() && table && alias != table->name()) {
        os << " AS " << alias;
      }
      break;
    case Kind::kFilter: {
      std::vector<std::string> parts;
      for (const auto& p : predicates) parts.push_back(p->ToString());
      os << " [" << Join(parts, " AND ") << "]";
      break;
    }
    case Kind::kJoin: {
      std::vector<std::string> parts;
      for (const auto& [l, r] : equi_keys) {
        parts.push_back(l->ToString() + " = " + r->ToString());
      }
      for (const auto& p : residual) parts.push_back(p->ToString());
      os << (equi_keys.empty() ? " (cross)" : "")
         << (parts.empty() ? "" : " [" + Join(parts, " AND ") + "]");
      break;
    }
    case Kind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < exprs.size(); ++i) {
        parts.push_back(exprs[i]->ToString() + " AS " + output[i].name);
      }
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case Kind::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& g : group_exprs) parts.push_back(g->ToString());
      std::vector<std::string> agg_parts;
      for (const auto& a : aggs) {
        agg_parts.push_back(
            a.name + "(" + (a.is_count_star ? "*" : a.arg->ToString()) + ")");
      }
      if (!parts.empty()) os << " group=[" << Join(parts, ", ") << "]";
      os << " aggs=[" << Join(agg_parts, ", ") << "]";
      break;
    }
    case Kind::kSort: {
      std::vector<std::string> parts;
      for (const auto& [e, desc] : sort_keys) {
        parts.push_back(e->ToString() + (desc ? " DESC" : ""));
      }
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case Kind::kLimit:
      os << " " << limit;
      break;
    default:
      break;
  }
  return os.str();
}

std::string LogicalOp::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << NodeLabel();
  os << "  (rows=" << est_rows
     << ", bytes=" << FormatBytes(EstOutputBytes()) << ")";
  os << "\n";
  for (const auto& c : children) os << c->ToString(indent + 1);
  return os.str();
}

LogicalOpPtr LogicalOp::Clone() const {
  auto out = std::make_unique<LogicalOp>();
  out->kind = kind;
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->table = table;
  out->alias = alias;
  out->scan_columns = scan_columns;
  for (const auto& p : predicates) out->predicates.push_back(p->Clone());
  for (const auto& [l, r] : equi_keys) {
    out->equi_keys.emplace_back(l->Clone(), r->Clone());
  }
  for (const auto& p : residual) out->residual.push_back(p->Clone());
  for (const auto& e : exprs) out->exprs.push_back(e->Clone());
  for (const auto& g : group_exprs) out->group_exprs.push_back(g->Clone());
  for (const AggCall& a : aggs) {
    AggCall copy;
    copy.fn = a.fn;
    copy.name = a.name;
    copy.arg = a.arg ? a.arg->Clone() : nullptr;
    copy.is_count_star = a.is_count_star;
    copy.result_type = a.result_type;
    copy.out_slot = a.out_slot;
    out->aggs.push_back(std::move(copy));
  }
  for (const auto& [e, desc] : sort_keys) {
    out->sort_keys.emplace_back(e->Clone(), desc);
  }
  out->limit = limit;
  out->output = output;
  out->est_rows = est_rows;
  out->est_row_bytes = est_row_bytes;
  out->est_cost = est_cost;
  return out;
}

LogicalOpPtr MakeScan(std::shared_ptr<Table> table, std::string alias,
                      std::vector<size_t> scan_columns,
                      std::vector<SlotInfo> output) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOp::Kind::kScan;
  op->table = std::move(table);
  op->alias = std::move(alias);
  op->scan_columns = std::move(scan_columns);
  op->output = std::move(output);
  return op;
}

}  // namespace radb
