#include "plan/logical_plan.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace radb {

double LogicalOp::ComputeRowBytes() const {
  double bytes = 0.0;
  for (const SlotInfo& s : output) bytes += s.type.EstimatedByteSize();
  return bytes;
}

const char* KindName(LogicalOp::Kind k) {
  switch (k) {
    case LogicalOp::Kind::kScan:
      return "Scan";
    case LogicalOp::Kind::kFilter:
      return "Filter";
    case LogicalOp::Kind::kJoin:
      return "Join";
    case LogicalOp::Kind::kProject:
      return "Project";
    case LogicalOp::Kind::kAggregate:
      return "Aggregate";
    case LogicalOp::Kind::kDistinct:
      return "Distinct";
    case LogicalOp::Kind::kSort:
      return "Sort";
    case LogicalOp::Kind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string LogicalOp::NodeLabel() const {
  std::ostringstream os;
  os << KindName(kind);
  switch (kind) {
    case Kind::kScan:
      os << " " << (table ? table->name() : "?");
      if (!alias.empty() && table && alias != table->name()) {
        os << " AS " << alias;
      }
      if (!index_name.empty()) {
        os << " using " << index_name << " [";
        for (size_t i = 0; i < index_lo.size(); ++i) {
          if (i > 0) os << ", ";
          if (index_lo[i] == index_hi[i]) {
            os << "=" << index_lo[i];
          } else {
            if (index_lo[i] == INT64_MIN) {
              os << "(";
            } else {
              os << index_lo[i];
            }
            os << "..";
            if (index_hi[i] == INT64_MAX) {
              os << ")";
            } else {
              os << index_hi[i];
            }
          }
        }
        os << "]";
      }
      break;
    case Kind::kFilter: {
      std::vector<std::string> parts;
      for (const auto& p : predicates) parts.push_back(p->ToString());
      os << " [" << Join(parts, " AND ") << "]";
      break;
    }
    case Kind::kJoin: {
      std::vector<std::string> parts;
      for (const auto& [l, r] : equi_keys) {
        parts.push_back(l->ToString() + " = " + r->ToString());
      }
      for (const auto& p : residual) parts.push_back(p->ToString());
      os << (equi_keys.empty() ? " (cross)" : "") << (index_nl ? " (indexed)" : "")
         << (parts.empty() ? "" : " [" + Join(parts, " AND ") + "]");
      break;
    }
    case Kind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < exprs.size(); ++i) {
        parts.push_back(exprs[i]->ToString() + " AS " + output[i].name);
      }
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case Kind::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& g : group_exprs) parts.push_back(g->ToString());
      std::vector<std::string> agg_parts;
      for (const auto& a : aggs) {
        agg_parts.push_back(
            a.name + "(" + (a.is_count_star ? "*" : a.arg->ToString()) + ")");
      }
      if (!parts.empty()) os << " group=[" << Join(parts, ", ") << "]";
      os << " aggs=[" << Join(agg_parts, ", ") << "]";
      break;
    }
    case Kind::kSort: {
      std::vector<std::string> parts;
      for (const auto& [e, desc] : sort_keys) {
        parts.push_back(e->ToString() + (desc ? " DESC" : ""));
      }
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case Kind::kLimit:
      os << " " << limit;
      break;
    default:
      break;
  }
  return os.str();
}

std::string LogicalOp::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << NodeLabel();
  os << "  (rows=" << est_rows
     << ", bytes=" << FormatBytes(EstOutputBytes()) << ")";
  os << "\n";
  for (const auto& c : children) os << c->ToString(indent + 1);
  return os.str();
}

LogicalOpPtr LogicalOp::Clone() const {
  auto out = std::make_unique<LogicalOp>();
  out->kind = kind;
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->table = table;
  out->alias = alias;
  out->scan_columns = scan_columns;
  out->index_name = index_name;
  out->index_lo = index_lo;
  out->index_hi = index_hi;
  out->index_nl = index_nl;
  for (const auto& p : predicates) out->predicates.push_back(p->Clone());
  for (const auto& [l, r] : equi_keys) {
    out->equi_keys.emplace_back(l->Clone(), r->Clone());
  }
  for (const auto& p : residual) out->residual.push_back(p->Clone());
  for (const auto& e : exprs) out->exprs.push_back(e->Clone());
  for (const auto& g : group_exprs) out->group_exprs.push_back(g->Clone());
  for (const AggCall& a : aggs) {
    AggCall copy;
    copy.fn = a.fn;
    copy.name = a.name;
    copy.arg = a.arg ? a.arg->Clone() : nullptr;
    copy.is_count_star = a.is_count_star;
    copy.result_type = a.result_type;
    copy.out_slot = a.out_slot;
    out->aggs.push_back(std::move(copy));
  }
  for (const auto& [e, desc] : sort_keys) {
    out->sort_keys.emplace_back(e->Clone(), desc);
  }
  out->limit = limit;
  out->output = output;
  out->est_rows = est_rows;
  out->est_row_bytes = est_row_bytes;
  out->est_cost = est_cost;
  out->batch_capable = batch_capable;
  return out;
}

namespace {

/// Kinds a ColumnVector can carry as a real (payload-bearing) column.
bool ScalarColumnKind(TypeKind k) {
  return k == TypeKind::kBoolean || k == TypeKind::kInteger ||
         k == TypeKind::kDouble || k == TypeKind::kString;
}

/// Kinds EvalArith / EvalNegate accept on the scalar-numeric path.
/// kNull is a statically-NULL operand (a NULL literal): the result is
/// NULL in every lane, which the kernels handle directly.
bool NumericOperandKind(TypeKind k) {
  return k == TypeKind::kBoolean || k == TypeKind::kInteger ||
         k == TypeKind::kDouble || k == TypeKind::kNull;
}

bool OutputsColumnar(const LogicalOp& op) {
  for (const SlotInfo& s : op.output) {
    if (!ScalarColumnKind(s.type.kind())) return false;
  }
  return true;
}

/// Aggregates with a typed columnar accumulator. SUM/AVG keep their
/// first non-null argument's *runtime* representation (a BOOLEAN
/// argument can surface as a BOOLEAN sum over a one-row group), so
/// only INTEGER / DOUBLE arguments take the fast path; MIN/MAX and
/// the label-checking EMIN/EMAX compare through the same total order
/// for every scalar kind.
bool AggCallCapable(const AggCall& a) {
  if (a.is_count_star) return true;
  if (!a.arg || !BatchCapableExpr(*a.arg)) return false;
  const TypeKind arg = a.arg->type.kind();
  if (a.name == "count") return true;
  if (a.name == "sum" || a.name == "avg") {
    return arg == TypeKind::kInteger || arg == TypeKind::kDouble;
  }
  if (a.name == "min" || a.name == "max" || a.name == "emin" ||
      a.name == "emax") {
    return ScalarColumnKind(arg);
  }
  return false;
}

/// Storage-level precondition for the typed columnar scan: every
/// scanned column must be kind-pure (Table::ColumnKindPure). An
/// INTEGER value legally stored in a DOUBLE column keeps its runtime
/// kind on the row engine (it groups, hashes and sums as an INTEGER),
/// which a single-kind ColumnVector cannot represent.
bool ScanColumnsKindPure(const LogicalOp& op) {
  for (size_t col : op.scan_columns) {
    if (!op.table->ColumnKindPure(col)) return false;
  }
  return true;
}

/// Node-local rule (see the header): the vectorized engine handles
/// Scan / Filter / Project plus Aggregate as a chain head, as long as
/// every column crossing the node and every expression it evaluates
/// is columnar.
bool NodeBatchCapable(const LogicalOp& op) {
  for (const LogicalOpPtr& c : op.children) {
    if (!OutputsColumnar(*c)) return false;
  }
  switch (op.kind) {
    case LogicalOp::Kind::kScan:
      return OutputsColumnar(op) && ScanColumnsKindPure(op);
    case LogicalOp::Kind::kFilter:
      for (const BoundExprPtr& p : op.predicates) {
        if (!BatchCapableExpr(*p)) return false;
      }
      return true;
    case LogicalOp::Kind::kProject:
      if (!OutputsColumnar(op)) return false;
      for (const BoundExprPtr& e : op.exprs) {
        if (!BatchCapableExpr(*e)) return false;
      }
      return true;
    case LogicalOp::Kind::kAggregate:
      if (!OutputsColumnar(op)) return false;
      for (const BoundExprPtr& g : op.group_exprs) {
        if (!BatchCapableExpr(*g) || !ScalarColumnKind(g->type.kind())) {
          return false;
        }
      }
      for (const AggCall& a : op.aggs) {
        if (!AggCallCapable(a)) return false;
      }
      return true;
    default:
      // Join / Distinct / Sort / Limit stay row-at-a-time (they are
      // pipeline breakers or already sequential); their *children* can
      // still run vectorized.
      return false;
  }
}

}  // namespace

bool BatchCapableExpr(const BoundExpr& e) {
  switch (e.kind) {
    case BoundExpr::Kind::kLiteral:
      return ColumnVector::KindSupported(e.type.kind());
    case BoundExpr::Kind::kColumnRef:
      return ScalarColumnKind(e.type.kind());
    case BoundExpr::Kind::kArith:
      return BatchCapableExpr(*e.children[0]) &&
             BatchCapableExpr(*e.children[1]) &&
             NumericOperandKind(e.children[0]->type.kind()) &&
             NumericOperandKind(e.children[1]->type.kind());
    case BoundExpr::Kind::kNeg:
      return BatchCapableExpr(*e.children[0]) &&
             NumericOperandKind(e.children[0]->type.kind());
    case BoundExpr::Kind::kCompare: {
      if (!BatchCapableExpr(*e.children[0]) ||
          !BatchCapableExpr(*e.children[1])) {
        return false;
      }
      const TypeKind a = e.children[0]->type.kind();
      const TypeKind b = e.children[1]->type.kind();
      if (a == TypeKind::kNull || b == TypeKind::kNull) return true;
      if (NumericOperandKind(a) && NumericOperandKind(b)) return true;
      return a == TypeKind::kString && b == TypeKind::kString;
    }
    case BoundExpr::Kind::kLogic:
    case BoundExpr::Kind::kNot:
      for (const auto& c : e.children) {
        if (!BatchCapableExpr(*c)) return false;
        const TypeKind k = c->type.kind();
        if (k != TypeKind::kBoolean && k != TypeKind::kNull) return false;
      }
      return true;
    case BoundExpr::Kind::kCall:
      return false;  // built-ins (incl. every LA function) stay row-wise
    case BoundExpr::Kind::kParam:
      return false;  // substituted to a literal before execution
  }
  return false;
}

namespace {

/// Post-order annotation pass. Returns whether the subtree's output is
/// *runtime-kind pure*: every non-NULL value it produces has exactly
/// its output column's static type kind. The row engine follows
/// runtime kinds (an INTEGER living in a DOUBLE column groups and sums
/// as an INTEGER), so a vectorized consumer — which types each column
/// once, statically — may only ingest pure inputs; batch_capable
/// therefore also requires every child subtree to be pure. Purity
/// holds at a scan of kind-pure columns and is preserved by operators
/// that pass values through (Filter/Join/Distinct/Sort/Limit) and by
/// batch-capable expressions, whose runtime result kinds match their
/// inferred static types when their inputs are pure.
bool AnnotateAndCheckPurity(LogicalOp& op) {
  bool children_pure = true;
  for (const LogicalOpPtr& c : op.children) {
    if (!AnnotateAndCheckPurity(*c)) children_pure = false;
  }
  op.batch_capable = children_pure && NodeBatchCapable(op);
  switch (op.kind) {
    case LogicalOp::Kind::kScan:
      return ScanColumnsKindPure(op);
    case LogicalOp::Kind::kProject: {
      if (!children_pure) return false;
      for (const BoundExprPtr& e : op.exprs) {
        if (!BatchCapableExpr(*e)) return false;
      }
      return true;
    }
    case LogicalOp::Kind::kAggregate: {
      if (!children_pure) return false;
      for (const BoundExprPtr& g : op.group_exprs) {
        if (!BatchCapableExpr(*g)) return false;
      }
      // Capable aggregates produce exactly their inferred result kind:
      // COUNT -> INTEGER, SUM(INTEGER) -> INTEGER, SUM(DOUBLE)/AVG ->
      // DOUBLE, MIN/MAX/EMIN/EMAX -> the argument kind.
      for (const AggCall& a : op.aggs) {
        if (!AggCallCapable(a)) return false;
      }
      return true;
    }
    default:
      // Filter/Join/Distinct/Sort/Limit emit child values unmodified.
      return children_pure;
  }
}

}  // namespace

void AnnotateBatchCapability(LogicalOp& root) {
  (void)AnnotateAndCheckPurity(root);
}

LogicalOpPtr MakeScan(std::shared_ptr<Table> table, std::string alias,
                      std::vector<size_t> scan_columns,
                      std::vector<SlotInfo> output) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOp::Kind::kScan;
  op->table = std::move(table);
  op->alias = std::move(alias);
  op->scan_columns = std::move(scan_columns);
  op->output = std::move(output);
  return op;
}

}  // namespace radb
