#ifndef RADB_PLAN_LOGICAL_PLAN_H_
#define RADB_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "binder/bound_expr.h"
#include "storage/table.h"

namespace radb {

/// Description of one output column of a logical operator: which slot
/// it carries, its display name, and its inferred type (dimensions
/// included, which is what the LA-aware cost model consumes, §4).
struct SlotInfo {
  size_t slot = 0;
  std::string name;
  DataType type;
};

struct LogicalOp;
using LogicalOpPtr = std::unique_ptr<LogicalOp>;

/// Logical relational algebra node. One struct with a Kind tag keeps
/// tree surgery (the optimizer moves projections and predicates
/// around) straightforward.
struct LogicalOp {
  enum class Kind {
    kScan,       // base table
    kFilter,     // predicates over child slots
    kJoin,       // hash/cross join; equi keys + residual predicates
    kProject,    // computes exprs, defines fresh slots
    kAggregate,  // group-by + aggregate calls
    kDistinct,
    kSort,
    kLimit,
  };

  Kind kind = Kind::kScan;
  std::vector<LogicalOpPtr> children;

  // kScan
  std::shared_ptr<Table> table;
  std::string alias;
  /// Which table columns this scan emits (column pruning) — indexes
  /// into the table schema, parallel to `output`.
  std::vector<size_t> scan_columns;
  /// Index-scan annotation (filled by the optimizer's index-selection
  /// pass, empty = full scan): the chosen B+ tree index and inclusive
  /// key bounds, one pair per index key column. Open ends are encoded
  /// as INT64_MIN / INT64_MAX.
  std::string index_name;
  std::vector<int64_t> index_lo;
  std::vector<int64_t> index_hi;

  // kFilter
  std::vector<BoundExprPtr> predicates;

  // kJoin: equi_keys.first evaluates over the left child's slots,
  // .second over the right child's; residual over both.
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> equi_keys;
  std::vector<BoundExprPtr> residual;
  /// Index-nested-loop annotation: when true the right child is a bare
  /// indexed kScan and the executor probes its B+ tree with each left
  /// row's equi-key values instead of building a hash table.
  bool index_nl = false;

  // kProject: exprs[i] produces output[i].
  std::vector<BoundExprPtr> exprs;

  // kAggregate: group_exprs produce output[0..G), aggs produce the
  // rest.
  std::vector<BoundExprPtr> group_exprs;
  std::vector<AggCall> aggs;

  // kSort
  std::vector<std::pair<BoundExprPtr, bool>> sort_keys;  // expr, desc

  // kLimit
  int64_t limit = 0;

  /// Ordered description of the rows this operator produces.
  std::vector<SlotInfo> output;

  // Cost-model annotations (filled by the optimizer).
  double est_rows = 0.0;
  double est_row_bytes = 0.0;
  double est_cost = 0.0;  // cumulative

  /// Node-local batch capability, filled by the optimizer
  /// (AnnotateBatchCapability): true when this node's own kind,
  /// expressions, and input/output column types are all representable
  /// in the columnar engine, AND every child subtree is runtime-kind
  /// pure (its values' runtime kinds match its static column types, so
  /// typed ingestion is sound). The executor stitches maximal capable
  /// chains (scan/filter/project with an optional aggregate on top)
  /// into vectorized pipelines; anything else stays on the row engine.
  bool batch_capable = false;

  /// Bytes this operator is estimated to produce (rows * row bytes).
  double EstOutputBytes() const { return est_rows * est_row_bytes; }

  /// Sum of output column byte widths from their types.
  double ComputeRowBytes() const;

  /// One-line description of this node alone (kind + salient exprs),
  /// no cost annotation, no children — the building block ToString and
  /// EXPLAIN ANALYZE share.
  std::string NodeLabel() const;

  /// Indented EXPLAIN-style rendering of the subtree.
  std::string ToString(int indent = 0) const;

  /// Deep copy (the join-order DP reuses subset plans in multiple
  /// candidate parents).
  LogicalOpPtr Clone() const;
};

/// Printable name of a plan-node kind ("Scan", "Join", ...).
const char* KindName(LogicalOp::Kind k);

LogicalOpPtr MakeScan(std::shared_ptr<Table> table, std::string alias,
                      std::vector<size_t> scan_columns,
                      std::vector<SlotInfo> output);

/// True when `expr` can be evaluated by the columnar kernels: literals
/// and column refs of scalar kinds, arithmetic/negation over scalar
/// numerics, comparisons, and three-valued AND/OR/NOT. Function calls
/// and anything touching the LA kinds (VECTOR / MATRIX /
/// LABELED_SCALAR) are row-engine-only.
bool BatchCapableExpr(const BoundExpr& expr);

/// Sets `batch_capable` on every node of the subtree (see the field
/// comment). Called by the optimizer after planning.
void AnnotateBatchCapability(LogicalOp& root);

}  // namespace radb

#endif  // RADB_PLAN_LOGICAL_PLAN_H_
