#ifndef RADB_EXEC_EXPR_EVAL_H_
#define RADB_EXEC_EXPR_EVAL_H_

#include <map>

#include "binder/bound_expr.h"
#include "common/result.h"
#include "types/value.h"

namespace radb {

/// Evaluates a bound expression against a row. Column references must
/// already have been rewritten to row positions (see
/// RewriteToPositions); `slot` is interpreted as an index into `row`.
Result<Value> EvalExpr(const BoundExpr& expr, const Row& row);

/// Clones `expr` rewriting every column reference from slot id to row
/// position using `layout` (slot -> position). BindError if a
/// referenced slot is missing from the layout.
Result<BoundExprPtr> RewriteToPositions(
    const BoundExpr& expr, const std::map<size_t, size_t>& layout);

}  // namespace radb

#endif  // RADB_EXEC_EXPR_EVAL_H_
