#ifndef RADB_EXEC_ROW_KEY_H_
#define RADB_EXEC_ROW_KEY_H_

#include <cstddef>
#include <utility>

#include "types/value.h"

namespace radb {

/// Seeded fold of Value::Hash over a row (boost-style combine).
inline size_t HashRow(const Row& row) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Composite key for hash join / group-by / DISTINCT: a row of values
/// compared by deep equality (Value::Equals — NULLs equal, Int(1) !=
/// Double(1.0)). Shared between the executor and the differential
/// reference evaluator so both sides form identical equivalence
/// classes by construction.
struct KeyRow {
  Row values;
  size_t hash = 0;

  /// Computes the hash the way every engine path does: single-column
  /// keys hash exactly like Table::RepartitionByHash so
  /// pre-partitioned base tables stay aligned with shuffled inputs.
  static KeyRow Of(Row values) {
    KeyRow key;
    key.hash = values.size() == 1 ? values[0].Hash() : HashRow(values);
    key.values = std::move(values);
    return key;
  }

  bool operator==(const KeyRow& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].Equals(other.values[i])) return false;
    }
    return true;
  }
};

struct KeyRowHash {
  size_t operator()(const KeyRow& k) const { return k.hash; }
};

/// Inner-join semantics: a NULL in any key column means the row can
/// never match (unlike GROUP BY, where NULLs form one group).
inline bool KeyHasNull(const KeyRow& key) {
  for (const Value& v : key.values) {
    if (v.is_null()) return true;
  }
  return false;
}

}  // namespace radb

#endif  // RADB_EXEC_ROW_KEY_H_
