// Columnar batch-at-a-time execution (the vectorized engine).
//
// Executor::TryVectorized stitches a maximal chain of batch-capable
// plan nodes — an optional in-chain Scan source, Filter/Project
// middles, an optional Aggregate head — and executes the whole chain
// over typed ColumnBatches: ~batch_rows lanes per batch, a selection
// vector instead of row copies for filters, and tight per-column
// kernels instead of per-row Value dispatch. Late materialization:
// rows are rebuilt only at the pipeline sink (result buffers) or in
// the typed hash aggregate's emitted groups.
//
// Bit-identity with the row engine is a hard requirement (the
// differential fuzzer cross-checks every query on both engines), so
// every kernel replicates the row engine's exact semantics:
//  - arithmetic follows EvalArith (INTEGER x INTEGER stays int64,
//    anything else computes through AsDouble; only integer division
//    by zero errors),
//  - comparisons follow EvalCompare / Value::Compare (numerics through
//    double, strings lexicographic),
//  - AND/OR follow EvalExpr's three-valued short-circuit, including
//    its error suppression: the rhs is evaluated only on lanes the
//    lhs did not decide,
//  - group keys hash and compare exactly like KeyRow over Value::Hash,
//  - SUM/AVG replicate the "first non-null value is kept raw"
//    accumulator (signed overflow wraps just like the row engine's
//    int64 adds; -0.0 survives as a first value),
//  - aggregate merge walks sources in index order (src-major), the
//    same sequence as the row engine's phase 2, so floating-point
//    results are independent of the thread count.
//
// The optimizer only marks a node batch_capable when its inputs are
// runtime-kind pure (see AnnotateBatchCapability), so a column's
// non-null lanes all carry the column's static kind and the typed
// kernels are sound.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "exec/expr_eval.h"
#include "types/column.h"

namespace radb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Hash constants mirroring Value::Hash / HashRow (exec/row_key.h):
// group placement (hash % workers) must agree with the row engine so
// shuffle metrics and merge order match.
constexpr size_t kNullHash = 0x517cc1b727220a95ULL;
constexpr size_t kTrueHash = 0x9ae16a3b2f90404fULL;
constexpr size_t kFalseHash = 0xc949d7c7509e6557ULL;
constexpr size_t kHashSeed = 0x9e3779b97f4a7c15ULL;

/// Mirrors executor.cc's group admission overhead constant.
constexpr size_t kGroupStateOverhead = 128;

size_t LaneHash(const ColumnVector& c, size_t i) {
  if (c.null[i]) return kNullHash;
  switch (c.kind) {
    case TypeKind::kBoolean:
      return c.i64[i] != 0 ? kTrueHash : kFalseHash;
    case TypeKind::kInteger:
      return std::hash<double>()(static_cast<double>(c.i64[i]));
    case TypeKind::kDouble:
      return std::hash<double>()(c.f64[i]);
    case TypeKind::kString:
      return std::hash<std::string>()(c.str[i]);
    default:
      return kNullHash;
  }
}

/// KeyRow::Of: a single key hashes directly; several fold with the
/// golden-ratio mix. Zero keys (scalar aggregate) -> bare seed.
size_t KeyHashLanes(const std::vector<const ColumnVector*>& keys, size_t i) {
  if (keys.size() == 1) return LaneHash(*keys[0], i);
  size_t h = kHashSeed;
  for (const ColumnVector* k : keys) {
    h ^= LaneHash(*k, i) + kHashSeed + (h << 6) + (h >> 2);
  }
  return h;
}

// Wrapping int64 arithmetic: same bit results as the row engine's
// plain signed ops on overflow, without the UB (and safe to run
// branchlessly over null lanes holding garbage payloads).
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

/// Runs f(lane) over the live lanes: the selection if present, else
/// the dense prefix [0, n).
template <typename F>
inline void ForLanes(const uint32_t* sel, size_t n, F&& f) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) f(i);
  } else {
    for (size_t j = 0; j < n; ++j) f(static_cast<size_t>(sel[j]));
  }
}

/// Reads a numeric column as double lanes exactly like Value::AsDouble
/// (booleans -> 0/1, integers widen).
struct NumReader {
  const int64_t* i = nullptr;
  const double* f = nullptr;
  bool is_bool = false;
  explicit NumReader(const ColumnVector& c) {
    if (c.kind == TypeKind::kDouble) {
      f = c.f64.data();
    } else {
      i = c.i64.data();
      is_bool = (c.kind == TypeKind::kBoolean);
    }
  }
  double Get(size_t l) const {
    if (f != nullptr) return f[l];
    return is_bool ? (i[l] != 0 ? 1.0 : 0.0) : static_cast<double>(i[l]);
  }
};

/// Types `out` and sizes it to `n` lanes without clearing payloads
/// (kernels overwrite the live lanes; dead lanes stay garbage).
void PrepareOut(ColumnVector& out, TypeKind k, size_t n) {
  out.kind = k;
  out.null.resize(n);
  switch (k) {
    case TypeKind::kBoolean:
    case TypeKind::kInteger:
      out.i64.resize(n);
      break;
    case TypeKind::kDouble:
      out.f64.resize(n);
      break;
    case TypeKind::kString:
      out.str.resize(n);
      break;
    default:
      break;
  }
}

void MarkLanesNull(ColumnVector& out, const uint32_t* sel, size_t n) {
  if (sel == nullptr) {
    std::fill_n(out.null.begin(), n, static_cast<uint8_t>(1));
  } else {
    for (size_t j = 0; j < n; ++j) out.null[sel[j]] = 1;
  }
}

/// Appends lane `i` of `src` (same kind) to `dst`: null byte plus raw
/// payload, garbage payloads of null lanes included (never read).
void AppendLane(ColumnVector& dst, const ColumnVector& src, size_t i) {
  dst.null.push_back(src.null[i]);
  switch (dst.kind) {
    case TypeKind::kBoolean:
    case TypeKind::kInteger:
      dst.i64.push_back(src.i64[i]);
      break;
    case TypeKind::kDouble:
      dst.f64.push_back(src.f64[i]);
      break;
    case TypeKind::kString:
      dst.str.push_back(src.str[i]);
      break;
    default:
      break;
  }
}

bool LaneEquals(const ColumnVector& a, size_t ia, const ColumnVector& b,
                size_t ib) {
  const bool an = a.null[ia] != 0, bn = b.null[ib] != 0;
  if (an || bn) return an && bn;  // Value equality: NULL == NULL
  switch (a.kind) {
    case TypeKind::kBoolean:
      return (a.i64[ia] != 0) == (b.i64[ib] != 0);
    case TypeKind::kInteger:
      return a.i64[ia] == b.i64[ib];
    case TypeKind::kDouble:
      return a.f64[ia] == b.f64[ib];  // -0.0 == 0.0, like variant ==
    case TypeKind::kString:
      return a.str[ia] == b.str[ib];
    default:
      return true;  // kNull columns: all lanes NULL, handled above
  }
}

// ---------------------------------------------------------------------------
// Compiled expressions
// ---------------------------------------------------------------------------

/// One compiled node per BoundExpr node: owns its result scratch (and
/// the AND/OR sub-selection buffer), reused across batches. One tree
/// per worker — scratches are written concurrently.
struct VExpr {
  const BoundExpr* src = nullptr;
  std::vector<std::unique_ptr<VExpr>> kids;
  ColumnVector out;
  std::vector<uint32_t> sub_sel;  // kLogic: lanes the lhs left pending
  size_t lit_filled = 0;          // kLiteral: broadcast lanes so far
};

std::unique_ptr<VExpr> CompileVExpr(const BoundExpr& e) {
  auto v = std::make_unique<VExpr>();
  v->src = &e;
  for (const auto& c : e.children) v->kids.push_back(CompileVExpr(*c));
  return v;
}

/// Evaluates `e` over the live lanes, returning a column with `nrows`
/// lanes whose live entries hold the result (dead lanes unspecified).
/// Column refs return the input column itself — zero copies.
Result<const ColumnVector*> EvalV(VExpr& e,
                                  const std::vector<const ColumnVector*>& cols,
                                  const uint32_t* sel, size_t n,
                                  size_t nrows) {
  const BoundExpr& s = *e.src;
  switch (s.kind) {
    case BoundExpr::Kind::kColumnRef:
      return cols[s.slot];

    case BoundExpr::Kind::kLiteral: {
      if (e.lit_filled < nrows) {
        const Value& v = s.literal;
        const TypeKind k = s.type.kind();
        e.out.Reset(k, nrows);
        if (v.is_null()) {
          std::fill(e.out.null.begin(), e.out.null.end(),
                    static_cast<uint8_t>(1));
        } else {
          switch (k) {
            case TypeKind::kBoolean:
              std::fill(e.out.i64.begin(), e.out.i64.end(),
                        static_cast<int64_t>(v.bool_value() ? 1 : 0));
              break;
            case TypeKind::kInteger:
              std::fill(e.out.i64.begin(), e.out.i64.end(), v.int_value());
              break;
            case TypeKind::kDouble:
              std::fill(e.out.f64.begin(), e.out.f64.end(), v.double_value());
              break;
            case TypeKind::kString:
              std::fill(e.out.str.begin(), e.out.str.end(), v.string_value());
              break;
            default:
              break;
          }
        }
        e.lit_filled = nrows;
      }
      return &e.out;
    }

    case BoundExpr::Kind::kArith: {
      const TypeKind ak = s.children[0]->type.kind();
      const TypeKind bk = s.children[1]->type.kind();
      RADB_ASSIGN_OR_RETURN(const ColumnVector* a,
                            EvalV(*e.kids[0], cols, sel, n, nrows));
      RADB_ASSIGN_OR_RETURN(const ColumnVector* b,
                            EvalV(*e.kids[1], cols, sel, n, nrows));
      PrepareOut(e.out, s.type.kind(), nrows);
      if (ak == TypeKind::kNull || bk == TypeKind::kNull) {
        // A statically-NULL operand: NULL in every lane (EvalArith).
        MarkLanesNull(e.out, sel, n);
        return &e.out;
      }
      const uint8_t* an = a->null.data();
      const uint8_t* bn = b->null.data();
      uint8_t* on = e.out.null.data();
      if (ak == TypeKind::kInteger && bk == TypeKind::kInteger) {
        const int64_t* av = a->i64.data();
        const int64_t* bv = b->i64.data();
        int64_t* ov = e.out.i64.data();
        switch (s.arith_op) {
          case ArithOp::kAdd:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = WrapAdd(av[l], bv[l]);
            });
            break;
          case ArithOp::kSub:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = WrapSub(av[l], bv[l]);
            });
            break;
          case ArithOp::kMul:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = WrapMul(av[l], bv[l]);
            });
            break;
          case ArithOp::kDiv:
            // Lanes in selection (= row) order, erroring at the first
            // zero divisor like the row-at-a-time loop.
            for (size_t j = 0; j < n; ++j) {
              const size_t l = sel ? sel[j] : j;
              const uint8_t nl = an[l] | bn[l];
              on[l] = nl;
              if (nl) continue;
              if (bv[l] == 0) {
                return Status::NumericError("integer division by zero");
              }
              ov[l] = av[l] / bv[l];
            }
            break;
        }
        return &e.out;
      }
      // Mixed/bool/double operands compute through AsDouble; double
      // division by zero yields inf, never an error (ApplyScalar).
      const NumReader ra(*a), rb(*b);
      double* ov = e.out.f64.data();
      switch (s.arith_op) {
        case ArithOp::kAdd:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = ra.Get(l) + rb.Get(l);
          });
          break;
        case ArithOp::kSub:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = ra.Get(l) - rb.Get(l);
          });
          break;
        case ArithOp::kMul:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = ra.Get(l) * rb.Get(l);
          });
          break;
        case ArithOp::kDiv:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = ra.Get(l) / rb.Get(l);
          });
          break;
      }
      return &e.out;
    }

    case BoundExpr::Kind::kNeg: {
      const TypeKind ck = s.children[0]->type.kind();
      RADB_ASSIGN_OR_RETURN(const ColumnVector* c,
                            EvalV(*e.kids[0], cols, sel, n, nrows));
      PrepareOut(e.out, s.type.kind(), nrows);
      if (ck == TypeKind::kNull) {
        MarkLanesNull(e.out, sel, n);
        return &e.out;
      }
      const uint8_t* cn = c->null.data();
      uint8_t* on = e.out.null.data();
      if (ck == TypeKind::kDouble) {
        const double* cv = c->f64.data();
        double* ov = e.out.f64.data();
        ForLanes(sel, n, [&](size_t l) {
          on[l] = cn[l];
          ov[l] = -cv[l];
        });
      } else {
        // kInteger and kBoolean both negate to INTEGER; booleans are
        // already 0/1 lanes, matching -(int64)bool.
        const int64_t* cv = c->i64.data();
        int64_t* ov = e.out.i64.data();
        ForLanes(sel, n, [&](size_t l) {
          on[l] = cn[l];
          ov[l] = WrapSub(0, cv[l]);
        });
      }
      return &e.out;
    }

    case BoundExpr::Kind::kCompare: {
      const TypeKind ak = s.children[0]->type.kind();
      const TypeKind bk = s.children[1]->type.kind();
      RADB_ASSIGN_OR_RETURN(const ColumnVector* a,
                            EvalV(*e.kids[0], cols, sel, n, nrows));
      RADB_ASSIGN_OR_RETURN(const ColumnVector* b,
                            EvalV(*e.kids[1], cols, sel, n, nrows));
      PrepareOut(e.out, TypeKind::kBoolean, nrows);
      if (ak == TypeKind::kNull || bk == TypeKind::kNull) {
        MarkLanesNull(e.out, sel, n);
        return &e.out;
      }
      const uint8_t* an = a->null.data();
      const uint8_t* bn = b->null.data();
      uint8_t* on = e.out.null.data();
      int64_t* ov = e.out.i64.data();
      if (ak == TypeKind::kString) {
        const std::string* av = a->str.data();
        const std::string* bv = b->str.data();
        switch (s.compare_op) {
          case CompareOp::kEq:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] == bv[l]);
            });
            break;
          case CompareOp::kNe:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] != bv[l]);
            });
            break;
          case CompareOp::kLt:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] < bv[l]);
            });
            break;
          case CompareOp::kLe:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] <= bv[l]);
            });
            break;
          case CompareOp::kGt:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] > bv[l]);
            });
            break;
          case CompareOp::kGe:
            ForLanes(sel, n, [&](size_t l) {
              on[l] = an[l] | bn[l];
              ov[l] = (av[l] >= bv[l]);
            });
            break;
        }
        return &e.out;
      }
      const NumReader ra(*a), rb(*b);
      switch (s.compare_op) {
        case CompareOp::kEq:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) == rb.Get(l));
          });
          break;
        case CompareOp::kNe:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) != rb.Get(l));
          });
          break;
        case CompareOp::kLt:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) < rb.Get(l));
          });
          break;
        case CompareOp::kLe:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) <= rb.Get(l));
          });
          break;
        case CompareOp::kGt:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) > rb.Get(l));
          });
          break;
        case CompareOp::kGe:
          ForLanes(sel, n, [&](size_t l) {
            on[l] = an[l] | bn[l];
            ov[l] = (ra.Get(l) >= rb.Get(l));
          });
          break;
      }
      return &e.out;
    }

    case BoundExpr::Kind::kNot: {
      RADB_ASSIGN_OR_RETURN(const ColumnVector* c,
                            EvalV(*e.kids[0], cols, sel, n, nrows));
      PrepareOut(e.out, TypeKind::kBoolean, nrows);
      const uint8_t* cn = c->null.data();
      const int64_t* cv = c->i64.data();
      uint8_t* on = e.out.null.data();
      int64_t* ov = e.out.i64.data();
      ForLanes(sel, n, [&](size_t l) {
        if (cn[l]) {
          on[l] = 1;
        } else {
          on[l] = 0;
          ov[l] = (cv[l] == 0);
        }
      });
      return &e.out;
    }

    case BoundExpr::Kind::kLogic: {
      // Three-valued AND/OR with the row engine's short-circuit: the
      // rhs is evaluated only on lanes the lhs left undecided, which
      // also reproduces its error suppression (a division error in
      // the rhs of `FALSE AND x/0` never surfaces).
      const bool is_and = s.logic_is_and;
      const int64_t decide = is_and ? 0 : 1;  // lhs value that decides
      RADB_ASSIGN_OR_RETURN(const ColumnVector* a,
                            EvalV(*e.kids[0], cols, sel, n, nrows));
      PrepareOut(e.out, TypeKind::kBoolean, nrows);
      const uint8_t* an = a->null.data();
      const int64_t* av = a->i64.data();
      uint8_t* on = e.out.null.data();
      int64_t* ov = e.out.i64.data();
      e.sub_sel.clear();
      ForLanes(sel, n, [&](size_t l) {
        if (!an[l] && av[l] == decide) {
          on[l] = 0;
          ov[l] = decide;
        } else {
          e.sub_sel.push_back(static_cast<uint32_t>(l));
        }
      });
      if (!e.sub_sel.empty()) {
        RADB_ASSIGN_OR_RETURN(
            const ColumnVector* b,
            EvalV(*e.kids[1], cols, e.sub_sel.data(), e.sub_sel.size(),
                  nrows));
        const uint8_t* bnn = b->null.data();
        const int64_t* bv = b->i64.data();
        for (const uint32_t l : e.sub_sel) {
          if (!bnn[l] && bv[l] == decide) {
            on[l] = 0;
            ov[l] = decide;
          } else if (an[l] || bnn[l]) {
            on[l] = 1;
          } else {
            on[l] = 0;
            ov[l] = 1 - decide;
          }
        }
      }
      return &e.out;
    }

    case BoundExpr::Kind::kCall:
    case BoundExpr::Kind::kParam:
      break;  // never batch-capable
  }
  return Status::Internal("expression is not vectorizable");
}

/// Sum of serialized lane bytes over the live lanes (matches
/// Value::ByteSize row accounting).
size_t ColBytes(const ColumnVector& c, const uint32_t* sel, size_t n) {
  size_t bytes = 0;
  ForLanes(sel, n, [&](size_t l) { bytes += c.LaneBytes(l); });
  return bytes;
}

// ---------------------------------------------------------------------------
// Typed hash aggregation
// ---------------------------------------------------------------------------

/// The typed accumulator an AggCall compiles to. SUM/AVG admit only
/// INTEGER/DOUBLE arguments (the capability check enforces it);
/// MIN/MAX (and EMIN/EMAX, identical for scalars) carry any scalar
/// payload kind.
struct AggSpec {
  enum class Op {
    kCountStar,
    kCount,
    kSumInt,
    kSumDouble,
    kAvgInt,
    kAvgDouble,
    kMin,
    kMax,
  };
  Op op = Op::kCountStar;
  TypeKind payload = TypeKind::kNull;  // min/max storage kind
};

AggSpec SpecFor(const AggCall& a) {
  AggSpec s;
  if (a.is_count_star) {
    s.op = AggSpec::Op::kCountStar;
    return s;
  }
  const TypeKind k = a.arg->type.kind();
  s.payload = k;
  if (a.name == "count") {
    s.op = AggSpec::Op::kCount;
  } else if (a.name == "sum") {
    s.op = k == TypeKind::kInteger ? AggSpec::Op::kSumInt
                                   : AggSpec::Op::kSumDouble;
  } else if (a.name == "avg") {
    s.op = k == TypeKind::kInteger ? AggSpec::Op::kAvgInt
                                   : AggSpec::Op::kAvgDouble;
  } else if (a.name == "max" || a.name == "emax") {
    s.op = AggSpec::Op::kMax;
  } else {
    s.op = AggSpec::Op::kMin;  // "min" / "emin"
  }
  return s;
}

/// Columnar accumulator arrays, group-indexed. Which arrays are live
/// depends on the spec (sum -> value + seen, avg -> value + cnt,
/// min/max -> payload + seen, count -> i64 only).
struct AggAcc {
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;
  std::vector<int64_t> cnt;
  std::vector<uint8_t> seen;
};

void AddGroup(const AggSpec& s, AggAcc& a) {
  switch (s.op) {
    case AggSpec::Op::kCountStar:
    case AggSpec::Op::kCount:
      a.i64.push_back(0);
      break;
    case AggSpec::Op::kSumInt:
      a.i64.push_back(0);
      a.seen.push_back(0);
      break;
    case AggSpec::Op::kSumDouble:
      a.f64.push_back(0.0);
      a.seen.push_back(0);
      break;
    case AggSpec::Op::kAvgInt:
      a.i64.push_back(0);
      a.cnt.push_back(0);
      break;
    case AggSpec::Op::kAvgDouble:
      a.f64.push_back(0.0);
      a.cnt.push_back(0);
      break;
    case AggSpec::Op::kMin:
    case AggSpec::Op::kMax:
      a.seen.push_back(0);
      switch (s.payload) {
        case TypeKind::kBoolean:
        case TypeKind::kInteger:
          a.i64.push_back(0);
          break;
        case TypeKind::kDouble:
          a.f64.push_back(0.0);
          break;
        default:
          a.str.emplace_back();
          break;
      }
      break;
  }
}

/// Batch update: for live lane j (group gids[j]), fold in the
/// argument column. Lane order is row order, so first-value capture
/// and floating-point accumulation match the row engine exactly.
void UpdateAgg(const AggSpec& s, AggAcc& acc, const ColumnVector* c,
               const uint32_t* sel, size_t n, const uint32_t* gids) {
  switch (s.op) {
    case AggSpec::Op::kCountStar:
      for (size_t j = 0; j < n; ++j) ++acc.i64[gids[j]];
      break;
    case AggSpec::Op::kCount: {
      const uint8_t* cn = c->null.data();
      for (size_t j = 0; j < n; ++j) {
        const size_t l = sel ? sel[j] : j;
        if (!cn[l]) ++acc.i64[gids[j]];
      }
      break;
    }
    case AggSpec::Op::kSumInt: {
      const uint8_t* cn = c->null.data();
      const int64_t* cv = c->i64.data();
      for (size_t j = 0; j < n; ++j) {
        const size_t l = sel ? sel[j] : j;
        if (cn[l]) continue;
        const uint32_t g = gids[j];
        if (acc.seen[g]) {
          acc.i64[g] = WrapAdd(acc.i64[g], cv[l]);
        } else {
          acc.i64[g] = cv[l];
          acc.seen[g] = 1;
        }
      }
      break;
    }
    case AggSpec::Op::kSumDouble: {
      const uint8_t* cn = c->null.data();
      const double* cv = c->f64.data();
      for (size_t j = 0; j < n; ++j) {
        const size_t l = sel ? sel[j] : j;
        if (cn[l]) continue;
        const uint32_t g = gids[j];
        if (acc.seen[g]) {
          acc.f64[g] += cv[l];
        } else {
          acc.f64[g] = cv[l];  // first value raw: -0.0 survives
          acc.seen[g] = 1;
        }
      }
      break;
    }
    case AggSpec::Op::kAvgInt: {
      const uint8_t* cn = c->null.data();
      const int64_t* cv = c->i64.data();
      for (size_t j = 0; j < n; ++j) {
        const size_t l = sel ? sel[j] : j;
        if (cn[l]) continue;
        const uint32_t g = gids[j];
        acc.i64[g] = acc.cnt[g] ? WrapAdd(acc.i64[g], cv[l]) : cv[l];
        ++acc.cnt[g];
      }
      break;
    }
    case AggSpec::Op::kAvgDouble: {
      const uint8_t* cn = c->null.data();
      const double* cv = c->f64.data();
      for (size_t j = 0; j < n; ++j) {
        const size_t l = sel ? sel[j] : j;
        if (cn[l]) continue;
        const uint32_t g = gids[j];
        acc.f64[g] = acc.cnt[g] ? acc.f64[g] + cv[l] : cv[l];
        ++acc.cnt[g];
      }
      break;
    }
    case AggSpec::Op::kMin:
    case AggSpec::Op::kMax: {
      const bool is_max = (s.op == AggSpec::Op::kMax);
      const uint8_t* cn = c->null.data();
      if (s.payload == TypeKind::kDouble) {
        const double* cv = c->f64.data();
        for (size_t j = 0; j < n; ++j) {
          const size_t l = sel ? sel[j] : j;
          if (cn[l]) continue;
          const uint32_t g = gids[j];
          if (!acc.seen[g]) {
            acc.f64[g] = cv[l];
            acc.seen[g] = 1;
          } else if (is_max ? cv[l] > acc.f64[g] : cv[l] < acc.f64[g]) {
            acc.f64[g] = cv[l];
          }
        }
      } else if (s.payload == TypeKind::kString) {
        const std::string* cv = c->str.data();
        for (size_t j = 0; j < n; ++j) {
          const size_t l = sel ? sel[j] : j;
          if (cn[l]) continue;
          const uint32_t g = gids[j];
          if (!acc.seen[g]) {
            acc.str[g] = cv[l];
            acc.seen[g] = 1;
          } else if (is_max ? acc.str[g] < cv[l] : cv[l] < acc.str[g]) {
            acc.str[g] = cv[l];
          }
        }
      } else {
        // INTEGER / BOOLEAN payloads compare through double, exactly
        // like Value::Compare.
        const int64_t* cv = c->i64.data();
        for (size_t j = 0; j < n; ++j) {
          const size_t l = sel ? sel[j] : j;
          if (cn[l]) continue;
          const uint32_t g = gids[j];
          if (!acc.seen[g]) {
            acc.i64[g] = cv[l];
            acc.seen[g] = 1;
          } else {
            const double cand = static_cast<double>(cv[l]);
            const double best = static_cast<double>(acc.i64[g]);
            if (is_max ? cand > best : cand < best) acc.i64[g] = cv[l];
          }
        }
      }
      break;
    }
  }
}

/// Merges source group `sg` into destination group `dg` (same spec);
/// mirrors the row Aggregator Merge methods. A freshly AddGroup'ed
/// destination merges as a plain copy, so insertion reuses this.
void MergeAgg(const AggSpec& s, AggAcc& dst, size_t dg, const AggAcc& src,
              size_t sg) {
  switch (s.op) {
    case AggSpec::Op::kCountStar:
    case AggSpec::Op::kCount:
      dst.i64[dg] += src.i64[sg];
      break;
    case AggSpec::Op::kSumInt:
      if (src.seen[sg]) {
        dst.i64[dg] = dst.seen[dg] ? WrapAdd(dst.i64[dg], src.i64[sg])
                                   : src.i64[sg];
        dst.seen[dg] = 1;
      }
      break;
    case AggSpec::Op::kSumDouble:
      if (src.seen[sg]) {
        dst.f64[dg] = dst.seen[dg] ? dst.f64[dg] + src.f64[sg] : src.f64[sg];
        dst.seen[dg] = 1;
      }
      break;
    case AggSpec::Op::kAvgInt:
      if (src.cnt[sg]) {
        dst.i64[dg] = dst.cnt[dg] ? WrapAdd(dst.i64[dg], src.i64[sg])
                                  : src.i64[sg];
        dst.cnt[dg] += src.cnt[sg];
      }
      break;
    case AggSpec::Op::kAvgDouble:
      if (src.cnt[sg]) {
        dst.f64[dg] = dst.cnt[dg] ? dst.f64[dg] + src.f64[sg] : src.f64[sg];
        dst.cnt[dg] += src.cnt[sg];
      }
      break;
    case AggSpec::Op::kMin:
    case AggSpec::Op::kMax: {
      if (!src.seen[sg]) break;
      const bool is_max = (s.op == AggSpec::Op::kMax);
      if (!dst.seen[dg]) {
        dst.seen[dg] = 1;
        if (s.payload == TypeKind::kDouble) {
          dst.f64[dg] = src.f64[sg];
        } else if (s.payload == TypeKind::kString) {
          dst.str[dg] = src.str[sg];
        } else {
          dst.i64[dg] = src.i64[sg];
        }
        break;
      }
      if (s.payload == TypeKind::kDouble) {
        if (is_max ? src.f64[sg] > dst.f64[dg] : src.f64[sg] < dst.f64[dg]) {
          dst.f64[dg] = src.f64[sg];
        }
      } else if (s.payload == TypeKind::kString) {
        if (is_max ? dst.str[dg] < src.str[sg] : src.str[sg] < dst.str[dg]) {
          dst.str[dg] = src.str[sg];
        }
      } else {
        const double cand = static_cast<double>(src.i64[sg]);
        const double best = static_cast<double>(dst.i64[dg]);
        if (is_max ? cand > best : cand < best) dst.i64[dg] = src.i64[sg];
      }
      break;
    }
  }
}

/// Serialized state size, mirroring the row Aggregators' StateBytes
/// (shuffle byte metrics must match the row engine).
size_t AccStateBytes(const AggSpec& s, const AggAcc& a, size_t g) {
  switch (s.op) {
    case AggSpec::Op::kCountStar:
    case AggSpec::Op::kCount:
      return 8;
    case AggSpec::Op::kSumInt:
    case AggSpec::Op::kSumDouble:
      return a.seen[g] ? 9 : 1;
    case AggSpec::Op::kAvgInt:
    case AggSpec::Op::kAvgDouble:
      return (a.cnt[g] ? 9 : 1) + 8;
    case AggSpec::Op::kMin:
    case AggSpec::Op::kMax:
      if (!a.seen[g]) return 1;
      switch (s.payload) {
        case TypeKind::kBoolean:
          return 2;
        case TypeKind::kString:
          return 9 + a.str[g].size();
        default:
          return 9;
      }
  }
  return 1;
}

Result<Value> FinalizeAgg(const AggSpec& s, const AggAcc& a, size_t g) {
  switch (s.op) {
    case AggSpec::Op::kCountStar:
    case AggSpec::Op::kCount:
      return Value::Int(a.i64[g]);
    case AggSpec::Op::kSumInt:
      return a.seen[g] ? Value::Int(a.i64[g]) : Value::Null();
    case AggSpec::Op::kSumDouble:
      return a.seen[g] ? Value::Double(a.f64[g]) : Value::Null();
    case AggSpec::Op::kAvgInt:
      // EvalArith(kDiv, Int(sum), Double(count)): through AsDouble.
      return a.cnt[g] ? Value::Double(static_cast<double>(a.i64[g]) /
                                      static_cast<double>(a.cnt[g]))
                      : Value::Null();
    case AggSpec::Op::kAvgDouble:
      return a.cnt[g] ? Value::Double(a.f64[g] /
                                      static_cast<double>(a.cnt[g]))
                      : Value::Null();
    case AggSpec::Op::kMin:
    case AggSpec::Op::kMax:
      if (!a.seen[g]) return Value::Null();
      switch (s.payload) {
        case TypeKind::kBoolean:
          return Value::Bool(a.i64[g] != 0);
        case TypeKind::kInteger:
          return Value::Int(a.i64[g]);
        case TypeKind::kDouble:
          return Value::Double(a.f64[g]);
        default:
          return Value::String(a.str[g]);
      }
  }
  return Value::Null();
}

/// Open-addressing group table over dense columnar keys: key columns
/// in insertion order (group id = dense index), per-group hash, and a
/// power-of-two slot array (linear probing, grown at 0.7 load). Hash
/// and equality replicate KeyRow over Value::Hash / variant equality.
struct GroupTable {
  std::vector<ColumnVector> keys;
  std::vector<size_t> hashes;
  std::vector<uint32_t> slots;  // group id + 1; 0 = empty
  size_t mask = 0;

  void Init(const std::vector<TypeKind>& kinds) {
    keys.resize(kinds.size());
    for (size_t i = 0; i < kinds.size(); ++i) keys[i].Reset(kinds[i], 0);
    slots.assign(64, 0);
    mask = 63;
  }

  size_t size() const { return hashes.size(); }

  void Grow() {
    const size_t cap = (mask + 1) * 2;
    slots.assign(cap, 0);
    mask = cap - 1;
    for (size_t g = 0; g < hashes.size(); ++g) {
      size_t pos = hashes[g] & mask;
      while (slots[pos] != 0) pos = (pos + 1) & mask;
      slots[pos] = static_cast<uint32_t>(g) + 1;
    }
  }

  bool KeysEqual(const std::vector<const ColumnVector*>& kc, size_t lane,
                 size_t g) const {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!LaneEquals(*kc[i], lane, keys[i], g)) return false;
    }
    return true;
  }

  /// Finds the group of (key lanes at `lane`), inserting a new dense
  /// group if absent.
  uint32_t Upsert(const std::vector<const ColumnVector*>& kc, size_t lane,
                  size_t hash, bool* inserted) {
    if ((size() + 1) * 10 >= (mask + 1) * 7) Grow();
    size_t pos = hash & mask;
    while (true) {
      const uint32_t id = slots[pos];
      if (id == 0) {
        const uint32_t g = static_cast<uint32_t>(size());
        hashes.push_back(hash);
        for (size_t i = 0; i < keys.size(); ++i) {
          AppendLane(keys[i], *kc[i], lane);
        }
        slots[pos] = g + 1;
        *inserted = true;
        return g;
      }
      const uint32_t g = id - 1;
      if (hashes[g] == hash && KeysEqual(kc, lane, g)) {
        *inserted = false;
        return g;
      }
      pos = (pos + 1) & mask;
    }
  }

  size_t KeyBytes(size_t g) const {
    size_t bytes = 0;
    for (const ColumnVector& k : keys) bytes += k.LaneBytes(g);
    return bytes;
  }
};

/// Per-worker aggregation state: the local group table plus one
/// accumulator block per aggregate call.
struct LocalAgg {
  GroupTable table;
  std::vector<AggAcc> accs;
  size_t state_bytes = 0;  // running estimate charged to the tracker
  size_t charged = 0;
};

/// Per-stage per-worker tallies, merged into OperatorMetrics after the
/// parallel region (workers write only their own slot).
struct StageTally {
  size_t rows_in = 0;
  size_t rows_out = 0;
  size_t bytes_out = 0;
  size_t batches = 0;
  double seconds = 0.0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

/// Executes one stitched chain. Not reusable; one instance per
/// TryVectorized call.
class VectorizedPipeline {
 public:
  VectorizedPipeline(Executor& x, const LogicalOp& root,
                     std::vector<const LogicalOp*> nodes,
                     const LogicalOp* scan, const LogicalOp* boundary)
      : x_(x),
        root_(root),
        nodes_(std::move(nodes)),
        scan_(scan),
        boundary_(boundary) {}

  Result<ExecResult> Run();

 private:
  struct StagePlan {
    const LogicalOp* op = nullptr;
    std::vector<BoundExprPtr> exprs;  // predicates / projections
    size_t metric = 0;                // index into metrics->operators
  };

  /// Compiled per-worker state (scratches are thread-local by
  /// construction: one WorkerCtx per simulated worker).
  struct WorkerCtx {
    ColumnBatch batch;
    std::vector<uint32_t> sel_a, sel_b;
    std::vector<std::vector<std::unique_ptr<VExpr>>> stage_vexprs;
    std::vector<std::unique_ptr<VExpr>> group_vexprs;
    std::vector<std::unique_ptr<VExpr>> agg_vexprs;  // null for COUNT(*)
    std::vector<const ColumnVector*> cols;
    std::vector<const ColumnVector*> keycols;
    std::vector<size_t> hash_buf;
    std::vector<uint32_t> gids;
  };

  class JoinIngest;

  /// Plan compilation: layouts, stage expressions, aggregate specs.
  Status PreparePlan();
  /// Metrics entries for the chain (the boundary subtree's were
  /// already created by its own execution).
  void PrepareMetrics();
  /// Compiles one worker's expression trees (scratches must not be
  /// shared across threads) and sizes its aggregate state.
  void CompileCtx(WorkerCtx& ctx, LocalAgg* agg);
  /// Empties ctx.batch back to zero-lane columns of the source types.
  void ResetIngestBatch(WorkerCtx& ctx);
  /// Runs ctx.batch through the chain — cancel poll and transient
  /// memory charge per batch — then resets it for the next fill.
  Status FlushIngest(WorkerCtx& ctx, std::vector<StageTally>& tally,
                     LocalAgg* agg, SpillableRowBuffer* sink,
                     mem::MemoryTracker* agg_tracker);
  Status RunWorker(size_t wkr, WorkerCtx& ctx, std::vector<StageTally>& tally,
                   LocalAgg* agg, SpillableRowBuffer* sink,
                   mem::MemoryTracker* agg_tracker);
  Status ProcessBatch(WorkerCtx& ctx, std::vector<StageTally>& tally,
                      LocalAgg* agg, SpillableRowBuffer* sink,
                      mem::MemoryTracker* agg_tracker);
  std::optional<size_t> PropagateHashedSlot() const;

  Executor& x_;
  const LogicalOp& root_;
  std::vector<const LogicalOp*> nodes_;  // bottom-up, incl. root
  const LogicalOp* scan_ = nullptr;      // in-chain source, or
  const LogicalOp* boundary_ = nullptr;  // row-engine child
  ExecResult boundary_res_;

  size_t workers_ = 0;
  size_t batch_rows_ = 1024;
  std::vector<TypeKind> source_kinds_;
  std::vector<StagePlan> stages_;  // bottom-up, excluding scan + agg

  const LogicalOp* agg_op_ = nullptr;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<BoundExprPtr> agg_args_;  // null entry = COUNT(*)
  std::vector<AggSpec> specs_;
  std::vector<TypeKind> key_kinds_;
  size_t scan_metric_ = 0;
  size_t agg_partial_metric_ = 0;
  size_t agg_final_metric_ = 0;
};

Status VectorizedPipeline::PreparePlan() {
  workers_ = x_.cluster_.num_workers();
  batch_rows_ = std::max<size_t>(1, x_.opts_.batch_rows);

  const LogicalOp* source = scan_ != nullptr ? scan_ : boundary_;
  source_kinds_.clear();
  for (const SlotInfo& s : source->output) {
    source_kinds_.push_back(s.type.kind());
  }

  // Rewrite every stage's expressions against its child's layout
  // (slot id -> column position), once, shared read-only by workers.
  const LogicalOp* prev = source;
  for (const LogicalOp* node : nodes_) {
    const auto layout = Executor::LayoutOf(*prev);
    if (node->kind == LogicalOp::Kind::kAggregate) {
      agg_op_ = node;
      for (const auto& g : node->group_exprs) {
        RADB_ASSIGN_OR_RETURN(BoundExprPtr e, RewriteToPositions(*g, layout));
        key_kinds_.push_back(e->type.kind());
        group_exprs_.push_back(std::move(e));
      }
      for (const AggCall& a : node->aggs) {
        specs_.push_back(SpecFor(a));
        if (a.is_count_star) {
          agg_args_.push_back(nullptr);
        } else {
          RADB_ASSIGN_OR_RETURN(BoundExprPtr e,
                                RewriteToPositions(*a.arg, layout));
          agg_args_.push_back(std::move(e));
        }
      }
      break;  // the aggregate is always the chain head
    }
    StagePlan stage;
    stage.op = node;
    const auto& exprs = node->kind == LogicalOp::Kind::kFilter
                            ? node->predicates
                            : node->exprs;
    for (const auto& e : exprs) {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, layout));
      stage.exprs.push_back(std::move(r));
    }
    stages_.push_back(std::move(stage));
    prev = node;
  }
  return Status::OK();
}

void VectorizedPipeline::PrepareMetrics() {
  // Metrics entries, child-first like the row engine's post-order
  // execution. All entries are created before the parallel region (a
  // later NewOp would reallocate the vector), so indexes are stable.
  auto& ops = x_.metrics_->operators;
  if (scan_ != nullptr) {
    OperatorMetrics* m = x_.NewOp("Scan(" + scan_->table->name() + ")",
                                  *scan_);
    m->rows_in = scan_->table->num_rows();
    m->vectorized = true;
    scan_metric_ = ops.size() - 1;
  }
  for (StagePlan& stage : stages_) {
    if (stage.op->kind == LogicalOp::Kind::kScan) {
      stage.metric = scan_metric_;
      continue;
    }
    OperatorMetrics* m = x_.NewOp(
        stage.op->kind == LogicalOp::Kind::kFilter ? "Filter" : "Project",
        *stage.op);
    m->vectorized = true;
    stage.metric = ops.size() - 1;
  }
  if (agg_op_ != nullptr) {
    OperatorMetrics* m1 = x_.NewOp("Aggregate(partial)", *agg_op_);
    m1->vectorized = true;
    agg_partial_metric_ = ops.size() - 1;
    OperatorMetrics* m2 = x_.NewOp("Aggregate(final)", *agg_op_);
    m2->vectorized = true;
    agg_final_metric_ = ops.size() - 1;
  }
}

void VectorizedPipeline::CompileCtx(WorkerCtx& ctx, LocalAgg* agg) {
  ctx.stage_vexprs.resize(stages_.size());
  for (size_t si = 0; si < stages_.size(); ++si) {
    for (const auto& e : stages_[si].exprs) {
      ctx.stage_vexprs[si].push_back(CompileVExpr(*e));
    }
  }
  for (const auto& g : group_exprs_) {
    ctx.group_vexprs.push_back(CompileVExpr(*g));
  }
  for (const auto& a : agg_args_) {
    ctx.agg_vexprs.push_back(a == nullptr ? nullptr : CompileVExpr(*a));
  }
  if (agg != nullptr) {
    agg->table.Init(key_kinds_);
    agg->accs.resize(specs_.size());
  }
}

void VectorizedPipeline::ResetIngestBatch(WorkerCtx& ctx) {
  ctx.batch.Clear();
  ctx.batch.columns.resize(source_kinds_.size());
  for (size_t c = 0; c < source_kinds_.size(); ++c) {
    ctx.batch.columns[c].Reset(source_kinds_[c], 0);
  }
}

Status VectorizedPipeline::FlushIngest(WorkerCtx& ctx,
                                       std::vector<StageTally>& tally,
                                       LocalAgg* agg,
                                       SpillableRowBuffer* sink,
                                       mem::MemoryTracker* agg_tracker) {
  if (ctx.batch.num_rows == 0) return Status::OK();
  // Cooperative cancellation once per batch (the vectorized analogue
  // of the row loops' kCancelCheckRows polling).
  if (x_.mem_.cancel != nullptr) RADB_RETURN_NOT_OK(x_.mem_.cancel->Check());
  size_t batch_bytes = 0;
  for (const ColumnVector& c : ctx.batch.columns) {
    batch_bytes += ColBytes(c, nullptr, ctx.batch.num_rows);
  }
  if (x_.mem_.tracker != nullptr) {
    RADB_RETURN_NOT_OK(x_.mem_.tracker->Reserve(batch_bytes));
  }
  const Status s = ProcessBatch(ctx, tally, agg, sink, agg_tracker);
  if (x_.mem_.tracker != nullptr) x_.mem_.tracker->Release(batch_bytes);
  RADB_RETURN_NOT_OK(s);
  ResetIngestBatch(ctx);
  return Status::OK();
}

Status VectorizedPipeline::ProcessBatch(WorkerCtx& ctx,
                                        std::vector<StageTally>& tally,
                                        LocalAgg* agg,
                                        SpillableRowBuffer* sink,
                                        mem::MemoryTracker* agg_tracker) {
  ColumnBatch& batch = ctx.batch;
  const size_t nrows = batch.num_rows;
  ctx.cols.clear();
  for (const ColumnVector& c : batch.columns) ctx.cols.push_back(&c);
  const uint32_t* sel = nullptr;
  size_t live = nrows;

  // Middle stages: filters narrow the selection, projects swap the
  // visible column array for their kernel outputs.
  for (size_t si = 0; si < stages_.size(); ++si) {
    StagePlan& stage = stages_[si];
    if (stage.op->kind == LogicalOp::Kind::kScan) continue;  // source
    StageTally& t = tally[si];
    const auto t0 = Clock::now();
    t.rows_in += live;
    ++t.batches;
    auto& vexprs = ctx.stage_vexprs[si];
    if (stage.op->kind == LogicalOp::Kind::kFilter) {
      for (size_t p = 0; p < vexprs.size() && live > 0; ++p) {
        RADB_ASSIGN_OR_RETURN(
            const ColumnVector* pred,
            EvalV(*vexprs[p], ctx.cols, sel, live, nrows));
        // Narrow into the selection buffer not currently referenced.
        std::vector<uint32_t>& next =
            (!ctx.sel_a.empty() && sel == ctx.sel_a.data()) ? ctx.sel_b
                                                            : ctx.sel_a;
        next.clear();
        const uint8_t* pn = pred->null.data();
        const int64_t* pv = pred->i64.data();
        ForLanes(sel, live, [&](size_t l) {
          if (!pn[l] && pv[l] != 0) next.push_back(static_cast<uint32_t>(l));
        });
        sel = next.data();
        live = next.size();
      }
      t.rows_out += live;
      for (const ColumnVector* c : ctx.cols) {
        t.bytes_out += ColBytes(*c, sel, live);
      }
    } else {  // kProject
      std::vector<const ColumnVector*> out_cols;
      out_cols.reserve(vexprs.size());
      for (auto& ve : vexprs) {
        RADB_ASSIGN_OR_RETURN(const ColumnVector* c,
                              EvalV(*ve, ctx.cols, sel, live, nrows));
        out_cols.push_back(c);
      }
      ctx.cols = std::move(out_cols);
      t.rows_out += live;
      for (const ColumnVector* c : ctx.cols) {
        t.bytes_out += ColBytes(*c, sel, live);
      }
    }
    t.seconds += SecondsSince(t0);
    if (live == 0) return Status::OK();
  }

  if (agg != nullptr) {
    StageTally& t = tally[stages_.size()];
    const auto t0 = Clock::now();
    t.rows_in += live;
    ++t.batches;
    // Group keys -> hashes -> dense group ids for every live lane.
    ctx.keycols.clear();
    for (size_t i = 0; i < group_exprs_.size(); ++i) {
      RADB_ASSIGN_OR_RETURN(
          const ColumnVector* k,
          EvalV(*ctx.group_vexprs[i], ctx.cols, sel, live, nrows));
      ctx.keycols.push_back(k);
    }
    ctx.gids.resize(live);
    if (group_exprs_.empty()) {
      // Scalar aggregate: one keyless group (created lazily so a
      // worker that sees no rows stays empty, like the row engine's
      // per-worker map).
      if (agg->table.size() == 0) {
        agg->table.hashes.push_back(kHashSeed);
        for (size_t k = 0; k < specs_.size(); ++k) {
          AddGroup(specs_[k], agg->accs[k]);
        }
        agg->state_bytes += kGroupStateOverhead;
      }
      std::fill(ctx.gids.begin(), ctx.gids.end(), 0u);
    } else {
      ctx.hash_buf.resize(live);
      for (size_t j = 0; j < live; ++j) {
        const size_t l = sel ? sel[j] : j;
        ctx.hash_buf[j] = KeyHashLanes(ctx.keycols, l);
      }
      for (size_t j = 0; j < live; ++j) {
        const size_t l = sel ? sel[j] : j;
        bool inserted = false;
        const uint32_t g =
            agg->table.Upsert(ctx.keycols, l, ctx.hash_buf[j], &inserted);
        if (inserted) {
          for (size_t k = 0; k < specs_.size(); ++k) {
            AddGroup(specs_[k], agg->accs[k]);
          }
          agg->state_bytes +=
              2 * agg->table.KeyBytes(g) + kGroupStateOverhead;
        }
        ctx.gids[j] = g;
      }
    }
    for (size_t k = 0; k < specs_.size(); ++k) {
      const ColumnVector* arg = nullptr;
      if (agg_args_[k] != nullptr) {
        RADB_ASSIGN_OR_RETURN(
            arg, EvalV(*ctx.agg_vexprs[k], ctx.cols, sel, live, nrows));
      }
      UpdateAgg(specs_[k], agg->accs[k], arg, sel, live, ctx.gids.data());
    }
    if (agg_tracker != nullptr && agg->state_bytes > agg->charged) {
      RADB_RETURN_NOT_OK(agg_tracker->Reserve(agg->state_bytes -
                                              agg->charged));
      agg->charged = agg->state_bytes;
    }
    t.seconds += SecondsSince(t0);
    return Status::OK();
  }

  // Sink: late materialization back into rows.
  StageTally& t = tally[stages_.size()];
  const auto t0 = Clock::now();
  for (size_t j = 0; j < live; ++j) {
    const size_t l = sel ? sel[j] : j;
    Row row;
    row.reserve(ctx.cols.size());
    for (const ColumnVector* c : ctx.cols) row.push_back(c->GetValue(l));
    RADB_RETURN_NOT_OK(sink->Append(std::move(row)));
  }
  t.seconds += SecondsSince(t0);
  return Status::OK();
}

Status VectorizedPipeline::RunWorker(size_t wkr, WorkerCtx& ctx,
                                     std::vector<StageTally>& tally,
                                     LocalAgg* agg, SpillableRowBuffer* sink,
                                     mem::MemoryTracker* agg_tracker) {
  CompileCtx(ctx, agg);

  const CancellationToken* cancel = x_.mem_.cancel;
  mem::MemoryTracker* tracker = x_.mem_.tracker;

  if (scan_ != nullptr) {
    const Table& table = *scan_->table;
    StageTally& st = tally[0];
    for (size_t p = wkr; p < table.num_partitions(); p += workers_) {
      const size_t nsegs = table.NumSegments(p);
      for (size_t seg = 0; seg < nsegs; ++seg) {
        RADB_ASSIGN_OR_RETURN(Table::SegmentPin pin, table.PinSegment(p, seg));
        const RowSet& rows = pin.rows();
        const size_t part_rows = rows.size();
        for (size_t begin = 0; begin < part_rows; begin += batch_rows_) {
          // Cooperative cancellation once per batch (the vectorized
          // analogue of the row loops' kCancelCheckRows polling).
          if (cancel != nullptr) RADB_RETURN_NOT_OK(cancel->Check());
          const size_t count = std::min(batch_rows_, part_rows - begin);
          const auto t0 = Clock::now();
          table.ExtractColumns(rows, scan_->scan_columns, begin, count,
                               &ctx.batch);
          ++st.batches;
          st.rows_out += count;
          size_t batch_bytes = 0;
          for (const ColumnVector& c : ctx.batch.columns) {
            batch_bytes += ColBytes(c, nullptr, count);
          }
          st.bytes_out += batch_bytes;
          st.seconds += SecondsSince(t0);
          if (tracker != nullptr) {
            RADB_RETURN_NOT_OK(tracker->Reserve(batch_bytes));
          }
          const Status s = ProcessBatch(ctx, tally, agg, sink, agg_tracker);
          if (tracker != nullptr) tracker->Release(batch_bytes);
          RADB_RETURN_NOT_OK(s);
        }
      }
    }
    return Status::OK();
  }

  // Boundary source: drain the row-engine child's buffer for this
  // worker, packing rows into batches of batch_rows lanes.
  SpillableRowBuffer& buf = boundary_res_.dist[wkr];
  ResetIngestBatch(ctx);
  auto ingest = [&](const Row& row) -> Status {
    const auto t0 = Clock::now();
    for (size_t c = 0; c < source_kinds_.size(); ++c) {
      ctx.batch.columns[c].AppendValue(row[c]);
    }
    ++ctx.batch.num_rows;
    tally[0].seconds += SecondsSince(t0);
    if (ctx.batch.num_rows >= batch_rows_) {
      return FlushIngest(ctx, tally, agg, sink, agg_tracker);
    }
    return Status::OK();
  };
  if (!buf.has_spilled_rows()) {
    for (Row& row : buf.resident_rows()) {
      RADB_RETURN_NOT_OK(ingest(row));
    }
  } else {
    // Unreachable in practice (the vectorized path never runs under a
    // budget, and nothing spills without one), but stay correct.
    SpillableRowBuffer::Reader reader(&buf);
    while (true) {
      RADB_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
      if (!row.has_value()) break;
      RADB_RETURN_NOT_OK(ingest(*row));
    }
  }
  RADB_RETURN_NOT_OK(FlushIngest(ctx, tally, agg, sink, agg_tracker));
  buf.Clear();
  return Status::OK();
}

/// The Executor::JoinBatchSink a pipeline installs when its boundary
/// is a join: joined pairs land directly in per-worker column lanes,
/// and full batches run through the chain inside the join's worker
/// loop — neither the joined Row nor the join's output distribution
/// is ever materialized. Lane-append time stays attributed to the
/// join (it replaces the row materialization the join no longer
/// does); chain-processing seconds accumulate in the pipeline's
/// tallies and Run() moves them off the join's metric afterwards.
class VectorizedPipeline::JoinIngest : public Executor::JoinBatchSink {
 public:
  JoinIngest(VectorizedPipeline& p, std::vector<WorkerCtx>& ctxs,
             std::vector<std::vector<StageTally>>& tallies,
             std::vector<LocalAgg>* partials, SpillableDist& out,
             mem::MemoryTracker* agg_tracker)
      : p_(p),
        ctxs_(ctxs),
        tallies_(tallies),
        partials_(partials),
        out_(out),
        agg_tracker_(agg_tracker),
        rows_(ctxs.size(), 0),
        bytes_(ctxs.size(), 0) {}

  Status AppendPair(size_t wkr, const Row& left, const Row& right) override {
    ColumnBatch& batch = ctxs_[wkr].batch;
    size_t c = 0;
    for (const Value& v : left) batch.columns[c++].AppendValue(v);
    for (const Value& v : right) batch.columns[c++].AppendValue(v);
    ++batch.num_rows;
    ++rows_[wkr];
    return batch.num_rows >= p_.batch_rows_ ? Flush(wkr) : Status::OK();
  }

  Status AppendRow(size_t wkr, Row joined) override {
    ColumnBatch& batch = ctxs_[wkr].batch;
    for (size_t c = 0; c < joined.size(); ++c) {
      batch.columns[c].AppendValue(joined[c]);
    }
    ++batch.num_rows;
    ++rows_[wkr];
    return batch.num_rows >= p_.batch_rows_ ? Flush(wkr) : Status::OK();
  }

  /// Also called for the per-worker remainders after the join returns.
  Status Flush(size_t wkr) {
    WorkerCtx& ctx = ctxs_[wkr];
    if (ctx.batch.num_rows == 0) return Status::OK();
    for (const ColumnVector& c : ctx.batch.columns) {
      bytes_[wkr] += ColBytes(c, nullptr, ctx.batch.num_rows);
    }
    return p_.FlushIngest(ctx, tallies_[wkr],
                          partials_ != nullptr ? &(*partials_)[wkr] : nullptr,
                          &out_[wkr], agg_tracker_);
  }

  size_t rows(size_t wkr) const { return rows_[wkr]; }
  size_t bytes(size_t wkr) const { return bytes_[wkr]; }

 private:
  VectorizedPipeline& p_;
  std::vector<WorkerCtx>& ctxs_;
  std::vector<std::vector<StageTally>>& tallies_;
  std::vector<LocalAgg>* partials_;  // null for a non-aggregate chain
  SpillableDist& out_;
  mem::MemoryTracker* agg_tracker_;
  std::vector<size_t> rows_, bytes_;  // per-worker streamed totals
};

std::optional<size_t> VectorizedPipeline::PropagateHashedSlot() const {
  std::optional<size_t> hashed;
  if (scan_ != nullptr) {
    const Partitioning& part = scan_->table->partitioning();
    if (part.kind == Partitioning::Kind::kHash &&
        scan_->table->num_partitions() == workers_) {
      for (size_t i = 0; i < scan_->scan_columns.size(); ++i) {
        if (scan_->scan_columns[i] == part.hash_column) {
          hashed = scan_->output[i].slot;
        }
      }
    }
  } else {
    hashed = boundary_res_.hashed_slot;
  }
  for (const LogicalOp* node : nodes_) {
    if (node->kind == LogicalOp::Kind::kScan) continue;  // the source
    if (node->kind == LogicalOp::Kind::kAggregate) return std::nullopt;
    if (node->kind == LogicalOp::Kind::kFilter) continue;  // placement kept
    // kProject: survives only through an identity column reference.
    std::optional<size_t> next;
    if (hashed.has_value()) {
      for (size_t i = 0; i < node->exprs.size(); ++i) {
        const BoundExpr& e = *node->exprs[i];
        if (e.kind == BoundExpr::Kind::kColumnRef && e.slot == *hashed) {
          next = node->output[i].slot;
        }
      }
    }
    hashed = next;
  }
  return hashed;
}

Result<ExecResult> VectorizedPipeline::Run() {
  // A boundary join is consumed in-line: the pipeline installs a
  // JoinIngest sink so the join streams its pairs straight into
  // column batches instead of materializing 10^6-scale joined rows we
  // would only re-read (the dominant cost of the paper's tuple-coded
  // Gram self-join). Any other boundary executes first, exactly as it
  // would below a row operator (its metrics precede the chain's).
  const bool join_inline =
      boundary_ != nullptr && boundary_->kind == LogicalOp::Kind::kJoin;
  if (boundary_ != nullptr && !join_inline) {
    RADB_ASSIGN_OR_RETURN(boundary_res_, x_.ExecuteOp(*boundary_));
  }
  RADB_RETURN_NOT_OK(PreparePlan());

  const size_t w = workers_;

  // Unspillable aggregate state charges a child tracker, like the row
  // engine's "Aggregate state" (released wholesale on scope exit).
  std::optional<mem::MemoryTracker> agg_tracker;
  if (agg_op_ != nullptr && x_.mem_.tracker != nullptr) {
    agg_tracker.emplace("Vectorized aggregate state", x_.mem_.tracker);
  }

  // One tally slot per stage plus one for the sink/aggregate-update.
  const size_t tally_slots = stages_.size() + 1;
  std::vector<std::vector<StageTally>> tallies(
      w, std::vector<StageTally>(tally_slots));
  std::vector<WorkerCtx> ctxs(w);
  std::vector<LocalAgg> partials(agg_op_ != nullptr ? w : 0);
  SpillableDist out = x_.NewDist(w);

  if (join_inline) {
    for (size_t wkr = 0; wkr < w; ++wkr) {
      CompileCtx(ctxs[wkr], agg_op_ != nullptr ? &partials[wkr] : nullptr);
      ResetIngestBatch(ctxs[wkr]);
    }
    JoinIngest ingest(*this, ctxs, tallies,
                      agg_op_ != nullptr ? &partials : nullptr, out,
                      agg_tracker.has_value() ? &*agg_tracker : nullptr);
    // Save/restore: a pipeline nested deeper in the join's subtree
    // may install its own sink for its own boundary join.
    Executor::JoinBatchSink* prev_sink = x_.join_sink_;
    const LogicalOp* prev_op = x_.join_sink_op_;
    x_.join_sink_ = &ingest;
    x_.join_sink_op_ = boundary_;
    Result<ExecResult> joined = x_.ExecuteOp(*boundary_);
    x_.join_sink_ = prev_sink;
    x_.join_sink_op_ = prev_op;
    RADB_ASSIGN_OR_RETURN(boundary_res_, std::move(joined));
    // Chain-processing seconds recorded inside the join's timed
    // worker loops belong to the pipeline's stages, not the join;
    // move them off its metric (lane appends stay — they replace the
    // row materialization the join no longer pays for). Then flush
    // the per-worker remainders, outside the join's clock, and credit
    // the join with the output it streamed.
    if (const std::vector<size_t>* ids = x_.MetricsForNode(boundary_)) {
      OperatorMetrics& mj = x_.metrics_->operators[ids->back()];
      for (size_t wkr = 0; wkr < w; ++wkr) {
        double chain = 0.0;
        for (const StageTally& t : tallies[wkr]) chain += t.seconds;
        mj.worker_seconds[wkr] =
            std::max(0.0, mj.worker_seconds[wkr] - chain);
      }
      for (size_t wkr = 0; wkr < w; ++wkr) {
        RADB_RETURN_NOT_OK(ingest.Flush(wkr));
        mj.rows_out += ingest.rows(wkr);
        mj.bytes_out += ingest.bytes(wkr);
      }
    } else {
      for (size_t wkr = 0; wkr < w; ++wkr) {
        RADB_RETURN_NOT_OK(ingest.Flush(wkr));
      }
    }
    PrepareMetrics();
  } else {
    PrepareMetrics();
    RADB_RETURN_NOT_OK(x_.ForEachWorker(w, [&](size_t wkr) -> Status {
      return RunWorker(wkr, ctxs[wkr], tallies[wkr],
                       agg_op_ != nullptr ? &partials[wkr] : nullptr,
                       &out[wkr],
                       agg_tracker.has_value() ? &*agg_tracker : nullptr);
    }));
  }

  // Fold per-worker tallies into the shared metrics entries.
  auto& ops = x_.metrics_->operators;
  for (size_t si = 0; si < stages_.size(); ++si) {
    const StagePlan& stage = stages_[si];
    const bool is_scan = stage.op->kind == LogicalOp::Kind::kScan;
    OperatorMetrics& m =
        ops[is_scan ? scan_metric_ : stage.metric];
    for (size_t wkr = 0; wkr < w; ++wkr) {
      const StageTally& t = tallies[wkr][si];
      if (!is_scan) m.rows_in += t.rows_in;
      m.rows_out += t.rows_out;
      m.bytes_out += t.bytes_out;
      m.batches += t.batches;
      m.worker_seconds[wkr] += t.seconds;
    }
  }
  if (agg_op_ == nullptr) {
    // The sink (late materialization) rides on the chain head's
    // metrics entry — the root is always a Filter/Project here.
    OperatorMetrics& mhead = ops[stages_.back().metric];
    for (size_t wkr = 0; wkr < w; ++wkr) {
      mhead.worker_seconds[wkr] += tallies[wkr][stages_.size()].seconds;
    }
    ExecResult result{std::move(out), PropagateHashedSlot()};
    return result;
  }

  // ---- Aggregate phases 2 + 3: src-major merge, then emission ----
  {
    OperatorMetrics& m1 = ops[agg_partial_metric_];
    size_t partial_groups = 0;
    for (size_t wkr = 0; wkr < w; ++wkr) {
      partial_groups += partials[wkr].table.size();
      const StageTally& t = tallies[wkr][stages_.size()];
      m1.rows_in += t.rows_in;
      m1.batches += t.batches;
      m1.worker_seconds[wkr] += t.seconds;
    }
    m1.rows_out = partial_groups;
    OperatorMetrics& m2 = ops[agg_final_metric_];
    m2.rows_in = partial_groups;
    m2.batches = m1.batches;
  }

  std::vector<LocalAgg> finals(w);
  std::vector<size_t> shuffle_bytes(w, 0), shuffle_rows(w, 0);
  std::vector<double> merge_secs(w, 0.0);
  RADB_RETURN_NOT_OK(x_.ForEachWorker(w, [&](size_t dst) -> Status {
    const auto t0 = Clock::now();
    LocalAgg& fin = finals[dst];
    fin.table.Init(key_kinds_);
    fin.accs.resize(specs_.size());
    std::vector<const ColumnVector*> kc(key_kinds_.size());
    for (size_t src = 0; src < w; ++src) {
      const LocalAgg& pa = partials[src];
      for (size_t i = 0; i < key_kinds_.size(); ++i) {
        kc[i] = &pa.table.keys[i];
      }
      for (size_t g = 0; g < pa.table.size(); ++g) {
        const size_t owner =
            group_exprs_.empty()
                ? 0
                : x_.cluster_.WorkerForHash(pa.table.hashes[g]);
        if (owner != dst) continue;
        if (dst != src) {
          size_t state_bytes = pa.table.KeyBytes(g);
          for (size_t k = 0; k < specs_.size(); ++k) {
            state_bytes += AccStateBytes(specs_[k], pa.accs[k], g);
          }
          shuffle_bytes[dst] += state_bytes;
          ++shuffle_rows[dst];
        }
        bool inserted = false;
        const uint32_t fg =
            fin.table.Upsert(kc, g, pa.table.hashes[g], &inserted);
        if (inserted) {
          for (size_t k = 0; k < specs_.size(); ++k) {
            AddGroup(specs_[k], fin.accs[k]);
          }
        }
        for (size_t k = 0; k < specs_.size(); ++k) {
          MergeAgg(specs_[k], fin.accs[k], fg, pa.accs[k], g);
        }
      }
    }
    merge_secs[dst] += SecondsSince(t0);
    return Status::OK();
  }));
  partials.clear();

  // Emission in dense (insertion) order. The row engine emits in its
  // hash-map iteration order — a different but equally valid order;
  // results are compared as multisets (ORDER BY pins any order the
  // tests rely on).
  std::vector<double> emit_secs(w, 0.0);
  RADB_RETURN_NOT_OK(x_.ForEachWorker(w, [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    LocalAgg& fin = finals[wkr];
    for (size_t g = 0; g < fin.table.size(); ++g) {
      Row row;
      row.reserve(key_kinds_.size() + specs_.size());
      for (const ColumnVector& k : fin.table.keys) {
        row.push_back(k.GetValue(g));
      }
      for (size_t k = 0; k < specs_.size(); ++k) {
        RADB_ASSIGN_OR_RETURN(Value v,
                              FinalizeAgg(specs_[k], fin.accs[k], g));
        row.push_back(std::move(v));
      }
      RADB_RETURN_NOT_OK(out[wkr].Append(std::move(row)));
    }
    emit_secs[wkr] += SecondsSince(t0);
    return Status::OK();
  }));

  // A scalar aggregate over zero rows still yields one row (COUNT()=0,
  // SUM()=NULL) — finalize fresh aggregators exactly like the row
  // engine.
  if (group_exprs_.empty() && SpillDistRowCount(out) == 0) {
    Row row;
    for (const AggCall& a : agg_op_->aggs) {
      auto aggr = a.fn->make();
      RADB_ASSIGN_OR_RETURN(Value v, aggr->Finalize());
      row.push_back(std::move(v));
    }
    RADB_RETURN_NOT_OK(out[0].Append(std::move(row)));
  }

  OperatorMetrics& m2 = ops[agg_final_metric_];
  for (size_t wkr = 0; wkr < w; ++wkr) {
    m2.bytes_shuffled += shuffle_bytes[wkr];
    m2.rows_shuffled += shuffle_rows[wkr];
    m2.worker_seconds[wkr] += merge_secs[wkr] + emit_secs[wkr];
  }
  m2.rows_out = SpillDistRowCount(out);
  m2.bytes_out = SpillDistByteSize(out);

  return ExecResult{std::move(out), std::nullopt};
}

// ---------------------------------------------------------------------------
// Chain stitching
// ---------------------------------------------------------------------------

Result<std::optional<ExecResult>> Executor::TryVectorized(
    const LogicalOp& op) {
  // Only Filter/Project/Aggregate head a chain: a bare capable Scan is
  // left to the row engine (no operator above it to amortize the
  // columnar transposition).
  if (!op.batch_capable) return std::optional<ExecResult>();
  if (op.kind != LogicalOp::Kind::kFilter &&
      op.kind != LogicalOp::Kind::kProject &&
      op.kind != LogicalOp::Kind::kAggregate) {
    return std::optional<ExecResult>();
  }

  std::vector<const LogicalOp*> nodes;  // collected top-down
  nodes.push_back(&op);
  const LogicalOp* scan = nullptr;
  const LogicalOp* boundary = nullptr;
  const LogicalOp* cur = &op;
  while (true) {
    const LogicalOp* child = cur->children[0].get();
    if (child->batch_capable && child->kind == LogicalOp::Kind::kScan) {
      // An index-annotated scan stays on the row engine: its B+ tree
      // probe reads a tiny fraction of the table, which beats columnar
      // full-scan throughput whenever the optimizer chose it.
      if (!child->index_name.empty() && !child->index_lo.empty()) {
        const IndexDef* idx = child->table->FindIndex(child->index_name);
        if (idx != nullptr && idx->usable()) {
          boundary = child;
          break;
        }
      }
      scan = child;
      break;
    }
    if (child->batch_capable && (child->kind == LogicalOp::Kind::kFilter ||
                                 child->kind == LogicalOp::Kind::kProject)) {
      nodes.push_back(child);
      cur = child;
      continue;
    }
    boundary = child;  // row engine executes this subtree
    break;
  }
  std::reverse(nodes.begin(), nodes.end());  // bottom-up

  // The in-chain scan participates as stage 0 (so its metrics entry
  // exists); it carries no expressions.
  if (scan != nullptr) nodes.insert(nodes.begin(), scan);

  VectorizedPipeline pipeline(*this, op, std::move(nodes), scan, boundary);
  RADB_ASSIGN_OR_RETURN(ExecResult result, pipeline.Run());
  return std::optional<ExecResult>(std::move(result));
}

}  // namespace radb
