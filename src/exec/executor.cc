#include "exec/executor.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/expr_eval.h"
#include "exec/row_key.h"

namespace radb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// KeyRow / KeyRowHash / HashRow / KeyHasNull live in exec/row_key.h,
// shared with the differential reference evaluator.

Result<KeyRow> EvalKey(const std::vector<BoundExprPtr>& key_exprs,
                       const Row& row) {
  Row values;
  values.reserve(key_exprs.size());
  for (const auto& e : key_exprs) {
    RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
    values.push_back(std::move(v));
  }
  return KeyRow::Of(std::move(values));
}

/// The slot a single equi-key expression reads, when the expression is
/// a bare column reference (a precondition for shuffle elision).
std::optional<size_t> SingleColumnKeySlot(
    const std::vector<std::pair<BoundExprPtr, BoundExprPtr>>& keys,
    bool left_side) {
  if (keys.size() != 1) return std::nullopt;
  const BoundExpr& e = left_side ? *keys[0].first : *keys[0].second;
  if (e.kind != BoundExpr::Kind::kColumnRef) return std::nullopt;
  return e.slot;
}

/// Approximate bookkeeping overhead of one hash-table entry (node,
/// bucket slot, key copy headers) charged on top of the row payload.
constexpr size_t kHashEntryOverhead = 64;
/// Same for one aggregation group / DISTINCT set entry.
constexpr size_t kGroupStateOverhead = 128;
/// Grace-hash partition fanout: a build side that misses the budget
/// is split 16 ways, so each sub-build needs ~1/16 of the memory.
constexpr size_t kGraceFanout = 16;

/// Secondary hash for Grace partitioning. Must be independent of the
/// primary bucket hash (all rows on a worker already share
/// hash % num_workers), so the primary hash is remixed and the top
/// bits select the partition.
size_t GracePartition(size_t hash) {
  return (hash * 0x9e3779b97f4a7c15ULL) >> 60;  // top 4 bits: 0..15
}

/// Rows between cooperative cancellation checks in streaming loops.
/// Small enough that a cancel lands within microseconds, large enough
/// that the atomic load vanishes against per-row evaluation cost.
constexpr size_t kCancelCheckRows = 256;

/// Streams every row out of `buf` (exact append order) into `fn`,
/// then clears the buffer. Rows that never spilled are moved out of
/// the resident tail — the no-budget fast path has no serialization
/// or copy cost. Polls the query's cancellation token (carried by the
/// buffer's MemoryContext) every kCancelCheckRows rows.
template <typename Fn>
Status ConsumeRows(SpillableRowBuffer& buf, Fn&& fn) {
  const CancellationToken* cancel = buf.context().cancel;
  size_t since_check = 0;
  const auto maybe_check = [&]() -> Status {
    if (cancel != nullptr && ++since_check >= kCancelCheckRows) {
      since_check = 0;
      return cancel->Check();
    }
    return Status::OK();
  };
  if (!buf.has_spilled_rows()) {
    for (Row& row : buf.resident_rows()) {
      RADB_RETURN_NOT_OK(maybe_check());
      RADB_RETURN_NOT_OK(fn(std::move(row)));
    }
  } else {
    SpillableRowBuffer::Reader reader(&buf);
    while (true) {
      RADB_RETURN_NOT_OK(maybe_check());
      RADB_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
      if (!row.has_value()) break;
      RADB_RETURN_NOT_OK(fn(std::move(*row)));
    }
  }
  buf.Clear();
  return Status::OK();
}

/// Rolls a consumed buffer's lifetime-cumulative spill totals into an
/// operator's metrics.
void CollectSpill(OperatorMetrics* m, const SpillableRowBuffer& buf) {
  m->bytes_spilled += buf.spill_bytes();
  m->spill_runs += buf.spill_runs();
}

void CollectSpill(OperatorMetrics* m, const SpillableDist& d) {
  for (const SpillableRowBuffer& b : d) CollectSpill(m, b);
}

}  // namespace

size_t DistByteSize(const Dist& d) {
  size_t s = 0;
  for (const RowSet& p : d) {
    for (const Row& r : p) s += RowByteSize(r);
  }
  return s;
}

size_t DistRowCount(const Dist& d) {
  size_t s = 0;
  for (const RowSet& p : d) s += p.size();
  return s;
}

size_t SpillDistByteSize(const SpillableDist& d) {
  size_t s = 0;
  for (const SpillableRowBuffer& b : d) s += b.byte_size();
  return s;
}

size_t SpillDistRowCount(const SpillableDist& d) {
  size_t s = 0;
  for (const SpillableRowBuffer& b : d) s += b.num_rows();
  return s;
}

namespace {

/// Spills the resident tails of the given dists to disk when fewer
/// than `needed` bytes of the budget remain free. Operators call this
/// right before hard-reserving unspillable state while their
/// (spillable) inputs are still charged: without it, a budget fully
/// pinned by buffered input rows would fail the query even though
/// those rows could simply move to disk and be replayed. The decision
/// depends only on byte totals, never on thread timing, so it is
/// deterministic for a given budget. Callers must not hold a live
/// Reader on any of the buffers.
Status MakeHeadroom(const MemoryContext& mem, size_t needed,
                    const std::vector<SpillableDist*>& dists) {
  if (!mem.has_budget()) return Status::OK();
  if (mem.tracker->remaining() >= needed) return Status::OK();
  for (SpillableDist* d : dists) {
    for (SpillableRowBuffer& buf : *d) {
      RADB_RETURN_NOT_OK(buf.SpillToDisk());
    }
  }
  return Status::OK();
}

}  // namespace

SpillableDist Executor::NewDist(size_t n) const {
  SpillableDist d;
  d.reserve(n);
  for (size_t i = 0; i < n; ++i) d.emplace_back(mem_);
  return d;
}

std::map<size_t, size_t> Executor::LayoutOf(const LogicalOp& op) {
  std::map<size_t, size_t> layout;
  for (size_t i = 0; i < op.output.size(); ++i) {
    layout[op.output[i].slot] = i;
  }
  return layout;
}

OperatorMetrics* Executor::NewOp(std::string name, const LogicalOp& op) {
  metrics_->operators.push_back(OperatorMetrics{});
  OperatorMetrics* m = &metrics_->operators.back();
  m->name = std::move(name);
  m->estimated_rows = op.est_rows;
  m->worker_seconds.assign(cluster_.num_workers(), 0.0);
  node_metrics_[&op].push_back(metrics_->operators.size() - 1);
  return m;
}

void Executor::PublishObservability() {
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs_.metrics;
    size_t rows_out = 0, bytes_out = 0, rows_shuffled = 0, bytes_shuffled = 0;
    size_t bytes_spilled = 0;
    for (const OperatorMetrics& op : metrics_->operators) {
      rows_out += op.rows_out;
      bytes_out += op.bytes_out;
      rows_shuffled += op.rows_shuffled;
      bytes_shuffled += op.bytes_shuffled;
      bytes_spilled += op.bytes_spilled;
      reg.Observe("exec.operator_seconds", op.TotalSeconds());
      reg.Observe("exec.operator_skew", op.Skew());
    }
    reg.Add("exec.operators", metrics_->operators.size());
    reg.Add("exec.rows_out", rows_out);
    reg.Add("exec.bytes_out", bytes_out);
    reg.Add("exec.rows_shuffled", rows_shuffled);
    reg.Add("exec.bytes_shuffled", bytes_shuffled);
    if (bytes_spilled > 0) reg.Add("exec.bytes_spilled", bytes_spilled);
    reg.Set("exec.workers", static_cast<double>(cluster_.num_workers()));
  }
}

Status Executor::ForEachWorker(size_t n,
                               const std::function<Status(size_t)>& body) {
  if (pool_ == nullptr || pool_->num_threads() <= 1 || n <= 1) {
    for (size_t w = 0; w < n; ++w) {
      RADB_RETURN_NOT_OK(body(w));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(n, Status::OK());
  pool_->ParallelFor(n, [&](size_t w) { statuses[w] = body(w); });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

Result<Dist> Executor::Execute(const LogicalOp& op) {
  // All pool regions started under this call — including nested LA
  // kernels reached through GlobalPool() — carry the query id as
  // their task tag, so the pool's fair scheduler can interleave this
  // query with concurrently running ones.
  ScopedTaskTag tag(mem_.query_id);
  RADB_ASSIGN_OR_RETURN(ExecResult out, ExecuteOp(op));
  PublishObservability();
  // The final result set is always materialized (it leaves the
  // governed execution pipeline here); draining releases the buffers'
  // budget charges.
  Dist dist(out.dist.size());
  for (size_t w = 0; w < out.dist.size(); ++w) {
    RADB_ASSIGN_OR_RETURN(dist[w], out.dist[w].Drain());
  }
  return dist;
}

Result<ExecResult> Executor::ExecuteOp(const LogicalOp& op) {
  // Operator-granular cancellation: a fired token stops the plan
  // before the next operator starts; row loops inside operators poll
  // at kCancelCheckRows granularity via ConsumeRows.
  if (mem_.cancel != nullptr) RADB_RETURN_NOT_OK(mem_.cancel->Check());
  if (obs_.tracer == nullptr) return DispatchOp(op);

  // One span per plan node; children nest naturally because they
  // execute inside this call. The physical name ("HashJoin(bcast
  // right)") is known only after dispatch, so it is patched in then.
  obs::ScopedSpan span(obs_.tracer, KindName(op.kind), "exec");
  RADB_ASSIGN_OR_RETURN(ExecResult result, DispatchOp(op));
  if (const std::vector<size_t>* ids = MetricsForNode(&op)) {
    const OperatorMetrics& last = metrics_->operators[ids->back()];
    span.SetName(last.name);
    span.AddArg("rows_out", std::to_string(last.rows_out));
    if (last.bytes_shuffled > 0) {
      span.AddArg("bytes_shuffled", std::to_string(last.bytes_shuffled));
    }
    if (last.bytes_spilled > 0) {
      span.AddArg("bytes_spilled", std::to_string(last.bytes_spilled));
    }
    // Per-worker lanes: the accumulated per-worker seconds of every
    // metrics entry of this node, rendered as end-aligned complete
    // spans on tid 1+worker so chrome://tracing shows one row per
    // simulated worker under the pipeline row.
    const double end = obs_.tracer->NowSeconds();
    for (size_t id : *ids) {
      const OperatorMetrics& m = metrics_->operators[id];
      for (size_t w = 0; w < m.worker_seconds.size(); ++w) {
        const double dur = m.worker_seconds[w];
        if (dur <= 0.0) continue;
        obs_.tracer->AddCompleteSpan(m.name + " w" + std::to_string(w),
                                     "worker", span.id(), end - dur, dur,
                                     static_cast<int>(w) + 1);
      }
    }
  }
  return result;
}

Result<ExecResult> Executor::DispatchOp(const LogicalOp& op) {
  // Columnar fast path: vectorize the maximal batch-capable chain
  // rooted here. Never under a memory budget — columnar operator
  // state cannot spill, and the budgeted row path can.
  if (opts_.enable_vectorized && !mem_.has_budget()) {
    RADB_ASSIGN_OR_RETURN(std::optional<ExecResult> v, TryVectorized(op));
    if (v.has_value()) return std::move(*v);
  }
  switch (op.kind) {
    case LogicalOp::Kind::kScan:
      return ExecuteScan(op);
    case LogicalOp::Kind::kFilter:
      return ExecuteFilter(op);
    case LogicalOp::Kind::kProject:
      return ExecuteProject(op);
    case LogicalOp::Kind::kJoin:
      return ExecuteJoin(op);
    case LogicalOp::Kind::kAggregate:
      return ExecuteAggregate(op);
    case LogicalOp::Kind::kDistinct:
      return ExecuteDistinct(op);
    case LogicalOp::Kind::kSort:
      return ExecuteSort(op);
    case LogicalOp::Kind::kLimit:
      return ExecuteLimit(op);
  }
  return Status::Internal("unknown logical operator");
}

namespace {

/// The physical-placement property of a base-table scan: a table
/// hash-partitioned on an emitted column, with one partition per
/// worker, is already placed the way a join shuffle would place it.
std::optional<size_t> ScanHashedSlot(const LogicalOp& op, size_t workers) {
  const Partitioning& part = op.table->partitioning();
  if (part.kind == Partitioning::Kind::kHash &&
      op.table->num_partitions() == workers) {
    for (size_t i = 0; i < op.scan_columns.size(); ++i) {
      if (op.scan_columns[i] == part.hash_column) return op.output[i].slot;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<ExecResult> Executor::ExecuteScan(const LogicalOp& op) {
  if (!op.index_name.empty() && !op.index_lo.empty()) {
    // Stale annotations (index dropped or degraded after planning)
    // fall through to the full scan, which is always correct.
    const IndexDef* idx = op.table->FindIndex(op.index_name);
    if (idx != nullptr && idx->usable()) {
      return ExecuteIndexScan(op, *idx->tree);
    }
  }
  OperatorMetrics* m = NewOp("Scan(" + op.table->name() + ")", op);
  m->rows_in = op.table->num_rows();
  const size_t w = cluster_.num_workers();
  SpillableDist out = NewDist(w);
  // Table partitions map onto workers round-robin when the counts
  // differ; each worker walks its own partitions segment by segment,
  // pinning one at a time (checkpointed segments fault in through the
  // buffer pool, so the working set stays bounded even for tables far
  // larger than RAM). The pinned base segments are not charged against
  // the query budget — only the scanned-out copies are, and they spill
  // under pressure.
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t target) -> Status {
    const auto t0 = Clock::now();
    SpillableRowBuffer& dst = out[target];
    size_t since_check = 0;
    for (size_t p = target; p < op.table->num_partitions(); p += w) {
      const size_t nsegs = op.table->NumSegments(p);
      for (size_t seg = 0; seg < nsegs; ++seg) {
        RADB_ASSIGN_OR_RETURN(Table::SegmentPin pin,
                              op.table->PinSegment(p, seg));
        for (const Row& row : pin.rows()) {
          if (mem_.cancel != nullptr && ++since_check >= kCancelCheckRows) {
            since_check = 0;
            RADB_RETURN_NOT_OK(mem_.cancel->Check());
          }
          Row projected;
          projected.reserve(op.scan_columns.size());
          for (size_t col : op.scan_columns) projected.push_back(row[col]);
          RADB_RETURN_NOT_OK(dst.Append(std::move(projected)));
        }
      }
    }
    m->worker_seconds[target] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), ScanHashedSlot(op, w)};
}

Result<ExecResult> Executor::ExecuteIndexScan(const LogicalOp& op,
                                              const storage::BTreeIndex& tree) {
  OperatorMetrics* m =
      NewOp("IndexScan(" + op.table->name() + "." + op.index_name + ")", op);
  const size_t w = cluster_.num_workers();

  std::array<int64_t, storage::BTreeIndex::kMaxKeyColumns> lo, hi;
  lo.fill(INT64_MIN);
  hi.fill(INT64_MAX);
  for (size_t k = 0; k < tree.key_len() && k < op.index_lo.size(); ++k) {
    lo[k] = op.index_lo[k];
    hi[k] = op.index_hi[k];
  }
  std::vector<storage::Rid> rids;
  tree.Range(lo.data(), hi.data(), &rids);
  m->rows_in = rids.size();

  // Rows stay on the worker owning their partition (same round-robin
  // map as the full scan); each worker emits in (partition, ordinal)
  // order, i.e. the relative order the full scan would use.
  std::vector<std::vector<storage::Rid>> per_worker(w);
  for (const storage::Rid& rid : rids) {
    per_worker[rid.partition % w].push_back(rid);
  }
  SpillableDist out = NewDist(w);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t target) -> Status {
    const auto t0 = Clock::now();
    std::vector<storage::Rid>& mine = per_worker[target];
    std::sort(mine.begin(), mine.end(),
              [](const storage::Rid& a, const storage::Rid& b) {
                return a.partition != b.partition
                           ? a.partition < b.partition
                           : a.ordinal < b.ordinal;
              });
    SpillableRowBuffer& dst = out[target];
    size_t since_check = 0;
    // Sorted rids visit each segment once; keep the current one pinned.
    Table::SegmentPin pin;
    uint32_t pin_part = 0, pin_seg = 0;
    for (const storage::Rid& rid : mine) {
      if (mem_.cancel != nullptr && ++since_check >= kCancelCheckRows) {
        since_check = 0;
        RADB_RETURN_NOT_OK(mem_.cancel->Check());
      }
      RADB_ASSIGN_OR_RETURN(Table::RowLocation loc,
                            op.table->LocateRow(rid.partition, rid.ordinal));
      if (!pin || pin_part != rid.partition || pin_seg != loc.segment) {
        RADB_ASSIGN_OR_RETURN(pin,
                              op.table->PinSegment(rid.partition, loc.segment));
        pin_part = rid.partition;
        pin_seg = loc.segment;
      }
      const Row& row = pin.rows()[loc.offset];
      Row projected;
      projected.reserve(op.scan_columns.size());
      for (size_t col : op.scan_columns) projected.push_back(row[col]);
      RADB_RETURN_NOT_OK(dst.Append(std::move(projected)));
    }
    m->worker_seconds[target] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), ScanHashedSlot(op, w)};
}

Result<ExecResult> Executor::ExecuteFilter(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  OperatorMetrics* m = NewOp("Filter", op);
  m->rows_in = SpillDistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<BoundExprPtr> preds;
  for (const auto& p : op.predicates) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rewritten,
                          RewriteToPositions(*p, layout));
    preds.push_back(std::move(rewritten));
  }
  SpillableDist out = NewDist(in.size());
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    RADB_RETURN_NOT_OK(ConsumeRows(in[wkr], [&](Row row) -> Status {
      for (const auto& p : preds) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, row));
        if (v.is_null() || !v.bool_value()) return Status::OK();
      }
      return out[wkr].Append(std::move(row));
    }));
    m->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  // Filtering never moves rows, so placement survives.
  return ExecResult{std::move(out), child.hashed_slot};
}

Result<ExecResult> Executor::ExecuteProject(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  OperatorMetrics* m = NewOp("Project", op);
  m->rows_in = SpillDistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<BoundExprPtr> exprs;
  for (const auto& e : op.exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rewritten,
                          RewriteToPositions(*e, layout));
    exprs.push_back(std::move(rewritten));
  }
  SpillableDist out = NewDist(in.size());
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    RADB_RETURN_NOT_OK(ConsumeRows(in[wkr], [&](Row row) -> Status {
      Row projected;
      projected.reserve(exprs.size());
      for (const auto& e : exprs) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
        projected.push_back(std::move(v));
      }
      return out[wkr].Append(std::move(projected));
    }));
    m->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  // Placement survives when the hashed column passes through as a
  // bare reference; its slot id changes to the projection's output
  // slot only if the expression is an identity reference.
  std::optional<size_t> hashed;
  if (child.hashed_slot) {
    for (size_t i = 0; i < op.exprs.size(); ++i) {
      const BoundExpr& e = *op.exprs[i];
      if (e.kind == BoundExpr::Kind::kColumnRef &&
          e.slot == *child.hashed_slot) {
        hashed = op.output[i].slot;
      }
    }
  }
  return ExecResult{std::move(out), hashed};
}

Result<std::optional<ExecResult>> Executor::TryIndexJoin(const LogicalOp& op) {
  const LogicalOp& inner = *op.children[1];
  if (inner.kind != LogicalOp::Kind::kScan || inner.index_name.empty()) {
    return std::optional<ExecResult>();
  }
  const IndexDef* idx = inner.table->FindIndex(inner.index_name);
  if (idx == nullptr || !idx->usable()) return std::optional<ExecResult>();
  const storage::BTreeIndex& tree = *idx->tree;

  // Map index key positions to the outer-side expressions probing
  // them: equi pair (l, r) probes key position k when r is a bare
  // column reference to the scan column idx->columns[k]. Pairs that
  // probe nothing are re-checked per candidate row below.
  std::vector<int> probe_for_key(tree.key_len(), -1);
  for (size_t e = 0; e < op.equi_keys.size(); ++e) {
    const BoundExpr& r = *op.equi_keys[e].second;
    if (r.kind != BoundExpr::Kind::kColumnRef) continue;
    size_t col = 0;
    bool found = false;
    for (size_t i = 0; i < inner.output.size(); ++i) {
      if (inner.output[i].slot == r.slot) {
        col = inner.scan_columns[i];
        found = true;
        break;
      }
    }
    if (!found) continue;
    for (size_t k = 0; k < tree.key_len(); ++k) {
      if (idx->columns[k] == col && probe_for_key[k] < 0) {
        probe_for_key[k] = static_cast<int>(e);
      }
    }
  }
  // The composite prefix must start with a probed column, and an
  // unprobed position makes every later one unusable.
  if (probe_for_key[0] < 0) return std::optional<ExecResult>();
  size_t probed_len = 0;
  while (probed_len < probe_for_key.size() && probe_for_key[probed_len] >= 0) {
    ++probed_len;
  }

  RADB_ASSIGN_OR_RETURN(ExecResult outer_in, ExecuteOp(*op.children[0]));
  SpillableDist& outer = outer_in.dist;
  const size_t w = cluster_.num_workers();
  const auto outer_layout = LayoutOf(*op.children[0]);

  OperatorMetrics* m = NewOp(
      "IndexJoin(" + inner.table->name() + "." + inner.index_name + ")", op);
  m->rows_in = SpillDistRowCount(outer);

  // Combined layout (outer columns then inner) for residual predicates
  // and a fused projection, exactly as in the hash join.
  std::map<size_t, size_t> combined;
  for (size_t i = 0; i < op.children[0]->output.size(); ++i) {
    combined[op.children[0]->output[i].slot] = i;
  }
  const size_t outer_arity = op.children[0]->output.size();
  for (size_t i = 0; i < inner.output.size(); ++i) {
    combined[inner.output[i].slot] = outer_arity + i;
  }
  std::vector<BoundExprPtr> residual;
  for (const auto& p : op.residual) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*p, combined));
    residual.push_back(std::move(r));
  }
  std::vector<BoundExprPtr> fused;
  for (const auto& e : op.exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, combined));
    fused.push_back(std::move(r));
  }
  // Outer key expressions, rewritten to outer row positions. Unprobed
  // equi pairs are verified against the fetched inner row: its key
  // expression reads the concatenated row like a residual.
  std::vector<BoundExprPtr> outer_keys;
  for (const auto& [l, r] : op.equi_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr lk,
                          RewriteToPositions(*l, outer_layout));
    outer_keys.push_back(std::move(lk));
  }
  std::vector<BoundExprPtr> inner_keys;
  for (const auto& [l, r] : op.equi_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rk, RewriteToPositions(*r, combined));
    inner_keys.push_back(std::move(rk));
  }
  std::vector<size_t> recheck;
  for (size_t e = 0; e < op.equi_keys.size(); ++e) {
    bool probed = false;
    for (size_t k = 0; k < probed_len; ++k) {
      if (probe_for_key[k] == static_cast<int>(e)) probed = true;
    }
    if (!probed) recheck.push_back(e);
  }

  SpillableDist out = NewDist(w);
  JoinBatchSink* sink = (join_sink_op_ == &op) ? join_sink_ : nullptr;

  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    size_t since_check = 0;
    std::array<int64_t, storage::BTreeIndex::kMaxKeyColumns> lo, hi;
    std::vector<storage::Rid> rids;
    RADB_RETURN_NOT_OK(ConsumeRows(outer[wkr], [&](Row o) -> Status {
      lo.fill(INT64_MIN);
      hi.fill(INT64_MAX);
      for (size_t k = 0; k < probed_len; ++k) {
        RADB_ASSIGN_OR_RETURN(
            Value v, EvalExpr(*outer_keys[probe_for_key[k]], o));
        // A NULL or non-INTEGER probe value can never equal the
        // indexed column's INTEGER values (Value equality is strict
        // about kinds, matching the hash join), so the row joins
        // nothing.
        if (v.kind() != TypeKind::kInteger) return Status::OK();
        lo[k] = v.int_value();
        hi[k] = v.int_value();
      }
      rids.clear();
      tree.Range(lo.data(), hi.data(), &rids);
      for (const storage::Rid& rid : rids) {
        if (mem_.cancel != nullptr && ++since_check >= kCancelCheckRows) {
          since_check = 0;
          RADB_RETURN_NOT_OK(mem_.cancel->Check());
        }
        RADB_ASSIGN_OR_RETURN(Row full, inner.table->FetchRow(rid));
        Row joined;
        joined.reserve(outer_arity + inner.scan_columns.size());
        for (const Value& v : o) joined.push_back(v);
        for (size_t col : inner.scan_columns) {
          joined.push_back(std::move(full[col]));
        }
        bool keep = true;
        for (size_t e : recheck) {
          RADB_ASSIGN_OR_RETURN(Value lv, EvalExpr(*outer_keys[e], o));
          RADB_ASSIGN_OR_RETURN(Value rv, EvalExpr(*inner_keys[e], joined));
          if (lv.is_null() || rv.is_null() || !lv.Equals(rv)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        for (const auto& p : residual) {
          RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, joined));
          if (v.is_null() || !v.bool_value()) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        if (!fused.empty()) {
          Row projected;
          projected.reserve(fused.size());
          for (const auto& e : fused) {
            RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, joined));
            projected.push_back(std::move(v));
          }
          joined = std::move(projected);
        }
        RADB_RETURN_NOT_OK(sink != nullptr
                               ? sink->AppendRow(wkr, std::move(joined))
                               : out[wkr].Append(std::move(joined)));
      }
      return Status::OK();
    }));
    m->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return std::optional<ExecResult>(
      ExecResult{std::move(out), std::nullopt});
}

Result<ExecResult> Executor::ExecuteJoin(const LogicalOp& op) {
  if (op.index_nl) {
    RADB_ASSIGN_OR_RETURN(std::optional<ExecResult> inl, TryIndexJoin(op));
    if (inl.has_value()) return std::move(*inl);
  }
  RADB_ASSIGN_OR_RETURN(ExecResult left_in, ExecuteOp(*op.children[0]));
  RADB_ASSIGN_OR_RETURN(ExecResult right_in, ExecuteOp(*op.children[1]));
  SpillableDist& left = left_in.dist;
  SpillableDist& right = right_in.dist;
  const size_t w = cluster_.num_workers();
  const auto left_layout = LayoutOf(*op.children[0]);
  const auto right_layout = LayoutOf(*op.children[1]);

  // Combined layout for residual predicates: left columns then right.
  std::map<size_t, size_t> combined;
  for (size_t i = 0; i < op.children[0]->output.size(); ++i) {
    combined[op.children[0]->output[i].slot] = i;
  }
  const size_t left_arity = op.children[0]->output.size();
  for (size_t i = 0; i < op.children[1]->output.size(); ++i) {
    combined[op.children[1]->output[i].slot] = left_arity + i;
  }
  std::vector<BoundExprPtr> residual;
  for (const auto& p : op.residual) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*p, combined));
    residual.push_back(std::move(r));
  }
  // A projection fused into the join (placed there by the optimizer's
  // early-projection rule, §4.1) is evaluated per joined row, so the
  // wide concatenated row is never materialized.
  std::vector<BoundExprPtr> fused;
  for (const auto& e : op.exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, combined));
    fused.push_back(std::move(r));
  }

  const bool is_cross = op.equi_keys.empty();
  const size_t left_bytes = SpillDistByteSize(left);
  const size_t right_bytes = SpillDistByteSize(right);
  const size_t rows_in = SpillDistRowCount(left) + SpillDistRowCount(right);

  std::vector<BoundExprPtr> left_keys, right_keys;
  for (const auto& [l, r] : op.equi_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr lk,
                          RewriteToPositions(*l, left_layout));
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rk,
                          RewriteToPositions(*r, right_layout));
    left_keys.push_back(std::move(lk));
    right_keys.push_back(std::move(rk));
  }

  OperatorMetrics* m = nullptr;
  SpillableDist out = NewDist(w);
  // When a vectorized pipeline owns this join as its boundary, joined
  // rows stream into its column batches instead of `out` (which then
  // stays empty; the pipeline patches rows_out/bytes_out). The guard
  // is the exact node pointer, so joins nested deeper in this subtree
  // still materialize normally.
  JoinBatchSink* sink = (join_sink_op_ == &op) ? join_sink_ : nullptr;

  // Joins a left/right row pair: applies residual predicates and the
  // fused projection; nullopt when a residual rejects the pair.
  auto make_joined = [&](const Row& l,
                         const Row& r) -> Result<std::optional<Row>> {
    Row joined;
    joined.reserve(l.size() + r.size());
    for (const Value& v : l) joined.push_back(v);
    for (const Value& v : r) joined.push_back(v);
    for (const auto& p : residual) {
      RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, joined));
      if (v.is_null() || !v.bool_value()) return std::optional<Row>();
    }
    if (!fused.empty()) {
      Row projected;
      projected.reserve(fused.size());
      for (const auto& e : fused) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, joined));
        projected.push_back(std::move(v));
      }
      return std::optional<Row>(std::move(projected));
    }
    return std::optional<Row>(std::move(joined));
  };
  auto emit = [&](size_t wkr, const Row& l, const Row& r) -> Status {
    if (sink != nullptr && residual.empty() && fused.empty()) {
      // Fast path: hand the sink the two sides as-is — the
      // concatenated Row is never built.
      return sink->AppendPair(wkr, l, r);
    }
    RADB_ASSIGN_OR_RETURN(std::optional<Row> j, make_joined(l, r));
    if (!j.has_value()) return Status::OK();
    if (sink != nullptr) return sink->AppendRow(wkr, std::move(*j));
    return out[wkr].Append(std::move(*j));
  };

  if (is_cross) {
    // Broadcast the smaller side; each worker crosses its local
    // partition of the bigger side with the full smaller side. The
    // broadcast copy cannot spill (every probe row scans all of it),
    // so it reserves hard.
    const bool broadcast_right = right_bytes <= left_bytes;
    m = NewOp(broadcast_right ? "CrossJoin(bcast right)"
                              : "CrossJoin(bcast left)",
              op);
    m->rows_in = rows_in;
    SpillableDist& small_side = broadcast_right ? right : left;
    const size_t small_bytes = broadcast_right ? right_bytes : left_bytes;
    std::optional<mem::MemoryTracker> bt;
    if (mem_.tracker != nullptr) {
      RADB_RETURN_NOT_OK(MakeHeadroom(mem_, small_bytes, {&left, &right}));
      bt.emplace("CrossJoin broadcast side", mem_.tracker);
      RADB_RETURN_NOT_OK(bt->Reserve(small_bytes));
    }
    RowSet small;
    small.reserve(SpillDistRowCount(small_side));
    for (SpillableRowBuffer& buf : small_side) {
      RADB_RETURN_NOT_OK(ConsumeRows(buf, [&](Row row) -> Status {
        small.push_back(std::move(row));
        return Status::OK();
      }));
    }
    m->bytes_shuffled += small_bytes * (w - 1);
    m->rows_shuffled += small.size() * (w - 1);
    SpillableDist& big = broadcast_right ? left : right;
    // Each worker crosses its own big-side partition with the shared
    // (read-only) broadcast copy.
    RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
      const auto t0 = Clock::now();
      // Cross joins poll the token per produced pair, not per probe
      // row — one probe row fans out into |small| pairs, which would
      // stretch the row-granular poll interval by that factor.
      size_t since_check = 0;
      RADB_RETURN_NOT_OK(ConsumeRows(big[wkr], [&](Row b) -> Status {
        for (const Row& s : small) {
          if (mem_.cancel != nullptr && ++since_check >= kCancelCheckRows) {
            since_check = 0;
            RADB_RETURN_NOT_OK(mem_.cancel->Check());
          }
          RADB_RETURN_NOT_OK(broadcast_right ? emit(wkr, b, s)
                                             : emit(wkr, s, b));
        }
        return Status::OK();
      }));
      m->worker_seconds[wkr] += SecondsSince(t0);
      return Status::OK();
    }));
  } else {
    // Broadcast-vs-shuffle decision, the classical optimizer rule: if
    // replicating the small side everywhere moves fewer bytes than
    // re-hashing both sides, broadcast. (The decision depends only on
    // input sizes, never on the memory budget, so plans — and
    // therefore output orders — are identical with and without one.)
    const size_t shuffle_cost = left_bytes + right_bytes;
    const size_t bcast_small =
        std::min(left_bytes, right_bytes) * (w > 0 ? (w - 1) : 0);
    const bool broadcast = bcast_small < shuffle_cost;
    if (broadcast) {
      const bool broadcast_right = right_bytes <= left_bytes;
      m = NewOp(broadcast_right ? "HashJoin(bcast right)"
                                : "HashJoin(bcast left)",
                op);
      m->rows_in = rows_in;
      // The replicated hash table is unspillable: a Grace fallback
      // would have to re-shuffle both sides, changing the physical
      // plan (and output order) under budget. Reserve hard instead.
      SpillableDist& small_side = broadcast_right ? right : left;
      const size_t small_bytes = broadcast_right ? right_bytes : left_bytes;
      const size_t small_rows = SpillDistRowCount(small_side);
      std::optional<mem::MemoryTracker> bt;
      if (mem_.tracker != nullptr) {
        RADB_RETURN_NOT_OK(MakeHeadroom(
            mem_, small_bytes + small_rows * kHashEntryOverhead,
            {&left, &right}));
        bt.emplace("HashJoin broadcast build side", mem_.tracker);
        RADB_RETURN_NOT_OK(
            bt->Reserve(small_bytes + small_rows * kHashEntryOverhead));
      }
      RowSet small;
      small.reserve(small_rows);
      for (SpillableRowBuffer& buf : small_side) {
        RADB_RETURN_NOT_OK(ConsumeRows(buf, [&](Row row) -> Status {
          small.push_back(std::move(row));
          return Status::OK();
        }));
      }
      const auto& small_keys = broadcast_right ? right_keys : left_keys;
      std::unordered_multimap<KeyRow, const Row*, KeyRowHash> table;
      for (const Row& r : small) {
        RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(small_keys, r));
        if (KeyHasNull(key)) continue;
        table.emplace(std::move(key), &r);
      }
      m->bytes_shuffled += small_bytes * (w - 1);
      SpillableDist& big = broadcast_right ? left : right;
      const auto& big_keys = broadcast_right ? left_keys : right_keys;
      // The replicated hash table was built sequentially above (so its
      // bucket chains — and therefore match order — are independent of
      // the thread count); probing reads it concurrently.
      RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
        const auto t0 = Clock::now();
        RADB_RETURN_NOT_OK(ConsumeRows(big[wkr], [&](Row b) -> Status {
          RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(big_keys, b));
          if (KeyHasNull(key)) return Status::OK();
          auto [begin, end] = table.equal_range(key);
          for (auto it = begin; it != end; ++it) {
            RADB_RETURN_NOT_OK(broadcast_right ? emit(wkr, b, *it->second)
                                               : emit(wkr, *it->second, b));
          }
          return Status::OK();
        }));
        m->worker_seconds[wkr] += SecondsSince(t0);
        return Status::OK();
      }));
    } else {
      // A side already hash-placed on its (single, bare-column) join
      // key needs no movement — the §2.1 decision of which side to
      // shuffle, made here with exact physical knowledge.
      const std::optional<size_t> lkey_slot =
          SingleColumnKeySlot(op.equi_keys, /*left_side=*/true);
      const std::optional<size_t> rkey_slot =
          SingleColumnKeySlot(op.equi_keys, /*left_side=*/false);
      const bool left_prehashed = lkey_slot && left_in.hashed_slot &&
                                  *lkey_slot == *left_in.hashed_slot;
      const bool right_prehashed = rkey_slot && right_in.hashed_slot &&
                                   *rkey_slot == *right_in.hashed_slot;
      m = NewOp(left_prehashed && right_prehashed
                    ? "HashJoin(co-located)"
                    : (left_prehashed || right_prehashed
                           ? "HashJoin(shuffle one side)"
                           : "HashJoin(shuffle)"),
                op);
      m->rows_in = rows_in;
      // Re-partition by join key hash into spillable per-(src,dst)
      // runs; `prehashed` sides stay put and are charged nothing.
      // Each destination later consumes its runs in source order —
      // the same bucket order the old sequential loop produced, so
      // join output is independent of thread count.
      auto route = [&](SpillableDist& side,
                       const std::vector<BoundExprPtr>& keys,
                       bool prehashed) -> Result<std::vector<SpillableDist>> {
        std::vector<SpillableDist> runs;
        runs.reserve(side.size());
        for (size_t s = 0; s < side.size(); ++s) runs.push_back(NewDist(w));
        std::vector<size_t> local_bytes(side.size(), 0);
        std::vector<size_t> local_rows(side.size(), 0);
        RADB_RETURN_NOT_OK(
            ForEachWorker(side.size(), [&](size_t src) -> Status {
              const auto t0 = Clock::now();
              RADB_RETURN_NOT_OK(ConsumeRows(
                  side[src], [&](Row row) -> Status {
                    RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(keys, row));
                    if (KeyHasNull(key)) {
                      return Status::OK();  // inner join: NULL never matches
                    }
                    const size_t dst =
                        prehashed ? src : cluster_.WorkerForHash(key.hash);
                    if (dst != src) {
                      local_bytes[src] += RowByteSize(row);
                      ++local_rows[src];
                    }
                    return runs[src][dst].Append(std::move(row));
                  }));
              m->worker_seconds[src] += SecondsSince(t0);
              return Status::OK();
            }));
        for (size_t src = 0; src < side.size(); ++src) {
          m->bytes_shuffled += local_bytes[src];
          m->rows_shuffled += local_rows[src];
        }
        return runs;
      };
      RADB_ASSIGN_OR_RETURN(auto left_runs,
                            route(left, left_keys, left_prehashed));
      RADB_ASSIGN_OR_RETURN(auto right_runs,
                            route(right, right_keys, right_prehashed));

      // Grace-hash fallback for one worker: both sides are split into
      // sub-partitions by a secondary hash. All rows with one key land
      // in one sub-partition with their relative order intact, so each
      // sub-build's equal_range chains equal the monolithic table's.
      // Probe rows carry their arrival sequence; merging sub-partition
      // outputs by that sequence restores the exact probe-major output
      // order — budgeted results stay bit-identical.
      auto grace = [&](size_t wkr, mem::MemoryTracker& wt, size_t* spill_b,
                       size_t* spill_r) -> Status {
        SpillableDist bparts = NewDist(kGraceFanout);
        SpillableDist pparts = NewDist(kGraceFanout);
        SpillableDist pout = NewDist(kGraceFanout);
        for (size_t src = 0; src < right_runs.size(); ++src) {
          RADB_RETURN_NOT_OK(
              ConsumeRows(right_runs[src][wkr], [&](Row row) -> Status {
                RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(right_keys, row));
                return bparts[GracePartition(key.hash)].Append(std::move(row));
              }));
        }
        int64_t seq = 0;
        for (size_t src = 0; src < left_runs.size(); ++src) {
          RADB_RETURN_NOT_OK(
              ConsumeRows(left_runs[src][wkr], [&](Row row) -> Status {
                RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(left_keys, row));
                Row tagged;
                tagged.reserve(row.size() + 1);
                tagged.push_back(Value::Int(seq++));
                for (Value& v : row) tagged.push_back(std::move(v));
                return pparts[GracePartition(key.hash)].Append(
                    std::move(tagged));
              }));
        }
        for (size_t p = 0; p < kGraceFanout; ++p) {
          const size_t part_rows = bparts[p].num_rows();
          const size_t charge =
              bparts[p].byte_size() + part_rows * kHashEntryOverhead;
          // A sub-build that still misses the budget fails the query:
          // one level of partitioning is the depth this engine goes.
          RADB_RETURN_NOT_OK(wt.Reserve(charge));
          std::vector<std::pair<KeyRow, Row>> build;
          build.reserve(part_rows);
          RADB_RETURN_NOT_OK(ConsumeRows(bparts[p], [&](Row row) -> Status {
            RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(right_keys, row));
            build.emplace_back(std::move(key), std::move(row));
            return Status::OK();
          }));
          std::unordered_multimap<KeyRow, const Row*, KeyRowHash> table;
          table.reserve(build.size());
          for (auto& [key, row] : build) table.emplace(key, &row);
          RADB_RETURN_NOT_OK(
              ConsumeRows(pparts[p], [&](Row tagged) -> Status {
                const Value seq_v = tagged[0];
                Row probe(std::make_move_iterator(tagged.begin() + 1),
                          std::make_move_iterator(tagged.end()));
                RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(left_keys, probe));
                auto [begin, end] = table.equal_range(key);
                for (auto it = begin; it != end; ++it) {
                  RADB_ASSIGN_OR_RETURN(std::optional<Row> j,
                                        make_joined(probe, *it->second));
                  if (!j.has_value()) continue;
                  Row tagged_out;
                  tagged_out.reserve(j->size() + 1);
                  tagged_out.push_back(seq_v);
                  for (Value& v : *j) tagged_out.push_back(std::move(v));
                  RADB_RETURN_NOT_OK(pout[p].Append(std::move(tagged_out)));
                }
                return Status::OK();
              }));
          build.clear();
          table.clear();
          wt.Release(charge);
        }
        // Merge sub-partition outputs back into probe-arrival order.
        // Each pout[p] is already ascending in seq, and all matches of
        // one probe row live in one partition, so a min-seq merge
        // reproduces the monolithic probe loop's output exactly.
        {
          std::vector<std::unique_ptr<SpillableRowBuffer::Reader>> readers;
          std::vector<std::optional<Row>> heads(kGraceFanout);
          for (size_t p = 0; p < kGraceFanout; ++p) {
            readers.push_back(
                std::make_unique<SpillableRowBuffer::Reader>(&pout[p]));
            RADB_ASSIGN_OR_RETURN(heads[p], readers[p]->Next());
          }
          while (true) {
            int best = -1;
            for (size_t p = 0; p < kGraceFanout; ++p) {
              if (!heads[p].has_value()) continue;
              if (best < 0 || (*heads[p])[0].int_value() <
                                  (*heads[best])[0].int_value()) {
                best = static_cast<int>(p);
              }
            }
            if (best < 0) break;
            Row& t = *heads[best];
            Row row(std::make_move_iterator(t.begin() + 1),
                    std::make_move_iterator(t.end()));
            RADB_RETURN_NOT_OK(sink != nullptr
                                   ? sink->AppendRow(wkr, std::move(row))
                                   : out[wkr].Append(std::move(row)));
            RADB_ASSIGN_OR_RETURN(heads[best], readers[best]->Next());
          }
        }
        for (const SpillableDist* d : {&bparts, &pparts, &pout}) {
          for (const SpillableRowBuffer& b : *d) {
            *spill_b += b.spill_bytes();
            *spill_r += b.spill_runs();
          }
        }
        return Status::OK();
      };

      std::vector<size_t> grace_spill_b(w, 0), grace_spill_r(w, 0);
      RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
        const auto t0 = Clock::now();
        size_t build_bytes = 0, build_rows = 0;
        for (size_t src = 0; src < right_runs.size(); ++src) {
          build_bytes += right_runs[src][wkr].byte_size();
          build_rows += right_runs[src][wkr].num_rows();
        }
        bool classic = true;
        std::optional<mem::MemoryTracker> wt;
        if (mem_.tracker != nullptr) {
          wt.emplace("HashJoin build (worker " + std::to_string(wkr) + ")",
                     mem_.tracker);
          classic =
              wt->TryReserve(build_bytes + build_rows * kHashEntryOverhead);
        }
        if (classic) {
          // In-memory path: materialize the build side in source
          // order, probe in source order — the seed implementation's
          // exact behavior. The worker tracker releases the build
          // charge when it goes out of scope.
          std::vector<std::pair<KeyRow, Row>> build;
          build.reserve(build_rows);
          for (size_t src = 0; src < right_runs.size(); ++src) {
            RADB_RETURN_NOT_OK(
                ConsumeRows(right_runs[src][wkr], [&](Row row) -> Status {
                  RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(right_keys, row));
                  build.emplace_back(std::move(key), std::move(row));
                  return Status::OK();
                }));
          }
          std::unordered_multimap<KeyRow, const Row*, KeyRowHash> table;
          table.reserve(build.size());
          for (auto& [key, row] : build) table.emplace(key, &row);
          for (size_t src = 0; src < left_runs.size(); ++src) {
            RADB_RETURN_NOT_OK(
                ConsumeRows(left_runs[src][wkr], [&](Row row) -> Status {
                  RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(left_keys, row));
                  auto [begin, end] = table.equal_range(key);
                  for (auto it = begin; it != end; ++it) {
                    RADB_RETURN_NOT_OK(emit(wkr, row, *it->second));
                  }
                  return Status::OK();
                }));
          }
        } else {
          RADB_RETURN_NOT_OK(
              grace(wkr, *wt, &grace_spill_b[wkr], &grace_spill_r[wkr]));
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
        return Status::OK();
      }));
      for (size_t wkr = 0; wkr < w; ++wkr) {
        m->bytes_spilled += grace_spill_b[wkr];
        m->spill_runs += grace_spill_r[wkr];
      }
      for (const auto& runs : {std::cref(left_runs), std::cref(right_runs)}) {
        for (const SpillableDist& per_src : runs.get()) {
          CollectSpill(m, per_src);
        }
      }
    }
  }
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteAggregate(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  const size_t w = cluster_.num_workers();
  const auto layout = LayoutOf(*op.children[0]);

  std::vector<BoundExprPtr> group_exprs;
  for (const auto& g : op.group_exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr e, RewriteToPositions(*g, layout));
    group_exprs.push_back(std::move(e));
  }
  std::vector<BoundExprPtr> agg_args;
  for (const auto& a : op.aggs) {
    if (a.is_count_star) {
      agg_args.push_back(MakeBoundLiteral(Value::Int(1)));
    } else {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr e,
                            RewriteToPositions(*a.arg, layout));
      agg_args.push_back(std::move(e));
    }
  }

  struct GroupState {
    Row key;
    std::vector<std::unique_ptr<Aggregator>> aggs;
    size_t base = 0;     // admission charge (key copies + map entry)
    size_t charged = 0;  // total bytes currently reserved for this group
  };
  using GroupMap =
      std::unordered_map<KeyRow, std::unique_ptr<GroupState>, KeyRowHash>;

  // Group state cannot spill (a partially-aggregated accumulator must
  // stay addressable), so it charges a dedicated child tracker:
  // admission of a new group may be refused under pressure (the rows
  // overflow to a later pass, below), but growth of an already-
  // admitted accumulator reserves hard. The scoped child releases
  // whatever is still charged when the operator finishes.
  std::optional<mem::MemoryTracker> agg_tracker;
  if (mem_.tracker != nullptr) {
    agg_tracker.emplace("Aggregate state", mem_.tracker);
  }

  // Phase 1: local partial aggregation on every worker, in admission
  // passes. When a pass cannot admit a new group within the budget,
  // that group's rows are diverted (in order) to a spillable overflow
  // buffer, which becomes the next pass's input. Admission is sticky-
  // off per pass — after the first refusal no new groups are admitted
  // for the rest of the pass — so every group's updates happen in
  // exactly one pass, in original row order: floating-point results
  // are bit-identical to the unbudgeted single pass. The first group
  // of each pass reserves hard (guaranteed progress, so the pass loop
  // terminates or fails with ResourceExhausted). Group state is gated
  // against the unspillable pool only, so a refusal means real state
  // pressure — a later pass can recover only if some of it is
  // released in the meantime; when the total state simply exceeds the
  // budget, the next pass fails cleanly instead of thrashing.
  OperatorMetrics* m1 = NewOp("Aggregate(partial)", op);
  m1->rows_in = SpillDistRowCount(in);
  // Worst case the group state approaches the input's full size
  // (ROWMATRIX/VECTORIZE rebuild their input inside accumulators). If
  // that much of the budget isn't free while the input rows sit
  // resident, push the input to disk first and stream it back.
  RADB_RETURN_NOT_OK(MakeHeadroom(mem_, SpillDistByteSize(in), {&in}));
  std::vector<std::vector<GroupMap>> partials(w);
  std::vector<size_t> agg_spill_b(w, 0), agg_spill_r(w, 0);
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    SpillableRowBuffer carried;  // overflow rows between passes
    SpillableRowBuffer* input = &in[wkr];
    while (true) {
      partials[wkr].emplace_back();
      GroupMap& map = partials[wkr].back();
      SpillableRowBuffer overflow(mem_);
      bool admitting = true;
      RADB_RETURN_NOT_OK(ConsumeRows(*input, [&](Row row) -> Status {
        RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(group_exprs, row));
        auto it = map.find(key);
        if (it == map.end()) {
          const size_t admit =
              2 * RowByteSize(key.values) + kGroupStateOverhead;
          if (agg_tracker.has_value()) {
            if (map.empty()) {
              RADB_RETURN_NOT_OK(agg_tracker->Reserve(admit));
            } else if (!admitting || !agg_tracker->TryReserve(admit)) {
              admitting = false;
              return overflow.Append(std::move(row));
            }
          }
          auto state = std::make_unique<GroupState>();
          state->key = key.values;
          state->base = admit;
          state->charged = admit;
          for (const AggCall& a : op.aggs) {
            state->aggs.push_back(a.fn->make());
          }
          it = map.emplace(std::move(key), std::move(state)).first;
        }
        GroupState& g = *it->second;
        for (size_t i = 0; i < agg_args.size(); ++i) {
          RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg_args[i], row));
          RADB_RETURN_NOT_OK(g.aggs[i]->Update(v));
        }
        if (agg_tracker.has_value()) {
          size_t needed = g.base;
          for (const auto& agg : g.aggs) needed += agg->StateBytes();
          if (needed > g.charged) {
            // Accumulator growth (e.g. a Gram-matrix SUM state) is
            // unspillable: reserve hard or fail the query.
            RADB_RETURN_NOT_OK(agg_tracker->Reserve(needed - g.charged));
            g.charged = needed;
          }
        }
        return Status::OK();
      }));
      agg_spill_b[wkr] += overflow.spill_bytes();
      agg_spill_r[wkr] += overflow.spill_runs();
      if (overflow.empty()) break;
      carried = std::move(overflow);
      input = &carried;
    }
    m1->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  for (size_t wkr = 0; wkr < in.size(); ++wkr) {
    m1->bytes_spilled += agg_spill_b[wkr];
    m1->spill_runs += agg_spill_r[wkr];
    for (const GroupMap& map : partials[wkr]) m1->rows_out += map.size();
  }

  // Phase 2: shuffle partial states by group key hash (scalar
  // aggregates — no GROUP BY — all land on worker 0). Each
  // destination worker walks every source's partial maps and merges
  // exactly the groups it owns, visiting sources (and, within one,
  // admission passes) in index order — the same merge order as a
  // sequential src-major sweep, so floating-point aggregation results
  // are independent of the thread count and of the budget.
  // (Tasks move states out of distinct map entries; the map structure
  // itself is only read.)
  // NewOp can reallocate the metrics vector and invalidate m1, so the
  // partial-stage count must be read first.
  const size_t partial_rows_out = m1->rows_out;
  OperatorMetrics* m2 = NewOp("Aggregate(final)", op);
  m2->rows_in = partial_rows_out;
  std::vector<GroupMap> finals(w);
  std::vector<size_t> local_bytes(w, 0);
  std::vector<size_t> local_rows(w, 0);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t dst) -> Status {
    for (size_t src = 0; src < w; ++src) {
      for (GroupMap& pass : partials[src]) {
        for (auto& [key, state] : pass) {
          const size_t owner =
              group_exprs.empty() ? 0 : cluster_.WorkerForHash(key.hash);
          if (owner != dst) continue;
          if (dst != src) {
            size_t state_bytes = RowByteSize(state->key);
            for (const auto& agg : state->aggs) {
              state_bytes += agg->StateBytes();
            }
            local_bytes[dst] += state_bytes;
            ++local_rows[dst];
          }
          auto it = finals[dst].find(key);
          if (it == finals[dst].end()) {
            finals[dst].emplace(key, std::move(state));
          } else {
            const auto t0 = Clock::now();
            GroupState& target = *it->second;
            for (size_t i = 0; i < target.aggs.size(); ++i) {
              RADB_RETURN_NOT_OK(target.aggs[i]->Merge(*state->aggs[i]));
            }
            if (agg_tracker.has_value()) {
              size_t needed = target.base;
              for (const auto& agg : target.aggs) {
                needed += agg->StateBytes();
              }
              if (needed > target.charged) {
                RADB_RETURN_NOT_OK(
                    agg_tracker->Reserve(needed - target.charged));
                target.charged = needed;
              }
              // The merged-away source state is dead now.
              agg_tracker->Release(state->charged);
            }
            m2->worker_seconds[dst] += SecondsSince(t0);
          }
        }
      }
    }
    return Status::OK();
  }));
  for (size_t dst = 0; dst < w; ++dst) {
    m2->bytes_shuffled += local_bytes[dst];
    m2->rows_shuffled += local_rows[dst];
  }
  for (auto& passes : partials) passes.clear();

  // Phase 3: finalize into output rows [group keys..., agg results...],
  // releasing each group's charge as its row is emitted.
  SpillableDist out = NewDist(w);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    for (auto& [key, state] : finals[wkr]) {
      Row row = state->key;
      for (const auto& agg : state->aggs) {
        RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
        row.push_back(std::move(v));
      }
      RADB_RETURN_NOT_OK(out[wkr].Append(std::move(row)));
      if (agg_tracker.has_value()) agg_tracker->Release(state->charged);
    }
    m2->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  // A scalar aggregate over zero rows still produces one row (SQL
  // semantics): COUNT() = 0, SUM() = NULL.
  if (group_exprs.empty() && SpillDistRowCount(out) == 0) {
    Row row;
    for (const AggCall& a : op.aggs) {
      auto agg = a.fn->make();
      RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
      row.push_back(std::move(v));
    }
    RADB_RETURN_NOT_OK(out[0].Append(std::move(row)));
  }
  m2->rows_out = SpillDistRowCount(out);
  m2->bytes_out = SpillDistByteSize(out);
  CollectSpill(m2, out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteDistinct(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  OperatorMetrics* m = NewOp("Distinct", op);
  m->rows_in = SpillDistRowCount(in);
  const size_t w = cluster_.num_workers();
  // Shuffle by whole-row hash, then dedupe locally. Two phases so
  // both sides parallelize with disjoint writes: every source worker
  // splits its rows into per-destination runs, then every destination
  // dedupes its runs in source order — the same insertion order as a
  // sequential src-major sweep, so the surviving (first) duplicate
  // and the set's iteration order match at any thread count. The
  // shuffle runs are spillable; the dedupe set is not (it IS the
  // output), so it reserves hard.
  std::vector<SpillableDist> runs;
  runs.reserve(in.size());
  for (size_t src = 0; src < in.size(); ++src) runs.push_back(NewDist(w));
  std::vector<size_t> local_bytes(in.size(), 0);
  std::vector<size_t> local_rows(in.size(), 0);
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t src) -> Status {
    const auto t0 = Clock::now();
    RADB_RETURN_NOT_OK(ConsumeRows(in[src], [&](Row row) -> Status {
      const size_t dst = cluster_.WorkerForHash(HashRow(row));
      if (dst != src) {
        local_bytes[src] += RowByteSize(row);
        ++local_rows[src];
      }
      return runs[src][dst].Append(std::move(row));
    }));
    m->worker_seconds[src] += SecondsSince(t0);
    return Status::OK();
  }));
  for (size_t src = 0; src < in.size(); ++src) {
    m->bytes_shuffled += local_bytes[src];
    m->rows_shuffled += local_rows[src];
  }
  // The dedup sets are unspillable and charge 2× each distinct row
  // (key copy + stored row); free that much budget up front by
  // pushing the routed runs to disk if needed.
  {
    size_t runs_bytes = 0;
    std::vector<SpillableDist*> run_ptrs;
    for (SpillableDist& per_src : runs) {
      runs_bytes += SpillDistByteSize(per_src);
      run_ptrs.push_back(&per_src);
    }
    RADB_RETURN_NOT_OK(MakeHeadroom(mem_, 2 * runs_bytes, run_ptrs));
  }
  SpillableDist out = NewDist(w);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t dst) -> Status {
    const auto t0 = Clock::now();
    std::optional<mem::MemoryTracker> st;
    if (mem_.tracker != nullptr) {
      st.emplace("DISTINCT set (worker " + std::to_string(dst) + ")",
                 mem_.tracker);
    }
    std::unordered_map<KeyRow, Row, KeyRowHash> set;
    for (size_t src = 0; src < runs.size(); ++src) {
      RADB_RETURN_NOT_OK(
          ConsumeRows(runs[src][dst], [&](Row row) -> Status {
            const size_t rb = RowByteSize(row);
            KeyRow key{row, HashRow(row)};
            const auto [it, inserted] =
                set.emplace(std::move(key), std::move(row));
            if (inserted && st.has_value()) {
              // Key copy + stored row + map entry, unspillable.
              RADB_RETURN_NOT_OK(
                  st->Reserve(2 * rb + kGroupStateOverhead));
            }
            return Status::OK();
          }));
    }
    for (auto& [key, row] : set) {
      RADB_RETURN_NOT_OK(out[dst].Append(std::move(row)));
    }
    m->worker_seconds[dst] += SecondsSince(t0);
    return Status::OK();
  }));
  for (const SpillableDist& per_src : runs) CollectSpill(m, per_src);
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteSort(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  OperatorMetrics* m = NewOp("Sort", op);
  m->rows_in = SpillDistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<std::pair<BoundExprPtr, bool>> keys;
  for (const auto& [e, desc] : op.sort_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, layout));
    keys.emplace_back(std::move(r), desc);
  }
  // Gather everything onto worker 0 and sort there. An external
  // (spilling) sort would need run-merging that reorders comparisons;
  // this engine keeps ORDER BY in memory, so the gather buffer
  // reserves hard and the query fails cleanly when it doesn't fit.
  std::optional<mem::MemoryTracker> st;
  if (mem_.tracker != nullptr) {
    RADB_RETURN_NOT_OK(MakeHeadroom(mem_, SpillDistByteSize(in), {&in}));
    st.emplace("Sort buffer", mem_.tracker);
    RADB_RETURN_NOT_OK(st->Reserve(SpillDistByteSize(in)));
  }
  RowSet all;
  all.reserve(SpillDistRowCount(in));
  for (size_t src = 0; src < in.size(); ++src) {
    RADB_RETURN_NOT_OK(ConsumeRows(in[src], [&](Row row) -> Status {
      if (src != 0) {
        m->bytes_shuffled += RowByteSize(row);
        ++m->rows_shuffled;
      }
      all.push_back(std::move(row));
      return Status::OK();
    }));
  }
  const auto t0 = Clock::now();
  Status sort_status = Status::OK();
  std::stable_sort(all.begin(), all.end(),
                   [&](const Row& a, const Row& b) {
                     if (!sort_status.ok()) return false;
                     for (const auto& [e, desc] : keys) {
                       auto va = EvalExpr(*e, a);
                       auto vb = EvalExpr(*e, b);
                       if (!va.ok() || !vb.ok()) {
                         sort_status = va.ok() ? vb.status() : va.status();
                         return false;
                       }
                       auto c = va->Compare(*vb);
                       if (!c.ok()) {
                         sort_status = c.status();
                         return false;
                       }
                       if (*c != 0) return desc ? *c > 0 : *c < 0;
                     }
                     return false;
                   });
  RADB_RETURN_NOT_OK(sort_status);
  m->worker_seconds[0] += SecondsSince(t0);
  SpillableDist out = NewDist(cluster_.num_workers());
  for (Row& row : all) {
    // Hand the charge over row by row: the output buffer charges the
    // row on Append, then the gather reservation shrinks by the same
    // amount, keeping the tracked total flat.
    const size_t b = st.has_value() ? RowByteSize(row) : 0;
    RADB_RETURN_NOT_OK(out[0].Append(std::move(row)));
    if (st.has_value()) st->Release(b);
  }
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteLimit(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  SpillableDist& in = child.dist;
  OperatorMetrics* m = NewOp("Limit", op);
  m->rows_in = SpillDistRowCount(in);
  SpillableDist out = NewDist(cluster_.num_workers());
  const size_t limit = static_cast<size_t>(std::max<int64_t>(0, op.limit));
  size_t taken = 0;
  for (size_t src = 0; src < in.size() && taken < limit; ++src) {
    SpillableRowBuffer::Reader reader(&in[src]);
    while (taken < limit) {
      RADB_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
      if (!row.has_value()) break;
      if (src != 0) {
        m->bytes_shuffled += RowByteSize(*row);
        ++m->rows_shuffled;
      }
      RADB_RETURN_NOT_OK(out[0].Append(std::move(*row)));
      ++taken;
    }
  }
  for (SpillableRowBuffer& buf : in) buf.Clear();
  m->rows_out = SpillDistRowCount(out);
  m->bytes_out = SpillDistByteSize(out);
  CollectSpill(m, out);
  return ExecResult{std::move(out), std::nullopt};
}

}  // namespace radb
