#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "exec/expr_eval.h"
#include "exec/row_key.h"

namespace radb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// KeyRow / KeyRowHash / HashRow / KeyHasNull live in exec/row_key.h,
// shared with the differential reference evaluator.

Result<KeyRow> EvalKey(const std::vector<BoundExprPtr>& key_exprs,
                       const Row& row) {
  Row values;
  values.reserve(key_exprs.size());
  for (const auto& e : key_exprs) {
    RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
    values.push_back(std::move(v));
  }
  return KeyRow::Of(std::move(values));
}

/// The slot a single equi-key expression reads, when the expression is
/// a bare column reference (a precondition for shuffle elision).
std::optional<size_t> SingleColumnKeySlot(
    const std::vector<std::pair<BoundExprPtr, BoundExprPtr>>& keys,
    bool left_side) {
  if (keys.size() != 1) return std::nullopt;
  const BoundExpr& e = left_side ? *keys[0].first : *keys[0].second;
  if (e.kind != BoundExpr::Kind::kColumnRef) return std::nullopt;
  return e.slot;
}

}  // namespace

size_t DistByteSize(const Dist& d) {
  size_t s = 0;
  for (const RowSet& p : d) {
    for (const Row& r : p) s += RowByteSize(r);
  }
  return s;
}

size_t DistRowCount(const Dist& d) {
  size_t s = 0;
  for (const RowSet& p : d) s += p.size();
  return s;
}

std::map<size_t, size_t> Executor::LayoutOf(const LogicalOp& op) {
  std::map<size_t, size_t> layout;
  for (size_t i = 0; i < op.output.size(); ++i) {
    layout[op.output[i].slot] = i;
  }
  return layout;
}

OperatorMetrics* Executor::NewOp(std::string name, const LogicalOp& op) {
  metrics_->operators.push_back(OperatorMetrics{});
  OperatorMetrics* m = &metrics_->operators.back();
  m->name = std::move(name);
  m->estimated_rows = op.est_rows;
  m->worker_seconds.assign(cluster_.num_workers(), 0.0);
  node_metrics_[&op].push_back(metrics_->operators.size() - 1);
  return m;
}

void Executor::PublishObservability() {
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs_.metrics;
    size_t rows_out = 0, bytes_out = 0, rows_shuffled = 0, bytes_shuffled = 0;
    for (const OperatorMetrics& op : metrics_->operators) {
      rows_out += op.rows_out;
      bytes_out += op.bytes_out;
      rows_shuffled += op.rows_shuffled;
      bytes_shuffled += op.bytes_shuffled;
      reg.Observe("exec.operator_seconds", op.TotalSeconds());
      reg.Observe("exec.operator_skew", op.Skew());
    }
    reg.Add("exec.operators", metrics_->operators.size());
    reg.Add("exec.rows_out", rows_out);
    reg.Add("exec.bytes_out", bytes_out);
    reg.Add("exec.rows_shuffled", rows_shuffled);
    reg.Add("exec.bytes_shuffled", bytes_shuffled);
    reg.Set("exec.workers", static_cast<double>(cluster_.num_workers()));
  }
}

Status Executor::ForEachWorker(size_t n,
                               const std::function<Status(size_t)>& body) {
  if (pool_ == nullptr || pool_->num_threads() <= 1 || n <= 1) {
    for (size_t w = 0; w < n; ++w) {
      RADB_RETURN_NOT_OK(body(w));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(n, Status::OK());
  pool_->ParallelFor(n, [&](size_t w) { statuses[w] = body(w); });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

Result<Dist> Executor::Execute(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult out, ExecuteOp(op));
  PublishObservability();
  return std::move(out.dist);
}

Result<ExecResult> Executor::ExecuteOp(const LogicalOp& op) {
  if (obs_.tracer == nullptr) return DispatchOp(op);

  // One span per plan node; children nest naturally because they
  // execute inside this call. The physical name ("HashJoin(bcast
  // right)") is known only after dispatch, so it is patched in then.
  obs::ScopedSpan span(obs_.tracer, KindName(op.kind), "exec");
  RADB_ASSIGN_OR_RETURN(ExecResult result, DispatchOp(op));
  if (const std::vector<size_t>* ids = MetricsForNode(&op)) {
    const OperatorMetrics& last = metrics_->operators[ids->back()];
    span.SetName(last.name);
    span.AddArg("rows_out", std::to_string(last.rows_out));
    if (last.bytes_shuffled > 0) {
      span.AddArg("bytes_shuffled", std::to_string(last.bytes_shuffled));
    }
    // Per-worker lanes: the accumulated per-worker seconds of every
    // metrics entry of this node, rendered as end-aligned complete
    // spans on tid 1+worker so chrome://tracing shows one row per
    // simulated worker under the pipeline row.
    const double end = obs_.tracer->NowSeconds();
    for (size_t id : *ids) {
      const OperatorMetrics& m = metrics_->operators[id];
      for (size_t w = 0; w < m.worker_seconds.size(); ++w) {
        const double dur = m.worker_seconds[w];
        if (dur <= 0.0) continue;
        obs_.tracer->AddCompleteSpan(m.name + " w" + std::to_string(w),
                                     "worker", span.id(), end - dur, dur,
                                     static_cast<int>(w) + 1);
      }
    }
  }
  return result;
}

Result<ExecResult> Executor::DispatchOp(const LogicalOp& op) {
  switch (op.kind) {
    case LogicalOp::Kind::kScan:
      return ExecuteScan(op);
    case LogicalOp::Kind::kFilter:
      return ExecuteFilter(op);
    case LogicalOp::Kind::kProject:
      return ExecuteProject(op);
    case LogicalOp::Kind::kJoin:
      return ExecuteJoin(op);
    case LogicalOp::Kind::kAggregate:
      return ExecuteAggregate(op);
    case LogicalOp::Kind::kDistinct:
      return ExecuteDistinct(op);
    case LogicalOp::Kind::kSort:
      return ExecuteSort(op);
    case LogicalOp::Kind::kLimit:
      return ExecuteLimit(op);
  }
  return Status::Internal("unknown logical operator");
}

Result<ExecResult> Executor::ExecuteScan(const LogicalOp& op) {
  OperatorMetrics* m = NewOp("Scan(" + op.table->name() + ")", op);
  m->rows_in = op.table->num_rows();
  const size_t w = cluster_.num_workers();
  Dist out(w);
  // Table partitions map onto workers round-robin when the counts
  // differ; each worker copies out its own partitions in order.
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t target) -> Status {
    const auto t0 = Clock::now();
    RowSet& dst = out[target];
    for (size_t p = target; p < op.table->num_partitions(); p += w) {
      const RowSet& part = op.table->partition(p);
      dst.reserve(dst.size() + part.size());
      for (const Row& row : part) {
        Row projected;
        projected.reserve(op.scan_columns.size());
        for (size_t col : op.scan_columns) projected.push_back(row[col]);
        dst.push_back(std::move(projected));
      }
    }
    m->worker_seconds[target] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = DistRowCount(out);
  m->bytes_out = DistByteSize(out);
  ExecResult result{std::move(out), std::nullopt};
  // A base table hash-partitioned on an emitted column, with one
  // partition per worker, is already placed the way a join shuffle
  // would place it.
  const Partitioning& part = op.table->partitioning();
  if (part.kind == Partitioning::Kind::kHash &&
      op.table->num_partitions() == w) {
    for (size_t i = 0; i < op.scan_columns.size(); ++i) {
      if (op.scan_columns[i] == part.hash_column) {
        result.hashed_slot = op.output[i].slot;
      }
    }
  }
  return result;
}

Result<ExecResult> Executor::ExecuteFilter(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  OperatorMetrics* m = NewOp("Filter", op);
  m->rows_in = DistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<BoundExprPtr> preds;
  for (const auto& p : op.predicates) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rewritten,
                          RewriteToPositions(*p, layout));
    preds.push_back(std::move(rewritten));
  }
  Dist out(in.size());
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    for (Row& row : in[wkr]) {
      bool keep = true;
      for (const auto& p : preds) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, row));
        if (v.is_null() || !v.bool_value()) {
          keep = false;
          break;
        }
      }
      if (keep) out[wkr].push_back(std::move(row));
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = DistRowCount(out);
  m->bytes_out = DistByteSize(out);
  // Filtering never moves rows, so placement survives.
  return ExecResult{std::move(out), child.hashed_slot};
}

Result<ExecResult> Executor::ExecuteProject(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  OperatorMetrics* m = NewOp("Project", op);
  m->rows_in = DistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<BoundExprPtr> exprs;
  for (const auto& e : op.exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rewritten,
                          RewriteToPositions(*e, layout));
    exprs.push_back(std::move(rewritten));
  }
  Dist out(in.size());
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    out[wkr].reserve(in[wkr].size());
    for (const Row& row : in[wkr]) {
      Row projected;
      projected.reserve(exprs.size());
      for (const auto& e : exprs) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
        projected.push_back(std::move(v));
      }
      out[wkr].push_back(std::move(projected));
    }
    m->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = DistRowCount(out);
  m->bytes_out = DistByteSize(out);
  // Placement survives when the hashed column passes through as a
  // bare reference; its slot id changes to the projection's output
  // slot only if the expression is an identity reference.
  std::optional<size_t> hashed;
  if (child.hashed_slot) {
    for (size_t i = 0; i < op.exprs.size(); ++i) {
      const BoundExpr& e = *op.exprs[i];
      if (e.kind == BoundExpr::Kind::kColumnRef &&
          e.slot == *child.hashed_slot) {
        hashed = op.output[i].slot;
      }
    }
  }
  return ExecResult{std::move(out), hashed};
}

Result<ExecResult> Executor::ExecuteJoin(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult left_in, ExecuteOp(*op.children[0]));
  RADB_ASSIGN_OR_RETURN(ExecResult right_in, ExecuteOp(*op.children[1]));
  Dist& left = left_in.dist;
  Dist& right = right_in.dist;
  const size_t w = cluster_.num_workers();
  const auto left_layout = LayoutOf(*op.children[0]);
  const auto right_layout = LayoutOf(*op.children[1]);

  // Combined layout for residual predicates: left columns then right.
  std::map<size_t, size_t> combined;
  for (size_t i = 0; i < op.children[0]->output.size(); ++i) {
    combined[op.children[0]->output[i].slot] = i;
  }
  const size_t left_arity = op.children[0]->output.size();
  for (size_t i = 0; i < op.children[1]->output.size(); ++i) {
    combined[op.children[1]->output[i].slot] = left_arity + i;
  }
  std::vector<BoundExprPtr> residual;
  for (const auto& p : op.residual) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*p, combined));
    residual.push_back(std::move(r));
  }
  // A projection fused into the join (placed there by the optimizer's
  // early-projection rule, §4.1) is evaluated per joined row, so the
  // wide concatenated row is never materialized.
  std::vector<BoundExprPtr> fused;
  for (const auto& e : op.exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, combined));
    fused.push_back(std::move(r));
  }

  const bool is_cross = op.equi_keys.empty();
  const size_t left_bytes = DistByteSize(left);
  const size_t right_bytes = DistByteSize(right);
  const size_t rows_in = DistRowCount(left) + DistRowCount(right);

  std::vector<BoundExprPtr> left_keys, right_keys;
  for (const auto& [l, r] : op.equi_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr lk,
                          RewriteToPositions(*l, left_layout));
    RADB_ASSIGN_OR_RETURN(BoundExprPtr rk,
                          RewriteToPositions(*r, right_layout));
    left_keys.push_back(std::move(lk));
    right_keys.push_back(std::move(rk));
  }

  OperatorMetrics* m = nullptr;
  Dist out(w);

  auto emit = [&](size_t wkr, const Row& l, const Row& r) -> Result<bool> {
    Row joined;
    joined.reserve(l.size() + r.size());
    for (const Value& v : l) joined.push_back(v);
    for (const Value& v : r) joined.push_back(v);
    for (const auto& p : residual) {
      RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, joined));
      if (v.is_null() || !v.bool_value()) return false;
    }
    if (!fused.empty()) {
      Row projected;
      projected.reserve(fused.size());
      for (const auto& e : fused) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, joined));
        projected.push_back(std::move(v));
      }
      out[wkr].push_back(std::move(projected));
      return true;
    }
    out[wkr].push_back(std::move(joined));
    return true;
  };

  if (is_cross) {
    // Broadcast the smaller side; each worker crosses its local
    // partition of the bigger side with the full smaller side.
    const bool broadcast_right = right_bytes <= left_bytes;
    m = NewOp(broadcast_right ? "CrossJoin(bcast right)"
                              : "CrossJoin(bcast left)",
              op);
    m->rows_in = rows_in;
    RowSet small;
    const Dist& small_side = broadcast_right ? right : left;
    for (const RowSet& p : small_side) {
      for (const Row& r : p) small.push_back(r);
    }
    const size_t small_bytes = broadcast_right ? right_bytes : left_bytes;
    m->bytes_shuffled += small_bytes * (w - 1);
    m->rows_shuffled += small.size() * (w - 1);
    const Dist& big = broadcast_right ? left : right;
    // Each worker crosses its own big-side partition with the shared
    // (read-only) broadcast copy.
    RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
      const auto t0 = Clock::now();
      for (const Row& b : big[wkr]) {
        for (const Row& s : small) {
          RADB_ASSIGN_OR_RETURN(
              bool kept, broadcast_right ? emit(wkr, b, s) : emit(wkr, s, b));
          (void)kept;
        }
      }
      m->worker_seconds[wkr] += SecondsSince(t0);
      return Status::OK();
    }));
  } else {
    // Broadcast-vs-shuffle decision, the classical optimizer rule: if
    // replicating the small side everywhere moves fewer bytes than
    // re-hashing both sides, broadcast.
    const size_t shuffle_cost = left_bytes + right_bytes;
    const size_t bcast_small =
        std::min(left_bytes, right_bytes) * (w > 0 ? (w - 1) : 0);
    const bool broadcast = bcast_small < shuffle_cost;
    if (broadcast) {
      const bool broadcast_right = right_bytes <= left_bytes;
      m = NewOp(broadcast_right ? "HashJoin(bcast right)"
                                : "HashJoin(bcast left)",
                op);
      m->rows_in = rows_in;
      // Build a replicated hash table of the small side.
      std::unordered_multimap<KeyRow, const Row*, KeyRowHash> table;
      const Dist& small_side = broadcast_right ? right : left;
      const auto& small_keys = broadcast_right ? right_keys : left_keys;
      for (const RowSet& p : small_side) {
        for (const Row& r : p) {
          RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(small_keys, r));
          if (KeyHasNull(key)) continue;
          table.emplace(std::move(key), &r);
        }
      }
      const size_t small_bytes = broadcast_right ? right_bytes : left_bytes;
      m->bytes_shuffled += small_bytes * (w - 1);
      const Dist& big = broadcast_right ? left : right;
      const auto& big_keys = broadcast_right ? left_keys : right_keys;
      // The replicated hash table was built sequentially above (so its
      // bucket chains — and therefore match order — are independent of
      // the thread count); probing reads it concurrently.
      RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
        const auto t0 = Clock::now();
        for (const Row& b : big[wkr]) {
          RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(big_keys, b));
          if (KeyHasNull(key)) continue;
          auto [begin, end] = table.equal_range(key);
          for (auto it = begin; it != end; ++it) {
            RADB_ASSIGN_OR_RETURN(bool kept,
                                  broadcast_right ? emit(wkr, b, *it->second)
                                                  : emit(wkr, *it->second, b));
            (void)kept;
          }
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
        return Status::OK();
      }));
    } else {
      // A side already hash-placed on its (single, bare-column) join
      // key needs no movement — the §2.1 decision of which side to
      // shuffle, made here with exact physical knowledge.
      const std::optional<size_t> lkey_slot =
          SingleColumnKeySlot(op.equi_keys, /*left_side=*/true);
      const std::optional<size_t> rkey_slot =
          SingleColumnKeySlot(op.equi_keys, /*left_side=*/false);
      const bool left_prehashed = lkey_slot && left_in.hashed_slot &&
                                  *lkey_slot == *left_in.hashed_slot;
      const bool right_prehashed = rkey_slot && right_in.hashed_slot &&
                                   *rkey_slot == *right_in.hashed_slot;
      m = NewOp(left_prehashed && right_prehashed
                    ? "HashJoin(co-located)"
                    : (left_prehashed || right_prehashed
                           ? "HashJoin(shuffle one side)"
                           : "HashJoin(shuffle)"),
                op);
      m->rows_in = rows_in;
      // Re-partition by join key hash; `prehashed` sides stay put and
      // are charged nothing. Shuffle assembly runs in two parallel
      // phases: each source worker splits its partition into per-
      // destination runs, then each destination concatenates its runs
      // in source order — the same bucket order the old sequential
      // loop produced, so join output is independent of thread count.
      using Buckets = std::vector<std::vector<std::pair<KeyRow, Row>>>;
      auto shuffle = [&](Dist& side, const std::vector<BoundExprPtr>& keys,
                         bool prehashed) -> Result<Buckets> {
        std::vector<Buckets> runs(side.size(), Buckets(w));
        std::vector<size_t> local_bytes(side.size(), 0);
        std::vector<size_t> local_rows(side.size(), 0);
        RADB_RETURN_NOT_OK(
            ForEachWorker(side.size(), [&](size_t src) -> Status {
              for (Row& row : side[src]) {
                RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(keys, row));
                if (KeyHasNull(key)) continue;  // inner join: NULL never
                                                // matches
                const size_t dst =
                    prehashed ? src : cluster_.WorkerForHash(key.hash);
                if (dst != src) {
                  local_bytes[src] += RowByteSize(row);
                  ++local_rows[src];
                }
                runs[src][dst].emplace_back(std::move(key), std::move(row));
              }
              side[src].clear();
              return Status::OK();
            }));
        for (size_t src = 0; src < side.size(); ++src) {
          m->bytes_shuffled += local_bytes[src];
          m->rows_shuffled += local_rows[src];
        }
        Buckets buckets(w);
        RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t dst) -> Status {
          size_t total = 0;
          for (const Buckets& r : runs) total += r[dst].size();
          buckets[dst].reserve(total);
          for (Buckets& r : runs) {
            for (auto& kv : r[dst]) buckets[dst].push_back(std::move(kv));
          }
          return Status::OK();
        }));
        return buckets;
      };
      RADB_ASSIGN_OR_RETURN(auto left_parts,
                            shuffle(left, left_keys, left_prehashed));
      RADB_ASSIGN_OR_RETURN(auto right_parts,
                            shuffle(right, right_keys, right_prehashed));
      RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
        const auto t0 = Clock::now();
        std::unordered_multimap<KeyRow, const Row*, KeyRowHash> table;
        table.reserve(right_parts[wkr].size());
        for (const auto& [key, row] : right_parts[wkr]) {
          table.emplace(key, &row);
        }
        for (const auto& [key, row] : left_parts[wkr]) {
          auto [begin, end] = table.equal_range(key);
          for (auto it = begin; it != end; ++it) {
            RADB_ASSIGN_OR_RETURN(bool kept, emit(wkr, row, *it->second));
            (void)kept;
          }
        }
        m->worker_seconds[wkr] += SecondsSince(t0);
        return Status::OK();
      }));
    }
  }
  m->rows_out = DistRowCount(out);
  m->bytes_out = DistByteSize(out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteAggregate(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  const size_t w = cluster_.num_workers();
  const auto layout = LayoutOf(*op.children[0]);

  std::vector<BoundExprPtr> group_exprs;
  for (const auto& g : op.group_exprs) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr e, RewriteToPositions(*g, layout));
    group_exprs.push_back(std::move(e));
  }
  std::vector<BoundExprPtr> agg_args;
  for (const auto& a : op.aggs) {
    if (a.is_count_star) {
      agg_args.push_back(MakeBoundLiteral(Value::Int(1)));
    } else {
      RADB_ASSIGN_OR_RETURN(BoundExprPtr e,
                            RewriteToPositions(*a.arg, layout));
      agg_args.push_back(std::move(e));
    }
  }

  struct GroupState {
    Row key;
    std::vector<std::unique_ptr<Aggregator>> aggs;
  };
  using GroupMap =
      std::unordered_map<KeyRow, std::unique_ptr<GroupState>, KeyRowHash>;

  // Phase 1: local partial aggregation on every worker.
  OperatorMetrics* m1 = NewOp("Aggregate(partial)", op);
  m1->rows_in = DistRowCount(in);
  std::vector<GroupMap> partials(w);
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    for (const Row& row : in[wkr]) {
      RADB_ASSIGN_OR_RETURN(KeyRow key, EvalKey(group_exprs, row));
      auto it = partials[wkr].find(key);
      if (it == partials[wkr].end()) {
        auto state = std::make_unique<GroupState>();
        state->key = key.values;
        for (const AggCall& a : op.aggs) state->aggs.push_back(a.fn->make());
        it = partials[wkr].emplace(std::move(key), std::move(state)).first;
      }
      for (size_t i = 0; i < agg_args.size(); ++i) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg_args[i], row));
        RADB_RETURN_NOT_OK(it->second->aggs[i]->Update(v));
      }
    }
    m1->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  for (size_t wkr = 0; wkr < in.size(); ++wkr) {
    m1->rows_out += partials[wkr].size();
  }

  // Phase 2: shuffle partial states by group key hash (scalar
  // aggregates — no GROUP BY — all land on worker 0). Each
  // destination worker walks every source's partial map and merges
  // exactly the groups it owns, visiting sources in index order — the
  // same merge order as a sequential src-major sweep, so floating-
  // point aggregation results are independent of the thread count.
  // (Tasks move states out of distinct map entries; the map structure
  // itself is only read.)
  // NewOp can reallocate the metrics vector and invalidate m1, so the
  // partial-stage count must be read first.
  const size_t partial_rows_out = m1->rows_out;
  OperatorMetrics* m2 = NewOp("Aggregate(final)", op);
  m2->rows_in = partial_rows_out;
  std::vector<GroupMap> finals(w);
  std::vector<size_t> local_bytes(w, 0);
  std::vector<size_t> local_rows(w, 0);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t dst) -> Status {
    for (size_t src = 0; src < w; ++src) {
      for (auto& [key, state] : partials[src]) {
        const size_t owner =
            group_exprs.empty() ? 0 : cluster_.WorkerForHash(key.hash);
        if (owner != dst) continue;
        if (dst != src) {
          size_t state_bytes = RowByteSize(state->key);
          for (const auto& agg : state->aggs) {
            state_bytes += agg->StateBytes();
          }
          local_bytes[dst] += state_bytes;
          ++local_rows[dst];
        }
        auto it = finals[dst].find(key);
        if (it == finals[dst].end()) {
          finals[dst].emplace(key, std::move(state));
        } else {
          const auto t0 = Clock::now();
          for (size_t i = 0; i < it->second->aggs.size(); ++i) {
            RADB_RETURN_NOT_OK(it->second->aggs[i]->Merge(*state->aggs[i]));
          }
          m2->worker_seconds[dst] += SecondsSince(t0);
        }
      }
    }
    return Status::OK();
  }));
  for (size_t dst = 0; dst < w; ++dst) {
    m2->bytes_shuffled += local_bytes[dst];
    m2->rows_shuffled += local_rows[dst];
  }
  for (GroupMap& p : partials) p.clear();

  // Phase 3: finalize into output rows [group keys..., agg results...].
  Dist out(w);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t wkr) -> Status {
    const auto t0 = Clock::now();
    for (auto& [key, state] : finals[wkr]) {
      Row row = state->key;
      for (const auto& agg : state->aggs) {
        RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
        row.push_back(std::move(v));
      }
      out[wkr].push_back(std::move(row));
    }
    m2->worker_seconds[wkr] += SecondsSince(t0);
    return Status::OK();
  }));
  // A scalar aggregate over zero rows still produces one row (SQL
  // semantics): COUNT() = 0, SUM() = NULL.
  if (group_exprs.empty() && DistRowCount(out) == 0) {
    Row row;
    for (const AggCall& a : op.aggs) {
      auto agg = a.fn->make();
      RADB_ASSIGN_OR_RETURN(Value v, agg->Finalize());
      row.push_back(std::move(v));
    }
    out[0].push_back(std::move(row));
  }
  m2->rows_out = DistRowCount(out);
  m2->bytes_out = DistByteSize(out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteDistinct(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  OperatorMetrics* m = NewOp("Distinct", op);
  m->rows_in = DistRowCount(in);
  const size_t w = cluster_.num_workers();
  // Shuffle by whole-row hash, then dedupe locally. Two phases so
  // both sides parallelize with disjoint writes: every source worker
  // splits its rows into per-destination runs, then every destination
  // dedupes its runs in source order — the same insertion order as a
  // sequential src-major sweep, so the surviving (first) duplicate
  // and the set's iteration order match at any thread count.
  std::vector<std::vector<std::vector<std::pair<KeyRow, Row>>>> runs(
      in.size(), std::vector<std::vector<std::pair<KeyRow, Row>>>(w));
  std::vector<size_t> local_bytes(in.size(), 0);
  std::vector<size_t> local_rows(in.size(), 0);
  RADB_RETURN_NOT_OK(ForEachWorker(in.size(), [&](size_t src) -> Status {
    const auto t0 = Clock::now();
    for (Row& row : in[src]) {
      KeyRow key{row, HashRow(row)};
      const size_t dst = cluster_.WorkerForHash(key.hash);
      if (dst != src) {
        local_bytes[src] += RowByteSize(row);
        ++local_rows[src];
      }
      runs[src][dst].emplace_back(std::move(key), std::move(row));
    }
    m->worker_seconds[src] += SecondsSince(t0);
    return Status::OK();
  }));
  for (size_t src = 0; src < in.size(); ++src) {
    m->bytes_shuffled += local_bytes[src];
    m->rows_shuffled += local_rows[src];
  }
  std::vector<std::unordered_map<KeyRow, Row, KeyRowHash>> sets(w);
  Dist out(w);
  RADB_RETURN_NOT_OK(ForEachWorker(w, [&](size_t dst) -> Status {
    const auto t0 = Clock::now();
    for (size_t src = 0; src < in.size(); ++src) {
      for (auto& [key, row] : runs[src][dst]) {
        sets[dst].emplace(std::move(key), std::move(row));
      }
    }
    for (auto& [key, row] : sets[dst]) out[dst].push_back(std::move(row));
    m->worker_seconds[dst] += SecondsSince(t0);
    return Status::OK();
  }));
  m->rows_out = DistRowCount(out);
  m->bytes_out = DistByteSize(out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteSort(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  OperatorMetrics* m = NewOp("Sort", op);
  m->rows_in = DistRowCount(in);
  const auto layout = LayoutOf(*op.children[0]);
  std::vector<std::pair<BoundExprPtr, bool>> keys;
  for (const auto& [e, desc] : op.sort_keys) {
    RADB_ASSIGN_OR_RETURN(BoundExprPtr r, RewriteToPositions(*e, layout));
    keys.emplace_back(std::move(r), desc);
  }
  // Gather everything onto worker 0 and sort there.
  Dist out(cluster_.num_workers());
  RowSet& all = out[0];
  for (size_t src = 0; src < in.size(); ++src) {
    for (Row& row : in[src]) {
      if (src != 0) {
        m->bytes_shuffled += RowByteSize(row);
        ++m->rows_shuffled;
      }
      all.push_back(std::move(row));
    }
  }
  const auto t0 = Clock::now();
  Status sort_status = Status::OK();
  std::stable_sort(all.begin(), all.end(),
                   [&](const Row& a, const Row& b) {
                     if (!sort_status.ok()) return false;
                     for (const auto& [e, desc] : keys) {
                       auto va = EvalExpr(*e, a);
                       auto vb = EvalExpr(*e, b);
                       if (!va.ok() || !vb.ok()) {
                         sort_status = va.ok() ? vb.status() : va.status();
                         return false;
                       }
                       auto c = va->Compare(*vb);
                       if (!c.ok()) {
                         sort_status = c.status();
                         return false;
                       }
                       if (*c != 0) return desc ? *c > 0 : *c < 0;
                     }
                     return false;
                   });
  RADB_RETURN_NOT_OK(sort_status);
  m->worker_seconds[0] += SecondsSince(t0);
  m->rows_out = all.size();
  m->bytes_out = DistByteSize(out);
  return ExecResult{std::move(out), std::nullopt};
}

Result<ExecResult> Executor::ExecuteLimit(const LogicalOp& op) {
  RADB_ASSIGN_OR_RETURN(ExecResult child, ExecuteOp(*op.children[0]));
  Dist& in = child.dist;
  OperatorMetrics* m = NewOp("Limit", op);
  m->rows_in = DistRowCount(in);
  Dist out(cluster_.num_workers());
  RowSet& dst = out[0];
  const size_t limit = static_cast<size_t>(std::max<int64_t>(0, op.limit));
  for (size_t src = 0; src < in.size() && dst.size() < limit; ++src) {
    for (Row& row : in[src]) {
      if (dst.size() >= limit) break;
      if (src != 0) {
        m->bytes_shuffled += RowByteSize(row);
        ++m->rows_shuffled;
      }
      dst.push_back(std::move(row));
    }
  }
  m->rows_out = dst.size();
  m->bytes_out = DistByteSize(out);
  return ExecResult{std::move(out), std::nullopt};
}

}  // namespace radb
