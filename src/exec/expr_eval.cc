#include "exec/expr_eval.h"

namespace radb {

Result<Value> EvalExpr(const BoundExpr& expr, const Row& row) {
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal;
    case BoundExpr::Kind::kColumnRef:
      if (expr.slot >= row.size()) {
        return Status::Internal("column position " +
                                std::to_string(expr.slot) +
                                " out of row bounds");
      }
      return row[expr.slot];
    case BoundExpr::Kind::kArith: {
      RADB_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row));
      RADB_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row));
      return EvalArith(expr.arith_op, lhs, rhs);
    }
    case BoundExpr::Kind::kCompare: {
      RADB_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row));
      RADB_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row));
      return EvalCompare(expr.compare_op, lhs, rhs);
    }
    case BoundExpr::Kind::kLogic: {
      RADB_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row));
      // SQL three-valued logic with short-circuiting:
      //   AND: FALSE dominates, then NULL;  OR: TRUE dominates, then NULL.
      if (expr.logic_is_and) {
        if (!lhs.is_null() && !lhs.bool_value()) return Value::Bool(false);
        RADB_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row));
        if (!rhs.is_null() && !rhs.bool_value()) return Value::Bool(false);
        if (lhs.is_null() || rhs.is_null()) return Value::Null();
        return Value::Bool(true);
      }
      if (!lhs.is_null() && lhs.bool_value()) return Value::Bool(true);
      RADB_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row));
      if (!rhs.is_null() && rhs.bool_value()) return Value::Bool(true);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case BoundExpr::Kind::kNot: {
      RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.bool_value());
    }
    case BoundExpr::Kind::kNeg: {
      RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      return EvalNegate(v);
    }
    case BoundExpr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& c : expr.children) {
        RADB_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row));
        // SQL scalar functions are NULL-strict.
        if (v.is_null()) return Value::Null();
        args.push_back(std::move(v));
      }
      return expr.fn->eval(args);
    }
    case BoundExpr::Kind::kParam:
      // Cached prepared plans substitute parameters with literals
      // before execution; reaching here means a substitution was missed.
      return Status::Internal("unbound parameter $" +
                              std::to_string(expr.slot));
  }
  return Status::Internal("unhandled bound expression kind");
}

namespace {

Status RewriteInPlace(BoundExpr* expr,
                      const std::map<size_t, size_t>& layout) {
  if (expr->kind == BoundExpr::Kind::kColumnRef) {
    auto it = layout.find(expr->slot);
    if (it == layout.end()) {
      return Status::Internal("slot " + std::to_string(expr->slot) + " (" +
                              expr->column_name +
                              ") not available in operator input");
    }
    expr->slot = it->second;
    return Status::OK();
  }
  for (auto& c : expr->children) {
    RADB_RETURN_NOT_OK(RewriteInPlace(c.get(), layout));
  }
  return Status::OK();
}

}  // namespace

Result<BoundExprPtr> RewriteToPositions(
    const BoundExpr& expr, const std::map<size_t, size_t>& layout) {
  BoundExprPtr clone = expr.Clone();
  RADB_RETURN_NOT_OK(RewriteInPlace(clone.get(), layout));
  return clone;
}

}  // namespace radb
