#ifndef RADB_EXEC_EXECUTOR_H_
#define RADB_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dist/cluster.h"
#include "dist/metrics.h"
#include "obs/obs.h"
#include "plan/logical_plan.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace radb {

/// Rows distributed across the simulated cluster: one RowSet per
/// worker. This is the fully-materialized form the Database gathers
/// results from; between operators rows travel as a SpillableDist so
/// intermediates can overflow to disk under a memory budget.
using Dist = std::vector<RowSet>;

/// An operator's distributed output plus its physical property: if
/// `hashed_slot` is set, rows are placed by Hash(value of that slot)
/// modulo the worker count — the knowledge that lets a downstream
/// join skip re-shuffling that side (paper §2.1: "R was already
/// partitioned on the join key").
struct ExecResult {
  SpillableDist dist;
  std::optional<size_t> hashed_slot;
};

/// Total payload bytes across all partitions.
size_t DistByteSize(const Dist& d);
/// Total row count across all partitions.
size_t DistRowCount(const Dist& d);
/// The same totals for the spillable form (O(workers), from the
/// buffers' running counters).
size_t SpillDistByteSize(const SpillableDist& d);
size_t SpillDistRowCount(const SpillableDist& d);

/// Executes optimized logical plans over the simulated shared-nothing
/// cluster. Hash joins shuffle (or broadcast) their inputs, group-by
/// aggregation runs in two phases (local partial aggregation, then a
/// shuffle of partial states by group key), and every cross-worker
/// byte is charged to the producing operator's metrics — that is the
/// data Figures 1-4 are built from.
///
/// When a ThreadPool is supplied, each simulated worker's partition
/// loop runs as one pool task, so the recorded max-worker time
/// becomes an actual wall-clock speedup. Every parallel loop writes
/// only per-worker state (out[w], worker_seconds[w], local shuffle
/// tallies merged on the driver afterwards) and preserves the
/// sequential iteration order within each worker, so results are
/// bit-identical at any thread count.
///
/// Memory governance: when a MemoryContext with a budgeted tracker is
/// supplied, every inter-operator row buffer is spillable (exact
/// append-order replay keeps floating-point results bit-identical),
/// hash-join build sides fall back to Grace-style partition spilling,
/// and aggregation admits groups against the budget, spilling rows of
/// unadmitted groups for later passes. State that cannot spill (sort
/// buffers, DISTINCT sets, broadcast tables, aggregate accumulator
/// growth) reserves hard and fails the query with ResourceExhausted,
/// leaving the Database healthy.
/// Engine selection knobs, threaded down from Database::Config.
struct ExecOptions {
  /// Master switch for the columnar batch engine. Even when on, a
  /// pipeline runs vectorized only if the optimizer marked its nodes
  /// batch-capable, and never under a memory budget (columnar
  /// operator state cannot spill; the row engine can).
  bool enable_vectorized = true;
  /// Lanes per ColumnBatch on the vectorized path.
  size_t batch_rows = 1024;
};

class Executor {
 public:
  /// `obs` carries the (optional) tracer and metrics registry; the
  /// default is the disabled null-object fast path. `pool` is the
  /// execution thread pool (null = sequential). `mem` is the per-query
  /// memory context (null tracker = untracked, unlimited).
  explicit Executor(const Cluster& cluster, QueryMetrics* metrics,
                    obs::ObsContext obs = {}, ThreadPool* pool = nullptr,
                    MemoryContext mem = {}, ExecOptions opts = {})
      : cluster_(cluster),
        metrics_(metrics),
        obs_(obs),
        pool_(pool),
        mem_(std::move(mem)),
        opts_(opts) {}

  Result<Dist> Execute(const LogicalOp& op);

  /// Per-worker columnar consumer a vectorized pipeline installs on
  /// its boundary join (vectorized.cc): ExecuteJoin streams joined
  /// pairs straight into the pipeline's column batches instead of
  /// materializing every joined Row into its output distribution —
  /// the dominant cost of high-fanout joins like the paper's
  /// tuple-coded Gram self-join. AppendPair carries the unconcatenated
  /// sides (left columns then right columns); AppendRow carries a
  /// materialized row where the join had to build one anyway
  /// (residual predicates, fused projection, the Grace merge).
  /// Calls for worker w arrive on w's thread and touch only worker-w
  /// state.
  class JoinBatchSink {
   public:
    virtual ~JoinBatchSink() = default;
    virtual Status AppendPair(size_t wkr, const Row& left,
                              const Row& right) = 0;
    virtual Status AppendRow(size_t wkr, Row joined) = 0;
  };

  /// Indexes into metrics()->operators of the OperatorMetrics this
  /// execution produced for `node` (an Aggregate yields two: partial
  /// and final). nullptr when the node was never executed. Used by
  /// EXPLAIN ANALYZE to annotate the plan tree.
  const std::vector<size_t>* MetricsForNode(const LogicalOp* node) const {
    auto it = node_metrics_.find(node);
    return it == node_metrics_.end() ? nullptr : &it->second;
  }

 private:
  friend class VectorizedPipeline;

  Result<ExecResult> ExecuteOp(const LogicalOp& op);
  Result<ExecResult> DispatchOp(const LogicalOp& op);
  /// Columnar fast path (vectorized.cc): when `op` heads a
  /// batch-capable scan/filter/project[/aggregate] chain, executes the
  /// whole chain batch-at-a-time and returns its result; nullopt means
  /// "not vectorizable here", and the caller dispatches to the row
  /// engine. Results are bit-identical to the row path.
  Result<std::optional<ExecResult>> TryVectorized(const LogicalOp& op);
  Result<ExecResult> ExecuteScan(const LogicalOp& op);
  /// B+ tree range scan for a kScan annotated with index bounds by the
  /// optimizer: probes the tree once, then materializes the matching
  /// rows per worker in (partition, ordinal) order — the same relative
  /// order a full scan would emit them, so downstream results are
  /// bit-identical to the unindexed plan.
  Result<ExecResult> ExecuteIndexScan(const LogicalOp& op,
                                      const storage::BTreeIndex& tree);
  /// Index-nested-loop join for a kJoin annotated `index_nl`: probes
  /// the inner scan's B+ tree with each outer row's key instead of
  /// building a hash table. nullopt when the annotation is stale (index
  /// dropped or degraded since planning) — the caller falls back to the
  /// hash path.
  Result<std::optional<ExecResult>> TryIndexJoin(const LogicalOp& op);
  Result<ExecResult> ExecuteFilter(const LogicalOp& op);
  Result<ExecResult> ExecuteProject(const LogicalOp& op);
  Result<ExecResult> ExecuteJoin(const LogicalOp& op);
  Result<ExecResult> ExecuteAggregate(const LogicalOp& op);
  Result<ExecResult> ExecuteDistinct(const LogicalOp& op);
  Result<ExecResult> ExecuteSort(const LogicalOp& op);
  Result<ExecResult> ExecuteLimit(const LogicalOp& op);

  /// slot -> position map for an operator's output.
  static std::map<size_t, size_t> LayoutOf(const LogicalOp& op);

  /// `n` empty spillable buffers wired to this query's MemoryContext.
  SpillableDist NewDist(size_t n) const;

  /// Appends an OperatorMetrics entry for `op`, seeded with the
  /// optimizer's cardinality estimate, and records the node → entry
  /// association for EXPLAIN ANALYZE.
  OperatorMetrics* NewOp(std::string name, const LogicalOp& op);

  /// Publishes whole-query totals to the metrics registry and
  /// synthesizes per-worker trace lanes (no-op when obs is disabled).
  void PublishObservability();

  /// Runs body(w) for w in [0, n), one pool task per simulated
  /// worker (sequential without a pool). Each task must touch only
  /// worker-w state. Returns the lowest-index non-OK status so error
  /// reporting is deterministic across thread counts.
  Status ForEachWorker(size_t n, const std::function<Status(size_t)>& body);

  const Cluster& cluster_;
  QueryMetrics* metrics_;
  obs::ObsContext obs_;
  ThreadPool* pool_ = nullptr;
  MemoryContext mem_;
  ExecOptions opts_;
  std::map<const LogicalOp*, std::vector<size_t>> node_metrics_;
  /// Installed (and save/restored) by VectorizedPipeline around the
  /// execution of a boundary join; `join_sink_op_` pins the sink to
  /// that one join node so joins nested deeper in the subtree are
  /// unaffected.
  JoinBatchSink* join_sink_ = nullptr;
  const LogicalOp* join_sink_op_ = nullptr;
};

}  // namespace radb

#endif  // RADB_EXEC_EXECUTOR_H_
