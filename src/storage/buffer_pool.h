#ifndef RADB_STORAGE_BUFFER_POOL_H_
#define RADB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mem/memory_tracker.h"
#include "obs/metrics_registry.h"
#include "types/value.h"

namespace radb::storage {

/// Rows of one deserialized table segment, shared between the cache
/// and every pin currently holding it.
using SegmentRows = std::vector<Row>;

/// LRU-with-pin-counts cache of deserialized table segments, the
/// residency layer that admits tables larger than RAM.
///
/// Granularity is one sealed segment (a bounded run of rows serialized
/// as a single pager record): a scan pins the segment it is walking,
/// everything else is evictable. Entries are always CLEAN — only data
/// already durable in a page file is ever cached here — so eviction is
/// a pure drop and never does I/O. Dirty state (open tail runs, sealed
/// segments not yet checkpointed, mutated indexes) is charged through
/// Charge()/Discharge() as unevictable weight instead: it pushes clean
/// segments out but cannot be evicted itself; checkpointing converts
/// it back into evictable cached segments.
///
/// Memory is governed by an owned MemoryTracker root (label
/// "buffer_pool") so pool usage shows up in the same ledger as
/// query-execution memory. The budget is a soft cap: when every
/// resident byte is pinned or unevictable, a load overshoots rather
/// than failing — correctness never depends on the cap, and the
/// overshoot is bounded by what is simultaneously pinned.
///
/// Thread-safe; the loader callback runs outside the pool mutex so
/// concurrent misses on different segments overlap their I/O. Two
/// racing loads of the same key both run, and the loser's copy is
/// discarded on insert.
class BufferPool {
 public:
  struct Key {
    uint64_t table = 0;
    uint32_t partition = 0;
    uint32_t segment = 0;

    bool operator==(const Key& o) const {
      return table == o.table && partition == o.partition &&
             segment == o.segment;
    }
  };

  /// What a loader produces: the deserialized rows plus the charge
  /// (serialized byte size — the stable, recomputable cost basis).
  struct LoadedSegment {
    std::shared_ptr<const SegmentRows> rows;
    size_t charge = 0;
  };

  /// RAII pin: keeps the segment resident (and the rows pointer valid)
  /// until destroyed. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(BufferPool* pool, Key key, std::shared_ptr<const SegmentRows> rows)
        : pool_(pool), key_(key), rows_(std::move(rows)) {}
    ~Pin() { Reset(); }
    Pin(Pin&& o) noexcept
        : pool_(o.pool_), key_(o.key_), rows_(std::move(o.rows_)) {
      o.pool_ = nullptr;
    }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        Reset();
        pool_ = o.pool_;
        key_ = o.key_;
        rows_ = std::move(o.rows_);
        o.pool_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    const SegmentRows& rows() const { return *rows_; }
    explicit operator bool() const { return rows_ != nullptr; }
    void Reset();

   private:
    BufferPool* pool_ = nullptr;
    Key key_;
    std::shared_ptr<const SegmentRows> rows_;
  };

  /// `budget_bytes` 0 = unlimited (pure bookkeeping). `metrics` may be
  /// null.
  explicit BufferPool(size_t budget_bytes,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Returns a pin on the cached segment, calling `loader` on a miss.
  Result<Pin> GetOrLoad(const Key& key,
                        const std::function<Result<LoadedSegment>()>& loader);

  /// Drops every (unpinned) cached segment of `table`. Used by DROP
  /// TABLE and repartitioning, both of which run under the exclusive
  /// catalog latch — nothing can hold pins concurrently.
  void EraseTable(uint64_t table);

  /// Unevictable-weight accounting for dirty state living outside the
  /// cache (see class comment). Charging may evict clean segments to
  /// make room but never fails.
  void Charge(size_t bytes);
  void Discharge(size_t bytes);

  struct Stats {
    size_t budget_bytes = 0;
    size_t cached_bytes = 0;       // clean segments resident
    size_t unevictable_bytes = 0;  // dirty weight via Charge()
    size_t entries = 0;
    size_t pinned_entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Stats GetStats() const;

  mem::MemoryTracker* tracker() { return &tracker_; }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<uint64_t>()(k.table);
      h = h * 1315423911u ^ std::hash<uint64_t>()(
                                (static_cast<uint64_t>(k.partition) << 32) |
                                k.segment);
      return h;
    }
  };
  struct Entry {
    std::shared_ptr<const SegmentRows> rows;
    size_t charge = 0;
    size_t pins = 0;
    /// Position in lru_ when pins == 0; lru_.end() while pinned.
    std::list<Key>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(const Key& key);
  /// Evicts unpinned entries (LRU first) until `need` bytes fit under
  /// budget or nothing evictable remains. Caller holds mu_.
  void EvictForLocked(size_t need);

  mem::MemoryTracker tracker_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* cached_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  /// Unpinned entries, most recently used at the front.
  std::list<Key> lru_;
  size_t cached_bytes_ = 0;
  size_t unevictable_bytes_ = 0;
  uint64_t hit_count_ = 0;
  uint64_t miss_count_ = 0;
  uint64_t eviction_count_ = 0;

  friend class Pin;
};

}  // namespace radb::storage

#endif  // RADB_STORAGE_BUFFER_POOL_H_
