#ifndef RADB_STORAGE_CSV_H_
#define RADB_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace radb {

/// Writes a table as CSV with a header row. Scalar columns print
/// naturally; VECTOR and MATRIX columns are serialized as quoted
/// "[v;v;...]" / "[r,c;v;v;...]" payloads so round trips are exact in
/// shape (doubles print with max_digits10, so values round-trip too).
Status WriteCsvFile(const Table& table, const std::string& path);

/// Reads a CSV written by WriteCsvFile (or hand-authored with the same
/// conventions) against an explicit schema; rows distribute
/// round-robin over `num_partitions`.
Result<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           size_t num_partitions);

}  // namespace radb

#endif  // RADB_STORAGE_CSV_H_
