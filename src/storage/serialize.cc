#include "storage/serialize.h"

#include "obs/metrics_registry.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace radb {

namespace {

constexpr char kMagic[8] = {'R', 'A', 'D', 'B', 'T', 'B', 'L', '1'};

// On-disk kind tags (stable across versions; do not reorder).
enum class Tag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kLabeled = 5,
  kVector = 6,
  kMatrix = 7,
  kSparse = 8,  // sparsely-represented MATRIX (CSR payload)
};

}  // namespace

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream& os, const std::string& s) {
  WriteU64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint64_t> ReadU64(std::istream& is) {
  uint64_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    return Status::InvalidArgument("truncated table file (u64)");
  }
  return v;
}
Result<int64_t> ReadI64(std::istream& is) {
  int64_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    return Status::InvalidArgument("truncated table file (i64)");
  }
  return v;
}
Result<double> ReadF64(std::istream& is) {
  double v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    return Status::InvalidArgument("truncated table file (f64)");
  }
  return v;
}
Result<std::string> ReadString(std::istream& is) {
  RADB_ASSIGN_OR_RETURN(uint64_t len, ReadU64(is));
  if (len > (1ULL << 32)) {
    return Status::InvalidArgument("corrupt table file (string length)");
  }
  std::string s(len, '\0');
  if (!is.read(s.data(), static_cast<std::streamsize>(len))) {
    return Status::InvalidArgument("truncated table file (string)");
  }
  return s;
}

void WriteType(std::ostream& os, const DataType& t) {
  WriteU64(os, static_cast<uint64_t>(t.kind()));
  WriteI64(os, t.rows() ? *t.rows() : -1);
  WriteI64(os, t.cols() ? *t.cols() : -1);
}

Result<DataType> ReadType(std::istream& is) {
  RADB_ASSIGN_OR_RETURN(uint64_t kind, ReadU64(is));
  RADB_ASSIGN_OR_RETURN(int64_t rows, ReadI64(is));
  RADB_ASSIGN_OR_RETURN(int64_t cols, ReadI64(is));
  const Dim r = rows < 0 ? Dim() : Dim(rows);
  const Dim c = cols < 0 ? Dim() : Dim(cols);
  switch (static_cast<TypeKind>(kind)) {
    case TypeKind::kVector:
      return DataType::MakeVector(r);
    case TypeKind::kMatrix:
      return DataType::MakeMatrix(r, c);
    case TypeKind::kNull:
    case TypeKind::kBoolean:
    case TypeKind::kInteger:
    case TypeKind::kDouble:
    case TypeKind::kString:
    case TypeKind::kLabeledScalar:
      return DataType(static_cast<TypeKind>(kind));
  }
  return Status::InvalidArgument("corrupt table file (type kind)");
}

namespace {

void WriteValue(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      os.put(static_cast<char>(Tag::kNull));
      return;
    case TypeKind::kBoolean:
      os.put(static_cast<char>(Tag::kBool));
      os.put(v.bool_value() ? 1 : 0);
      return;
    case TypeKind::kInteger:
      os.put(static_cast<char>(Tag::kInt));
      WriteI64(os, v.int_value());
      return;
    case TypeKind::kDouble:
      os.put(static_cast<char>(Tag::kDouble));
      WriteF64(os, v.double_value());
      return;
    case TypeKind::kString:
      os.put(static_cast<char>(Tag::kString));
      WriteString(os, v.string_value());
      return;
    case TypeKind::kLabeledScalar:
      os.put(static_cast<char>(Tag::kLabeled));
      WriteF64(os, v.labeled().value);
      WriteI64(os, v.labeled().label);
      return;
    case TypeKind::kVector: {
      os.put(static_cast<char>(Tag::kVector));
      WriteI64(os, v.vector_value().label);
      const la::Vector& vec = v.vector();
      WriteU64(os, vec.size());
      os.write(reinterpret_cast<const char*>(vec.data()),
               static_cast<std::streamsize>(vec.size() * sizeof(double)));
      return;
    }
    case TypeKind::kMatrix: {
      if (v.is_sparse_matrix()) {
        // tag + rows + cols + nnz + row_ptr[(rows+1) u64] + cols-as-u64
        // + values. Value::ByteSize() for a sparse value is pinned to
        // exactly these bytes (1 + SerializedByteSize()).
        os.put(static_cast<char>(Tag::kSparse));
        const la::sparse::CsrMatrix& m = v.sparse_matrix();
        WriteU64(os, m.rows());
        WriteU64(os, m.cols());
        WriteU64(os, m.nnz());
        os.write(reinterpret_cast<const char*>(m.row_ptr().data()),
                 static_cast<std::streamsize>((m.rows() + 1) *
                                              sizeof(uint64_t)));
        for (uint32_t c : m.col_idx()) WriteU64(os, c);
        os.write(reinterpret_cast<const char*>(m.values().data()),
                 static_cast<std::streamsize>(m.nnz() * sizeof(double)));
        return;
      }
      os.put(static_cast<char>(Tag::kMatrix));
      const la::Matrix& m = v.matrix();
      WriteU64(os, m.rows());
      WriteU64(os, m.cols());
      os.write(
          reinterpret_cast<const char*>(m.data()),
          static_cast<std::streamsize>(m.rows() * m.cols() * sizeof(double)));
      return;
    }
  }
}

Result<Value> ReadValue(std::istream& is) {
  const int tag = is.get();
  if (tag == EOF) {
    return Status::InvalidArgument("truncated table file (value tag)");
  }
  switch (static_cast<Tag>(tag)) {
    case Tag::kNull:
      return Value::Null();
    case Tag::kBool: {
      const int b = is.get();
      if (b == EOF) {
        return Status::InvalidArgument("truncated table file (bool)");
      }
      return Value::Bool(b != 0);
    }
    case Tag::kInt: {
      RADB_ASSIGN_OR_RETURN(int64_t v, ReadI64(is));
      return Value::Int(v);
    }
    case Tag::kDouble: {
      RADB_ASSIGN_OR_RETURN(double v, ReadF64(is));
      return Value::Double(v);
    }
    case Tag::kString: {
      RADB_ASSIGN_OR_RETURN(std::string s, ReadString(is));
      return Value::String(std::move(s));
    }
    case Tag::kLabeled: {
      RADB_ASSIGN_OR_RETURN(double v, ReadF64(is));
      RADB_ASSIGN_OR_RETURN(int64_t label, ReadI64(is));
      return Value::Labeled(v, label);
    }
    case Tag::kVector: {
      RADB_ASSIGN_OR_RETURN(int64_t label, ReadI64(is));
      RADB_ASSIGN_OR_RETURN(uint64_t n, ReadU64(is));
      if (n > (1ULL << 32)) {
        return Status::InvalidArgument("corrupt table file (vector size)");
      }
      la::Vector vec(n);
      if (!is.read(reinterpret_cast<char*>(vec.data()),
                   static_cast<std::streamsize>(n * sizeof(double)))) {
        return Status::InvalidArgument("truncated table file (vector)");
      }
      return Value::FromVector(std::move(vec), label);
    }
    case Tag::kMatrix: {
      RADB_ASSIGN_OR_RETURN(uint64_t r, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(uint64_t c, ReadU64(is));
      if (r > (1ULL << 24) || c > (1ULL << 24)) {
        return Status::InvalidArgument("corrupt table file (matrix dims)");
      }
      la::Matrix m(r, c);
      if (!is.read(reinterpret_cast<char*>(m.data()),
                   static_cast<std::streamsize>(r * c * sizeof(double)))) {
        return Status::InvalidArgument("truncated table file (matrix)");
      }
      return Value::FromMatrix(std::move(m));
    }
    case Tag::kSparse: {
      RADB_ASSIGN_OR_RETURN(uint64_t r, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(uint64_t c, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(uint64_t nnz, ReadU64(is));
      if (r > (1ULL << 24) || c > (1ULL << 24) || nnz > r * c) {
        return Status::InvalidArgument("corrupt table file (sparse dims)");
      }
      std::vector<uint64_t> row_ptr(r + 1);
      if (!is.read(reinterpret_cast<char*>(row_ptr.data()),
                   static_cast<std::streamsize>((r + 1) * sizeof(uint64_t)))) {
        return Status::InvalidArgument("truncated table file (sparse rows)");
      }
      if (row_ptr[0] != 0 || row_ptr[r] != nnz) {
        return Status::InvalidArgument("corrupt table file (sparse row_ptr)");
      }
      la::sparse::CsrMatrix m(r, c);
      std::vector<uint64_t> cols(nnz);
      for (uint64_t i = 0; i < nnz; ++i) {
        RADB_ASSIGN_OR_RETURN(cols[i], ReadU64(is));
        if (cols[i] >= c) {
          return Status::InvalidArgument("corrupt table file (sparse col)");
        }
      }
      std::vector<double> vals(nnz);
      if (nnz > 0 &&
          !is.read(reinterpret_cast<char*>(vals.data()),
                   static_cast<std::streamsize>(nnz * sizeof(double)))) {
        return Status::InvalidArgument("truncated table file (sparse vals)");
      }
      for (uint64_t row = 0; row < r; ++row) {
        if (row_ptr[row + 1] < row_ptr[row] || row_ptr[row + 1] > nnz) {
          return Status::InvalidArgument(
              "corrupt table file (sparse row_ptr)");
        }
        for (uint64_t i = row_ptr[row]; i < row_ptr[row + 1]; ++i) {
          m.PushEntry(row, cols[i], vals[i]);
        }
        m.SealRowsThrough(row);
      }
      return Value::FromSparseMatrix(std::move(m));
    }
  }
  return Status::InvalidArgument("corrupt table file (unknown value tag)");
}

}  // namespace

void WriteValueBinary(std::ostream& os, const Value& v) {
  WriteValue(os, v);
}

Result<Value> ReadValueBinary(std::istream& is) { return ReadValue(is); }

void WriteRowBinary(std::ostream& os, const Row& row) {
  WriteU64(os, row.size());
  for (const Value& v : row) WriteValue(os, v);
}

Result<Row> ReadRowBinary(std::istream& is) {
  RADB_ASSIGN_OR_RETURN(uint64_t arity, ReadU64(is));
  if (arity > 65536) {
    return Status::InvalidArgument("corrupt spill run (row arity)");
  }
  Row row;
  row.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    RADB_ASSIGN_OR_RETURN(Value v, ReadValue(is));
    row.push_back(std::move(v));
  }
  return row;
}

Status WriteTableFile(const Table& table, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  os.write(kMagic, sizeof(kMagic));
  WriteString(os, table.name());
  WriteU64(os, table.schema().size());
  for (const Column& c : table.schema().columns()) {
    WriteString(os, c.name);
    WriteType(os, c.type);
  }
  WriteU64(os, table.num_rows());
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    RADB_ASSIGN_OR_RETURN(RowSet rows, table.GatherPartition(p));
    for (const Row& row : rows) {
      for (const Value& v : row) WriteValue(os, v);
    }
  }
  os.flush();
  if (!os) {
    return Status::ExecutionError("write failed for " + path);
  }
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.tables_written", 1);
    const auto pos = os.tellp();
    if (pos > 0) reg->Add("storage.bytes_written", static_cast<uint64_t>(pos));
  }
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadTableFile(const std::string& path,
                                             size_t num_partitions) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::InvalidArgument("cannot open " + path + " for reading");
  }
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a radb table file");
  }
  RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
  RADB_ASSIGN_OR_RETURN(uint64_t num_cols, ReadU64(is));
  if (num_cols > 4096) {
    return Status::InvalidArgument("corrupt table file (column count)");
  }
  Schema schema;
  for (uint64_t i = 0; i < num_cols; ++i) {
    RADB_ASSIGN_OR_RETURN(std::string col_name, ReadString(is));
    RADB_ASSIGN_OR_RETURN(DataType type, ReadType(is));
    schema.Add(Column{"", std::move(col_name), type});
  }
  RADB_ASSIGN_OR_RETURN(uint64_t num_rows, ReadU64(is));
  auto table = std::make_shared<Table>(name, std::move(schema),
                                       num_partitions);
  for (uint64_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) {
      RADB_ASSIGN_OR_RETURN(Value v, ReadValue(is));
      row.push_back(std::move(v));
    }
    RADB_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.tables_read", 1);
    const auto pos = is.tellg();
    if (pos > 0) reg->Add("storage.bytes_read", static_cast<uint64_t>(pos));
  }
  return table;
}

}  // namespace radb
