#ifndef RADB_STORAGE_PAGER_H_
#define RADB_STORAGE_PAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace radb::storage {

/// Address of a heap record inside a PageFile: the slotted page id and
/// the slot within it. Stable for the record's whole life — records are
/// never moved, only freed (and their pages reclaimed wholesale).
struct RecordId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
};

/// One fixed-page-size file holding heap records (serialized table
/// segments and index images). Layout:
///
///   page 0            magic page: "RADBPAG1", page_size, format version
///   pages 1..n-1      slotted data pages or overflow pages
///
/// A slotted page has an 8-byte header {nslots, free_off, live, flags},
/// payload growing up from the header and an 8-byte slot directory
/// {offset, length} growing down from the page end. A record payload
/// starts with a tag byte: 0 = inline bytes follow; 1 = overflow
/// pointer {first_page u32, total_len u64} to a chain of overflow
/// pages {next u32, used u32, bytes}. Records larger than a page
/// (typical table segments) become one small pointer slot plus a chain.
///
/// Free-space metadata ({page_count, free page list}) lives in memory
/// only; the authoritative copy is written into the store's catalog
/// snapshot at checkpoint. Recovery restores it via RestoreMeta() and
/// truncates the file back to the snapshot's page_count, which undoes
/// any partially written post-snapshot appends. Pages freed between
/// two snapshots sit in a pending list — still referenced by the last
/// committed snapshot, so not reusable — and only join the real free
/// list when CommitFrees() is called after the next snapshot renames
/// into place.
///
/// Concurrency: ReadPage/ReadRecord use pread and may run concurrently
/// with each other and with checkpoint writes (a checkpoint only ever
/// writes pages the committed snapshot does not reference, so readers
/// and the writer never touch the same page). Mutating calls are
/// serialized by the caller (checkpoint runs under the service's
/// exclusive latch); internal metadata is mutex-guarded regardless.
class PageFile {
 public:
  static constexpr uint32_t kDefaultPageSize = 8192;
  static constexpr uint32_t kMinPageSize = 512;

  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if absent) the page file. A fresh file gets its
  /// magic page written and fsynced; an existing file's magic page is
  /// validated against `page_size`.
  Status Open(const std::string& path, uint32_t page_size);
  void Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint32_t page_size() const { return page_size_; }

  /// Free-space metadata snapshot/restore (see class comment).
  struct Meta {
    uint64_t page_count = 1;
    std::vector<uint32_t> free_pages;
  };
  /// Current metadata as of this moment, with pages freed since the
  /// last CommitFrees() included in free_pages (they become genuinely
  /// free exactly when the snapshot holding this Meta commits).
  Meta SnapshotMeta() const;
  /// Installs snapshot metadata and truncates the file back to
  /// page_count pages, discarding uncommitted appends.
  Status RestoreMeta(const Meta& meta);
  /// Promotes pending frees to the allocatable free list. Call only
  /// after the snapshot that recorded them has durably committed.
  void CommitFrees();

  uint64_t page_count() const;
  uint64_t free_page_count() const;

  // -- Record layer -------------------------------------------------

  /// Appends a record, spilling to an overflow chain when it does not
  /// fit inline in a slotted page.
  Result<RecordId> AppendRecord(std::string_view data);
  Result<std::string> ReadRecord(RecordId rid) const;
  /// Frees a record (and its overflow chain). Pages whose last live
  /// record is freed go to the pending-free list.
  Status FreeRecord(RecordId rid);

  /// fsyncs file contents.
  Status Sync();

 private:
  Status ReadPageRaw(uint32_t page, std::string* buf) const;
  Status WritePage(uint32_t page, const char* data);
  /// Allocates a page id (free list first, else grows the file).
  uint32_t AllocatePageLocked();
  void FreePageLocked(uint32_t page);

  int fd_ = -1;
  std::string path_;
  uint32_t page_size_ = kDefaultPageSize;

  mutable std::mutex mu_;
  uint64_t page_count_ = 1;
  std::vector<uint32_t> free_;
  std::vector<uint32_t> pending_free_;
  /// Current slotted page receiving small records/pointer slots;
  /// 0 means none yet.
  uint32_t fill_page_ = 0;
};

/// Shared directory-hygiene sweep used by both the spill subsystem and
/// the persistent store: removes files under `dir` whose name starts
/// with `prefix` and whose embedded "-p<pid>-" owner process is dead,
/// falling back to an mtime age check when no pid marker parses.
/// Declared here for storage callers; implemented next to the spill
/// sweeper so both share one predicate (see mem/spill_file.h).
size_t SweepOrphanedStoreFiles(const std::string& dir,
                               uint64_t max_age_seconds);

}  // namespace radb::storage

#endif  // RADB_STORAGE_PAGER_H_
