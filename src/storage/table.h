#ifndef RADB_STORAGE_TABLE_H_
#define RADB_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "types/column.h"
#include "types/schema.h"
#include "types/value.h"

namespace radb {

/// A batch of rows; the unit every physical operator consumes and
/// produces per partition.
using RowSet = std::vector<Row>;

/// How a table's rows are laid out across the simulated cluster. The
/// optimizer uses this to elide shuffles (paper §2.1: "R was already
/// partitioned on the join key").
struct Partitioning {
  enum class Kind { kRoundRobin, kHash, kSingleton };
  Kind kind = Kind::kRoundRobin;
  /// Column index the hash partitioning is on (kind == kHash only).
  size_t hash_column = 0;

  bool IsHashOn(size_t col) const {
    return kind == Kind::kHash && hash_column == col;
  }
};

/// A secondary B+ tree index over one or two INTEGER columns of a
/// table (the tile-coordinate pattern), mapping key -> Rid. `degraded`
/// flips when a non-NULL, non-INTEGER value lands in an indexed
/// column: the tree can no longer answer range predicates faithfully,
/// so the optimizer stops using it (the table stays fully correct —
/// scans never depended on it). NULLs are simply absent from the
/// tree, which is safe because every predicate the optimizer rewrites
/// into an index probe is false on NULL.
struct IndexDef {
  std::string name;
  std::vector<size_t> columns;
  std::unique_ptr<storage::BTreeIndex> tree;
  bool degraded = false;
  /// Persistence state (persistent tables only): where the last
  /// checkpointed image lives, and whether the tree mutated since.
  storage::RecordId record;
  bool on_disk = false;
  bool dirty = true;

  bool usable() const { return !degraded; }
};

/// A stored base table: schema plus rows horizontally partitioned into
/// `num_partitions` shards (one per simulated worker).
///
/// Within a partition, rows live in insertion order as a sequence of
/// SEGMENTS — sealed, immutable runs bounded by `segment_bytes` — plus
/// one open TAIL receiving inserts. A row's stable address is its Rid
/// (partition, ordinal): ordinals never move once assigned, so B+ tree
/// entries stay valid across seals and checkpoints; only
/// RepartitionByHash reassigns them, and that rebuilds every index.
///
/// Residency: an in-memory table keeps every segment resident. A table
/// attached to a persistent store (AttachStore) serves checkpointed
/// segments through the BufferPool — PinSegment faults them in from
/// the table's page file on demand — so the table can be far larger
/// than RAM. Readers hold SegmentPins for exactly the segment they are
/// walking. Mutation and reads are separated by the service's catalog
/// latch, as before.
class Table {
 public:
  static constexpr size_t kDefaultSegmentBytes = 64 * 1024;

  Table(std::string name, Schema schema, size_t num_partitions);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_partitions() const { return parts_.size(); }

  /// Process-unique table identity, assigned at construction. A
  /// DROP + re-CREATE under the same name yields a different id, so
  /// cached results keyed on (id, version) can never alias across
  /// table generations even if the data versions happen to coincide.
  uint64_t id() const { return id_; }
  /// Monotone data version, advanced by every mutation (Insert,
  /// InsertAll, RepartitionByHash). The result cache validates its
  /// source-table dependencies against this.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  const Partitioning& partitioning() const { return partitioning_; }

  size_t num_rows() const;
  /// Approximate payload bytes across all partitions (maintained as
  /// metadata so it never faults segments in).
  size_t byte_size() const;

  /// Appends a row, validating arity and (known) types/dims against
  /// the schema; placed round-robin.
  Status Insert(Row row);
  /// Bulk append with round-robin placement.
  Status InsertAll(std::vector<Row> rows);

  /// Re-shards all rows by hash of `column`; updates partitioning
  /// metadata and rebuilds every index (ordinals change). Used by
  /// tests and by the loader.
  Status RepartitionByHash(size_t column);

  // -- Segment access ------------------------------------------------

  /// A pinned, immutable view of one segment's rows. Holds either a
  /// buffer-pool pin (checkpointed segment of a persistent table) or
  /// a reference to resident rows; valid until destroyed.
  class SegmentPin {
   public:
    SegmentPin() = default;
    const RowSet& rows() const { return *rows_; }
    /// Ordinal of the segment's first row within its partition.
    uint64_t ordinal_base() const { return base_; }
    explicit operator bool() const { return rows_ != nullptr; }

   private:
    friend class Table;
    const RowSet* rows_ = nullptr;
    uint64_t base_ = 0;
    std::shared_ptr<const RowSet> owned_;
    storage::BufferPool::Pin pool_pin_;
  };

  /// Sealed segments plus the open tail when non-empty: segment ids
  /// [0, NumSegments(p)) are pinnable, in partition insertion order.
  size_t NumSegments(size_t partition) const;
  Result<SegmentPin> PinSegment(size_t partition, size_t segment) const;

  /// Maps a row ordinal to (segment, offset within segment).
  struct RowLocation {
    uint32_t segment = 0;
    size_t offset = 0;
  };
  Result<RowLocation> LocateRow(uint32_t partition, uint64_t ordinal) const;
  /// Pins the containing segment and copies out one row.
  Result<Row> FetchRow(storage::Rid rid) const;

  /// All rows gathered into one RowSet, partitions in order
  /// (test/inspection helper; faults everything in).
  Result<RowSet> Gather() const;
  /// One partition's rows in insertion order.
  Result<RowSet> GatherPartition(size_t partition) const;

  // -- Indexes -------------------------------------------------------

  /// Builds a B+ tree over `columns` (1..2 INTEGER columns) from the
  /// current contents; subsequent inserts maintain it.
  Status CreateIndex(const std::string& name,
                     const std::vector<size_t>& columns);
  Status DropIndex(const std::string& name);
  const std::vector<std::unique_ptr<IndexDef>>& indexes() const {
    return indexes_;
  }
  IndexDef* FindIndex(const std::string& name);
  /// First usable index whose column list starts with a permutation-
  /// free prefix match of lookup needs is chosen by the optimizer; the
  /// table only exposes the definitions.

  /// True when every non-NULL value currently stored in `column` has
  /// the column's declared type kind. ValidateRow legally admits
  /// INTEGER values into DOUBLE columns (and integral DOUBLEs into
  /// INTEGER columns), and the row engine's semantics follow the
  /// *runtime* kind — so the typed columnar scan requires kind-pure
  /// columns. Inserts maintain these flags incrementally; the
  /// optimizer consults them when marking scans batch-capable.
  bool ColumnKindPure(size_t column) const {
    return kind_pure_[column] != 0;
  }

  /// Columnar extraction for the vectorized scan: fills `out` with
  /// rows [row_begin, row_begin + row_count) of `rows` (one pinned
  /// segment), one Column per entry of `columns` (schema column
  /// indexes), dense (no selection). Column storage is reused across
  /// calls. The caller guarantees every extracted column's type kind
  /// is representable (Column::KindSupported).
  void ExtractColumns(const RowSet& rows, const std::vector<size_t>& columns,
                      size_t row_begin, size_t row_count,
                      ColumnBatch* out) const;

  // -- Persistence hooks (driven by storage::TableStore) -------------

  /// Attaches this table to a persistent store: checkpointed segments
  /// are served through `pool` from `file`. `segment_bytes` overrides
  /// the seal threshold.
  void AttachStore(storage::BufferPool* pool, storage::PageFile* file,
                   size_t segment_bytes);
  bool persistent() const { return file_ != nullptr; }

  /// Serialized form of one sealed segment's location, for the
  /// catalog snapshot.
  struct SegmentManifest {
    storage::RecordId record;
    uint64_t num_rows = 0;
    uint64_t payload_bytes = 0;
  };
  struct PartitionManifest {
    std::vector<SegmentManifest> segments;
  };
  struct IndexManifest {
    std::string name;
    std::vector<size_t> columns;
    bool degraded = false;
    storage::RecordId record;
  };

  /// Seals open tails, writes every not-yet-persisted segment and
  /// every dirty index image into the table's page file, frees
  /// records replaced since the last checkpoint, and returns the
  /// manifest describing the persisted state. Freshly written
  /// segments are primed into the buffer pool (evictable).
  Result<std::vector<PartitionManifest>> CheckpointSegments();
  Result<std::vector<IndexManifest>> CheckpointIndexes();

  /// Restores a partition's sealed segments from a snapshot manifest
  /// (recovery path; table must be empty and attached).
  Status RestorePartition(size_t partition,
                          const PartitionManifest& manifest);
  /// Restores an index from its checkpoint image (recovery path).
  Status RestoreIndex(const IndexManifest& manifest);

  /// Round-robin cursor, persisted so replayed/recovered inserts land
  /// in the same partitions as the original run.
  uint64_t next_rr() const { return next_rr_; }
  void set_next_rr(uint64_t v) { next_rr_ = v; }
  const std::vector<uint8_t>& kind_pure_flags() const { return kind_pure_; }
  void set_kind_pure_flags(std::vector<uint8_t> flags) {
    if (flags.size() == kind_pure_.size()) kind_pure_ = std::move(flags);
  }
  void set_partitioning(const Partitioning& p) { partitioning_ = p; }

 private:
  /// One sealed, immutable run of rows. `resident` holds the rows
  /// while the segment has not been checkpointed (or the table is
  /// in-memory); checkpointed segments drop `resident` and are served
  /// through the buffer pool keyed (table id, partition, index).
  struct Segment {
    std::shared_ptr<const RowSet> resident;
    storage::RecordId record;
    bool on_disk = false;
    uint64_t num_rows = 0;
    uint64_t payload_bytes = 0;
    uint64_t ordinal_base = 0;
  };
  struct PartitionData {
    std::vector<Segment> sealed;
    RowSet tail;
    uint64_t tail_base = 0;   // ordinal of the first tail row
    size_t tail_bytes = 0;    // approx payload bytes in the tail
  };

  Status ValidateRow(const Row& row) const;
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }
  void PlaceRow(Row row, size_t partition);
  void SealTail(size_t partition);
  void MaybeSealTail(size_t partition);
  Status IndexRow(const Row& row, storage::Rid rid);
  Status InsertIntoIndex(IndexDef& idx, const Row& row, storage::Rid rid);
  Status RebuildIndexes();
  /// Serializes a segment's rows in the radb row codec.
  static std::string EncodeSegment(const RowSet& rows);
  static Result<std::shared_ptr<const RowSet>> DecodeSegment(
      const std::string& bytes);

  uint64_t id_;
  std::atomic<uint64_t> version_{1};
  std::string name_;
  Schema schema_;
  std::vector<PartitionData> parts_;
  Partitioning partitioning_;
  uint64_t next_rr_ = 0;
  /// Per column: 1 while every stored non-NULL value matches the
  /// declared kind (see ColumnKindPure).
  std::vector<uint8_t> kind_pure_;

  std::vector<std::unique_ptr<IndexDef>> indexes_;

  // Persistence attachment (null for in-memory tables).
  storage::BufferPool* pool_ = nullptr;
  storage::PageFile* file_ = nullptr;
  size_t segment_bytes_ = kDefaultSegmentBytes;
  /// Records superseded since the last checkpoint (repartition, index
  /// rewrite); freed during the next checkpoint.
  std::vector<storage::RecordId> dead_records_;
};

}  // namespace radb

#endif  // RADB_STORAGE_TABLE_H_
