#ifndef RADB_STORAGE_TABLE_H_
#define RADB_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/column.h"
#include "types/schema.h"
#include "types/value.h"

namespace radb {

/// A batch of rows; the unit every physical operator consumes and
/// produces per partition.
using RowSet = std::vector<Row>;

/// How a table's rows are laid out across the simulated cluster. The
/// optimizer uses this to elide shuffles (paper §2.1: "R was already
/// partitioned on the join key").
struct Partitioning {
  enum class Kind { kRoundRobin, kHash, kSingleton };
  Kind kind = Kind::kRoundRobin;
  /// Column index the hash partitioning is on (kind == kHash only).
  size_t hash_column = 0;

  bool IsHashOn(size_t col) const {
    return kind == Kind::kHash && hash_column == col;
  }
};

/// A stored base table: schema plus rows horizontally partitioned into
/// `num_partitions` shards (one per simulated worker).
class Table {
 public:
  Table(std::string name, Schema schema, size_t num_partitions);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_partitions() const { return partitions_.size(); }
  const RowSet& partition(size_t i) const { return partitions_[i]; }
  RowSet& mutable_partition(size_t i) {
    // The caller may rewrite rows arbitrarily; conservatively drop the
    // kind-purity knowledge (re-established only by a fresh load) and
    // treat the access as a data mutation.
    std::fill(kind_pure_.begin(), kind_pure_.end(), 0);
    BumpVersion();
    return partitions_[i];
  }

  /// Process-unique table identity, assigned at construction. A
  /// DROP + re-CREATE under the same name yields a different id, so
  /// cached results keyed on (id, version) can never alias across
  /// table generations even if the data versions happen to coincide.
  uint64_t id() const { return id_; }
  /// Monotone data version, advanced by every mutation (Insert,
  /// InsertAll, RepartitionByHash, mutable_partition). The result
  /// cache validates its source-table dependencies against this.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  const Partitioning& partitioning() const { return partitioning_; }

  size_t num_rows() const;
  /// Total payload bytes across all partitions.
  size_t byte_size() const;

  /// Appends a row, validating arity and (known) types/dims against
  /// the schema; placed round-robin.
  Status Insert(Row row);
  /// Bulk append with round-robin placement.
  Status InsertAll(std::vector<Row> rows);

  /// Re-shards all rows by hash of `column`; updates partitioning
  /// metadata. Used by tests and by the loader.
  Status RepartitionByHash(size_t column);

  /// All rows gathered into one RowSet (test/inspection helper).
  RowSet Gather() const;

  /// True when every non-NULL value currently stored in `column` has
  /// the column's declared type kind. ValidateRow legally admits
  /// INTEGER values into DOUBLE columns (and integral DOUBLEs into
  /// INTEGER columns), and the row engine's semantics follow the
  /// *runtime* kind — so the typed columnar scan requires kind-pure
  /// columns. Inserts maintain these flags incrementally; the
  /// optimizer consults them when marking scans batch-capable.
  bool ColumnKindPure(size_t column) const {
    return kind_pure_[column] != 0;
  }

  /// Columnar extraction for the vectorized scan: fills `out` with
  /// rows [row_begin, row_begin + row_count) of partition `partition`,
  /// one Column per entry of `columns` (schema column indexes), dense
  /// (no selection). Column storage is reused across calls. The caller
  /// guarantees every extracted column's type kind is representable
  /// (Column::KindSupported).
  void ExtractColumns(size_t partition, const std::vector<size_t>& columns,
                      size_t row_begin, size_t row_count,
                      ColumnBatch* out) const;

 private:
  Status ValidateRow(const Row& row) const;

  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  uint64_t id_;
  std::atomic<uint64_t> version_{1};
  std::string name_;
  Schema schema_;
  std::vector<RowSet> partitions_;
  Partitioning partitioning_;
  size_t next_rr_ = 0;
  /// Per column: 1 while every stored non-NULL value matches the
  /// declared kind (see ColumnKindPure).
  std::vector<uint8_t> kind_pure_;
};

}  // namespace radb

#endif  // RADB_STORAGE_TABLE_H_
