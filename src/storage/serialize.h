#ifndef RADB_STORAGE_SERIALIZE_H_
#define RADB_STORAGE_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace radb {

/// Primitive codecs shared by the table-file format, the persistent
/// store's catalog snapshot, and its write-ahead log. Fixed-width
/// little-endian integers/doubles and length-prefixed strings; every
/// Read* reports truncation as InvalidArgument.
void WriteU64(std::ostream& os, uint64_t v);
void WriteI64(std::ostream& os, int64_t v);
void WriteF64(std::ostream& os, double v);
void WriteString(std::ostream& os, const std::string& s);
Result<uint64_t> ReadU64(std::istream& is);
Result<int64_t> ReadI64(std::istream& is);
Result<double> ReadF64(std::istream& is);
Result<std::string> ReadString(std::istream& is);

/// Column-type codec (kind + known dims).
void WriteType(std::ostream& os, const DataType& t);
Result<DataType> ReadType(std::istream& is);

/// Value-level binary codec (the format table files and spill runs
/// share): one tag byte then the payload; LA payloads as raw
/// little-endian doubles. The bytes written for a value are exactly
/// Value::ByteSize().
void WriteValueBinary(std::ostream& os, const Value& v);
Result<Value> ReadValueBinary(std::istream& is);

/// Row codec: arity-prefixed sequence of values.
void WriteRowBinary(std::ostream& os, const Row& row);
Result<Row> ReadRowBinary(std::istream& is);

/// Writes a table (schema + all rows) to `path` in the radb binary
/// table format. The format is self-describing: a magic header, the
/// column names and types (dimensions included), then length-prefixed
/// values. LA payloads are stored as raw little-endian doubles.
Status WriteTableFile(const Table& table, const std::string& path);

/// Reads a table written by WriteTableFile. Rows are redistributed
/// round-robin over `num_partitions`. Corrupt or truncated files
/// produce InvalidArgument, never partial tables.
Result<std::shared_ptr<Table>> ReadTableFile(const std::string& path,
                                             size_t num_partitions);

}  // namespace radb

#endif  // RADB_STORAGE_SERIALIZE_H_
