#ifndef RADB_STORAGE_SERIALIZE_H_
#define RADB_STORAGE_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace radb {

/// Value-level binary codec (the format table files and spill runs
/// share): one tag byte then the payload; LA payloads as raw
/// little-endian doubles. The bytes written for a value are exactly
/// Value::ByteSize().
void WriteValueBinary(std::ostream& os, const Value& v);
Result<Value> ReadValueBinary(std::istream& is);

/// Row codec: arity-prefixed sequence of values.
void WriteRowBinary(std::ostream& os, const Row& row);
Result<Row> ReadRowBinary(std::istream& is);

/// Writes a table (schema + all rows) to `path` in the radb binary
/// table format. The format is self-describing: a magic header, the
/// column names and types (dimensions included), then length-prefixed
/// values. LA payloads are stored as raw little-endian doubles.
Status WriteTableFile(const Table& table, const std::string& path);

/// Reads a table written by WriteTableFile. Rows are redistributed
/// round-robin over `num_partitions`. Corrupt or truncated files
/// produce InvalidArgument, never partial tables.
Result<std::shared_ptr<Table>> ReadTableFile(const std::string& path,
                                             size_t num_partitions);

}  // namespace radb

#endif  // RADB_STORAGE_SERIALIZE_H_
