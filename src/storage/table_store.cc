#include "storage/table_store.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "storage/serialize.h"

namespace radb::storage {

namespace {

constexpr char kSnapshotMagic[8] = {'R', 'A', 'D', 'B', 'C', 'A', 'T', '1'};
constexpr char kWalMagic[8] = {'R', 'A', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr size_t kWalHeaderSize = 16;  // magic + u64 epoch

enum WalOp : uint8_t {
  kOpCreateTable = 1,
  kOpDropTable = 2,
  kOpCreateView = 3,
  kOpDropView = 4,
  kOpInsert = 5,
  kOpCreateIndex = 6,
  kOpDropIndex = 7,
  kOpRepartition = 8,
};

uint32_t Crc32(const char* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteFull(int fd, const char* data, size_t len,
                 const std::string& what) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(what + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Process-wide temp-name sequence (mirrors the spill-file scheme so
/// the shared orphan sweeper can reason about both).
std::atomic<uint64_t> g_tmp_seq{0};

void WriteSchema(std::ostream& os, const Schema& schema) {
  WriteU64(os, schema.size());
  for (const Column& c : schema.columns()) {
    WriteString(os, c.name);
    WriteType(os, c.type);
  }
}

Result<Schema> ReadSchema(std::istream& is) {
  RADB_ASSIGN_OR_RETURN(uint64_t ncols, ReadU64(is));
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint64_t i = 0; i < ncols; ++i) {
    Column c;
    RADB_ASSIGN_OR_RETURN(c.name, ReadString(is));
    RADB_ASSIGN_OR_RETURN(c.type, ReadType(is));
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

}  // namespace

TableStore::~TableStore() {
  if (!closed_) {
    Close().ok();  // best effort; Database::Close reports errors
  }
}

std::string TableStore::PageFilePath(uint64_t file_id) const {
  return dir_ + "/t" + std::to_string(file_id) + ".radb";
}

std::string TableStore::TempPath(const std::string& kind) const {
  return dir_ + "/radb-tmp-" + kind + "-p" + std::to_string(::getpid()) +
         "-" + std::to_string(g_tmp_seq.fetch_add(1));
}

Status TableStore::AcquireLock() {
  const std::string path = dir_ + "/radb.lock";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot open lock file " + path + ": " +
                                  std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "data directory " + dir_ +
        " is already open in another process (radb.lock is held)");
  }
  lock_fd_ = fd;
  return Status::OK();
}

Status TableStore::SyncDir() const {
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::ExecutionError("cannot open data dir " + dir_ + ": " +
                                  std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::ExecutionError("fsync of data dir " + dir_ +
                                  " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::unique_ptr<TableStore>> TableStore::Open(const Options& options,
                                                     Catalog* catalog) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("TableStore needs a data_dir");
  }
  if (::mkdir(options.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::ExecutionError("cannot create data dir " +
                                  options.data_dir + ": " +
                                  std::strerror(errno));
  }
  std::unique_ptr<TableStore> store(new TableStore());
  store->dir_ = options.data_dir;
  store->options_ = options;
  store->catalog_ = catalog;
  store->pool_ = std::make_unique<BufferPool>(options.buffer_pool_bytes,
                                              options.metrics);
  if (options.metrics != nullptr) {
    store->wal_records_metric_ = options.metrics->counter("storage.wal_records");
    store->checkpoint_metric_ = options.metrics->counter("storage.checkpoints");
    store->wal_bytes_gauge_ = options.metrics->gauge("storage.wal_bytes");
  }
  // A crashed process may have left checkpoint temporaries behind;
  // same hygiene predicate as the spill sweeper (pid probe, then age).
  SweepOrphanedStoreFiles(store->dir_, /*max_age_seconds=*/3600);
  RADB_RETURN_NOT_OK(store->AcquireLock());

  const std::string snap_path = store->dir_ + "/radb.cat";
  struct stat st;
  if (::stat(snap_path.c_str(), &st) == 0) {
    RADB_RETURN_NOT_OK(store->LoadSnapshot(snap_path));
    store->recovered_ = true;
  }
  RADB_ASSIGN_OR_RETURN(store->replayed_statements_, store->ReplayWal());
  if (store->recovered_ || store->replayed_statements_ > 0) {
    // Compact immediately: the replayed WAL tail may end in a torn
    // record, and appending after it would corrupt the log.
    RADB_RETURN_NOT_OK(store->Checkpoint());
  } else {
    RADB_RETURN_NOT_OK(store->RotateWal(store->epoch_));
  }
  return store;
}

Status TableStore::Close() {
  if (closed_) return Status::OK();
  Status s = Checkpoint();
  for (auto& [name, stored] : tables_) {
    stored.file->Close();
  }
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock
    lock_fd_ = -1;
  }
  closed_ = true;
  return s;
}

// -- WAL -------------------------------------------------------------

Status TableStore::RotateWal(uint64_t epoch) {
  const std::string tmp = TempPath("wal");
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::ExecutionError("cannot create WAL " + tmp + ": " +
                                    std::strerror(errno));
    }
    char header[kWalHeaderSize];
    std::memcpy(header, kWalMagic, sizeof(kWalMagic));
    std::memcpy(header + 8, &epoch, sizeof(epoch));
    Status s = WriteFull(fd, header, sizeof(header), "WAL header write");
    if (s.ok() && ::fsync(fd) != 0) {
      s = Status::ExecutionError(std::string("WAL fsync failed: ") +
                                 std::strerror(errno));
    }
    ::close(fd);
    if (!s.ok()) {
      ::unlink(tmp.c_str());
      return s;
    }
  }
  const std::string wal_path = dir_ + "/radb.wal";
  if (::rename(tmp.c_str(), wal_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::ExecutionError("cannot install WAL: " +
                                  std::string(std::strerror(errno)));
  }
  RADB_RETURN_NOT_OK(SyncDir());
  if (wal_fd_ >= 0) ::close(wal_fd_);
  wal_fd_ = ::open(wal_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (wal_fd_ < 0) {
    return Status::ExecutionError("cannot reopen WAL: " +
                                  std::string(std::strerror(errno)));
  }
  wal_bytes_ = kWalHeaderSize;
  if (wal_bytes_gauge_ != nullptr) {
    wal_bytes_gauge_->Set(static_cast<double>(wal_bytes_));
  }
  return Status::OK();
}

Status TableStore::AppendWalRecord(const std::string& payload) {
  if (closed_ || wal_fd_ < 0) {
    return Status::Internal("WAL is not open (store closed?)");
  }
  std::string frame(8, '\0');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::memcpy(frame.data(), &len, sizeof(len));
  std::memcpy(frame.data() + 4, &crc, sizeof(crc));
  frame += payload;
  RADB_RETURN_NOT_OK(WriteFull(wal_fd_, frame.data(), frame.size(),
                               "WAL append failed"));
  wal_bytes_ += frame.size();
  if (options_.wal_sync == WalSync::kCommit && ::fsync(wal_fd_) != 0) {
    return Status::ExecutionError(std::string("WAL fsync failed: ") +
                                  std::strerror(errno));
  }
  if (wal_records_metric_ != nullptr) wal_records_metric_->Increment();
  if (wal_bytes_gauge_ != nullptr) {
    wal_bytes_gauge_->Set(static_cast<double>(wal_bytes_));
  }
  return Status::OK();
}

Status TableStore::LogCreateTable(const std::string& name,
                                  const Schema& schema) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpCreateTable));
  WriteString(os, name);
  WriteSchema(os, schema);
  RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                        catalog_->GetTable(name));
  WriteU64(os, table->num_partitions());
  return AppendWalRecord(os.str());
}

Status TableStore::LogDropTable(const std::string& name) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpDropTable));
  WriteString(os, name);
  return AppendWalRecord(os.str());
}

Status TableStore::LogCreateView(const ViewEntry& view) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpCreateView));
  WriteString(os, view.name);
  WriteU64(os, view.column_aliases.size());
  for (const std::string& a : view.column_aliases) WriteString(os, a);
  WriteString(os, view.select_sql);
  return AppendWalRecord(os.str());
}

Status TableStore::LogDropView(const std::string& name) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpDropView));
  WriteString(os, name);
  return AppendWalRecord(os.str());
}

Status TableStore::LogInsert(const std::string& table,
                             const std::vector<Row>& rows) {
  // A table that was never attached (created behind the store's back,
  // e.g. via the raw catalog) would replay into nothing — fail the
  // insert now instead of silently losing it at recovery.
  if (tables_.find(table) == tables_.end()) {
    return Status::Internal("table " + table +
                            " is not attached to the persistent store");
  }
  std::ostringstream os;
  os.put(static_cast<char>(kOpInsert));
  WriteString(os, table);
  WriteU64(os, rows.size());
  for (const Row& r : rows) WriteRowBinary(os, r);
  return AppendWalRecord(os.str());
}

Status TableStore::LogCreateIndex(const std::string& table,
                                  const std::string& index,
                                  const std::vector<size_t>& columns) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpCreateIndex));
  WriteString(os, table);
  WriteString(os, index);
  WriteU64(os, columns.size());
  for (size_t c : columns) WriteU64(os, c);
  return AppendWalRecord(os.str());
}

Status TableStore::LogDropIndex(const std::string& index) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpDropIndex));
  WriteString(os, index);
  return AppendWalRecord(os.str());
}

Status TableStore::LogRepartition(const std::string& table, size_t column) {
  std::ostringstream os;
  os.put(static_cast<char>(kOpRepartition));
  WriteString(os, table);
  WriteU64(os, column);
  return AppendWalRecord(os.str());
}

// -- Table lifecycle -------------------------------------------------

Status TableStore::AttachNewTable(const std::shared_ptr<Table>& table) {
  const uint64_t file_id = next_file_id_++;
  auto file = std::make_unique<PageFile>();
  RADB_RETURN_NOT_OK(file->Open(PageFilePath(file_id), options_.page_size));
  table->AttachStore(pool_.get(), file.get(), options_.segment_bytes);
  StoredTable stored;
  stored.table = table;
  stored.file = std::move(file);
  stored.file_id = file_id;
  tables_[table->name()] = std::move(stored);
  return Status::OK();
}

Status TableStore::DetachTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::OK();  // never attached
  const std::string path = it->second.file->path();
  pool_->EraseTable(it->second.table->id());
  it->second.file->Close();
  ::unlink(path.c_str());
  tables_.erase(it);
  return Status::OK();
}

// -- Checkpoint ------------------------------------------------------

Status TableStore::Checkpoint() {
  if (closed_) return Status::Internal("store is closed");
  ++epoch_;
  RADB_RETURN_NOT_OK(WriteSnapshot());
  // Only now may pages freed since the last snapshot be reused: the
  // old snapshot (which referenced them) is gone.
  for (auto& [name, stored] : tables_) stored.file->CommitFrees();
  RADB_RETURN_NOT_OK(RotateWal(epoch_));
  ++checkpoints_;
  if (checkpoint_metric_ != nullptr) checkpoint_metric_->Increment();
  return Status::OK();
}

Status TableStore::MaybeAutoCheckpoint() {
  if (options_.wal_auto_checkpoint_bytes == 0 ||
      wal_bytes_ < options_.wal_auto_checkpoint_bytes) {
    return Status::OK();
  }
  return Checkpoint();
}

Status TableStore::WriteSnapshot() {
  std::ostringstream os;
  os.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  WriteU64(os, epoch_);
  WriteU64(os, next_file_id_);
  WriteU64(os, tables_.size());
  for (auto& [name, stored] : tables_) {
    Table& t = *stored.table;
    WriteString(os, name);
    WriteU64(os, stored.file_id);
    WriteSchema(os, t.schema());
    WriteU64(os, static_cast<uint64_t>(t.partitioning().kind));
    WriteU64(os, t.partitioning().hash_column);
    WriteU64(os, t.next_rr());
    const std::vector<uint8_t>& pure = t.kind_pure_flags();
    WriteString(os, std::string(pure.begin(), pure.end()));
    // Flush: seals tails, writes every unwritten segment and dirty
    // index image into the table's page file, and returns the
    // manifests describing the persisted state.
    RADB_ASSIGN_OR_RETURN(auto parts, t.CheckpointSegments());
    WriteU64(os, parts.size());
    for (const Table::PartitionManifest& pm : parts) {
      WriteU64(os, pm.segments.size());
      for (const Table::SegmentManifest& sm : pm.segments) {
        WriteU64(os, sm.record.page);
        WriteU64(os, sm.record.slot);
        WriteU64(os, sm.num_rows);
        WriteU64(os, sm.payload_bytes);
      }
    }
    RADB_ASSIGN_OR_RETURN(auto idxs, t.CheckpointIndexes());
    WriteU64(os, idxs.size());
    for (const Table::IndexManifest& im : idxs) {
      WriteString(os, im.name);
      WriteU64(os, im.columns.size());
      for (size_t c : im.columns) WriteU64(os, c);
      WriteU64(os, im.degraded ? 1 : 0);
      WriteU64(os, im.record.page);
      WriteU64(os, im.record.slot);
    }
    // Page contents must be durable before the snapshot that
    // references them renames into place.
    RADB_RETURN_NOT_OK(stored.file->Sync());
    const PageFile::Meta meta = stored.file->SnapshotMeta();
    WriteU64(os, meta.page_count);
    WriteU64(os, meta.free_pages.size());
    for (uint32_t p : meta.free_pages) WriteU64(os, p);
  }
  const auto view_names = catalog_->ViewNames();
  WriteU64(os, view_names.size());
  for (const std::string& vn : view_names) {
    RADB_ASSIGN_OR_RETURN(const ViewEntry* v, catalog_->GetView(vn));
    WriteString(os, v->name);
    WriteU64(os, v->column_aliases.size());
    for (const std::string& a : v->column_aliases) WriteString(os, a);
    WriteString(os, v->select_sql);
  }

  std::string payload = os.str();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  const std::string tmp = TempPath("cat");
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::ExecutionError("cannot create snapshot " + tmp + ": " +
                                    std::strerror(errno));
    }
    Status s =
        WriteFull(fd, payload.data(), payload.size(), "snapshot write");
    if (s.ok() && ::fsync(fd) != 0) {
      s = Status::ExecutionError(std::string("snapshot fsync failed: ") +
                                 std::strerror(errno));
    }
    ::close(fd);
    if (!s.ok()) {
      ::unlink(tmp.c_str());
      return s;
    }
  }
  const std::string snap_path = dir_ + "/radb.cat";
  if (::rename(tmp.c_str(), snap_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::ExecutionError("cannot install snapshot: " +
                                  std::string(std::strerror(errno)));
  }
  return SyncDir();
}

Status TableStore::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::ExecutionError("cannot read snapshot " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::Internal("not a radb catalog snapshot: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Internal("catalog snapshot failed its CRC check: " + path);
  }
  std::istringstream is(bytes.substr(sizeof(kSnapshotMagic),
                                     bytes.size() - sizeof(kSnapshotMagic) -
                                         4));
  RADB_ASSIGN_OR_RETURN(epoch_, ReadU64(is));
  RADB_ASSIGN_OR_RETURN(next_file_id_, ReadU64(is));
  RADB_ASSIGN_OR_RETURN(uint64_t ntables, ReadU64(is));
  for (uint64_t i = 0; i < ntables; ++i) {
    RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
    RADB_ASSIGN_OR_RETURN(uint64_t file_id, ReadU64(is));
    RADB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(is));
    RADB_ASSIGN_OR_RETURN(uint64_t part_kind, ReadU64(is));
    RADB_ASSIGN_OR_RETURN(uint64_t hash_col, ReadU64(is));
    RADB_ASSIGN_OR_RETURN(uint64_t next_rr, ReadU64(is));
    RADB_ASSIGN_OR_RETURN(std::string pure, ReadString(is));
    RADB_ASSIGN_OR_RETURN(uint64_t nparts, ReadU64(is));

    RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          catalog_->CreateTable(name, schema, nparts));
    Partitioning part;
    part.kind = static_cast<Partitioning::Kind>(part_kind);
    part.hash_column = hash_col;
    table->set_partitioning(part);
    table->set_next_rr(next_rr);
    table->set_kind_pure_flags(
        std::vector<uint8_t>(pure.begin(), pure.end()));

    auto file = std::make_unique<PageFile>();
    RADB_RETURN_NOT_OK(
        file->Open(PageFilePath(file_id), options_.page_size));
    table->AttachStore(pool_.get(), file.get(), options_.segment_bytes);

    for (uint64_t p = 0; p < nparts; ++p) {
      RADB_ASSIGN_OR_RETURN(uint64_t nsegs, ReadU64(is));
      Table::PartitionManifest pm;
      for (uint64_t s = 0; s < nsegs; ++s) {
        Table::SegmentManifest sm;
        RADB_ASSIGN_OR_RETURN(uint64_t page, ReadU64(is));
        RADB_ASSIGN_OR_RETURN(uint64_t slot, ReadU64(is));
        sm.record.page = static_cast<uint32_t>(page);
        sm.record.slot = static_cast<uint16_t>(slot);
        RADB_ASSIGN_OR_RETURN(sm.num_rows, ReadU64(is));
        RADB_ASSIGN_OR_RETURN(sm.payload_bytes, ReadU64(is));
        pm.segments.push_back(sm);
      }
      RADB_RETURN_NOT_OK(table->RestorePartition(p, pm));
    }

    RADB_ASSIGN_OR_RETURN(uint64_t nidx, ReadU64(is));
    std::vector<Table::IndexManifest> index_manifests;
    for (uint64_t x = 0; x < nidx; ++x) {
      Table::IndexManifest im;
      RADB_ASSIGN_OR_RETURN(im.name, ReadString(is));
      RADB_ASSIGN_OR_RETURN(uint64_t ncols, ReadU64(is));
      for (uint64_t c = 0; c < ncols; ++c) {
        RADB_ASSIGN_OR_RETURN(uint64_t col, ReadU64(is));
        im.columns.push_back(static_cast<size_t>(col));
      }
      RADB_ASSIGN_OR_RETURN(uint64_t degraded, ReadU64(is));
      im.degraded = degraded != 0;
      RADB_ASSIGN_OR_RETURN(uint64_t page, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(uint64_t slot, ReadU64(is));
      im.record.page = static_cast<uint32_t>(page);
      im.record.slot = static_cast<uint16_t>(slot);
      index_manifests.push_back(std::move(im));
    }

    PageFile::Meta meta;
    RADB_ASSIGN_OR_RETURN(meta.page_count, ReadU64(is));
    RADB_ASSIGN_OR_RETURN(uint64_t nfree, ReadU64(is));
    for (uint64_t f = 0; f < nfree; ++f) {
      RADB_ASSIGN_OR_RETURN(uint64_t pg, ReadU64(is));
      meta.free_pages.push_back(static_cast<uint32_t>(pg));
    }
    RADB_RETURN_NOT_OK(file->RestoreMeta(meta));

    // Indexes load eagerly (charged to the pool as unevictable weight
    // through their trees' footprint being outside the cache).
    for (const Table::IndexManifest& im : index_manifests) {
      RADB_RETURN_NOT_OK(table->RestoreIndex(im));
      catalog_->RestoreIndexOwner(im.name, name);
    }

    StoredTable stored;
    stored.table = table;
    stored.file = std::move(file);
    stored.file_id = file_id;
    tables_[name] = std::move(stored);
  }

  RADB_ASSIGN_OR_RETURN(uint64_t nviews, ReadU64(is));
  for (uint64_t v = 0; v < nviews; ++v) {
    ViewEntry view;
    RADB_ASSIGN_OR_RETURN(view.name, ReadString(is));
    RADB_ASSIGN_OR_RETURN(uint64_t naliases, ReadU64(is));
    for (uint64_t a = 0; a < naliases; ++a) {
      RADB_ASSIGN_OR_RETURN(std::string alias, ReadString(is));
      view.column_aliases.push_back(std::move(alias));
    }
    RADB_ASSIGN_OR_RETURN(view.select_sql, ReadString(is));
    RADB_RETURN_NOT_OK(catalog_->CreateView(std::move(view)));
  }
  return Status::OK();
}

// -- WAL replay ------------------------------------------------------

Result<uint64_t> TableStore::ReplayWal() {
  const std::string wal_path = dir_ + "/radb.wal";
  std::ifstream in(wal_path, std::ios::binary);
  if (!in) return static_cast<uint64_t>(0);  // no WAL: nothing to replay
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < kWalHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return static_cast<uint64_t>(0);  // torn header: discard whole log
  }
  uint64_t wal_epoch = 0;
  std::memcpy(&wal_epoch, bytes.data() + 8, sizeof(wal_epoch));
  if (wal_epoch != epoch_) {
    // A log from before (or after a crashed rotation of) the loaded
    // snapshot: its effects are already included. Ignore it.
    return static_cast<uint64_t>(0);
  }
  uint64_t applied = 0;
  size_t off = kWalHeaderSize;
  while (off + 8 <= bytes.size()) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    std::memcpy(&crc, bytes.data() + off + 4, 4);
    if (off + 8 + len > bytes.size()) break;  // torn tail record
    const char* payload = bytes.data() + off + 8;
    if (Crc32(payload, len) != crc) break;  // corrupt: stop replay here
    RADB_RETURN_NOT_OK(ApplyWalRecord(std::string(payload, len)));
    off += 8 + static_cast<size_t>(len);
    ++applied;
  }
  return applied;
}

Status TableStore::ApplyWalRecord(const std::string& payload) {
  if (payload.empty()) return Status::Internal("empty WAL record");
  std::istringstream is(payload.substr(1));
  switch (static_cast<WalOp>(static_cast<uint8_t>(payload[0]))) {
    case kOpCreateTable: {
      RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
      RADB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(is));
      RADB_ASSIGN_OR_RETURN(uint64_t nparts, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog_->CreateTable(name, std::move(schema),
                                                  nparts));
      return AttachNewTable(table);
    }
    case kOpDropTable: {
      RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
      RADB_RETURN_NOT_OK(catalog_->DropTable(name));
      return DetachTable(name);
    }
    case kOpCreateView: {
      ViewEntry view;
      RADB_ASSIGN_OR_RETURN(view.name, ReadString(is));
      RADB_ASSIGN_OR_RETURN(uint64_t naliases, ReadU64(is));
      for (uint64_t a = 0; a < naliases; ++a) {
        RADB_ASSIGN_OR_RETURN(std::string alias, ReadString(is));
        view.column_aliases.push_back(std::move(alias));
      }
      RADB_ASSIGN_OR_RETURN(view.select_sql, ReadString(is));
      return catalog_->CreateView(std::move(view));
    }
    case kOpDropView: {
      RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
      return catalog_->DropView(name);
    }
    case kOpInsert: {
      RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
      RADB_ASSIGN_OR_RETURN(uint64_t nrows, ReadU64(is));
      std::vector<Row> rows;
      rows.reserve(nrows);
      for (uint64_t r = 0; r < nrows; ++r) {
        RADB_ASSIGN_OR_RETURN(Row row, ReadRowBinary(is));
        rows.push_back(std::move(row));
      }
      RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog_->GetTable(name));
      RADB_RETURN_NOT_OK(table->InsertAll(std::move(rows)));
      catalog_->BumpDataVersion();
      return Status::OK();
    }
    case kOpCreateIndex: {
      RADB_ASSIGN_OR_RETURN(std::string table, ReadString(is));
      RADB_ASSIGN_OR_RETURN(std::string index, ReadString(is));
      RADB_ASSIGN_OR_RETURN(uint64_t ncols, ReadU64(is));
      std::vector<size_t> columns;
      for (uint64_t c = 0; c < ncols; ++c) {
        RADB_ASSIGN_OR_RETURN(uint64_t col, ReadU64(is));
        columns.push_back(static_cast<size_t>(col));
      }
      return catalog_->CreateIndex(table, index, columns);
    }
    case kOpDropIndex: {
      RADB_ASSIGN_OR_RETURN(std::string index, ReadString(is));
      return catalog_->DropIndex(index);
    }
    case kOpRepartition: {
      RADB_ASSIGN_OR_RETURN(std::string name, ReadString(is));
      RADB_ASSIGN_OR_RETURN(uint64_t column, ReadU64(is));
      RADB_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog_->GetTable(name));
      RADB_RETURN_NOT_OK(
          table->RepartitionByHash(static_cast<size_t>(column)));
      catalog_->BumpDataVersion();
      return Status::OK();
    }
  }
  return Status::Internal("unknown WAL opcode");
}

TableStore::Stats TableStore::GetStats() const {
  Stats s;
  s.wal_bytes = wal_bytes_;
  s.checkpoints = checkpoints_;
  s.replayed_statements = replayed_statements_;
  s.recovered = recovered_;
  s.page_files = tables_.size();
  for (const auto& [name, stored] : tables_) {
    s.total_pages += stored.file->page_count();
    s.free_pages += stored.file->free_page_count();
  }
  return s;
}

}  // namespace radb::storage
