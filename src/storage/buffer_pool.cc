#include "storage/buffer_pool.h"

#include <utility>

namespace radb::storage {

void BufferPool::Pin::Reset() {
  if (pool_ != nullptr && rows_ != nullptr) {
    pool_->Unpin(key_);
  }
  pool_ = nullptr;
  rows_.reset();
}

BufferPool::BufferPool(size_t budget_bytes, obs::MetricsRegistry* metrics)
    : tracker_("buffer_pool", budget_bytes, metrics) {
  if (metrics != nullptr) {
    hits_ = metrics->counter("bufferpool.hits");
    misses_ = metrics->counter("bufferpool.misses");
    evictions_ = metrics->counter("bufferpool.evictions");
    cached_gauge_ = metrics->gauge("bufferpool.cached_bytes");
  }
}

void BufferPool::EvictForLocked(size_t need) {
  // Evict from the LRU tail until `need` more bytes fit under budget.
  // Entries are clean by construction, so eviction is a pure drop.
  const size_t budget = tracker_.budget();
  if (budget == 0) return;  // unlimited
  while (!lru_.empty() &&
         cached_bytes_ + unevictable_bytes_ + need > budget) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    cached_bytes_ -= it->second.charge;
    tracker_.Release(it->second.charge);
    entries_.erase(it);
    ++eviction_count_;
    if (evictions_ != nullptr) evictions_->Increment();
  }
  if (cached_gauge_ != nullptr) {
    cached_gauge_->Set(static_cast<double>(cached_bytes_));
  }
}

Result<BufferPool::Pin> BufferPool::GetOrLoad(
    const Key& key, const std::function<Result<LoadedSegment>()>& loader) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Entry& e = it->second;
      if (e.in_lru) {
        lru_.erase(e.lru_pos);
        e.in_lru = false;
      }
      ++e.pins;
      ++hit_count_;
      if (hits_ != nullptr) hits_->Increment();
      return Pin(this, key, e.rows);
    }
  }
  // Miss: load outside the mutex so concurrent misses overlap I/O.
  RADB_ASSIGN_OR_RETURN(LoadedSegment loaded, loader());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost a racing load: keep the resident copy, drop ours.
    Entry& e = it->second;
    if (e.in_lru) {
      lru_.erase(e.lru_pos);
      e.in_lru = false;
    }
    ++e.pins;
    ++hit_count_;
    if (hits_ != nullptr) hits_->Increment();
    return Pin(this, key, e.rows);
  }
  ++miss_count_;
  if (misses_ != nullptr) misses_->Increment();
  EvictForLocked(loaded.charge);
  // Soft cap: when eviction could not make room (everything resident
  // is pinned or unevictable) the load is admitted anyway — the
  // overshoot is bounded by the simultaneously pinned working set.
  tracker_.ForceReserve(loaded.charge);
  Entry e;
  e.rows = loaded.rows;
  e.charge = loaded.charge;
  e.pins = 1;
  e.in_lru = false;
  cached_bytes_ += loaded.charge;
  if (cached_gauge_ != nullptr) {
    cached_gauge_->Set(static_cast<double>(cached_bytes_));
  }
  entries_.emplace(key, std::move(e));
  return Pin(this, key, std::move(loaded.rows));
}

void BufferPool::Unpin(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // erased while pinned (drop/repart)
  Entry& e = it->second;
  if (e.pins > 0) --e.pins;
  if (e.pins == 0 && !e.in_lru) {
    lru_.push_front(key);
    e.lru_pos = lru_.begin();
    e.in_lru = true;
  }
}

void BufferPool::EraseTable(uint64_t table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.table != table) {
      ++it;
      continue;
    }
    Entry& e = it->second;
    if (e.in_lru) lru_.erase(e.lru_pos);
    cached_bytes_ -= e.charge;
    tracker_.Release(e.charge);
    it = entries_.erase(it);
  }
  if (cached_gauge_ != nullptr) {
    cached_gauge_->Set(static_cast<double>(cached_bytes_));
  }
}

void BufferPool::Charge(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictForLocked(bytes);
  tracker_.ForceReserve(bytes);
  unevictable_bytes_ += bytes;
}

void BufferPool::Discharge(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t delta = bytes < unevictable_bytes_ ? bytes : unevictable_bytes_;
  unevictable_bytes_ -= delta;
  tracker_.Release(delta);
}

BufferPool::Stats BufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.budget_bytes = tracker_.budget();
  s.cached_bytes = cached_bytes_;
  s.unevictable_bytes = unevictable_bytes_;
  s.entries = entries_.size();
  for (const auto& [k, e] : entries_) {
    if (e.pins > 0) ++s.pinned_entries;
  }
  s.hits = hit_count_;
  s.misses = miss_count_;
  s.evictions = eviction_count_;
  return s;
}

}  // namespace radb::storage
