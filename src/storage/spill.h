#ifndef RADB_STORAGE_SPILL_H_
#define RADB_STORAGE_SPILL_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "mem/memory_tracker.h"
#include "mem/spill_file.h"
#include "types/value.h"

namespace radb {

/// Shared per-query spill context: the tracker that owns the budget
/// plus the directory spill files land in. One per RunSelect; handed
/// down to every operator that can spill.
struct MemoryContext {
  mem::MemoryTracker* tracker = nullptr;
  std::string spill_dir;  // "" = system temp dir
  /// Owning query's id (0 = standalone); embedded in spill-file names
  /// so concurrent queries sharing one spill_dir stay distinguishable,
  /// and used as the thread-pool task tag for fair scheduling.
  uint64_t query_id = 0;
  /// Cooperative cancellation handle, polled by operator row loops at
  /// row-batch granularity (null = never cancelled). Not owned; the
  /// submitter keeps it alive for the query's duration.
  const CancellationToken* cancel = nullptr;

  bool has_budget() const {
    return tracker != nullptr && tracker->has_budget();
  }
  /// Spill-file name tag for this query ("q<id>", or "" standalone).
  std::string spill_tag() const {
    return query_id == 0 ? std::string() : "q" + std::to_string(query_id);
  }
};

/// An append-only row container that transparently flushes runs of
/// rows to disk when the query's memory budget is exceeded, then
/// replays them in EXACT append order. This is the workhorse behind
/// shuffle receive buffers, Grace-hash join partitions and the
/// aggregation overflow path: FP aggregation is order-sensitive, so
/// order preservation is what keeps budgeted runs bit-identical to
/// unbudgeted ones.
///
/// With a null/unbudgeted context the buffer degenerates to a plain
/// std::vector<Row> with zero extra cost. Not thread-safe; the
/// executor gives each worker its own buffers.
class SpillableRowBuffer {
 public:
  SpillableRowBuffer() = default;
  explicit SpillableRowBuffer(MemoryContext ctx) : ctx_(std::move(ctx)) {}

  // Manual moves: the source must forget its tracked charge and spill
  // totals, or its destructor's Clear() would release the same bytes
  // twice.
  SpillableRowBuffer(SpillableRowBuffer&& other) noexcept;
  SpillableRowBuffer& operator=(SpillableRowBuffer&& other) noexcept;

  /// Appends one row, charging its exact serialized size against the
  /// budget; on pressure, flushes the in-memory tail to a new spill
  /// run first. Only errors from the spill path itself (I/O failure)
  /// are returned — budget pressure never fails an append here.
  Status Append(Row row);

  size_t num_rows() const { return rows_spilled_ + tail_.size(); }
  bool empty() const { return num_rows() == 0; }
  /// Total serialized payload bytes appended (spilled or resident).
  size_t byte_size() const { return total_bytes_; }
  /// True when some of the CURRENT contents live on disk (a Reader
  /// will do spill I/O).
  bool has_spilled_rows() const { return rows_spilled_ > 0; }
  /// Lifetime-cumulative spill totals — survive Clear/Drain so an
  /// operator can collect them after consuming the buffer.
  size_t spill_bytes() const { return spill_bytes_; }
  size_t spill_runs() const { return spill_run_count_; }

  /// This buffer's memory context (for the cancellation token and
  /// query id shared by every buffer of one query).
  const MemoryContext& context() const { return ctx_; }

  /// The resident rows, exposed for move-consumption on the fast path
  /// (nothing spilled): callers may move individual rows out and must
  /// Clear() afterwards. Invalid to use when has_spilled_rows().
  std::vector<Row>& resident_rows() { return tail_; }

  /// Streaming reader replaying rows in exact append order: all
  /// spilled runs first (they were appended first), then the
  /// in-memory tail. Replay windows (one run's bytes at a time) are
  /// not budget-charged: runs are size-capped by the spiller, so the
  /// overshoot is small and bounded, and charging replay would re-pin
  /// the budget that spilling freed.
  ///
  /// The buffer must not be appended to while a Reader is live.
  class Reader {
   public:
    explicit Reader(SpillableRowBuffer* buf);
    ~Reader();
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Next row, or nullopt at end. Errors only on corrupt/failed
    /// spill I/O.
    Result<std::optional<Row>> Next();

   private:
    Status LoadRun(size_t index);
    void ReleaseRun();

    SpillableRowBuffer* buf_;
    size_t run_index_ = 0;      // next spill run to load
    std::unique_ptr<std::streambuf> run_buf_;  // current run's bytes
    std::unique_ptr<std::istream> run_is_;
    size_t run_rows_left_ = 0;  // rows remaining in current run
    size_t tail_index_ = 0;     // cursor into in-memory tail
  };

  /// Flushes the resident tail to disk, releasing its budget charge
  /// (replay order is unchanged — the tail becomes the newest run).
  /// Operators call this on their spillable inputs right before
  /// hard-reserving unspillable state, so a budget pinned by buffered
  /// rows degrades to disk replay instead of ResourceExhausted. No-op
  /// without a tracker; must not be called while a Reader is live.
  Status SpillToDisk();

  /// Drains the buffer into a plain vector in exact append order,
  /// releasing all charges. The buffer is empty afterwards. Use only
  /// where the consumer genuinely needs the whole set in memory
  /// (ResultSet gather); budgeted operators should stream via Reader.
  Result<std::vector<Row>> Drain();

  /// Releases all tracked memory and drops rows (early error paths).
  void Clear();

  ~SpillableRowBuffer() { Clear(); }

 private:
  /// Serializes the in-memory tail into one spill run; releases the
  /// tail's charge and records the spill with the tracker.
  Status FlushTail();

  MemoryContext ctx_;
  std::vector<Row> tail_;
  std::vector<size_t> run_row_counts_;
  std::unique_ptr<mem::SpillFile> file_;
  size_t tail_bytes_ = 0;     // tracked charge for tail_
  size_t total_bytes_ = 0;
  size_t rows_spilled_ = 0;
  size_t spill_bytes_ = 0;      // cumulative; not reset by Clear
  size_t spill_run_count_ = 0;  // cumulative; not reset by Clear
};

/// One SpillableRowBuffer per simulated worker — the spill-aware
/// analogue of the executor's Dist.
using SpillableDist = std::vector<SpillableRowBuffer>;

}  // namespace radb

#endif  // RADB_STORAGE_SPILL_H_
