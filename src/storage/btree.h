#ifndef RADB_STORAGE_BTREE_H_
#define RADB_STORAGE_BTREE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace radb::storage {

/// Logical row address inside a stored table: the partition plus the
/// row's stable ordinal within that partition (segments seal in
/// insertion order, so an ordinal never moves once assigned; only
/// RepartitionByHash invalidates rids, and that rebuilds every index).
struct Rid {
  uint32_t partition = 0;
  uint64_t ordinal = 0;

  bool operator==(const Rid& o) const {
    return partition == o.partition && ordinal == o.ordinal;
  }
};

/// B+ tree over composite INTEGER keys (up to two columns — the tile
/// coordinate pattern `(tileRow, tileCol)`), mapping keys to Rids.
/// Duplicate user keys are made unique by an insertion-sequence
/// tiebreaker, so equal-key matches replay in insertion order — the
/// same order a full scan would surface them within a partition walk.
///
/// The tree is the runtime structure; its checkpoint image is the
/// ordered leaf sequence (Serialize), reloaded with a bottom-up bulk
/// build (Deserialize). There is no Delete: this engine has no SQL
/// DELETE, DROP TABLE drops whole indexes, and repartitioning
/// rebuilds them.
///
/// Concurrency: reads are lock-free against other reads; mutation
/// happens only under the service's exclusive catalog latch, matching
/// every other table structure.
class BTreeIndex {
 public:
  static constexpr size_t kMaxKeyColumns = 2;
  static constexpr size_t kFanout = 64;

  explicit BTreeIndex(size_t key_len);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  size_t key_len() const { return key_len_; }
  size_t size() const { return size_; }
  /// Approximate resident bytes (keys + rids + node overhead), the
  /// buffer-pool charge for a loaded index.
  size_t byte_size() const;

  /// Inserts `key` (key_len ints) -> rid, assigning the next
  /// insertion-sequence tiebreaker.
  void Insert(const int64_t* key, Rid rid);

  /// Appends every rid whose key lies in [lo, hi] (inclusive, both
  /// full key_len arrays; use INT64_MIN/MAX to leave an end open) in
  /// (key, insertion-seq) order.
  void Range(const int64_t* lo, const int64_t* hi,
             std::vector<Rid>* out) const;

  /// Point lookup: Range with lo == hi.
  void Lookup(const int64_t* key, std::vector<Rid>* out) const {
    Range(key, key, out);
  }

  /// Checkpoint image: key_len, entry count, then the ordered
  /// (key, seq, rid) tuples from the leaf chain.
  std::string Serialize() const;
  /// Bulk-loads a tree from a Serialize image (bottom-up build).
  static Result<std::unique_ptr<BTreeIndex>> Deserialize(
      const std::string& bytes);

 private:
  struct Entry {
    std::array<int64_t, kMaxKeyColumns> key;
    uint64_t seq;
    Rid rid;
  };
  struct Node;

  int Compare(const Entry& a, const Entry& b) const;
  /// Splits `node` (which just overflowed) and returns the new right
  /// sibling plus the separator entry to push into the parent.
  std::unique_ptr<Node> Split(Node* node, Entry* separator);
  void InsertRec(Node* node, const Entry& e, std::unique_ptr<Node>* new_child,
                 Entry* separator);
  const Node* LeftmostLeafAtLeast(const Entry& lo) const;

  size_t key_len_;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  size_t node_count_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace radb::storage

#endif  // RADB_STORAGE_BTREE_H_
