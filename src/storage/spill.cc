#include "storage/spill.h"

#include <istream>
#include <sstream>
#include <streambuf>
#include <utility>

#include "storage/serialize.h"

namespace radb {

namespace {

/// An istream buffer that owns the run bytes it exposes — lets the
/// reader decode a spill run without a second copy.
class RunStreamBuf : public std::streambuf {
 public:
  explicit RunStreamBuf(std::string data) : data_(std::move(data)) {
    char* p = data_.data();
    setg(p, p, p + data_.size());
  }

 private:
  std::string data_;
};

}  // namespace

SpillableRowBuffer::SpillableRowBuffer(SpillableRowBuffer&& other) noexcept
    : ctx_(std::move(other.ctx_)),
      tail_(std::move(other.tail_)),
      run_row_counts_(std::move(other.run_row_counts_)),
      file_(std::move(other.file_)),
      tail_bytes_(std::exchange(other.tail_bytes_, 0)),
      total_bytes_(std::exchange(other.total_bytes_, 0)),
      rows_spilled_(std::exchange(other.rows_spilled_, 0)),
      spill_bytes_(std::exchange(other.spill_bytes_, 0)),
      spill_run_count_(std::exchange(other.spill_run_count_, 0)) {
  other.tail_.clear();
  other.run_row_counts_.clear();
}

SpillableRowBuffer& SpillableRowBuffer::operator=(
    SpillableRowBuffer&& other) noexcept {
  if (this != &other) {
    Clear();
    ctx_ = std::move(other.ctx_);
    tail_ = std::move(other.tail_);
    run_row_counts_ = std::move(other.run_row_counts_);
    file_ = std::move(other.file_);
    tail_bytes_ = std::exchange(other.tail_bytes_, 0);
    total_bytes_ = std::exchange(other.total_bytes_, 0);
    rows_spilled_ = std::exchange(other.rows_spilled_, 0);
    spill_bytes_ = std::exchange(other.spill_bytes_, 0);
    spill_run_count_ = std::exchange(other.spill_run_count_, 0);
    other.tail_.clear();
    other.run_row_counts_.clear();
  }
  return *this;
}

Status SpillableRowBuffer::Append(Row row) {
  const size_t bytes = RowByteSize(row);
  total_bytes_ += bytes;
  if (ctx_.tracker != nullptr) {
    if (!ctx_.tracker->TryReserve(bytes)) {
      RADB_RETURN_NOT_OK(FlushTail());
      if (!ctx_.tracker->TryReserve(bytes)) {
        // A single row larger than what's left of the whole budget:
        // it has to live somewhere before it can be flushed, so take
        // the bounded overshoot.
        ctx_.tracker->ForceReserve(bytes);
      }
    }
    tail_bytes_ += bytes;
  }
  tail_.push_back(std::move(row));
  return Status::OK();
}

Status SpillableRowBuffer::SpillToDisk() {
  // Without a tracker there is no charge to free — keep rows resident.
  if (ctx_.tracker == nullptr) return Status::OK();
  return FlushTail();
}

namespace {

/// Spill runs are capped so a Reader's replay window (one run held in
/// memory while its rows are decoded) stays small even when a large
/// tail is flushed at once. Keeping runs small is what makes the
/// replay window ignorable by the budget: N concurrent readers hold
/// at most N MiB between them.
constexpr size_t kMaxSpillRunBytes = 1u << 20;

}  // namespace

Status SpillableRowBuffer::FlushTail() {
  if (tail_.empty()) return Status::OK();
  if (file_ == nullptr) {
    file_ = std::make_unique<mem::SpillFile>();
    RADB_RETURN_NOT_OK(file_->Create(ctx_.spill_dir, ctx_.spill_tag()));
  }
  std::ostringstream os(std::ios::binary);
  size_t run_rows = 0;
  auto emit_run = [&]() -> Status {
    const std::string run = os.str();
    RADB_RETURN_NOT_OK(file_->WriteRun(run.data(), run.size()).status());
    run_row_counts_.push_back(run_rows);
    spill_bytes_ += run.size();
    ++spill_run_count_;
    if (ctx_.tracker != nullptr) ctx_.tracker->RecordSpill(run.size(), 1);
    os.str(std::string());
    run_rows = 0;
    return Status::OK();
  };
  for (const Row& row : tail_) {
    WriteRowBinary(os, row);
    ++run_rows;
    if (static_cast<size_t>(os.tellp()) >= kMaxSpillRunBytes) {
      RADB_RETURN_NOT_OK(emit_run());
    }
  }
  if (run_rows > 0) RADB_RETURN_NOT_OK(emit_run());
  rows_spilled_ += tail_.size();
  if (ctx_.tracker != nullptr) ctx_.tracker->Release(tail_bytes_);
  tail_bytes_ = 0;
  tail_.clear();
  return Status::OK();
}

void SpillableRowBuffer::Clear() {
  if (ctx_.tracker != nullptr && tail_bytes_ > 0) {
    ctx_.tracker->Release(tail_bytes_);
  }
  // Spill totals (spill_bytes_, spill_run_count_) survive on purpose:
  // operators read them after draining.
  tail_bytes_ = 0;
  total_bytes_ = 0;
  tail_.clear();
  run_row_counts_.clear();
  file_.reset();
  rows_spilled_ = 0;
}

Result<std::vector<Row>> SpillableRowBuffer::Drain() {
  std::vector<Row> out;
  out.reserve(num_rows());
  Reader reader(this);
  while (true) {
    RADB_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
    if (!row.has_value()) break;
    out.push_back(std::move(*row));
  }
  Clear();
  return out;
}

SpillableRowBuffer::Reader::Reader(SpillableRowBuffer* buf) : buf_(buf) {}

SpillableRowBuffer::Reader::~Reader() { ReleaseRun(); }

void SpillableRowBuffer::Reader::ReleaseRun() {
  run_is_.reset();
  run_buf_.reset();
}

Status SpillableRowBuffer::Reader::LoadRun(size_t index) {
  ReleaseRun();
  RADB_ASSIGN_OR_RETURN(std::string data, buf_->file_->ReadRun(index));
  // The replay window is deliberately NOT charged against the budget:
  // runs are capped at kMaxSpillRunBytes, so concurrent readers hold
  // a small bounded overshoot, and charging it would re-pin the very
  // budget that spilling freed (deadlocking operators that spilled
  // their input to make room for unspillable state).
  run_rows_left_ = buf_->run_row_counts_[index];
  run_buf_ = std::make_unique<RunStreamBuf>(std::move(data));
  run_is_ = std::make_unique<std::istream>(run_buf_.get());
  return Status::OK();
}

Result<std::optional<Row>> SpillableRowBuffer::Reader::Next() {
  while (run_rows_left_ == 0 && buf_->file_ != nullptr &&
         run_index_ < buf_->file_->num_runs()) {
    RADB_RETURN_NOT_OK(LoadRun(run_index_));
    ++run_index_;
  }
  if (run_rows_left_ > 0) {
    RADB_ASSIGN_OR_RETURN(Row row, ReadRowBinary(*run_is_));
    if (--run_rows_left_ == 0) ReleaseRun();
    return std::optional<Row>(std::move(row));
  }
  if (tail_index_ < buf_->tail_.size()) {
    // The tail is replayed by reference-copy (Values share payloads),
    // leaving the buffer intact for Drain/Clear accounting.
    return std::optional<Row>(buf_->tail_[tail_index_++]);
  }
  return std::optional<Row>();
}

}  // namespace radb
