#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace radb {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  *out += buf;
}

std::string EncodeValue(const Value& v) {
  std::string out;
  switch (v.kind()) {
    case TypeKind::kNull:
      return "";
    case TypeKind::kBoolean:
      return v.bool_value() ? "true" : "false";
    case TypeKind::kInteger:
      return std::to_string(v.int_value());
    case TypeKind::kDouble:
      AppendDouble(&out, v.double_value());
      return out;
    case TypeKind::kString: {
      // Quote and double embedded quotes (RFC 4180).
      out = "\"";
      for (char c : v.string_value()) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
      return out;
    }
    case TypeKind::kLabeledScalar:
      AppendDouble(&out, v.labeled().value);
      out += "@" + std::to_string(v.labeled().label);
      return out;
    case TypeKind::kVector: {
      out = "\"[";
      const la::Vector& vec = v.vector();
      for (size_t i = 0; i < vec.size(); ++i) {
        if (i > 0) out += ';';
        AppendDouble(&out, vec[i]);
      }
      out += "]\"";
      return out;
    }
    case TypeKind::kMatrix: {
      // CSV is a dense text format: sparse values export their cells
      // (representation is lost on a CSV round-trip, values are not).
      const Value dense = v.Densified();
      const la::Matrix& m = dense.matrix();
      out = "\"[" + std::to_string(m.rows()) + "," +
            std::to_string(m.cols());
      for (size_t i = 0; i < m.rows() * m.cols(); ++i) {
        out += ';';
        AppendDouble(&out, m.data()[i]);
      }
      out += "]\"";
      return out;
    }
  }
  return out;
}

/// Splits one CSV line honoring quotes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line");
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    return Status::InvalidArgument("bad double in CSV: '" + s + "'");
  }
  return v;
}

Result<Value> DecodeValue(const std::string& field, const DataType& type) {
  if (field.empty()) return Value::Null();
  switch (type.kind()) {
    case TypeKind::kBoolean:
      return Value::Bool(ToLower(field) == "true" || field == "1");
    case TypeKind::kInteger:
      return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
    case TypeKind::kDouble: {
      RADB_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value::Double(v);
    }
    case TypeKind::kString:
      return Value::String(field);
    case TypeKind::kLabeledScalar: {
      const size_t at = field.rfind('@');
      if (at == std::string::npos) {
        return Status::InvalidArgument("bad LABELED_SCALAR in CSV: '" +
                                       field + "'");
      }
      RADB_ASSIGN_OR_RETURN(double v, ParseDouble(field.substr(0, at)));
      return Value::Labeled(
          v, std::strtoll(field.c_str() + at + 1, nullptr, 10));
    }
    case TypeKind::kVector: {
      if (field.size() < 2 || field.front() != '[' || field.back() != ']') {
        return Status::InvalidArgument("bad VECTOR in CSV: '" + field + "'");
      }
      std::vector<double> values;
      std::stringstream ss(field.substr(1, field.size() - 2));
      std::string part;
      while (std::getline(ss, part, ';')) {
        if (part.empty()) continue;
        RADB_ASSIGN_OR_RETURN(double v, ParseDouble(part));
        values.push_back(v);
      }
      return Value::FromVector(la::Vector(std::move(values)));
    }
    case TypeKind::kMatrix: {
      if (field.size() < 2 || field.front() != '[' || field.back() != ']') {
        return Status::InvalidArgument("bad MATRIX in CSV: '" + field + "'");
      }
      std::stringstream ss(field.substr(1, field.size() - 2));
      std::string dims;
      if (!std::getline(ss, dims, ';')) {
        return Status::InvalidArgument("bad MATRIX header in CSV");
      }
      const size_t comma = dims.find(',');
      if (comma == std::string::npos) {
        return Status::InvalidArgument("bad MATRIX dims in CSV: '" + dims +
                                       "'");
      }
      const size_t rows = std::strtoull(dims.c_str(), nullptr, 10);
      const size_t cols =
          std::strtoull(dims.c_str() + comma + 1, nullptr, 10);
      la::Matrix m(rows, cols);
      std::string part;
      size_t i = 0;
      while (std::getline(ss, part, ';')) {
        if (i >= rows * cols) {
          return Status::InvalidArgument("too many MATRIX entries in CSV");
        }
        RADB_ASSIGN_OR_RETURN(m.data()[i], ParseDouble(part));
        ++i;
      }
      if (i != rows * cols) {
        return Status::InvalidArgument("too few MATRIX entries in CSV");
      }
      return Value::FromMatrix(std::move(m));
    }
    case TypeKind::kNull:
      return Value::Null();
  }
  return Status::InvalidArgument("unsupported CSV column type");
}

}  // namespace

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  std::vector<std::string> header;
  for (const Column& c : table.schema().columns()) {
    header.push_back(c.name);
  }
  os << Join(header, ",") << "\n";
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    RADB_ASSIGN_OR_RETURN(RowSet part_rows, table.GatherPartition(p));
    for (const Row& row : part_rows) {
      std::vector<std::string> fields;
      fields.reserve(row.size());
      for (const Value& v : row) fields.push_back(EncodeValue(v));
      os << Join(fields, ",") << "\n";
    }
  }
  os.flush();
  if (!os) return Status::ExecutionError("write failed for " + path);
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           size_t num_partitions) {
  std::ifstream is(path);
  if (!is) {
    return Status::InvalidArgument("cannot open " + path + " for reading");
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument(path + " is empty (no CSV header)");
  }
  RADB_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitCsvLine(line));
  if (header.size() != schema.size()) {
    return Status::InvalidArgument(
        "CSV has " + std::to_string(header.size()) +
        " columns, schema declares " + std::to_string(schema.size()));
  }
  auto table =
      std::make_shared<Table>(table_name, schema, num_partitions);
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    RADB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitCsvLine(line));
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      RADB_ASSIGN_OR_RETURN(Value v,
                            DecodeValue(fields[i], schema.at(i).type));
      row.push_back(std::move(v));
    }
    RADB_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  return table;
}

}  // namespace radb
