#include "storage/pager.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "mem/spill_file.h"

namespace radb::storage {

namespace {

constexpr char kMagic[8] = {'R', 'A', 'D', 'B', 'P', 'A', 'G', '1'};
constexpr uint32_t kFormatVersion = 1;

// Slotted-page header: u16 nslots, u16 free_off, u16 live, u16 flags.
constexpr size_t kPageHeaderSize = 8;
constexpr size_t kSlotSize = 8;  // u32 offset, u32 length (0 = freed)
// Overflow-page header: u32 next_page, u32 used.
constexpr size_t kOverflowHeaderSize = 8;
// Payload tag byte values.
constexpr char kTagInline = 0;
constexpr char kTagOverflow = 1;
// Overflow pointer payload: tag + u32 first_page + u64 total_len.
constexpr size_t kOverflowPtrLen = 1 + 4 + 8;

void PutU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::ExecutionError(what + " " + path + ": " +
                                std::strerror(errno));
}

Status PReadFull(int fd, char* buf, size_t len, off_t off,
                 const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("page read failed in", path);
    }
    if (n == 0) {
      return Status::Internal("page file truncated: " + path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const char* buf, size_t len, off_t off,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, buf + done, len - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("page write failed in", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

PageFile::~PageFile() { Close(); }

Status PageFile::Open(const std::string& path, uint32_t page_size) {
  if (is_open()) return Status::OK();
  if (page_size < kMinPageSize || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "page_size must be a power of two >= " +
        std::to_string(kMinPageSize) + ", got " + std::to_string(page_size));
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot open page file", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("cannot stat page file", path);
  }
  fd_ = fd;
  path_ = path;
  page_size_ = page_size;
  if (st.st_size == 0) {
    // Fresh file: lay down the magic page.
    std::string magic(page_size_, '\0');
    std::memcpy(magic.data(), kMagic, sizeof(kMagic));
    PutU32(magic.data() + 8, page_size_);
    PutU32(magic.data() + 12, kFormatVersion);
    Status s = PWriteFull(fd_, magic.data(), magic.size(), 0, path_);
    if (s.ok()) s = Sync();
    if (!s.ok()) {
      Close();
      return s;
    }
    page_count_ = 1;
  } else {
    std::string magic(page_size_, '\0');
    Status s = PReadFull(fd_, magic.data(), magic.size(), 0, path_);
    if (!s.ok()) {
      Close();
      return Status::Internal("not a radb page file (short magic page): " +
                              path);
    }
    if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
      Close();
      return Status::Internal("not a radb page file (bad magic): " + path);
    }
    if (GetU32(magic.data() + 8) != page_size_) {
      const uint32_t on_disk = GetU32(magic.data() + 8);
      Close();
      return Status::InvalidArgument(
          "page file " + path + " was created with page_size " +
          std::to_string(on_disk) + ", cannot open with " +
          std::to_string(page_size));
    }
    page_count_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(st.st_size) / page_size_);
  }
  return Status::OK();
}

void PageFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  page_count_ = 1;
  free_.clear();
  pending_free_.clear();
  fill_page_ = 0;
}

PageFile::Meta PageFile::SnapshotMeta() const {
  std::lock_guard<std::mutex> lock(mu_);
  Meta m;
  m.page_count = page_count_;
  m.free_pages = free_;
  // Pages freed since the last snapshot become genuinely free exactly
  // when the snapshot holding this Meta commits, so they are free in
  // its eyes.
  m.free_pages.insert(m.free_pages.end(), pending_free_.begin(),
                      pending_free_.end());
  return m;
}

Status PageFile::RestoreMeta(const Meta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("page file not open: " + path_);
  page_count_ = std::max<uint64_t>(1, meta.page_count);
  free_ = meta.free_pages;
  pending_free_.clear();
  fill_page_ = 0;
  // Discard any pages appended after the snapshot was taken (a torn
  // checkpoint, or writes the snapshot never referenced).
  if (::ftruncate(fd_, static_cast<off_t>(page_count_ * page_size_)) != 0) {
    return IoError("cannot truncate page file", path_);
  }
  return Status::OK();
}

void PageFile::CommitFrees() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.insert(free_.end(), pending_free_.begin(), pending_free_.end());
  pending_free_.clear();
}

uint64_t PageFile::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

uint64_t PageFile::free_page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size() + pending_free_.size();
}

uint32_t PageFile::AllocatePageLocked() {
  if (!free_.empty()) {
    const uint32_t page = free_.back();
    free_.pop_back();
    return page;
  }
  return static_cast<uint32_t>(page_count_++);
}

void PageFile::FreePageLocked(uint32_t page) {
  pending_free_.push_back(page);
  if (page == fill_page_) fill_page_ = 0;
}

Status PageFile::ReadPageRaw(uint32_t page, std::string* buf) const {
  if (fd_ < 0) return Status::Internal("page file not open: " + path_);
  buf->resize(page_size_);
  return PReadFull(fd_, buf->data(), page_size_,
                   static_cast<off_t>(page) * page_size_, path_);
}

Status PageFile::WritePage(uint32_t page, const char* data) {
  if (fd_ < 0) return Status::Internal("page file not open: " + path_);
  return PWriteFull(fd_, data, page_size_,
                    static_cast<off_t>(page) * page_size_, path_);
}

Result<RecordId> PageFile::AppendRecord(std::string_view data) {
  // Records that cannot fit inline even in an empty slotted page go to
  // an overflow chain with a small pointer slot.
  const size_t max_inline =
      page_size_ - kPageHeaderSize - kSlotSize - 1 /* tag */;
  std::string payload;
  if (data.size() <= max_inline) {
    payload.reserve(data.size() + 1);
    payload.push_back(kTagInline);
    payload.append(data);
  } else {
    // Build the overflow chain first: allocate all pages, then write
    // each chunk with its next-pointer.
    const size_t chunk = page_size_ - kOverflowHeaderSize;
    const size_t npages = (data.size() + chunk - 1) / chunk;
    std::vector<uint32_t> pages(npages);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < npages; ++i) pages[i] = AllocatePageLocked();
    }
    std::string buf(page_size_, '\0');
    for (size_t i = 0; i < npages; ++i) {
      const size_t off = i * chunk;
      const size_t used = std::min(chunk, data.size() - off);
      PutU32(buf.data(), i + 1 < npages ? pages[i + 1] : 0);
      PutU32(buf.data() + 4, static_cast<uint32_t>(used));
      std::memcpy(buf.data() + kOverflowHeaderSize, data.data() + off, used);
      if (used < chunk) {
        std::memset(buf.data() + kOverflowHeaderSize + used, 0, chunk - used);
      }
      RADB_RETURN_NOT_OK(WritePage(pages[i], buf.data()));
    }
    payload.resize(kOverflowPtrLen);
    payload[0] = kTagOverflow;
    PutU32(payload.data() + 1, pages[0]);
    PutU64(payload.data() + 5, data.size());
  }

  // Place the payload in the current fill page, or start a new one.
  std::lock_guard<std::mutex> lock(mu_);
  std::string page_buf;
  uint32_t page = fill_page_;
  bool fresh = false;
  if (page != 0) {
    RADB_RETURN_NOT_OK(ReadPageRaw(page, &page_buf));
    const uint16_t nslots = GetU16(page_buf.data());
    const uint16_t free_off = GetU16(page_buf.data() + 2);
    const size_t used = free_off + kSlotSize * nslots;
    if (nslots == UINT16_MAX ||
        used + payload.size() + kSlotSize > page_size_) {
      page = 0;  // full — start a new fill page
    }
  }
  if (page == 0) {
    page = AllocatePageLocked();
    fill_page_ = page;
    fresh = true;
    page_buf.assign(page_size_, '\0');
    PutU16(page_buf.data() + 2, static_cast<uint16_t>(kPageHeaderSize));
  }
  uint16_t nslots = GetU16(page_buf.data());
  uint16_t free_off = GetU16(page_buf.data() + 2);
  uint16_t live = GetU16(page_buf.data() + 4);
  std::memcpy(page_buf.data() + free_off, payload.data(), payload.size());
  char* slot = page_buf.data() + page_size_ - kSlotSize * (nslots + 1);
  PutU32(slot, free_off);
  PutU32(slot + 4, static_cast<uint32_t>(payload.size()));
  RecordId rid;
  rid.page = page;
  rid.slot = nslots;
  PutU16(page_buf.data(), static_cast<uint16_t>(nslots + 1));
  PutU16(page_buf.data() + 2,
         static_cast<uint16_t>(free_off + payload.size()));
  PutU16(page_buf.data() + 4, static_cast<uint16_t>(live + 1));
  Status s = WritePage(page, page_buf.data());
  if (!s.ok()) {
    if (fresh) FreePageLocked(page);
    return s;
  }
  return rid;
}

Result<std::string> PageFile::ReadRecord(RecordId rid) const {
  std::string page_buf;
  RADB_RETURN_NOT_OK(ReadPageRaw(rid.page, &page_buf));
  const uint16_t nslots = GetU16(page_buf.data());
  if (rid.slot >= nslots) {
    return Status::Internal("record slot out of range in " + path_);
  }
  const char* slot =
      page_buf.data() + page_size_ - kSlotSize * (rid.slot + 1);
  const uint32_t off = GetU32(slot);
  const uint32_t len = GetU32(slot + 4);
  if (len == 0) {
    return Status::Internal("record was freed in " + path_);
  }
  if (off + len > page_size_ || len < 1) {
    return Status::Internal("corrupt record slot in " + path_);
  }
  const char tag = page_buf[off];
  if (tag == kTagInline) {
    return std::string(page_buf.data() + off + 1, len - 1);
  }
  if (tag != kTagOverflow || len != kOverflowPtrLen) {
    return Status::Internal("corrupt record tag in " + path_);
  }
  uint32_t next = GetU32(page_buf.data() + off + 1);
  const uint64_t total = GetU64(page_buf.data() + off + 5);
  std::string out;
  out.reserve(total);
  std::string chain_buf;
  while (next != 0) {
    RADB_RETURN_NOT_OK(ReadPageRaw(next, &chain_buf));
    next = GetU32(chain_buf.data());
    const uint32_t used = GetU32(chain_buf.data() + 4);
    if (used > page_size_ - kOverflowHeaderSize ||
        out.size() + used > total) {
      return Status::Internal("corrupt overflow chain in " + path_);
    }
    out.append(chain_buf.data() + kOverflowHeaderSize, used);
  }
  if (out.size() != total) {
    return Status::Internal("short overflow chain in " + path_);
  }
  return out;
}

Status PageFile::FreeRecord(RecordId rid) {
  std::string page_buf;
  RADB_RETURN_NOT_OK(ReadPageRaw(rid.page, &page_buf));
  const uint16_t nslots = GetU16(page_buf.data());
  if (rid.slot >= nslots) {
    return Status::Internal("record slot out of range in " + path_);
  }
  char* slot = page_buf.data() + page_size_ - kSlotSize * (rid.slot + 1);
  const uint32_t off = GetU32(slot);
  const uint32_t len = GetU32(slot + 4);
  if (len == 0) return Status::OK();  // already freed
  if (off + len > page_size_) {
    return Status::Internal("corrupt record slot in " + path_);
  }
  // Free the overflow chain, if any.
  if (page_buf[off] == kTagOverflow && len == kOverflowPtrLen) {
    uint32_t next = GetU32(page_buf.data() + off + 1);
    std::string chain_buf;
    while (next != 0) {
      const uint32_t cur = next;
      RADB_RETURN_NOT_OK(ReadPageRaw(cur, &chain_buf));
      next = GetU32(chain_buf.data());
      std::lock_guard<std::mutex> lock(mu_);
      FreePageLocked(cur);
    }
  }
  PutU32(slot, 0);
  PutU32(slot + 4, 0);
  const uint16_t live = GetU16(page_buf.data() + 4);
  PutU16(page_buf.data() + 4, static_cast<uint16_t>(live > 0 ? live - 1 : 0));
  RADB_RETURN_NOT_OK(WritePage(rid.page, page_buf.data()));
  if (live <= 1) {
    // Last live record gone: reclaim the whole page. Slot space lost
    // to dead pointer slots comes back here rather than per-slot.
    std::lock_guard<std::mutex> lock(mu_);
    FreePageLocked(rid.page);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::Internal("page file not open: " + path_);
  if (::fsync(fd_) != 0) return IoError("fsync failed on", path_);
  return Status::OK();
}

size_t SweepOrphanedStoreFiles(const std::string& dir,
                               uint64_t max_age_seconds) {
  // Store temp files ("radb-tmp-cat-p<pid>-…", "radb-tmp-wal-p<pid>-…")
  // embed their owner pid the same way spill files do, so one shared
  // predicate covers both (a crashed checkpoint leaves nothing behind).
  return mem::SweepOrphanedFiles(dir, "radb-tmp-", max_age_seconds);
}

}  // namespace radb::storage
