#include "storage/table.h"

#include "obs/metrics_registry.h"

namespace radb {

namespace {
/// Process-wide table identity source (see Table::id).
std::atomic<uint64_t> g_next_table_id{1};
}  // namespace

Table::Table(std::string name, Schema schema, size_t num_partitions)
    : id_(g_next_table_id.fetch_add(1, std::memory_order_relaxed)),
      name_(std::move(name)),
      schema_(std::move(schema)),
      partitions_(num_partitions == 0 ? 1 : num_partitions),
      kind_pure_(schema_.size(), 1) {}

size_t Table::num_rows() const {
  size_t n = 0;
  for (const RowSet& p : partitions_) n += p.size();
  return n;
}

size_t Table::byte_size() const {
  size_t n = 0;
  for (const RowSet& p : partitions_) {
    for (const Row& r : p) n += RowByteSize(r);
  }
  return n;
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        name_ + " with " + std::to_string(schema_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const DataType declared = schema_.at(i).type;
    const DataType actual = row[i].RuntimeType();
    // INTEGER literals may populate DOUBLE columns and vice versa for
    // integral doubles; LA types must match kind and any known dims.
    if (declared.is_numeric() && actual.is_numeric()) continue;
    if (declared.kind() == actual.kind() && declared.CompatibleWith(actual)) {
      continue;
    }
    return Status::TypeError("value of type " + actual.ToString() +
                             " cannot be stored in column " +
                             schema_.at(i).name + " of type " +
                             declared.ToString());
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  RADB_RETURN_NOT_OK(ValidateRow(row));
  for (size_t i = 0; i < row.size(); ++i) {
    if (kind_pure_[i] != 0 && !row[i].is_null() &&
        row[i].kind() != schema_.at(i).type.kind()) {
      kind_pure_[i] = 0;
    }
  }
  partitions_[next_rr_ % partitions_.size()].push_back(std::move(row));
  ++next_rr_;
  BumpVersion();
  return Status::OK();
}

Status Table::InsertAll(std::vector<Row> rows) {
  const size_t n = rows.size();
  for (Row& r : rows) {
    RADB_RETURN_NOT_OK(Insert(std::move(r)));
  }
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.rows_inserted", n);
  }
  return Status::OK();
}

Status Table::RepartitionByHash(size_t column) {
  if (column >= schema_.size()) {
    return Status::InvalidArgument("hash column out of range");
  }
  std::vector<RowSet> next(partitions_.size());
  for (RowSet& p : partitions_) {
    for (Row& r : p) {
      const size_t h = r[column].Hash();
      next[h % next.size()].push_back(std::move(r));
    }
  }
  partitions_ = std::move(next);
  partitioning_.kind = Partitioning::Kind::kHash;
  partitioning_.hash_column = column;
  BumpVersion();
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.rows_repartitioned", num_rows());
  }
  return Status::OK();
}

RowSet Table::Gather() const {
  RowSet all;
  all.reserve(num_rows());
  for (const RowSet& p : partitions_) {
    for (const Row& r : p) all.push_back(r);
  }
  return all;
}

void Table::ExtractColumns(size_t partition,
                           const std::vector<size_t>& columns,
                           size_t row_begin, size_t row_count,
                           ColumnBatch* out) const {
  const RowSet& rows = partitions_[partition];
  out->Clear();
  out->num_rows = row_count;
  out->columns.resize(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnVector& col = out->columns[c];
    col.Reset(schema_.columns()[columns[c]].type.kind(), 0);
    col.null.reserve(row_count);
    for (size_t r = 0; r < row_count; ++r) {
      col.AppendValue(rows[row_begin + r][columns[c]]);
    }
  }
}

}  // namespace radb
