#include "storage/table.h"

#include <sstream>
#include <utility>

#include "obs/metrics_registry.h"
#include "storage/serialize.h"

namespace radb {

namespace {
/// Process-wide table identity source (see Table::id).
std::atomic<uint64_t> g_next_table_id{1};
}  // namespace

Table::Table(std::string name, Schema schema, size_t num_partitions)
    : id_(g_next_table_id.fetch_add(1, std::memory_order_relaxed)),
      name_(std::move(name)),
      schema_(std::move(schema)),
      parts_(num_partitions == 0 ? 1 : num_partitions),
      kind_pure_(schema_.size(), 1) {}

size_t Table::num_rows() const {
  size_t n = 0;
  for (const PartitionData& p : parts_) n += p.tail_base + p.tail.size();
  return n;
}

size_t Table::byte_size() const {
  size_t n = 0;
  for (const PartitionData& p : parts_) {
    for (const Segment& s : p.sealed) n += s.payload_bytes;
    n += p.tail_bytes;
  }
  return n;
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        name_ + " with " + std::to_string(schema_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const DataType declared = schema_.at(i).type;
    const DataType actual = row[i].RuntimeType();
    // INTEGER literals may populate DOUBLE columns and vice versa for
    // integral doubles; LA types must match kind and any known dims.
    if (declared.is_numeric() && actual.is_numeric()) continue;
    if (declared.kind() == actual.kind() && declared.CompatibleWith(actual)) {
      continue;
    }
    return Status::TypeError("value of type " + actual.ToString() +
                             " cannot be stored in column " +
                             schema_.at(i).name + " of type " +
                             declared.ToString());
  }
  return Status::OK();
}

void Table::SealTail(size_t partition) {
  PartitionData& p = parts_[partition];
  if (p.tail.empty()) return;
  Segment s;
  s.num_rows = p.tail.size();
  s.payload_bytes = p.tail_bytes;
  s.ordinal_base = p.tail_base;
  s.resident = std::make_shared<const RowSet>(std::move(p.tail));
  p.tail = RowSet();
  p.tail_base += s.num_rows;
  p.tail_bytes = 0;
  if (pool_ != nullptr && file_ != nullptr) {
    // Sealed-but-not-checkpointed rows are dirty weight in the pool:
    // unevictable until CheckpointSegments writes them out.
    pool_->Charge(s.payload_bytes);
  }
  p.sealed.push_back(std::move(s));
}

void Table::MaybeSealTail(size_t partition) {
  if (parts_[partition].tail_bytes >= segment_bytes_) SealTail(partition);
}

void Table::PlaceRow(Row row, size_t partition) {
  PartitionData& p = parts_[partition];
  p.tail_bytes += RowByteSize(row);
  p.tail.push_back(std::move(row));
  MaybeSealTail(partition);
}

Status Table::InsertIntoIndex(IndexDef& idx, const Row& row,
                              storage::Rid rid) {
  if (idx.degraded) return Status::OK();
  int64_t key[storage::BTreeIndex::kMaxKeyColumns] = {0, 0};
  for (size_t i = 0; i < idx.columns.size(); ++i) {
    const Value& v = row[idx.columns[i]];
    // NULL keys are absent from the tree: every predicate the
    // optimizer turns into an index probe is false on NULL.
    if (v.is_null()) return Status::OK();
    if (v.kind() != TypeKind::kInteger) {
      // A non-integer runtime value slipped into an indexed column
      // (numeric interchange allows it): the tree can no longer
      // answer range predicates faithfully, so retire it from
      // planning while the table itself stays correct.
      idx.degraded = true;
      idx.dirty = true;
      return Status::OK();
    }
    key[i] = v.int_value();
  }
  idx.tree->Insert(key, rid);
  idx.dirty = true;
  return Status::OK();
}

Status Table::IndexRow(const Row& row, storage::Rid rid) {
  for (auto& idx : indexes_) {
    RADB_RETURN_NOT_OK(InsertIntoIndex(*idx, row, rid));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  RADB_RETURN_NOT_OK(ValidateRow(row));
  for (size_t i = 0; i < row.size(); ++i) {
    if (kind_pure_[i] != 0 && !row[i].is_null() &&
        row[i].kind() != schema_.at(i).type.kind()) {
      kind_pure_[i] = 0;
    }
  }
  const size_t p = next_rr_ % parts_.size();
  storage::Rid rid;
  rid.partition = static_cast<uint32_t>(p);
  rid.ordinal = parts_[p].tail_base + parts_[p].tail.size();
  RADB_RETURN_NOT_OK(IndexRow(row, rid));
  PlaceRow(std::move(row), p);
  ++next_rr_;
  BumpVersion();
  return Status::OK();
}

Status Table::InsertAll(std::vector<Row> rows) {
  const size_t n = rows.size();
  for (Row& r : rows) {
    RADB_RETURN_NOT_OK(Insert(std::move(r)));
  }
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.rows_inserted", n);
  }
  return Status::OK();
}

Status Table::RepartitionByHash(size_t column) {
  if (column >= schema_.size()) {
    return Status::InvalidArgument("hash column out of range");
  }
  RADB_ASSIGN_OR_RETURN(RowSet all, Gather());
  // Every rid is about to change: drop cached segments, schedule the
  // old on-disk records for reclamation, and rebuild from scratch.
  if (pool_ != nullptr) pool_->EraseTable(id_);
  for (PartitionData& p : parts_) {
    for (Segment& s : p.sealed) {
      if (s.on_disk) dead_records_.push_back(s.record);
      if (!s.on_disk && pool_ != nullptr && file_ != nullptr) {
        pool_->Discharge(s.payload_bytes);
      }
    }
  }
  const size_t n_parts = parts_.size();
  parts_.assign(n_parts, PartitionData());
  for (Row& r : all) {
    const size_t h = r[column].Hash();
    PlaceRow(std::move(r), h % n_parts);
  }
  partitioning_.kind = Partitioning::Kind::kHash;
  partitioning_.hash_column = column;
  RADB_RETURN_NOT_OK(RebuildIndexes());
  BumpVersion();
  if (obs::MetricsRegistry* reg = obs::GlobalMetrics()) {
    reg->Add("storage.rows_repartitioned", num_rows());
  }
  return Status::OK();
}

size_t Table::NumSegments(size_t partition) const {
  const PartitionData& p = parts_[partition];
  return p.sealed.size() + (p.tail.empty() ? 0 : 1);
}

Result<Table::SegmentPin> Table::PinSegment(size_t partition,
                                            size_t segment) const {
  const PartitionData& p = parts_[partition];
  SegmentPin pin;
  if (segment < p.sealed.size()) {
    const Segment& s = p.sealed[segment];
    pin.base_ = s.ordinal_base;
    if (s.resident != nullptr) {
      pin.owned_ = s.resident;
      pin.rows_ = pin.owned_.get();
      return pin;
    }
    if (pool_ == nullptr || file_ == nullptr) {
      return Status::Internal("segment evicted without a store: " + name_);
    }
    storage::BufferPool::Key key;
    key.table = id_;
    key.partition = static_cast<uint32_t>(partition);
    key.segment = static_cast<uint32_t>(segment);
    const storage::RecordId record = s.record;
    storage::PageFile* file = file_;
    RADB_ASSIGN_OR_RETURN(
        storage::BufferPool::Pin pool_pin,
        pool_->GetOrLoad(
            key,
            [file, record]()
                -> Result<storage::BufferPool::LoadedSegment> {
              RADB_ASSIGN_OR_RETURN(std::string bytes,
                                    file->ReadRecord(record));
              RADB_ASSIGN_OR_RETURN(std::shared_ptr<const RowSet> rows,
                                    DecodeSegment(bytes));
              storage::BufferPool::LoadedSegment loaded;
              loaded.charge = bytes.size();
              loaded.rows = std::move(rows);
              return loaded;
            }));
    pin.pool_pin_ = std::move(pool_pin);
    pin.rows_ = &pin.pool_pin_.rows();
    return pin;
  }
  if (segment == p.sealed.size() && !p.tail.empty()) {
    pin.rows_ = &p.tail;
    pin.base_ = p.tail_base;
    return pin;
  }
  return Status::Internal("segment index out of range in " + name_);
}

Result<Table::RowLocation> Table::LocateRow(uint32_t partition,
                                            uint64_t ordinal) const {
  if (partition >= parts_.size()) {
    return Status::Internal("rid partition out of range in " + name_);
  }
  const PartitionData& p = parts_[partition];
  RowLocation loc;
  if (ordinal >= p.tail_base) {
    if (ordinal - p.tail_base >= p.tail.size()) {
      return Status::Internal("rid ordinal out of range in " + name_);
    }
    loc.segment = static_cast<uint32_t>(p.sealed.size());
    loc.offset = static_cast<size_t>(ordinal - p.tail_base);
    return loc;
  }
  // Binary search the sealed segments by ordinal_base.
  size_t lo = 0, hi = p.sealed.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (p.sealed[mid].ordinal_base <= ordinal) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Segment& s = p.sealed[lo];
  if (ordinal < s.ordinal_base || ordinal - s.ordinal_base >= s.num_rows) {
    return Status::Internal("rid ordinal out of range in " + name_);
  }
  loc.segment = static_cast<uint32_t>(lo);
  loc.offset = static_cast<size_t>(ordinal - s.ordinal_base);
  return loc;
}

Result<Row> Table::FetchRow(storage::Rid rid) const {
  RADB_ASSIGN_OR_RETURN(RowLocation loc, LocateRow(rid.partition,
                                                   rid.ordinal));
  RADB_ASSIGN_OR_RETURN(SegmentPin pin, PinSegment(rid.partition,
                                                   loc.segment));
  return pin.rows()[loc.offset];
}

Result<RowSet> Table::GatherPartition(size_t partition) const {
  RowSet out;
  const size_t nsegs = NumSegments(partition);
  for (size_t s = 0; s < nsegs; ++s) {
    RADB_ASSIGN_OR_RETURN(SegmentPin pin, PinSegment(partition, s));
    out.insert(out.end(), pin.rows().begin(), pin.rows().end());
  }
  return out;
}

Result<RowSet> Table::Gather() const {
  RowSet all;
  all.reserve(num_rows());
  for (size_t p = 0; p < parts_.size(); ++p) {
    RADB_ASSIGN_OR_RETURN(RowSet rows, GatherPartition(p));
    for (Row& r : rows) all.push_back(std::move(r));
  }
  return all;
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<size_t>& columns) {
  if (FindIndex(name) != nullptr) {
    return Status::CatalogError("index " + name + " already exists on " +
                                name_);
  }
  if (columns.empty() ||
      columns.size() > storage::BTreeIndex::kMaxKeyColumns) {
    return Status::InvalidArgument(
        "an index needs 1 to " +
        std::to_string(storage::BTreeIndex::kMaxKeyColumns) + " columns");
  }
  for (size_t c : columns) {
    if (c >= schema_.size()) {
      return Status::InvalidArgument("index column out of range");
    }
    if (schema_.at(c).type.kind() != TypeKind::kInteger) {
      return Status::InvalidArgument(
          "index column " + schema_.at(c).name +
          " must be INTEGER (tile coordinates); got " +
          schema_.at(c).type.ToString());
    }
  }
  auto idx = std::make_unique<IndexDef>();
  idx->name = name;
  idx->columns = columns;
  idx->tree = std::make_unique<storage::BTreeIndex>(columns.size());
  // Build from current contents, walking segments in rid order.
  for (size_t p = 0; p < parts_.size(); ++p) {
    const size_t nsegs = NumSegments(p);
    for (size_t s = 0; s < nsegs; ++s) {
      RADB_ASSIGN_OR_RETURN(SegmentPin pin, PinSegment(p, s));
      const RowSet& rows = pin.rows();
      for (size_t r = 0; r < rows.size(); ++r) {
        storage::Rid rid;
        rid.partition = static_cast<uint32_t>(p);
        rid.ordinal = pin.ordinal_base() + r;
        RADB_RETURN_NOT_OK(InsertIntoIndex(*idx, rows[r], rid));
      }
    }
  }
  indexes_.push_back(std::move(idx));
  BumpVersion();
  return Status::OK();
}

Status Table::DropIndex(const std::string& name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if ((*it)->name == name) {
      if ((*it)->on_disk) dead_records_.push_back((*it)->record);
      indexes_.erase(it);
      BumpVersion();
      return Status::OK();
    }
  }
  return Status::CatalogError("index " + name + " does not exist on " +
                              name_);
}

IndexDef* Table::FindIndex(const std::string& name) {
  for (auto& idx : indexes_) {
    if (idx->name == name) return idx.get();
  }
  return nullptr;
}

Status Table::RebuildIndexes() {
  for (auto& idx : indexes_) {
    idx->tree = std::make_unique<storage::BTreeIndex>(idx->columns.size());
    idx->degraded = false;
    idx->dirty = true;
    if (idx->on_disk) {
      dead_records_.push_back(idx->record);
      idx->on_disk = false;
    }
  }
  if (indexes_.empty()) return Status::OK();
  for (size_t p = 0; p < parts_.size(); ++p) {
    const size_t nsegs = NumSegments(p);
    for (size_t s = 0; s < nsegs; ++s) {
      RADB_ASSIGN_OR_RETURN(SegmentPin pin, PinSegment(p, s));
      const RowSet& rows = pin.rows();
      for (size_t r = 0; r < rows.size(); ++r) {
        storage::Rid rid;
        rid.partition = static_cast<uint32_t>(p);
        rid.ordinal = pin.ordinal_base() + r;
        RADB_RETURN_NOT_OK(IndexRow(rows[r], rid));
      }
    }
  }
  return Status::OK();
}

void Table::ExtractColumns(const RowSet& rows,
                           const std::vector<size_t>& columns,
                           size_t row_begin, size_t row_count,
                           ColumnBatch* out) const {
  out->Clear();
  out->num_rows = row_count;
  out->columns.resize(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnVector& col = out->columns[c];
    col.Reset(schema_.columns()[columns[c]].type.kind(), 0);
    col.null.reserve(row_count);
    for (size_t r = 0; r < row_count; ++r) {
      col.AppendValue(rows[row_begin + r][columns[c]]);
    }
  }
}

// -- Persistence -----------------------------------------------------

void Table::AttachStore(storage::BufferPool* pool, storage::PageFile* file,
                        size_t segment_bytes) {
  pool_ = pool;
  file_ = file;
  if (segment_bytes > 0) segment_bytes_ = segment_bytes;
}

std::string Table::EncodeSegment(const RowSet& rows) {
  std::ostringstream os;
  const uint64_t n = rows.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Row& r : rows) WriteRowBinary(os, r);
  return os.str();
}

Result<std::shared_ptr<const RowSet>> Table::DecodeSegment(
    const std::string& bytes) {
  std::istringstream is(bytes);
  uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is.good()) return Status::Internal("corrupt segment header");
  auto rows = std::make_shared<RowSet>();
  rows->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RADB_ASSIGN_OR_RETURN(Row row, ReadRowBinary(is));
    rows->push_back(std::move(row));
  }
  return std::shared_ptr<const RowSet>(std::move(rows));
}

Result<std::vector<Table::PartitionManifest>> Table::CheckpointSegments() {
  if (file_ == nullptr) {
    return Status::Internal("CheckpointSegments on in-memory table " + name_);
  }
  // Reclaim records superseded since the last checkpoint (repartition,
  // dropped/rewritten indexes). The pager parks the pages in its
  // pending-free list until the snapshot commits.
  for (const storage::RecordId& rid : dead_records_) {
    RADB_RETURN_NOT_OK(file_->FreeRecord(rid));
  }
  dead_records_.clear();
  std::vector<PartitionManifest> out(parts_.size());
  for (size_t p = 0; p < parts_.size(); ++p) {
    // The tail must be durable too — the WAL resets after a
    // checkpoint — so seal it regardless of size.
    SealTail(p);
    PartitionManifest& pm = out[p];
    for (size_t si = 0; si < parts_[p].sealed.size(); ++si) {
      Segment& s = parts_[p].sealed[si];
      if (!s.on_disk) {
        const std::string bytes = EncodeSegment(*s.resident);
        RADB_ASSIGN_OR_RETURN(s.record, file_->AppendRecord(bytes));
        s.on_disk = true;
        if (pool_ != nullptr) {
          // The rows stop being dirty weight and become a clean,
          // evictable cache entry (primed so the working set stays
          // warm across a checkpoint).
          pool_->Discharge(s.payload_bytes);
          storage::BufferPool::Key key;
          key.table = id_;
          key.partition = static_cast<uint32_t>(p);
          key.segment = static_cast<uint32_t>(si);
          std::shared_ptr<const RowSet> resident = s.resident;
          const size_t charge = bytes.size();
          auto primed = pool_->GetOrLoad(
              key, [&resident, charge]()
                       -> Result<storage::BufferPool::LoadedSegment> {
                storage::BufferPool::LoadedSegment loaded;
                loaded.rows = resident;
                loaded.charge = charge;
                return loaded;
              });
          if (!primed.ok()) return primed.status();
          s.resident.reset();
        }
      }
      SegmentManifest sm;
      sm.record = s.record;
      sm.num_rows = s.num_rows;
      sm.payload_bytes = s.payload_bytes;
      pm.segments.push_back(sm);
    }
  }
  return out;
}

Result<std::vector<Table::IndexManifest>> Table::CheckpointIndexes() {
  if (file_ == nullptr) {
    return Status::Internal("CheckpointIndexes on in-memory table " + name_);
  }
  std::vector<IndexManifest> out;
  for (auto& idx : indexes_) {
    if (idx->dirty) {
      if (idx->on_disk) {
        RADB_RETURN_NOT_OK(file_->FreeRecord(idx->record));
        idx->on_disk = false;
      }
      const std::string blob = idx->tree->Serialize();
      RADB_ASSIGN_OR_RETURN(idx->record, file_->AppendRecord(blob));
      idx->on_disk = true;
      idx->dirty = false;
    }
    IndexManifest m;
    m.name = idx->name;
    m.columns = idx->columns;
    m.degraded = idx->degraded;
    m.record = idx->record;
    out.push_back(std::move(m));
  }
  return out;
}

Status Table::RestorePartition(size_t partition,
                               const PartitionManifest& manifest) {
  if (partition >= parts_.size()) {
    return Status::Internal("restore partition out of range in " + name_);
  }
  PartitionData& p = parts_[partition];
  if (!p.sealed.empty() || !p.tail.empty()) {
    return Status::Internal("restore into non-empty partition of " + name_);
  }
  uint64_t base = 0;
  for (const SegmentManifest& sm : manifest.segments) {
    Segment s;
    s.record = sm.record;
    s.on_disk = true;
    s.num_rows = sm.num_rows;
    s.payload_bytes = sm.payload_bytes;
    s.ordinal_base = base;
    base += sm.num_rows;
    p.sealed.push_back(std::move(s));
  }
  p.tail_base = base;
  return Status::OK();
}

Status Table::RestoreIndex(const IndexManifest& manifest) {
  if (file_ == nullptr) {
    return Status::Internal("RestoreIndex on in-memory table " + name_);
  }
  RADB_ASSIGN_OR_RETURN(std::string blob, file_->ReadRecord(manifest.record));
  RADB_ASSIGN_OR_RETURN(std::unique_ptr<storage::BTreeIndex> tree,
                        storage::BTreeIndex::Deserialize(blob));
  auto idx = std::make_unique<IndexDef>();
  idx->name = manifest.name;
  idx->columns = manifest.columns;
  idx->tree = std::move(tree);
  idx->degraded = manifest.degraded;
  idx->record = manifest.record;
  idx->on_disk = true;
  idx->dirty = false;
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

}  // namespace radb
