#include "storage/btree.h"

#include <algorithm>
#include <cstring>

namespace radb::storage {

/// One node: a leaf holds entries [0, count) and a next-leaf link; an
/// internal node holds count separator entries and count+1 children
/// (children[i] spans keys < entries[i]; children[count] the rest).
struct BTreeIndex::Node {
  bool leaf = true;
  size_t count = 0;
  std::array<Entry, kFanout> entries;
  std::array<std::unique_ptr<Node>, kFanout + 1> children;
  Node* next = nullptr;  // leaf chain (non-owning)
};

BTreeIndex::BTreeIndex(size_t key_len)
    : key_len_(std::min(key_len, kMaxKeyColumns)),
      root_(std::make_unique<Node>()) {
  node_count_ = 1;
}

BTreeIndex::~BTreeIndex() {
  // Deep unique_ptr chains recurse on destruction; trees stay shallow
  // (fanout 64), so the default teardown is fine.
}

size_t BTreeIndex::byte_size() const {
  return node_count_ * sizeof(Node) + sizeof(*this);
}

int BTreeIndex::Compare(const Entry& a, const Entry& b) const {
  for (size_t i = 0; i < key_len_; ++i) {
    if (a.key[i] != b.key[i]) return a.key[i] < b.key[i] ? -1 : 1;
  }
  if (a.seq != b.seq) return a.seq < b.seq ? -1 : 1;
  return 0;
}

void BTreeIndex::Insert(const int64_t* key, Rid rid) {
  Entry e;
  e.key.fill(0);
  std::memcpy(e.key.data(), key, key_len_ * sizeof(int64_t));
  e.seq = next_seq_++;
  e.rid = rid;
  std::unique_ptr<Node> new_child;
  Entry separator;
  InsertRec(root_.get(), e, &new_child, &separator);
  if (new_child != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->count = 1;
    new_root->entries[0] = separator;
    new_root->children[0] = std::move(root_);
    new_root->children[1] = std::move(new_child);
    root_ = std::move(new_root);
    ++node_count_;
  }
  ++size_;
}

std::unique_ptr<BTreeIndex::Node> BTreeIndex::Split(Node* node,
                                                    Entry* separator) {
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;
  const size_t mid = node->count / 2;
  if (node->leaf) {
    // Leaves keep every entry; the separator is copied up.
    for (size_t i = mid; i < node->count; ++i) {
      right->entries[right->count++] = node->entries[i];
    }
    node->count = mid;
    right->next = node->next;
    node->next = right.get();
    *separator = right->entries[0];
  } else {
    // Internal: the middle separator moves up, children split around it.
    *separator = node->entries[mid];
    for (size_t i = mid + 1; i < node->count; ++i) {
      right->entries[right->count++] = node->entries[i];
    }
    for (size_t i = mid + 1; i <= node->count; ++i) {
      right->children[i - (mid + 1)] = std::move(node->children[i]);
    }
    node->count = mid;
  }
  ++node_count_;
  return right;
}

void BTreeIndex::InsertRec(Node* node, const Entry& e,
                           std::unique_ptr<Node>* new_child,
                           Entry* separator) {
  if (node->leaf) {
    // Find insertion point (entries are unique by seq tiebreaker).
    size_t pos = node->count;
    for (size_t i = 0; i < node->count; ++i) {
      if (Compare(e, node->entries[i]) < 0) {
        pos = i;
        break;
      }
    }
    for (size_t i = node->count; i > pos; --i) {
      node->entries[i] = node->entries[i - 1];
    }
    node->entries[pos] = e;
    ++node->count;
  } else {
    size_t child = node->count;
    for (size_t i = 0; i < node->count; ++i) {
      if (Compare(e, node->entries[i]) < 0) {
        child = i;
        break;
      }
    }
    std::unique_ptr<Node> grand_child;
    Entry grand_sep;
    InsertRec(node->children[child].get(), e, &grand_child, &grand_sep);
    if (grand_child != nullptr) {
      for (size_t i = node->count; i > child; --i) {
        node->entries[i] = node->entries[i - 1];
        node->children[i + 1] = std::move(node->children[i]);
      }
      node->entries[child] = grand_sep;
      node->children[child + 1] = std::move(grand_child);
      ++node->count;
    }
  }
  if (node->count >= kFanout) {
    *new_child = Split(node, separator);
  }
}

const BTreeIndex::Node* BTreeIndex::LeftmostLeafAtLeast(
    const Entry& lo) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t child = node->count;
    for (size_t i = 0; i < node->count; ++i) {
      if (Compare(lo, node->entries[i]) < 0) {
        child = i;
        break;
      }
    }
    node = node->children[child].get();
  }
  return node;
}

void BTreeIndex::Range(const int64_t* lo, const int64_t* hi,
                       std::vector<Rid>* out) const {
  Entry lo_e;
  lo_e.key.fill(0);
  std::memcpy(lo_e.key.data(), lo, key_len_ * sizeof(int64_t));
  lo_e.seq = 0;
  Entry hi_e;
  hi_e.key.fill(0);
  std::memcpy(hi_e.key.data(), hi, key_len_ * sizeof(int64_t));
  hi_e.seq = UINT64_MAX;
  const Node* leaf = LeftmostLeafAtLeast(lo_e);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->count; ++i) {
      const Entry& e = leaf->entries[i];
      if (Compare(e, lo_e) < 0) continue;
      if (Compare(e, hi_e) > 0) return;
      out->push_back(e.rid);
    }
    leaf = leaf->next;
  }
}

namespace {

void PutU64(std::string* s, uint64_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU64(const std::string& s, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > s.size()) return false;
  std::memcpy(v, s.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

}  // namespace

std::string BTreeIndex::Serialize() const {
  std::string out;
  out.reserve(32 + size_ * (key_len_ + 3) * sizeof(uint64_t));
  PutU64(&out, key_len_);
  PutU64(&out, size_);
  PutU64(&out, next_seq_);
  // Walk the leaf chain from the global minimum.
  Entry lo;
  lo.key.fill(INT64_MIN);
  lo.seq = 0;
  for (const Node* leaf = LeftmostLeafAtLeast(lo); leaf != nullptr;
       leaf = leaf->next) {
    for (size_t i = 0; i < leaf->count; ++i) {
      const Entry& e = leaf->entries[i];
      for (size_t k = 0; k < key_len_; ++k) {
        PutU64(&out, static_cast<uint64_t>(e.key[k]));
      }
      PutU64(&out, e.seq);
      PutU64(&out, e.rid.partition);
      PutU64(&out, e.rid.ordinal);
    }
  }
  return out;
}

Result<std::unique_ptr<BTreeIndex>> BTreeIndex::Deserialize(
    const std::string& bytes) {
  size_t off = 0;
  uint64_t key_len = 0, count = 0, next_seq = 0;
  if (!GetU64(bytes, &off, &key_len) || !GetU64(bytes, &off, &count) ||
      !GetU64(bytes, &off, &next_seq) || key_len == 0 ||
      key_len > kMaxKeyColumns) {
    return Status::InvalidArgument("corrupt index image (header)");
  }
  auto tree = std::make_unique<BTreeIndex>(key_len);
  // Entries arrive in sorted order; inserting in order keeps the
  // build O(n log n) with purely rightmost splits. next_seq is
  // restored afterwards so future inserts keep strictly larger
  // tiebreakers than every serialized entry.
  for (uint64_t i = 0; i < count; ++i) {
    int64_t key[kMaxKeyColumns] = {0, 0};
    uint64_t seq = 0, part = 0, ord = 0;
    for (uint64_t k = 0; k < key_len; ++k) {
      uint64_t raw = 0;
      if (!GetU64(bytes, &off, &raw)) {
        return Status::InvalidArgument("corrupt index image (key)");
      }
      key[k] = static_cast<int64_t>(raw);
    }
    if (!GetU64(bytes, &off, &seq) || !GetU64(bytes, &off, &part) ||
        !GetU64(bytes, &off, &ord)) {
      return Status::InvalidArgument("corrupt index image (entry)");
    }
    tree->next_seq_ = seq;  // Insert assigns next_seq_++ == seq
    tree->Insert(key, Rid{static_cast<uint32_t>(part), ord});
  }
  tree->next_seq_ = next_seq;
  return tree;
}

}  // namespace radb::storage
