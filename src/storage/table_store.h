#ifndef RADB_STORAGE_TABLE_STORE_H_
#define RADB_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "obs/metrics_registry.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace radb::storage {

/// The durable half of a persistent Database: one data directory
/// holding a checkpointed catalog snapshot, a logical write-ahead log,
/// and one page file per table, plus the buffer pool that serves
/// checkpointed segments back to queries.
///
/// Layout of the data directory:
///   radb.lock     flock'd for the store's lifetime (single opener)
///   radb.cat      catalog snapshot (magic RADBCAT1, CRC-trailed)
///   radb.wal      logical redo log (magic RADBWAL1 + epoch header)
///   t<id>.radb    one PageFile per table (<id> is the persistent
///                 file id from the snapshot, not the process-unique
///                 Table::id)
///   radb-tmp-*    checkpoint temporaries, renamed into place or
///                 swept at next open (shared hygiene path with the
///                 spill sweeper)
///
/// Durability protocol. Between checkpoints only the WAL grows: every
/// mutating statement appends ONE CRC-framed logical record (CREATE/
/// DROP/INSERT/…) and — with WalSync::kCommit — fsyncs before the
/// statement returns, making each statement atomic and durable.
/// Checkpoint() is the only writer of page files: it seals open
/// tails, writes new segments and dirty index images, fsyncs the page
/// files, writes the snapshot to a temp name, fsyncs, renames over
/// radb.cat, then rotates the WAL to the next epoch. Pages freed
/// during a checkpoint only become reusable after the snapshot
/// renames (the pager's pending-free list), so a crash at ANY point
/// leaves either the old snapshot + old-epoch WAL or the new
/// snapshot, both self-consistent.
///
/// Recovery (Open on an existing directory): load the snapshot
/// (magic + CRC validated), recreate catalog tables/views/indexes and
/// each pager's free-space metadata (truncating page files back to
/// the snapshot's page counts), then replay the WAL if and only if
/// its epoch matches the snapshot's, stopping cleanly at the first
/// torn or corrupt record. A recovery that replayed anything
/// checkpoints immediately, so the WAL tail is never appended after
/// garbage.
class TableStore {
 public:
  enum class WalSync {
    kNone,    // OS decides; a crash may lose recent statements
    kCommit,  // fsync per mutating statement (default)
  };

  struct Options {
    std::string data_dir;
    uint32_t page_size = PageFile::kDefaultPageSize;
    size_t segment_bytes = Table::kDefaultSegmentBytes;
    size_t buffer_pool_bytes = 256ull << 20;
    WalSync wal_sync = WalSync::kCommit;
    /// WAL size that triggers an automatic checkpoint (bounds both
    /// recovery time and unevictable dirty weight in the pool).
    size_t wal_auto_checkpoint_bytes = 64ull << 20;
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (or creates) the store and populates `catalog` with the
  /// recovered state. `catalog` must outlive the store and start
  /// empty of user relations.
  static Result<std::unique_ptr<TableStore>> Open(const Options& options,
                                                  Catalog* catalog);
  ~TableStore();

  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  /// Checkpoints and releases the directory lock. Idempotent; called
  /// by Database::Close.
  Status Close();

  /// Writes all dirty state to page files and rotates the WAL (see
  /// class comment).
  Status Checkpoint();
  /// Checkpoint when the WAL has outgrown the configured threshold.
  Status MaybeAutoCheckpoint();

  // -- WAL logging: one call per committed mutating statement -------

  Status LogCreateTable(const std::string& name, const Schema& schema);
  Status LogDropTable(const std::string& name);
  Status LogCreateView(const ViewEntry& view);
  Status LogDropView(const std::string& name);
  Status LogInsert(const std::string& table, const std::vector<Row>& rows);
  Status LogCreateIndex(const std::string& table, const std::string& index,
                        const std::vector<size_t>& columns);
  Status LogDropIndex(const std::string& index);
  Status LogRepartition(const std::string& table, size_t column);

  // -- Table lifecycle hooks (called by the Database after the
  //    corresponding catalog mutation succeeded) --------------------

  /// Creates the page file for a new table and attaches it to the
  /// buffer pool.
  Status AttachNewTable(const std::shared_ptr<Table>& table);
  /// Closes and deletes a dropped table's page file.
  Status DetachTable(const std::string& name);

  BufferPool* pool() { return pool_.get(); }

  struct Stats {
    uint64_t wal_bytes = 0;
    uint64_t checkpoints = 0;
    uint64_t replayed_statements = 0;
    bool recovered = false;
    uint64_t page_files = 0;
    uint64_t total_pages = 0;
    uint64_t free_pages = 0;
  };
  Stats GetStats() const;

  const std::string& data_dir() const { return dir_; }

 private:
  struct StoredTable {
    std::shared_ptr<Table> table;
    std::unique_ptr<PageFile> file;
    uint64_t file_id = 0;
  };

  TableStore() = default;

  std::string PageFilePath(uint64_t file_id) const;
  std::string TempPath(const std::string& kind) const;
  Status AcquireLock();
  Status SyncDir() const;

  /// Creates a fresh WAL for `epoch` via temp + rename.
  Status RotateWal(uint64_t epoch);
  Status AppendWalRecord(const std::string& payload);

  Status LoadSnapshot(const std::string& path);
  Status WriteSnapshot();
  /// Replays radb.wal if its epoch matches; returns statements applied.
  Result<uint64_t> ReplayWal();
  Status ApplyWalRecord(const std::string& payload);

  std::string dir_;
  Options options_;
  Catalog* catalog_ = nullptr;
  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, StoredTable> tables_;  // by lowercase name
  uint64_t next_file_id_ = 1;
  uint64_t epoch_ = 0;
  int lock_fd_ = -1;
  int wal_fd_ = -1;
  uint64_t wal_bytes_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t replayed_statements_ = 0;
  bool recovered_ = false;
  bool closed_ = false;

  obs::Counter* wal_records_metric_ = nullptr;
  obs::Counter* checkpoint_metric_ = nullptr;
  obs::Gauge* wal_bytes_gauge_ = nullptr;
};

}  // namespace radb::storage

#endif  // RADB_STORAGE_TABLE_STORE_H_
