#ifndef RADB_TYPES_VALUE_OPS_H_
#define RADB_TYPES_VALUE_OPS_H_

#include "common/result.h"
#include "types/value.h"

namespace radb {

/// Binary arithmetic over runtime values implementing the paper's
/// overloading rules (§3.2):
///  * numeric op numeric     -> numeric (INTEGER preserved for + - *)
///  * vector op vector       -> element-wise vector (shape-checked)
///  * matrix op matrix       -> element-wise matrix (Hadamard for *)
///  * scalar op vector/matrix (either side) -> broadcast
/// LABELED_SCALAR participates as its double payload; the label is
/// dropped by arithmetic (labels are only consumed by aggregates).
enum class ArithOp { kAdd, kSub, kMul, kDiv };

Result<Value> EvalArith(ArithOp op, const Value& lhs, const Value& rhs);

/// Static type inference mirroring EvalArith, used by the binder.
/// Dimension variables across the two sides are unified; a known
/// mismatch is a compile-time TypeError.
Result<DataType> InferArithType(ArithOp op, const DataType& lhs,
                                const DataType& rhs);

/// Unary minus.
Result<Value> EvalNegate(const Value& v);
Result<DataType> InferNegateType(const DataType& t);

/// SQL comparison returning BOOLEAN. Vectors/matrices support =/<> by
/// deep equality; ordering comparisons require comparable scalars.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

Result<Value> EvalCompare(CompareOp op, const Value& lhs, const Value& rhs);
Result<DataType> InferCompareType(CompareOp op, const DataType& lhs,
                                  const DataType& rhs);

}  // namespace radb

#endif  // RADB_TYPES_VALUE_OPS_H_
