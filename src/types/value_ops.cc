#include "types/value_ops.h"

#include <cmath>

namespace radb {

namespace {

bool IsScalarNumeric(TypeKind k) {
  return k == TypeKind::kInteger || k == TypeKind::kDouble ||
         k == TypeKind::kBoolean || k == TypeKind::kLabeledScalar;
}

double ApplyScalar(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kDiv:
      return a / b;
  }
  return 0.0;
}

const char* OpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

Result<Value> VectorVectorArith(ArithOp op, const la::Vector& a,
                                const la::Vector& b) {
  Result<la::Vector> r = [&]() -> Result<la::Vector> {
    switch (op) {
      case ArithOp::kAdd:
        return la::Add(a, b);
      case ArithOp::kSub:
        return la::Sub(a, b);
      case ArithOp::kMul:
        return la::Mul(a, b);
      case ArithOp::kDiv:
        return la::Div(a, b);
    }
    return Status::Internal("bad op");
  }();
  if (!r.ok()) return r.status();
  return Value::FromVector(std::move(r).value());
}

Result<Value> MatrixMatrixArith(ArithOp op, const la::Matrix& a,
                                const la::Matrix& b) {
  Result<la::Matrix> r = [&]() -> Result<la::Matrix> {
    switch (op) {
      case ArithOp::kAdd:
        return la::Add(a, b);
      case ArithOp::kSub:
        return la::Sub(a, b);
      case ArithOp::kMul:
        return la::Mul(a, b);
      case ArithOp::kDiv:
        return la::Div(a, b);
    }
    return Status::Internal("bad op");
  }();
  if (!r.ok()) return r.status();
  return Value::FromMatrix(std::move(r).value());
}

Value VectorScalarArith(ArithOp op, const la::Vector& v, double s,
                        bool scalar_on_left) {
  switch (op) {
    case ArithOp::kAdd:
      return Value::FromVector(la::AddScalar(v, s));
    case ArithOp::kMul:
      return Value::FromVector(la::MulScalar(v, s));
    case ArithOp::kSub:
      return Value::FromVector(scalar_on_left ? la::RsubScalar(s, v)
                                              : la::SubScalar(v, s));
    case ArithOp::kDiv:
      return Value::FromVector(scalar_on_left ? la::RdivScalar(s, v)
                                              : la::DivScalar(v, s));
  }
  return Value::Null();
}

/// Structure-preserving scale of a sparse matrix (s finite, nonzero):
/// only stored entries change, structural zeros stay zero, so the
/// representation survives. Entries that underflow to 0.0 are dropped
/// to keep the CSR canonical.
Value ScaleSparse(const la::sparse::CsrMatrix& m, ArithOp op, double s) {
  la::sparse::CsrMatrix out(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (uint64_t i = m.row_ptr()[r]; i < m.row_ptr()[r + 1]; ++i) {
      const double v =
          op == ArithOp::kDiv ? m.values()[i] / s : m.values()[i] * s;
      if (v != 0.0) out.PushEntry(r, m.col_idx()[i], v);
    }
    out.SealRowsThrough(r);
  }
  return Value::FromSparseMatrix(std::move(out));
}

Value MatrixScalarArith(ArithOp op, const la::Matrix& m, double s,
                        bool scalar_on_left) {
  switch (op) {
    case ArithOp::kAdd:
      return Value::FromMatrix(la::AddScalar(m, s));
    case ArithOp::kMul:
      return Value::FromMatrix(la::MulScalar(m, s));
    case ArithOp::kSub:
      return Value::FromMatrix(scalar_on_left ? la::RsubScalar(s, m)
                                              : la::SubScalar(m, s));
    case ArithOp::kDiv:
      return Value::FromMatrix(scalar_on_left ? la::RdivScalar(s, m)
                                              : la::DivScalar(m, s));
  }
  return Value::Null();
}

}  // namespace

Result<Value> EvalArith(ArithOp op, const Value& lhs, const Value& rhs) {
  const TypeKind lk = lhs.kind(), rk = rhs.kind();
  if (lk == TypeKind::kNull || rk == TypeKind::kNull) return Value::Null();

  // numeric op numeric. INTEGER is preserved between two INTEGERs,
  // including SQL-standard truncating division (the paper's blocking
  // code relies on it: `WHERE x.id/1000 = ind.mi`).
  if (IsScalarNumeric(lk) && IsScalarNumeric(rk)) {
    if (lk == TypeKind::kInteger && rk == TypeKind::kInteger) {
      const int64_t a = lhs.int_value(), b = rhs.int_value();
      switch (op) {
        case ArithOp::kAdd:
          return Value::Int(a + b);
        case ArithOp::kSub:
          return Value::Int(a - b);
        case ArithOp::kMul:
          return Value::Int(a * b);
        case ArithOp::kDiv:
          if (b == 0) {
            return Status::NumericError("integer division by zero");
          }
          return Value::Int(a / b);
      }
    }
    RADB_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
    RADB_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
    return Value::Double(ApplyScalar(op, a, b));
  }

  if (lk == TypeKind::kVector && rk == TypeKind::kVector) {
    return VectorVectorArith(op, lhs.vector(), rhs.vector());
  }
  if (lk == TypeKind::kMatrix && rk == TypeKind::kMatrix) {
    // Two sparse matrices stay sparse for + and * (element-wise union /
    // intersection under plus-times — identical cells to the dense
    // op). Everything else densifies: - and / write non-zero cells
    // where both inputs had none.
    if (lhs.is_sparse_matrix() && rhs.is_sparse_matrix() &&
        (op == ArithOp::kAdd || op == ArithOp::kMul)) {
      const la::sparse::Semiring& s = la::sparse::PlusTimes();
      Result<la::sparse::CsrMatrix> r =
          op == ArithOp::kAdd
              ? la::sparse::EWiseAdd(lhs.sparse_matrix(),
                                     rhs.sparse_matrix(), s)
              : la::sparse::EWiseMul(lhs.sparse_matrix(),
                                     rhs.sparse_matrix(), s);
      if (!r.ok()) return r.status();
      return Value::FromSparseMatrix(std::move(r).value());
    }
    const Value ld = lhs.Densified(), rd = rhs.Densified();
    return MatrixMatrixArith(op, ld.matrix(), rd.matrix());
  }
  if (lk == TypeKind::kVector && IsScalarNumeric(rk)) {
    RADB_ASSIGN_OR_RETURN(double s, rhs.AsDouble());
    return VectorScalarArith(op, lhs.vector(), s, /*scalar_on_left=*/false);
  }
  if (IsScalarNumeric(lk) && rk == TypeKind::kVector) {
    RADB_ASSIGN_OR_RETURN(double s, lhs.AsDouble());
    return VectorScalarArith(op, rhs.vector(), s, /*scalar_on_left=*/true);
  }
  if (lk == TypeKind::kMatrix && IsScalarNumeric(rk)) {
    RADB_ASSIGN_OR_RETURN(double s, rhs.AsDouble());
    if (lhs.is_sparse_matrix()) {
      if ((op == ArithOp::kMul || op == ArithOp::kDiv) &&
          std::isfinite(s) && s != 0.0) {
        return ScaleSparse(lhs.sparse_matrix(), op, s);
      }
      return MatrixScalarArith(op, lhs.Densified().matrix(), s,
                               /*scalar_on_left=*/false);
    }
    return MatrixScalarArith(op, lhs.matrix(), s, /*scalar_on_left=*/false);
  }
  if (IsScalarNumeric(lk) && rk == TypeKind::kMatrix) {
    RADB_ASSIGN_OR_RETURN(double s, lhs.AsDouble());
    if (rhs.is_sparse_matrix()) {
      // s * m commutes; s - m and s / m rewrite structural zeros.
      if (op == ArithOp::kMul && std::isfinite(s) && s != 0.0) {
        return ScaleSparse(rhs.sparse_matrix(), op, s);
      }
      return MatrixScalarArith(op, rhs.Densified().matrix(), s,
                               /*scalar_on_left=*/true);
    }
    return MatrixScalarArith(op, rhs.matrix(), s, /*scalar_on_left=*/true);
  }

  return Status::TypeError(std::string("operator ") + OpName(op) +
                           " not defined for " + TypeKindName(lk) + " and " +
                           TypeKindName(rk));
}

Result<DataType> InferArithType(ArithOp op, const DataType& lhs,
                                const DataType& rhs) {
  const TypeKind lk = lhs.kind(), rk = rhs.kind();
  if (lk == TypeKind::kNull) return rhs;
  if (rk == TypeKind::kNull) return lhs;

  auto unify = [](Dim a, Dim b, const char* what) -> Result<Dim> {
    if (a && b && *a != *b) {
      return Status::TypeError(std::string("element-wise op: ") + what +
                               " mismatch: " + std::to_string(*a) + " vs " +
                               std::to_string(*b));
    }
    return a ? a : b;
  };

  if (IsScalarNumeric(lk) && IsScalarNumeric(rk)) {
    if (lk == TypeKind::kInteger && rk == TypeKind::kInteger) {
      return DataType::Integer();  // incl. truncating division
    }
    return DataType::Double();
  }
  if (lk == TypeKind::kVector && rk == TypeKind::kVector) {
    RADB_ASSIGN_OR_RETURN(Dim n, unify(lhs.rows(), rhs.rows(), "length"));
    return DataType::MakeVector(n);
  }
  if (lk == TypeKind::kMatrix && rk == TypeKind::kMatrix) {
    RADB_ASSIGN_OR_RETURN(Dim r, unify(lhs.rows(), rhs.rows(), "rows"));
    RADB_ASSIGN_OR_RETURN(Dim c, unify(lhs.cols(), rhs.cols(), "cols"));
    return DataType::MakeMatrix(r, c);
  }
  if (lk == TypeKind::kVector && IsScalarNumeric(rk)) return lhs;
  if (IsScalarNumeric(lk) && rk == TypeKind::kVector) return rhs;
  if (lk == TypeKind::kMatrix && IsScalarNumeric(rk)) return lhs;
  if (IsScalarNumeric(lk) && rk == TypeKind::kMatrix) return rhs;

  return Status::TypeError(std::string("operator ") + OpName(op) +
                           " not defined for " + lhs.ToString() + " and " +
                           rhs.ToString());
}

Result<Value> EvalNegate(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kInteger:
      return Value::Int(-v.int_value());
    case TypeKind::kBoolean:
      return Value::Int(-static_cast<int64_t>(v.bool_value()));
    case TypeKind::kDouble:
      return Value::Double(-v.double_value());
    case TypeKind::kLabeledScalar:
      return Value::Labeled(-v.labeled().value, v.labeled().label);
    case TypeKind::kVector:
      return Value::FromVector(la::MulScalar(v.vector(), -1.0),
                               v.vector_value().label);
    case TypeKind::kMatrix:
      if (v.is_sparse_matrix()) {
        return ScaleSparse(v.sparse_matrix(), ArithOp::kMul, -1.0);
      }
      return Value::FromMatrix(la::MulScalar(v.matrix(), -1.0));
    default:
      return Status::TypeError(std::string("cannot negate ") +
                               TypeKindName(v.kind()));
  }
}

Result<DataType> InferNegateType(const DataType& t) {
  if (t.is_numeric() || t.is_la() || t.kind() == TypeKind::kNull ||
      t.kind() == TypeKind::kBoolean) {
    if (t.kind() == TypeKind::kBoolean) return DataType::Integer();
    return t;
  }
  return Status::TypeError("cannot negate " + t.ToString());
}

Result<Value> EvalCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    // Deep equality works for every kind, including LA values.
    const TypeKind lk = lhs.kind(), rk = rhs.kind();
    bool eq;
    if (IsScalarNumeric(lk) && IsScalarNumeric(rk)) {
      RADB_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      RADB_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      eq = (a == b);
    } else {
      eq = lhs.Equals(rhs);
    }
    return Value::Bool(op == CompareOp::kEq ? eq : !eq);
  }
  RADB_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
  switch (op) {
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return Status::Internal("bad compare op");
  }
}

Result<DataType> InferCompareType(CompareOp op, const DataType& lhs,
                                  const DataType& rhs) {
  const TypeKind lk = lhs.kind(), rk = rhs.kind();
  if (lk == TypeKind::kNull || rk == TypeKind::kNull) {
    return DataType::Boolean();
  }
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    const bool both_numeric = (IsScalarNumeric(lk) && IsScalarNumeric(rk));
    if (both_numeric || lhs.CompatibleWith(rhs)) return DataType::Boolean();
    return Status::TypeError("cannot compare " + lhs.ToString() + " with " +
                             rhs.ToString());
  }
  const bool l_ord = IsScalarNumeric(lk) || lk == TypeKind::kString;
  const bool r_ord = IsScalarNumeric(rk) || rk == TypeKind::kString;
  if (!l_ord || !r_ord ||
      ((lk == TypeKind::kString) != (rk == TypeKind::kString))) {
    return Status::TypeError("ordering comparison not defined for " +
                             lhs.ToString() + " and " + rhs.ToString());
  }
  return DataType::Boolean();
}

}  // namespace radb
