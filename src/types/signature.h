#ifndef RADB_TYPES_SIGNATURE_H_
#define RADB_TYPES_SIGNATURE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace radb {

/// One dimension slot in a templated type signature (paper §4.2):
/// either a literal size, a named variable ('a', 'b', ...) unified
/// across all parameters and the result, or a wildcard that matches
/// anything without binding.
struct DimParam {
  enum class Kind { kLiteral, kVariable, kAny };
  Kind kind = Kind::kAny;
  int64_t literal = 0;
  char var = 0;

  static DimParam Lit(int64_t n) {
    return DimParam{Kind::kLiteral, n, 0};
  }
  static DimParam Var(char v) { return DimParam{Kind::kVariable, 0, v}; }
  static DimParam Any() { return DimParam{}; }

  std::string ToString() const;
};

/// A parameter or result slot of a templated signature, e.g.
/// MATRIX[a][b] or VECTOR[a] or DOUBLE.
struct TypeTemplate {
  TypeKind kind = TypeKind::kNull;
  DimParam d0;  // vector length / matrix rows
  DimParam d1;  // matrix cols

  static TypeTemplate Scalar(TypeKind k) { return TypeTemplate{k, {}, {}}; }
  static TypeTemplate Vec(DimParam n) {
    return TypeTemplate{TypeKind::kVector, n, {}};
  }
  static TypeTemplate Mat(DimParam r, DimParam c) {
    return TypeTemplate{TypeKind::kMatrix, r, c};
  }

  std::string ToString() const;
};

/// Dimension-variable bindings accumulated while matching arguments
/// against a signature.
using DimBindings = std::map<char, int64_t>;

/// A templated function type signature: e.g.
///   matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]
/// Binding arguments unifies dimension variables: a variable bound to
/// two different *known* sizes is a compile-time error (§4.2), while
/// unknown argument dims leave the variable unbound and propagate
/// "unspecified" into the result type (checked at runtime, §3.1).
class FunctionSignature {
 public:
  FunctionSignature() = default;
  FunctionSignature(std::string name, std::vector<TypeTemplate> params,
                    TypeTemplate result)
      : name_(std::move(name)),
        params_(std::move(params)),
        min_args_(params_.size()),
        result_(result) {}
  /// Signature with optional trailing parameters: the call may supply
  /// between `min_args` and params.size() arguments (e.g.
  /// sparsify(MATRIX [, DOUBLE]) has min_args = 1).
  FunctionSignature(std::string name, std::vector<TypeTemplate> params,
                    size_t min_args, TypeTemplate result)
      : name_(std::move(name)),
        params_(std::move(params)),
        min_args_(min_args),
        result_(result) {}

  const std::string& name() const { return name_; }
  const std::vector<TypeTemplate>& params() const { return params_; }
  size_t min_args() const { return min_args_; }
  const TypeTemplate& result() const { return result_; }

  /// Checks arity and kinds, unifies dimension variables across the
  /// argument types, and returns the inferred result type. INTEGER
  /// arguments coerce to DOUBLE parameters.
  Result<DataType> Bind(const std::vector<DataType>& args) const;

  /// "matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]"
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<TypeTemplate> params_;
  size_t min_args_ = 0;
  TypeTemplate result_;
};

}  // namespace radb

#endif  // RADB_TYPES_SIGNATURE_H_
