#include "types/schema.h"

#include "common/string_util.h"

namespace radb {

Result<size_t> Schema::Resolve(const std::string& qualifier,
                               const std::string& name) const {
  const std::string q = ToLower(qualifier);
  const std::string n = ToLower(name);
  size_t found = columns_.size();
  int matches = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) != n) continue;
    if (!q.empty() && ToLower(columns_[i].qualifier) != q) continue;
    ++matches;
    found = i;
  }
  if (matches == 0) {
    return Status::BindError("column not found: " +
                             (q.empty() ? n : q + "." + n));
  }
  if (matches > 1) {
    return Status::BindError("ambiguous column reference: " +
                             (q.empty() ? n : q + "." + n));
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& c : right.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.QualifiedName() + " " + c.type.ToString());
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace radb
