#ifndef RADB_TYPES_VALUE_H_
#define RADB_TYPES_VALUE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <variant>

#include "common/result.h"
#include "la/matrix.h"
#include "la/sparse/sparse.h"
#include "la/vector.h"
#include "types/data_type.h"

namespace radb {

/// Sentinel meaning "no label has been assigned". Distinct from every
/// value a user can plausibly compute (labels like `id - 1000` can be
/// genuinely negative, so -1 is NOT a safe sentinel — see VECTORIZE /
/// ROWMATRIX error reporting).
inline constexpr int64_t kNoLabel = std::numeric_limits<int64_t>::min();

/// A DOUBLE carrying an integer label; produced by label_scalar and
/// consumed by the VECTORIZE aggregate (paper §3.3).
struct LabeledScalarValue {
  double value = 0.0;
  int64_t label = kNoLabel;
  bool operator==(const LabeledScalarValue&) const = default;
};

/// Runtime VECTOR payload. Vectors carry an implicit label (unset by
/// default) that label_vector can set and ROWMATRIX/COLMATRIX consume
/// (paper §3.3). Payload is shared so copying a Value is O(1).
struct VectorValue {
  std::shared_ptr<const la::Vector> vec;
  int64_t label = kNoLabel;
  bool operator==(const VectorValue& o) const {
    return label == o.label && (vec == o.vec || (vec && o.vec && *vec == *o.vec));
  }
};

/// Runtime MATRIX payload, shared for O(1) Value copies.
struct MatrixValue {
  std::shared_ptr<const la::Matrix> mat;
  bool operator==(const MatrixValue& o) const {
    return mat == o.mat || (mat && o.mat && *mat == *o.mat);
  }
};

/// Runtime payload of a sparsely-represented MATRIX. Sparsity is a
/// physical property, not a SQL type: kind() is still kMatrix, and a
/// sparse value is Equals()-equal to the dense value with the same
/// cells. Produced by SPARSIFY and by sparse-in → sparse-out kernels.
struct SparseMatrixValue {
  std::shared_ptr<const la::sparse::CsrMatrix> mat;
  bool operator==(const SparseMatrixValue& o) const {
    return mat == o.mat || (mat && o.mat && *mat == *o.mat);
  }
};

/// A single SQL runtime value: the classical scalar types plus the
/// paper's LABELED_SCALAR / VECTOR / MATRIX extension types.
class Value {
 public:
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  static Value Labeled(double value, int64_t label) {
    return Value(Repr(LabeledScalarValue{value, label}));
  }
  static Value FromVector(la::Vector v, int64_t label = kNoLabel) {
    return Value(Repr(
        VectorValue{std::make_shared<la::Vector>(std::move(v)), label}));
  }
  static Value FromSharedVector(std::shared_ptr<const la::Vector> v,
                                int64_t label = kNoLabel) {
    return Value(Repr(VectorValue{std::move(v), label}));
  }
  static Value FromMatrix(la::Matrix m) {
    return Value(Repr(MatrixValue{std::make_shared<la::Matrix>(std::move(m))}));
  }
  static Value FromSharedMatrix(std::shared_ptr<const la::Matrix> m) {
    return Value(Repr(MatrixValue{std::move(m)}));
  }
  static Value FromSparseMatrix(la::sparse::CsrMatrix m) {
    return Value(Repr(SparseMatrixValue{
        std::make_shared<la::sparse::CsrMatrix>(std::move(m))}));
  }
  static Value FromSharedSparseMatrix(
      std::shared_ptr<const la::sparse::CsrMatrix> m) {
    return Value(Repr(SparseMatrixValue{std::move(m)}));
  }

  TypeKind kind() const;
  bool is_null() const { return kind() == TypeKind::kNull; }

  /// The precise runtime type, dimensions included.
  DataType RuntimeType() const;

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const {
    return std::get<std::string>(v_);
  }
  const LabeledScalarValue& labeled() const {
    return std::get<LabeledScalarValue>(v_);
  }
  const VectorValue& vector_value() const {
    return std::get<VectorValue>(v_);
  }
  const MatrixValue& matrix_value() const {
    return std::get<MatrixValue>(v_);
  }
  const la::Vector& vector() const { return *vector_value().vec; }
  /// Dense matrix payload; throws bad_variant_access on a sparse
  /// value — check is_sparse_matrix() or go through Densified().
  const la::Matrix& matrix() const { return *matrix_value().mat; }

  /// True iff this kMatrix value is sparsely represented.
  bool is_sparse_matrix() const {
    return std::holds_alternative<SparseMatrixValue>(v_);
  }
  const SparseMatrixValue& sparse_matrix_value() const {
    return std::get<SparseMatrixValue>(v_);
  }
  const la::sparse::CsrMatrix& sparse_matrix() const {
    return *sparse_matrix_value().mat;
  }
  /// This value with any sparse matrix expanded to dense; identity
  /// (no copy) for everything else.
  Value Densified() const;

  /// Numeric coercion: INTEGER, DOUBLE, BOOLEAN and LABELED_SCALAR all
  /// read as double; anything else is a TypeError.
  Result<double> AsDouble() const;
  /// INTEGER or BOOLEAN as int64; DOUBLE only if integral.
  Result<int64_t> AsInt() const;

  /// Exact serialized payload size (the radb binary value format:
  /// tag byte + payload, element data and dims for MATRIX/VECTOR).
  /// Drives shuffle byte accounting and the memory tracker's charges,
  /// and equals the bytes a spill file writes for this value.
  size_t ByteSize() const;

  /// Deep equality (vectors/matrices compared element-wise). SQL
  /// NULLs compare equal here — this is used by tests and group-by
  /// keys, not three-valued logic. Representation-blind: a sparse
  /// matrix equals the dense matrix with the same cells.
  bool Equals(const Value& other) const;

  /// Total order over comparable scalar kinds for MIN/MAX/ORDER BY.
  /// TypeError on vectors/matrices or mismatched kinds.
  Result<int> Compare(const Value& other) const;

  /// Stable content hash (group-by / hash-join keys).
  size_t Hash() const;

  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            std::string, LabeledScalarValue, VectorValue,
                            MatrixValue, SparseMatrixValue>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

/// Row of values. Tuples flowing through the engine are plain Rows.
using Row = std::vector<Value>;

/// Approximate payload size of a whole row.
size_t RowByteSize(const Row& row);

}  // namespace radb

#endif  // RADB_TYPES_VALUE_H_
