#include "types/data_type.h"

namespace radb {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBoolean:
      return "BOOLEAN";
    case TypeKind::kInteger:
      return "INTEGER";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kLabeledScalar:
      return "LABELED_SCALAR";
    case TypeKind::kVector:
      return "VECTOR";
    case TypeKind::kMatrix:
      return "MATRIX";
  }
  return "UNKNOWN";
}

double DataType::EstimatedByteSize(double default_dim) const {
  switch (kind_) {
    case TypeKind::kNull:
      return 1;
    case TypeKind::kBoolean:
      return 1;
    case TypeKind::kInteger:
    case TypeKind::kDouble:
      return 8;
    case TypeKind::kString:
      return 16;
    case TypeKind::kLabeledScalar:
      return 16;
    case TypeKind::kVector: {
      const double n = rows_ ? static_cast<double>(*rows_) : default_dim;
      return 8.0 * n;
    }
    case TypeKind::kMatrix: {
      const double r = rows_ ? static_cast<double>(*rows_) : default_dim;
      const double c = cols_ ? static_cast<double>(*cols_) : default_dim;
      return 8.0 * r * c;
    }
  }
  return 8;
}

bool DataType::CompatibleWith(const DataType& other) const {
  if (kind_ != other.kind_) return false;
  auto dims_ok = [](Dim a, Dim b) { return !a || !b || *a == *b; };
  return dims_ok(rows_, other.rows_) && dims_ok(cols_, other.cols_);
}

std::string DataType::ToString() const {
  std::string out = TypeKindName(kind_);
  auto dim_str = [](Dim d) {
    return d ? std::to_string(*d) : std::string();
  };
  if (kind_ == TypeKind::kVector) {
    out += "[" + dim_str(rows_) + "]";
  } else if (kind_ == TypeKind::kMatrix) {
    out += "[" + dim_str(rows_) + "][" + dim_str(cols_) + "]";
  }
  return out;
}

}  // namespace radb
