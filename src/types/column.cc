#include "types/column.h"

#include <cassert>

namespace radb {

void ColumnVector::Reset(TypeKind k, size_t n) {
  kind = k;
  null.assign(n, 0);
  i64.clear();
  f64.clear();
  str.clear();
  switch (k) {
    case TypeKind::kBoolean:
    case TypeKind::kInteger:
      i64.resize(n);
      break;
    case TypeKind::kDouble:
      f64.resize(n);
      break;
    case TypeKind::kString:
      str.resize(n);
      break;
    default:
      break;  // kNull: null bytes only
  }
}

void ColumnVector::AppendValue(const Value& v) {
  const bool is_null = v.is_null();
  null.push_back(is_null ? 1 : 0);
  switch (kind) {
    case TypeKind::kBoolean:
      i64.push_back(is_null ? 0 : (v.bool_value() ? 1 : 0));
      break;
    case TypeKind::kInteger:
      i64.push_back(is_null ? 0 : v.int_value());
      break;
    case TypeKind::kDouble:
      f64.push_back(is_null ? 0.0 : v.double_value());
      break;
    case TypeKind::kString:
      str.emplace_back(is_null ? std::string() : v.string_value());
      break;
    default:
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (null[i]) return Value::Null();
  switch (kind) {
    case TypeKind::kBoolean:
      return Value::Bool(i64[i] != 0);
    case TypeKind::kInteger:
      return Value::Int(i64[i]);
    case TypeKind::kDouble:
      return Value::Double(f64[i]);
    case TypeKind::kString:
      return Value::String(str[i]);
    default:
      return Value::Null();
  }
}

size_t ColumnVector::LaneBytes(size_t i) const {
  // Mirrors Value::ByteSize(): tag byte + payload.
  if (null[i]) return 1;
  switch (kind) {
    case TypeKind::kBoolean:
      return 2;
    case TypeKind::kInteger:
    case TypeKind::kDouble:
      return 9;
    case TypeKind::kString:
      return 9 + str[i].size();
    default:
      return 1;
  }
}

}  // namespace radb
