#ifndef RADB_TYPES_SCHEMA_H_
#define RADB_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace radb {

/// One column of a relation: qualified name plus type. `qualifier` is
/// the table alias in scope ("x1" in `data AS x1`); it may be empty
/// for derived columns.
struct Column {
  std::string qualifier;
  std::string name;
  DataType type;

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Ordered column list describing rows produced by an operator or
/// stored in a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void Add(Column c) { columns_.push_back(std::move(c)); }

  /// Resolves `name`, optionally qualified by `qualifier`. BindError
  /// when missing, ambiguous when multiple unqualified matches exist.
  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& name) const;

  /// Concatenation (for joins).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace radb

#endif  // RADB_TYPES_SCHEMA_H_
