#ifndef RADB_TYPES_DATA_TYPE_H_
#define RADB_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"

namespace radb {

/// SQL column type kinds. kLabeledScalar, kVector and kMatrix are the
/// paper's extension (§3.1); the rest are the classical scalar types.
enum class TypeKind {
  kNull = 0,
  kBoolean,
  kInteger,  // 64-bit
  kDouble,
  kString,
  kLabeledScalar,  // DOUBLE with an integer label (§3.3)
  kVector,         // VECTOR[n] or VECTOR[] — elements are double
  kMatrix,         // MATRIX[r][c], either dim may be unspecified
};

const char* TypeKindName(TypeKind kind);

/// A (possibly unspecified) dimension: VECTOR[] has no length,
/// MATRIX[10][] knows only its row count. Unknown dims type-check at
/// compile time and are validated at runtime (paper §3.1).
using Dim = std::optional<int64_t>;

/// A fully-resolved SQL data type: kind plus dimensions for the linear
/// algebra kinds. Scalar kinds ignore the dims.
class DataType {
 public:
  DataType() : kind_(TypeKind::kNull) {}
  explicit DataType(TypeKind kind) : kind_(kind) {}

  static DataType Null() { return DataType(TypeKind::kNull); }
  static DataType Boolean() { return DataType(TypeKind::kBoolean); }
  static DataType Integer() { return DataType(TypeKind::kInteger); }
  static DataType Double() { return DataType(TypeKind::kDouble); }
  static DataType String() { return DataType(TypeKind::kString); }
  static DataType LabeledScalar() {
    return DataType(TypeKind::kLabeledScalar);
  }
  static DataType MakeVector(Dim n = std::nullopt) {
    DataType t(TypeKind::kVector);
    t.rows_ = n;
    return t;
  }
  static DataType MakeMatrix(Dim rows = std::nullopt,
                             Dim cols = std::nullopt) {
    DataType t(TypeKind::kMatrix);
    t.rows_ = rows;
    t.cols_ = cols;
    return t;
  }

  TypeKind kind() const { return kind_; }
  bool is_numeric() const {
    return kind_ == TypeKind::kInteger || kind_ == TypeKind::kDouble;
  }
  bool is_la() const {
    return kind_ == TypeKind::kVector || kind_ == TypeKind::kMatrix ||
           kind_ == TypeKind::kLabeledScalar;
  }

  /// Vector length / matrix row count; nullopt when unspecified.
  Dim rows() const { return rows_; }
  /// Matrix column count; nullopt when unspecified or not a matrix.
  Dim cols() const { return cols_; }

  /// Estimated payload bytes of one value of this type — the quantity
  /// the optimizer's cost model needs (§4.1). Unknown dims fall back
  /// to `default_dim` so plans stay comparable rather than unknowable.
  double EstimatedByteSize(double default_dim = 100.0) const;

  /// Types are compatible when kinds match and every *known* pair of
  /// dims agrees (an unknown dim is compatible with anything).
  bool CompatibleWith(const DataType& other) const;

  bool operator==(const DataType& other) const {
    return kind_ == other.kind_ && rows_ == other.rows_ &&
           cols_ == other.cols_;
  }

  /// "MATRIX[10][100]", "VECTOR[]", "DOUBLE", ...
  std::string ToString() const;

 private:
  TypeKind kind_;
  Dim rows_;
  Dim cols_;
};

}  // namespace radb

#endif  // RADB_TYPES_DATA_TYPE_H_
