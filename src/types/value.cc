#include "types/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace radb {

namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

TypeKind Value::kind() const {
  switch (v_.index()) {
    case 0:
      return TypeKind::kNull;
    case 1:
      return TypeKind::kBoolean;
    case 2:
      return TypeKind::kInteger;
    case 3:
      return TypeKind::kDouble;
    case 4:
      return TypeKind::kString;
    case 5:
      return TypeKind::kLabeledScalar;
    case 6:
      return TypeKind::kVector;
    case 7:
    case 8:  // sparse representation of the same SQL type
      return TypeKind::kMatrix;
  }
  return TypeKind::kNull;
}

Value Value::Densified() const {
  if (!is_sparse_matrix()) return *this;
  return FromMatrix(sparse_matrix().ToDense());
}

DataType Value::RuntimeType() const {
  switch (kind()) {
    case TypeKind::kVector:
      return DataType::MakeVector(static_cast<int64_t>(vector().size()));
    case TypeKind::kMatrix:
      if (is_sparse_matrix()) {
        return DataType::MakeMatrix(
            static_cast<int64_t>(sparse_matrix().rows()),
            static_cast<int64_t>(sparse_matrix().cols()));
      }
      return DataType::MakeMatrix(static_cast<int64_t>(matrix().rows()),
                                  static_cast<int64_t>(matrix().cols()));
    default:
      return DataType(kind());
  }
}

Result<double> Value::AsDouble() const {
  switch (kind()) {
    case TypeKind::kBoolean:
      return bool_value() ? 1.0 : 0.0;
    case TypeKind::kInteger:
      return static_cast<double>(int_value());
    case TypeKind::kDouble:
      return double_value();
    case TypeKind::kLabeledScalar:
      return labeled().value;
    default:
      return Status::TypeError("cannot read " +
                               std::string(TypeKindName(kind())) +
                               " as DOUBLE");
  }
}

Result<int64_t> Value::AsInt() const {
  switch (kind()) {
    case TypeKind::kBoolean:
      return static_cast<int64_t>(bool_value());
    case TypeKind::kInteger:
      return int_value();
    case TypeKind::kDouble: {
      const double d = double_value();
      if (d == std::floor(d)) return static_cast<int64_t>(d);
      return Status::TypeError("non-integral DOUBLE used as INTEGER");
    }
    case TypeKind::kLabeledScalar:
      return labeled().label;
    default:
      return Status::TypeError("cannot read " +
                               std::string(TypeKindName(kind())) +
                               " as INTEGER");
  }
}

size_t Value::ByteSize() const {
  // Exactly the radb binary serialization size (1 tag byte + payload;
  // LA payloads count element data plus their dimension/label header).
  // Spill files, shuffle accounting, and the memory tracker all agree
  // on this number; tests/mem_test.cc pins it against the serializer.
  switch (kind()) {
    case TypeKind::kNull:
      return 1;
    case TypeKind::kBoolean:
      return 2;
    case TypeKind::kInteger:
    case TypeKind::kDouble:
      return 1 + 8;
    case TypeKind::kString:
      return 1 + 8 + string_value().size();
    case TypeKind::kLabeledScalar:
      return 1 + 8 + 8;
    case TypeKind::kVector:
      // tag + label + size + elements.
      return 1 + 8 + 8 + vector().ByteSize();
    case TypeKind::kMatrix:
      if (is_sparse_matrix()) {
        // tag + (rows + cols + nnz + row_ptr + cols + values).
        return 1 + sparse_matrix().SerializedByteSize();
      }
      // tag + rows + cols + elements. Computed from the shape, not
      // Matrix::ByteSize(), which is capacity-aware for the tracker.
      return 1 + 8 + 8 + matrix().rows() * matrix().cols() * sizeof(double);
  }
  return 1 + 8;
}

bool Value::Equals(const Value& other) const {
  const bool a_sparse = is_sparse_matrix();
  const bool b_sparse = other.is_sparse_matrix();
  if (a_sparse == b_sparse) return v_ == other.v_;
  // Mixed representations: equal iff the cells agree. Canonical CSR
  // (sorted columns, no stored 0.0) means stored entries must match
  // dense cells exactly and every other dense cell must be 0.0.
  const la::sparse::CsrMatrix& s =
      a_sparse ? sparse_matrix() : other.sparse_matrix();
  const Value& dv = a_sparse ? other : *this;
  if (dv.kind() != TypeKind::kMatrix) return false;
  const la::Matrix& d = dv.matrix();
  if (s.rows() != d.rows() || s.cols() != d.cols()) return false;
  for (size_t r = 0; r < s.rows(); ++r) {
    uint64_t i = s.row_ptr()[r];
    const uint64_t ie = s.row_ptr()[r + 1];
    const double* row = d.RowPtr(r);
    for (size_t c = 0; c < s.cols(); ++c) {
      if (i < ie && s.col_idx()[i] == c) {
        if (!(row[c] == s.values()[i])) return false;
        ++i;
      } else if (!(row[c] == 0.0)) {
        return false;
      }
    }
  }
  return true;
}

Result<int> Value::Compare(const Value& other) const {
  // Numeric kinds compare through double; strings lexicographically.
  const TypeKind a = kind(), b = other.kind();
  const bool a_num = (a == TypeKind::kInteger || a == TypeKind::kDouble ||
                      a == TypeKind::kBoolean || a == TypeKind::kLabeledScalar);
  const bool b_num = (b == TypeKind::kInteger || b == TypeKind::kDouble ||
                      b == TypeKind::kBoolean || b == TypeKind::kLabeledScalar);
  if (a_num && b_num) {
    RADB_ASSIGN_OR_RETURN(double x, AsDouble());
    RADB_ASSIGN_OR_RETURN(double y, other.AsDouble());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a == TypeKind::kString && b == TypeKind::kString) {
    const int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return Status::TypeError(std::string("cannot compare ") + TypeKindName(a) +
                           " with " + TypeKindName(b));
}

size_t Value::Hash() const {
  std::hash<double> hd;
  std::hash<int64_t> hi;
  switch (kind()) {
    case TypeKind::kNull:
      return 0x517cc1b727220a95ULL;
    case TypeKind::kBoolean:
      return bool_value() ? 0x9ae16a3b2f90404fULL : 0xc949d7c7509e6557ULL;
    case TypeKind::kInteger:
      // Integers hash like the equal double so 1 and 1.0 join/group
      // together, matching numeric comparison semantics.
      return hd(static_cast<double>(int_value()));
    case TypeKind::kDouble:
      return hd(double_value());
    case TypeKind::kString:
      return std::hash<std::string>()(string_value());
    case TypeKind::kLabeledScalar:
      return HashCombine(hd(labeled().value), hi(labeled().label));
    case TypeKind::kVector: {
      size_t h = hi(static_cast<int64_t>(vector().size()));
      for (double d : vector().values()) h = HashCombine(h, hd(d));
      return h;
    }
    case TypeKind::kMatrix: {
      if (is_sparse_matrix()) {
        // Hash must match the dense value with the same cells so
        // mixed-representation group-by keys collide correctly.
        // std::hash<double> hashes -0.0 and +0.0 identically, so
        // expanding structural zeros as 0.0 is exact.
        const la::sparse::CsrMatrix& m = sparse_matrix();
        size_t h = HashCombine(hi(static_cast<int64_t>(m.rows())),
                               hi(static_cast<int64_t>(m.cols())));
        const size_t zero_hash = hd(0.0);
        for (size_t r = 0; r < m.rows(); ++r) {
          uint64_t i = m.row_ptr()[r];
          const uint64_t ie = m.row_ptr()[r + 1];
          for (size_t c = 0; c < m.cols(); ++c) {
            if (i < ie && m.col_idx()[i] == c) {
              h = HashCombine(h, hd(m.values()[i++]));
            } else {
              h = HashCombine(h, zero_hash);
            }
          }
        }
        return h;
      }
      const la::Matrix& m = matrix();
      size_t h = HashCombine(hi(static_cast<int64_t>(m.rows())),
                             hi(static_cast<int64_t>(m.cols())));
      const double* p = m.data();
      for (size_t i = 0; i < m.rows() * m.cols(); ++i) {
        h = HashCombine(h, hd(p[i]));
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBoolean:
      return bool_value() ? "true" : "false";
    case TypeKind::kInteger:
      os << int_value();
      return os.str();
    case TypeKind::kDouble:
      os << double_value();
      return os.str();
    case TypeKind::kString:
      return "'" + string_value() + "'";
    case TypeKind::kLabeledScalar:
      os << labeled().value << "@";
      if (labeled().label == kNoLabel) {
        os << "?";
      } else {
        os << labeled().label;
      }
      return os.str();
    case TypeKind::kVector:
      return vector().ToString();
    case TypeKind::kMatrix:
      if (is_sparse_matrix()) return sparse_matrix().ToString();
      return matrix().ToString();
  }
  return "?";
}

size_t RowByteSize(const Row& row) {
  size_t s = 0;
  for (const Value& v : row) s += v.ByteSize();
  return s;
}

}  // namespace radb
