#ifndef RADB_TYPES_COLUMN_H_
#define RADB_TYPES_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace radb {

/// One typed column vector of a batch: contiguous primitive storage
/// plus a null bitmap (one byte per lane — branch-light to test and
/// trivially vectorizable to OR/accumulate). Only the scalar SQL kinds
/// are representable; LA values (VECTOR/MATRIX/LABELED_SCALAR) never
/// enter the columnar engine — pipelines touching them stay on the
/// row engine.
///
/// Storage by kind:
///   kBoolean / kInteger -> i64 (booleans stored as 0/1)
///   kDouble             -> f64
///   kString             -> str
/// Lanes whose null byte is set hold an unspecified payload; kernels
/// must not read them except to copy them around.
struct ColumnVector {
  TypeKind kind = TypeKind::kNull;
  std::vector<uint8_t> null;  // 1 = SQL NULL in that lane
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  /// True for the kinds a Column can hold. kNull is allowed (a column
  /// of a statically-NULL expression: every lane null, no payload).
  static bool KindSupported(TypeKind k) {
    return k == TypeKind::kNull || k == TypeKind::kBoolean ||
           k == TypeKind::kInteger || k == TypeKind::kDouble ||
           k == TypeKind::kString;
  }

  size_t size() const { return null.size(); }

  /// Re-types the column and resizes it to `n` lanes (payloads
  /// unspecified, all lanes non-null). Keeps capacity across batches.
  void Reset(TypeKind k, size_t n);

  /// Appends one Value (accessor: row -> column). The value's kind
  /// must match `kind` or be NULL.
  void AppendValue(const Value& v);

  /// Materializes lane `i` back into a Value (column -> row).
  Value GetValue(size_t i) const;

  /// Serialized payload size of lane `i`; equals GetValue(i).ByteSize()
  /// so columnar byte accounting matches the row engine's.
  size_t LaneBytes(size_t i) const;
};

/// A batch of rows in columnar layout. `num_rows` lanes per column;
/// when `has_selection` is set only the lanes listed in `selection`
/// (strictly ascending) are live — filters narrow the selection
/// instead of compacting payloads, so passing operators stay
/// zero-copy.
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> columns;
  bool has_selection = false;
  std::vector<uint32_t> selection;

  size_t num_live() const {
    return has_selection ? selection.size() : num_rows;
  }

  /// Drops rows and selection, keeping column capacity for reuse.
  void Clear() {
    num_rows = 0;
    has_selection = false;
    selection.clear();
  }
};

}  // namespace radb

#endif  // RADB_TYPES_COLUMN_H_
