#include "types/signature.h"

#include "common/string_util.h"

namespace radb {

std::string DimParam::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return std::to_string(literal);
    case Kind::kVariable:
      return std::string(1, var);
    case Kind::kAny:
      return "";
  }
  return "";
}

std::string TypeTemplate::ToString() const {
  std::string out = TypeKindName(kind);
  if (kind == TypeKind::kVector) {
    out += "[" + d0.ToString() + "]";
  } else if (kind == TypeKind::kMatrix) {
    out += "[" + d0.ToString() + "][" + d1.ToString() + "]";
  }
  return out;
}

namespace {

/// Unifies one dimension slot of one argument against the template.
/// `actual` may be unknown (VECTOR[]), which never constrains.
Status UnifyDim(const std::string& fn, const DimParam& param, Dim actual,
                DimBindings* bindings) {
  if (!actual.has_value()) return Status::OK();
  switch (param.kind) {
    case DimParam::Kind::kAny:
      return Status::OK();
    case DimParam::Kind::kLiteral:
      if (param.literal != *actual) {
        return Status::TypeError(
            fn + ": dimension " + std::to_string(*actual) +
            " does not match required size " + std::to_string(param.literal));
      }
      return Status::OK();
    case DimParam::Kind::kVariable: {
      auto it = bindings->find(param.var);
      if (it == bindings->end()) {
        (*bindings)[param.var] = *actual;
        return Status::OK();
      }
      if (it->second != *actual) {
        return Status::TypeError(
            fn + ": dimension variable '" + std::string(1, param.var) +
            "' bound to both " + std::to_string(it->second) + " and " +
            std::to_string(*actual));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

/// Projects a bound (or unbound) dimension slot into the result type.
Dim ResolveDim(const DimParam& param, const DimBindings& bindings) {
  switch (param.kind) {
    case DimParam::Kind::kLiteral:
      return param.literal;
    case DimParam::Kind::kVariable: {
      auto it = bindings.find(param.var);
      if (it != bindings.end()) return it->second;
      return std::nullopt;  // stays unspecified; checked at runtime
    }
    case DimParam::Kind::kAny:
      return std::nullopt;
  }
  return std::nullopt;
}

bool KindMatches(TypeKind param, TypeKind arg) {
  if (param == arg) return true;
  // Numeric coercions a database user expects: INTEGER/BOOLEAN read as
  // DOUBLE; LABELED_SCALAR also carries a double payload.
  if (param == TypeKind::kDouble &&
      (arg == TypeKind::kInteger || arg == TypeKind::kBoolean ||
       arg == TypeKind::kLabeledScalar)) {
    return true;
  }
  if (param == TypeKind::kInteger && arg == TypeKind::kBoolean) return true;
  return false;
}

}  // namespace

Result<DataType> FunctionSignature::Bind(
    const std::vector<DataType>& args) const {
  if (args.size() < min_args_ || args.size() > params_.size()) {
    const std::string expected =
        min_args_ == params_.size()
            ? std::to_string(params_.size())
            : std::to_string(min_args_) + " to " +
                  std::to_string(params_.size());
    return Status::TypeError(name_ + ": expected " + expected +
                             " argument(s), got " +
                             std::to_string(args.size()));
  }
  DimBindings bindings;
  for (size_t i = 0; i < args.size(); ++i) {
    const TypeTemplate& p = params_[i];
    const DataType& a = args[i];
    if (a.kind() == TypeKind::kNull) continue;  // NULL matches anything
    if (!KindMatches(p.kind, a.kind())) {
      return Status::TypeError(name_ + ": argument " + std::to_string(i + 1) +
                               " has type " + a.ToString() + ", expected " +
                               p.ToString());
    }
    if (p.kind == TypeKind::kVector) {
      RADB_RETURN_NOT_OK(UnifyDim(name_, p.d0, a.rows(), &bindings));
    } else if (p.kind == TypeKind::kMatrix) {
      RADB_RETURN_NOT_OK(UnifyDim(name_, p.d0, a.rows(), &bindings));
      RADB_RETURN_NOT_OK(UnifyDim(name_, p.d1, a.cols(), &bindings));
    }
  }
  switch (result_.kind) {
    case TypeKind::kVector:
      return DataType::MakeVector(ResolveDim(result_.d0, bindings));
    case TypeKind::kMatrix:
      return DataType::MakeMatrix(ResolveDim(result_.d0, bindings),
                                  ResolveDim(result_.d1, bindings));
    default:
      return DataType(result_.kind);
  }
}

std::string FunctionSignature::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    std::string s = params_[i].ToString();
    if (i >= min_args_) s = "[" + s + "]";
    parts.push_back(std::move(s));
  }
  return name_ + "(" + Join(parts, ", ") + ") -> " + result_.ToString();
}

}  // namespace radb
