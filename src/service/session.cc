#include "service/session.h"

#include <chrono>
#include <optional>
#include <utility>

#include "parser/parser.h"

namespace radb::service {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A script is read-only when every statement is a SELECT, EXPLAIN, or
/// EXECUTE of a prepared SELECT. PREPARE and DEALLOCATE classify as
/// writers: they mutate shared database state (the prepared-statement
/// map), and the unique latch serializes them against concurrent
/// EXECUTEs rebinding the same name. Unparseable scripts classify as
/// writers: the unique latch is the safe default, and the parse error
/// surfaces from Database::Execute exactly as it would standalone.
bool IsReadOnlyScript(const std::string& sql) {
  auto parsed = parser::ParseScript(sql);
  if (!parsed.ok()) return false;
  for (const auto& stmt : parsed.value()) {
    if (stmt.kind != parser::Statement::Kind::kSelect &&
        stmt.kind != parser::Statement::Kind::kExplain &&
        stmt.kind != parser::Statement::Kind::kExecutePrepared) {
      return false;
    }
  }
  return true;
}
}  // namespace

SessionManager::SessionManager(Database* db, ServiceConfig config)
    : db_(db),
      config_(std::move(config)),
      admission_(config_.admission, db->metrics_registry()),
      telemetry_(db->telemetry_store()) {
  obs::MetricsRegistry* metrics = db_->metrics_registry();
  if (metrics != nullptr) {
    queue_wait_hist_ = metrics->histogram("service.queue_wait_seconds");
    query_seconds_hist_ = metrics->histogram("service.query_seconds");
    latch_read_hist_ = metrics->histogram("service.latch_wait_read_seconds");
    latch_write_hist_ = metrics->histogram("service.latch_wait_write_seconds");
    cancelled_counter_ = metrics->counter("service.queries_cancelled");
  }
}

std::unique_ptr<Session> SessionManager::CreateSession() {
  const uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  telemetry_->RegisterSession(id);
  // Session's constructor is private; can't use make_unique.
  return std::unique_ptr<Session>(new Session(this, id));
}

Session::~Session() { manager_->telemetry_->DeregisterSession(id_); }

std::shared_ptr<CancellationToken> Session::TokenFor(uint64_t seq) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  auto& slot = tokens_[seq];
  if (slot == nullptr) slot = std::make_shared<CancellationToken>();
  return slot;
}

void Session::ForgetToken(uint64_t seq) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.erase(seq);
}

void Session::Cancel(uint64_t query_seq) {
  // TokenFor creates the token when the query hasn't started yet, so
  // a Cancel that races ahead of Execute still lands: Execute finds
  // the pre-fired token and returns Cancelled before running anything.
  TokenFor(query_seq)->Cancel();
}

Result<ScriptResult> Session::Execute(const std::string& sql,
                                      uint64_t* query_seq) {
  return Execute(sql, manager_->config_.default_options, query_seq);
}

Result<ScriptResult> Session::Execute(const std::string& sql,
                                      const QueryOptions& options,
                                      uint64_t* query_seq) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (query_seq != nullptr) *query_seq = seq;
  std::shared_ptr<CancellationToken> token = TokenFor(seq);
  // Arm at submission: the deadline clock covers admission-queue wait,
  // not just execution (a query stuck behind heavy work still times
  // out on schedule).
  if (options.deadline_ms > 0 && !token->has_deadline()) {
    token->ArmDeadlineMs(options.deadline_ms);
  }
  const double start = NowSeconds();
  // Globally unique query id: session id in the high half, the
  // session-local sequence number in the low. Drives spill-file
  // attribution, thread-pool fair-scheduling tags, and the telemetry
  // record.
  const uint64_t query_id = (id_ << 32) | seq;
  obs::TelemetryStore* telemetry = manager_->telemetry_;

  auto finish = [&](Result<ScriptResult> result) -> Result<ScriptResult> {
    if (manager_->query_seconds_hist_ != nullptr) {
      manager_->query_seconds_hist_->Observe(NowSeconds() - start);
    }
    if (!result.ok() && cancelled_counter_bump(result.status())) {
      manager_->cancelled_counter_->Add(1);
    }
    telemetry->SetSessionState(id_, "idle", 0, "");
    ForgetToken(seq);
    return result;
  };

  const bool read_only = IsReadOnlyScript(sql);

  // Cache-hit fast path: a read-only script whose every statement is
  // already in the result cache skips admission entirely — it claims
  // no memory and holds no concurrency slot, so hot repeated traffic
  // is bounded by the shared latch, not the admission queue. Cancel
  // still wins: a pre-fired or expired token bypasses the cache.
  if (read_only && token->Check().ok()) {
    const double fast_t0 = NowSeconds();
    std::shared_lock<std::shared_mutex> latch(manager_->catalog_latch_);
    const double latch_wait = NowSeconds() - fast_t0;
    QueryOptions fast = options;
    fast.cancellation = token;
    fast.query_id = query_id;
    fast.session_id = id_;
    fast.queue_wait_micros = 0;
    fast.latch_wait_micros = static_cast<uint64_t>(latch_wait * 1e6);
    std::optional<ScriptResult> hit =
        manager_->db_->ExecuteCachedOnly(sql, fast);
    if (hit.has_value()) {
      if (manager_->latch_read_hist_ != nullptr) {
        manager_->latch_read_hist_->Observe(latch_wait);
      }
      telemetry->SetSessionState(id_, "running", query_id, sql);
      return finish(std::move(*hit));
    }
  }

  // Admission: claim the per-call budget (or the controller's default
  // for unbudgeted calls) against the global budget + concurrency cap.
  telemetry->SetSessionState(id_, "queued", query_id, sql);
  double queue_wait = 0.0;
  size_t claim = options.memory_budget_bytes;
  auto slot_or = manager_->admission_.Admit(claim, token.get(), &queue_wait);
  if (manager_->queue_wait_hist_ != nullptr) {
    manager_->queue_wait_hist_->Observe(queue_wait);
  }
  const uint64_t queue_micros = static_cast<uint64_t>(queue_wait * 1e6);
  if (!slot_or.ok()) {
    // Rejected/cancelled in the queue: Database::Execute never runs,
    // so the radb_queries record is written here — all blocked time is
    // queue wait.
    obs::QueryRecord record;
    record.query_id = query_id;
    record.session_id = id_;
    record.sql = sql;
    record.status = StatusCodeName(slot_or.status().code());
    record.phases[obs::QueryPhase::kQueue] = queue_micros;
    record.total_micros = queue_micros;
    telemetry->RecordQuery(std::move(record));
    return finish(slot_or.status());
  }
  AdmissionController::Slot slot = std::move(slot_or).value();

  QueryOptions opts = options;
  opts.cancellation = token;
  opts.query_id = query_id;
  opts.memory_parent = manager_->admission_.global_tracker();
  opts.session_id = id_;
  opts.queue_wait_micros = queue_micros;

  const double latch_t0 = NowSeconds();
  auto run = [&](double latch_wait_seconds) -> Result<ScriptResult> {
    obs::Histogram* hist = read_only ? manager_->latch_read_hist_
                                     : manager_->latch_write_hist_;
    if (hist != nullptr) hist->Observe(latch_wait_seconds);
    opts.latch_wait_micros = static_cast<uint64_t>(latch_wait_seconds * 1e6);
    telemetry->SetSessionState(id_, "running", query_id, sql);
    return finish(manager_->db_->Execute(sql, opts));
  };
  if (read_only) {
    std::shared_lock<std::shared_mutex> latch(manager_->catalog_latch_);
    return run(NowSeconds() - latch_t0);
  }
  std::unique_lock<std::shared_mutex> latch(manager_->catalog_latch_);
  return run(NowSeconds() - latch_t0);
}

bool Session::cancelled_counter_bump(const Status& s) const {
  if (manager_->cancelled_counter_ == nullptr) return false;
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace radb::service
