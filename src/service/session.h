#ifndef RADB_SERVICE_SESSION_H_
#define RADB_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "api/database.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "service/admission.h"

namespace radb::service {

class Session;

/// SessionManager-level configuration.
struct ServiceConfig {
  AdmissionConfig admission;
  /// Default QueryOptions for sessions that don't override them per
  /// call (memory budget, deadline, metrics toggles).
  QueryOptions default_options;
};

/// Front door for concurrent access to one Database: hands out
/// Sessions, owns the admission controller (global memory budget +
/// concurrency gate) and the catalog latch that lets DDL and queries
/// interleave safely.
///
/// Catalog latch semantics: scripts consisting only of SELECT /
/// EXPLAIN statements take the latch shared — any number run
/// concurrently. A script containing DDL/DML (CREATE/INSERT/DROP)
/// takes it unique, so it never mutates the catalog or table data
/// under a running reader. This is coarse (whole-script, not
/// per-table) but is what makes "snapshot-consistent" trivially true:
/// a reader sees the catalog state from before or after a writer,
/// never the middle.
///
/// Thread-safe. Sessions must not outlive their manager, and the
/// manager must not outlive the Database.
class SessionManager {
 public:
  /// `db` must outlive the manager. Service metrics go into the
  /// database's own registry when it has one (so they appear in the
  /// same JSON export as exec/mem metrics).
  SessionManager(Database* db, ServiceConfig config = {});
  ~SessionManager() = default;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// A new session with a fresh id. Sessions are independent handles;
  /// one per client thread is the intended shape, but a Session is
  /// itself thread-safe (Cancel races Execute by design).
  std::unique_ptr<Session> CreateSession();

  Database* database() { return db_; }
  AdmissionController& admission() { return admission_; }
  const ServiceConfig& config() const { return config_; }

 private:
  friend class Session;

  Database* db_;
  ServiceConfig config_;
  AdmissionController admission_;
  /// Readers (SELECT-only scripts) shared, writers (DDL/DML) unique.
  std::shared_mutex catalog_latch_;
  /// Query-latency histogram names are resolved once here.
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* query_seconds_hist_ = nullptr;
  /// Catalog-latch wait distributions, split by acquisition mode, so
  /// reader-vs-writer contention is attributable separately.
  obs::Histogram* latch_read_hist_ = nullptr;
  obs::Histogram* latch_write_hist_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  /// The database's telemetry store (never null): live-session state
  /// for radb_sessions plus records for admission-rejected calls that
  /// never reach Database::Execute.
  obs::TelemetryStore* telemetry_ = nullptr;
  std::atomic<uint64_t> next_session_id_{1};
};

/// One client's handle onto the service. Execute() runs a script
/// through admission, the catalog latch, and the Database, under a
/// per-call CancellationToken; Cancel(seq) fires that token from any
/// thread.
///
/// Query numbering: each Execute call gets the next per-session
/// sequence number (1, 2, ...), returned via the optional out-param
/// and usable with Cancel. Cancelling a sequence number that hasn't
/// started yet pre-arms its token, so a racing Cancel always wins —
/// the call observes Cancelled no matter which side ran first.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs a ';'-separated script with the manager's default options.
  /// `query_seq`, when non-null, receives this call's sequence number
  /// BEFORE execution starts (write it from the submitting thread,
  /// then hand it to a canceller).
  Result<ScriptResult> Execute(const std::string& sql,
                               uint64_t* query_seq = nullptr);
  /// Same, with per-call option overrides. options.cancellation and
  /// options.query_id are ignored (the session supplies both);
  /// options.deadline_ms arms the deadline at SUBMISSION, so it
  /// covers admission-queue wait as well as execution.
  Result<ScriptResult> Execute(const std::string& sql,
                               const QueryOptions& options,
                               uint64_t* query_seq = nullptr);

  /// Fires the cancellation token of query `query_seq`. Unknown or
  /// already-finished sequence numbers pre-arm a token so the call
  /// (if it ever starts) is cancelled on arrival; this is what makes
  /// Cancel race-free against Execute.
  void Cancel(uint64_t query_seq);

  /// Sequence number the NEXT Execute call will get.
  uint64_t next_query_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  uint64_t id() const { return id_; }

 private:
  friend class SessionManager;
  Session(SessionManager* manager, uint64_t id)
      : manager_(manager), id_(id) {}

  /// The token for `seq`, creating it if absent (both Execute and a
  /// pre-cancelling Cancel may be first).
  std::shared_ptr<CancellationToken> TokenFor(uint64_t seq);
  void ForgetToken(uint64_t seq);
  /// True when `s` should count toward service.queries_cancelled (and
  /// the counter exists).
  bool cancelled_counter_bump(const Status& s) const;

  SessionManager* manager_;
  const uint64_t id_;
  std::atomic<uint64_t> next_seq_{1};
  std::mutex tokens_mu_;
  std::map<uint64_t, std::shared_ptr<CancellationToken>> tokens_;
};

}  // namespace radb::service

#endif  // RADB_SERVICE_SESSION_H_
