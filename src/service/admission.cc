#include "service/admission.h"

#include <algorithm>
#include <chrono>

namespace radb::service {

namespace {
// steady_clock nanoseconds — the same clock CancellationToken's
// deadline_ns() uses, so the two are directly comparable.
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry* metrics)
    : config_(config),
      metrics_(metrics),
      global_tracker_("service-global", config.global_memory_budget_bytes,
                      metrics) {
  if (metrics_ != nullptr) {
    admitted_counter_ = metrics_->counter("service.queries_admitted");
    queued_counter_ = metrics_->counter("service.queries_queued");
    rejected_counter_ = metrics_->counter("service.queries_rejected");
    running_gauge_ = metrics_->gauge("service.admitted_running");
    claimed_gauge_ = metrics_->gauge("service.claimed_bytes");
  }
}

void AdmissionController::PublishGauges() {
  if (running_gauge_ != nullptr) {
    running_gauge_->Set(static_cast<double>(running_));
  }
  if (claimed_gauge_ != nullptr) {
    claimed_gauge_->Set(static_cast<double>(claimed_bytes_));
  }
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t AdmissionController::claimed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claimed_bytes_;
}

Result<AdmissionController::Slot> AdmissionController::Admit(
    size_t claim_bytes, const CancellationToken* cancel,
    double* queue_wait_seconds) {
  if (queue_wait_seconds != nullptr) {
    *queue_wait_seconds = 0.0;
  }
  size_t claim = claim_bytes == 0 ? config_.default_query_claim_bytes
                                  : claim_bytes;
  // A query larger than the whole budget must still be admittable
  // (alone); otherwise it would queue forever.
  if (config_.global_memory_budget_bytes > 0) {
    claim = std::min(claim, config_.global_memory_budget_bytes);
  }

  auto admissible = [&]() {
    if (running_ >= config_.max_concurrent_queries) return false;
    if (config_.global_memory_budget_bytes > 0 &&
        claimed_bytes_ + claim > config_.global_memory_budget_bytes) {
      return false;
    }
    return true;
  };

  // A token that already fired (pre-cancel, or a deadline spent
  // entirely upstream) never takes a slot. Token-fired exits are NOT
  // "rejected" — that counter is for admission refusals (queue full /
  // timeout); the session layer counts cancellations.
  if (cancel != nullptr) {
    RADB_RETURN_NOT_OK(cancel->Check());
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && admissible()) {
    running_ += 1;
    claimed_bytes_ += claim;
    PublishGauges();
    if (admitted_counter_ != nullptr) admitted_counter_->Add(1);
    return Slot(this, claim);
  }

  // Must wait. Reject immediately when the queue is full — blocking
  // here would just move the pile-up upstream.
  if (queue_.size() >= config_.max_queue_length) {
    if (rejected_counter_ != nullptr) rejected_counter_->Add(1);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) +
        " waiting, max " + std::to_string(config_.max_queue_length) + ")");
  }

  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  if (queued_counter_ != nullptr) queued_counter_->Add(1);
  const int64_t wait_start_ns = NowNs();

  // The waiter's hard exit time: queue timeout and/or token deadline,
  // whichever comes first (0 = unbounded).
  int64_t exit_ns = 0;
  if (config_.queue_timeout_ms > 0) {
    exit_ns = wait_start_ns +
              static_cast<int64_t>(config_.queue_timeout_ms) * 1000000;
  }
  if (cancel != nullptr && cancel->has_deadline()) {
    const int64_t dl = cancel->deadline_ns();
    exit_ns = exit_ns == 0 ? dl : std::min(exit_ns, dl);
  }

  auto leave_queue = [&]() {
    auto it = std::find(queue_.begin(), queue_.end(), ticket);
    if (it != queue_.end()) queue_.erase(it);
    // Our departure may unblock the new front ticket.
    cv_.notify_all();
  };
  auto record_wait = [&]() {
    if (queue_wait_seconds != nullptr) {
      *queue_wait_seconds =
          static_cast<double>(NowNs() - wait_start_ns) * 1e-9;
    }
  };

  while (true) {
    const bool at_front = !queue_.empty() && queue_.front() == ticket;
    if (at_front && admissible()) {
      queue_.pop_front();
      running_ += 1;
      claimed_bytes_ += claim;
      PublishGauges();
      if (admitted_counter_ != nullptr) admitted_counter_->Add(1);
      record_wait();
      // There may be capacity for the next waiter too (e.g. two slots
      // freed at once).
      cv_.notify_all();
      return Slot(this, claim);
    }
    if (cancel != nullptr) {
      Status s = cancel->Check();
      if (!s.ok()) {
        // Not "rejected": the query's own token fired (the session
        // layer counts these under service.queries_cancelled).
        leave_queue();
        record_wait();
        return s;
      }
    }
    const int64_t now = NowNs();
    if (exit_ns != 0 && now >= exit_ns) {
      leave_queue();
      record_wait();
      if (rejected_counter_ != nullptr) rejected_counter_->Add(1);
      return Status::ResourceExhausted(
          "timed out in admission queue after " +
          std::to_string((now - wait_start_ns) / 1000000) + " ms (" +
          std::to_string(running_) + " running, " +
          std::to_string(queue_.size()) + " queued)");
    }
    if (exit_ns != 0) {
      // Wake at the exit time; also re-check the token periodically so
      // a Cancel() without a deadline is noticed promptly even though
      // Cancel does not know our cv. 50ms poll keeps cancellation
      // latency low without busy-waiting.
      int64_t wake_ns = std::min<int64_t>(exit_ns, now + 50000000);
      cv_.wait_for(lock, std::chrono::nanoseconds(wake_ns - now));
    } else if (cancel != nullptr) {
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionController::ReleaseClaim(size_t claim_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ -= 1;
    claimed_bytes_ -= std::min(claimed_bytes_, claim_bytes);
    PublishGauges();
  }
  cv_.notify_all();
}

void AdmissionController::Slot::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseClaim(claim_bytes_);
    controller_ = nullptr;
  }
}

}  // namespace radb::service
