#ifndef RADB_SERVICE_ADMISSION_H_
#define RADB_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/cancellation.h"
#include "common/result.h"
#include "mem/memory_tracker.h"
#include "obs/metrics_registry.h"

namespace radb::service {

/// Knobs for AdmissionController. Defaults are sized for a test/bench
/// process, not a production server.
struct AdmissionConfig {
  /// Queries allowed to execute at once; further arrivals queue.
  size_t max_concurrent_queries = 8;
  /// Global memory budget the sum of admitted queries' claims must
  /// stay under (0 = unlimited). A claim larger than the whole budget
  /// is clamped to it, so an oversized query can still run alone
  /// rather than being unadmittable forever.
  size_t global_memory_budget_bytes = 0;
  /// Memory claim for a query that brings no per-query budget of its
  /// own (an unbudgeted query's usage is unbounded in principle; this
  /// is the planning number admission charges for it).
  size_t default_query_claim_bytes = 64ull << 20;
  /// Waiters allowed in the FIFO queue; arrivals beyond this are
  /// rejected immediately with ResourceExhausted.
  size_t max_queue_length = 64;
  /// How long a waiter may sit in the queue before it is rejected
  /// with ResourceExhausted (0 = wait forever).
  uint64_t queue_timeout_ms = 30000;
};

/// Gates query starts against a global memory budget and a
/// max-concurrent-queries knob, with a bounded FIFO wait queue.
///
/// Admission is claim-based: each query charges a fixed claim (its
/// per-query budget, or default_query_claim_bytes) for its whole
/// lifetime, and the sum of admitted claims stays under the global
/// budget. Actual usage is NOT gated here — an admitted query must
/// never start failing because of other queries' allocations, or
/// results would depend on scheduling. The `global_tracker()` root
/// mirrors admitted queries' real usage for observability (and is
/// what the leak checks in the tests read).
///
/// Waiters are strictly FIFO: a small claim never overtakes a large
/// one (no starvation of big queries). A waiter leaves the queue by
/// admission, by timeout (ResourceExhausted), or by its cancellation
/// token firing (Cancelled / DeadlineExceeded — so a deadline can
/// expire while still queued).
///
/// Thread-safe; one instance is shared by all sessions of a
/// SessionManager.
class AdmissionController {
 public:
  /// `metrics` may be null. When set, maintains:
  ///   service.queries_admitted / queued / rejected (counters)
  ///   service.admitted_running / service.claimed_bytes (gauges)
  /// (the queue-wait and end-to-end latency histograms live in
  /// SessionManager, which sees both ends of a query).
  AdmissionController(AdmissionConfig config,
                      obs::MetricsRegistry* metrics = nullptr);
  ~AdmissionController() = default;

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot: releases its claim (and wakes the queue) on
  /// destruction. Movable so Admit can return it by value.
  class Slot {
   public:
    Slot() = default;
    Slot(AdmissionController* controller, size_t claim_bytes)
        : controller_(controller), claim_bytes_(claim_bytes) {}
    ~Slot() { Release(); }
    Slot(Slot&& o) noexcept
        : controller_(o.controller_), claim_bytes_(o.claim_bytes_) {
      o.controller_ = nullptr;
    }
    Slot& operator=(Slot&& o) noexcept {
      if (this != &o) {
        Release();
        controller_ = o.controller_;
        claim_bytes_ = o.claim_bytes_;
        o.controller_ = nullptr;
      }
      return *this;
    }
    bool admitted() const { return controller_ != nullptr; }
    size_t claim_bytes() const { return claim_bytes_; }
    void Release();

   private:
    AdmissionController* controller_ = nullptr;
    size_t claim_bytes_ = 0;
  };

  /// Blocks until the query may start (FIFO), then returns its slot.
  /// `claim_bytes` = 0 charges default_query_claim_bytes. `cancel`
  /// may be null; when set, a fired token aborts the wait with its
  /// status. Queue-full and timeout reject with ResourceExhausted.
  /// `queue_wait_seconds`, when non-null, receives the time spent
  /// waiting (0.0 for immediate admission).
  Result<Slot> Admit(size_t claim_bytes, const CancellationToken* cancel,
                     double* queue_wait_seconds = nullptr);

  /// Service-level memory root: admitted queries mirror their real
  /// usage here via QueryOptions::memory_parent.
  mem::MemoryTracker* global_tracker() { return &global_tracker_; }

  const AdmissionConfig& config() const { return config_; }

  size_t running() const;
  size_t queued() const;
  size_t claimed_bytes() const;

 private:
  friend class Slot;
  void ReleaseClaim(size_t claim_bytes);
  void PublishGauges();  // callers hold mu_

  const AdmissionConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* queued_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Gauge* claimed_gauge_ = nullptr;
  mem::MemoryTracker global_tracker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t claimed_bytes_ = 0;
  /// FIFO of waiting tickets; only the front ticket may be admitted.
  std::deque<uint64_t> queue_;
  uint64_t next_ticket_ = 1;
};

}  // namespace radb::service

#endif  // RADB_SERVICE_ADMISSION_H_
