#ifndef RADB_MEM_MEMORY_TRACKER_H_
#define RADB_MEM_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <string>

#include "common/result.h"
#include "obs/metrics_registry.h"

namespace radb::mem {

/// Hierarchical memory accounting: one root tracker per query (owning
/// the budget) with one child per operator that wants its own usage
/// attributed (EXPLAIN ANALYZE spill annotations). Charges propagate
/// to the root atomically, so parallel per-worker loops can reserve
/// and release concurrently; the budget check happens against the
/// root's total.
///
/// Budget semantics:
///  - budget_bytes == 0 means unlimited: every reservation succeeds
///    and the tracker is pure bookkeeping.
///  - TryReserve() is the soft path: a `false` return tells a
///    spill-capable consumer (SpillableRowBuffer, the Grace-hash join,
///    aggregation overflow) to move state to disk and retry.
///  - Reserve() is the hard path: operators holding unspillable state
///    (hash tables, sort buffers, aggregate accumulators) call it and
///    propagate the ResourceExhausted status, failing the query while
///    the Database stays healthy.
///  - ForceReserve() charges without failing, for state that must
///    exist before it can spill (a single row larger than what's left
///    of the budget); the overshoot is bounded by one such item.
///
/// The ledger is split in two classes. SPILLABLE charges (row buffers
/// that can always flush to disk) are gated against the TOTAL in use,
/// so buffers start spilling as soon as anything — including operator
/// state — fills the budget. UNSPILLABLE charges (child trackers
/// created for hash tables / sort buffers / accumulators) are gated
/// only against other unspillable state: whether a hash table fits
/// must not depend on which spillable tails other workers happen to
/// hold resident at that instant, or budget checks would be races.
/// The combined footprint is therefore bounded by 2x the budget in
/// the worst transient case (each class at its cap), and operators
/// keep it near 1x by spilling their inputs before reserving state
/// (the executor's MakeHeadroom).
class MemoryTracker {
 public:
  /// Root tracker. `metrics` may be null; when set, the tracker keeps
  /// the `mem.bytes_in_use` gauge and the `mem.spill_bytes` /
  /// `mem.spill_runs` counters up to date.
  MemoryTracker(std::string label, size_t budget_bytes,
                obs::MetricsRegistry* metrics = nullptr);
  /// Query root under a service-level GLOBAL root. Budget gating is
  /// identical to the plain root constructor (this tracker IS the
  /// budget root for its children), but every total-pool charge and
  /// release is mirrored, ungated, into `global_parent` so a service
  /// can observe cluster-wide bytes in use. The global budget itself
  /// is enforced at admission time (whole queries), never per byte —
  /// a query that was admitted must not start failing because of
  /// *other* queries' allocations, or results would depend on
  /// scheduling.
  MemoryTracker(std::string label, size_t budget_bytes,
                MemoryTracker* global_parent, obs::MetricsRegistry* metrics);
  /// Child tracker: charges forward to `parent`'s root; local usage
  /// is tracked separately for per-operator reporting. Children
  /// default to the UNSPILLABLE class because every operator-state
  /// tracker holds memory that cannot move to disk; pass false for a
  /// child that merely groups spillable charges.
  MemoryTracker(std::string label, MemoryTracker* parent,
                bool unspillable = true);
  ~MemoryTracker();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Attempts to reserve; false when the root budget would be
  /// exceeded (the signal to spill). Always succeeds when unlimited.
  bool TryReserve(size_t bytes);

  /// Reserve-or-fail for unspillable state.
  Status Reserve(size_t bytes);

  /// Unconditional charge (bounded overshoot, e.g. one oversized row).
  void ForceReserve(size_t bytes);

  void Release(size_t bytes);

  /// Notes `bytes` written to a spill file in `runs` runs.
  void RecordSpill(size_t bytes, size_t runs = 1);

  /// This tracker's own (local) usage.
  size_t bytes_in_use() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// High-water mark of local usage.
  size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  size_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  size_t spill_runs() const {
    return spill_runs_.load(std::memory_order_relaxed);
  }

  /// The root's budget; 0 = unlimited.
  size_t budget() const;
  bool has_budget() const { return budget() > 0; }
  /// Bytes still reservable at the root by THIS tracker's class
  /// (SIZE_MAX when unlimited): total headroom for spillable
  /// trackers, unspillable-pool headroom for unspillable ones.
  size_t remaining() const;
  /// Root-wide unspillable bytes currently reserved.
  size_t unspillable_bytes() const;

  const std::string& label() const { return label_; }
  MemoryTracker* parent() { return parent_; }
  /// The service-level global root this (query-root) tracker mirrors
  /// its charges into, or null.
  MemoryTracker* global_parent() { return global_; }

 private:
  MemoryTracker* Root();
  void AddLocal(size_t bytes);
  void PublishGauge();
  /// Unconditional charge against the total pool (used_/peak_/gauge),
  /// with no class gating — the shared tail of every reserve path.
  void ForceReserveTotal(size_t bytes);

  std::string label_;
  size_t budget_ = 0;  // root only
  bool unspillable_ = false;
  MemoryTracker* parent_ = nullptr;
  MemoryTracker* global_ = nullptr;  // root only: service-level mirror
  obs::MetricsRegistry* metrics_ = nullptr;  // root only
  obs::Gauge* in_use_gauge_ = nullptr;
  obs::Counter* spill_bytes_counter_ = nullptr;
  obs::Counter* spill_runs_counter_ = nullptr;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> pinned_used_{0};  // root only: unspillable total
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> spill_bytes_{0};
  std::atomic<size_t> spill_runs_{0};
};

}  // namespace radb::mem

#endif  // RADB_MEM_MEMORY_TRACKER_H_
