#include "mem/memory_tracker.h"

#include "common/string_util.h"

namespace radb::mem {

MemoryTracker::MemoryTracker(std::string label, size_t budget_bytes,
                             obs::MetricsRegistry* metrics)
    : label_(std::move(label)), budget_(budget_bytes), metrics_(metrics) {
  if (metrics_ != nullptr) {
    in_use_gauge_ = metrics_->gauge("mem.bytes_in_use");
    spill_bytes_counter_ = metrics_->counter("mem.spill_bytes");
    spill_runs_counter_ = metrics_->counter("mem.spill_runs");
  }
}

MemoryTracker::MemoryTracker(std::string label, size_t budget_bytes,
                             MemoryTracker* global_parent,
                             obs::MetricsRegistry* metrics)
    : MemoryTracker(std::move(label), budget_bytes, metrics) {
  global_ = global_parent;
}

MemoryTracker::MemoryTracker(std::string label, MemoryTracker* parent,
                             bool unspillable)
    : label_(std::move(label)), unspillable_(unspillable), parent_(parent) {}

namespace {

// Clamped atomic decrement: never underflow on double-release bugs.
void ClampedSub(std::atomic<size_t>& counter, size_t bytes) {
  size_t cur = counter.load(std::memory_order_relaxed);
  while (true) {
    const size_t dec = cur < bytes ? cur : bytes;
    if (counter.compare_exchange_weak(cur, cur - dec,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

MemoryTracker::~MemoryTracker() {
  // A child releases whatever it still holds from the root, so an
  // aborted operator (early error return) cannot poison the next
  // statement's accounting.
  const size_t held = used_.load(std::memory_order_relaxed);
  if (parent_ != nullptr && held > 0) {
    MemoryTracker* root = Root();
    ClampedSub(root->used_, held);
    if (unspillable_) ClampedSub(root->pinned_used_, held);
    if (root->global_ != nullptr) {
      ClampedSub(root->global_->used_, held);
      root->global_->PublishGauge();
    }
    root->PublishGauge();
  } else if (parent_ == nullptr && global_ != nullptr && held > 0) {
    // A retiring query root returns whatever it still holds to the
    // service-level mirror, so an aborted (or cancelled) query cannot
    // leak bytes out of the global accounting.
    ClampedSub(global_->used_, held);
    global_->PublishGauge();
  }
}

MemoryTracker* MemoryTracker::Root() {
  MemoryTracker* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  return t;
}

size_t MemoryTracker::budget() const {
  const MemoryTracker* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  return t->budget_;
}

size_t MemoryTracker::remaining() const {
  const MemoryTracker* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  if (t->budget_ == 0) return std::numeric_limits<size_t>::max();
  // Spillable charges are gated against the total; unspillable ones
  // only against the unspillable pool (see the class comment).
  const auto& pool = unspillable_ ? t->pinned_used_ : t->used_;
  const size_t used = pool.load(std::memory_order_relaxed);
  return used >= t->budget_ ? 0 : t->budget_ - used;
}

size_t MemoryTracker::unspillable_bytes() const {
  const MemoryTracker* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  return t->pinned_used_.load(std::memory_order_relaxed);
}

void MemoryTracker::AddLocal(size_t bytes) {
  const size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::PublishGauge() {
  if (in_use_gauge_ != nullptr) {
    in_use_gauge_->Set(
        static_cast<double>(used_.load(std::memory_order_relaxed)));
  }
}

bool MemoryTracker::TryReserve(size_t bytes) {
  MemoryTracker* root = Root();
  if (unspillable_) {
    // Gate against the unspillable pool only: whether operator state
    // fits must not depend on spillable tails transiently resident in
    // other workers' buffers.
    const size_t now_pinned =
        root->pinned_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (root->budget_ > 0 && now_pinned > root->budget_) {
      root->pinned_used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    // Admitted state still counts toward the total (gauge, peak, and
    // the pressure that makes spillable buffers flush).
    ForceReserveTotal(bytes);
    return true;
  }
  const size_t now =
      root->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (root->budget_ > 0 && now > root->budget_) {
    root->used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  size_t peak = root->peak_.load(std::memory_order_relaxed);
  while (now > peak && !root->peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (root != this) AddLocal(bytes);
  if (root->global_ != nullptr) root->global_->ForceReserveTotal(bytes);
  root->PublishGauge();
  return true;
}

Status MemoryTracker::Reserve(size_t bytes) {
  if (TryReserve(bytes)) return Status::OK();
  return Status::ResourceExhausted(
      label_ + " needs " + FormatBytes(static_cast<double>(bytes)) +
      " of unspillable memory but only " +
      FormatBytes(static_cast<double>(remaining())) + " of the " +
      FormatBytes(static_cast<double>(budget())) +
      " query budget remains; raise QueryOptions::memory_budget_bytes");
}

void MemoryTracker::ForceReserveTotal(size_t bytes) {
  MemoryTracker* root = Root();
  const size_t now =
      root->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = root->peak_.load(std::memory_order_relaxed);
  while (now > peak && !root->peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (root != this) AddLocal(bytes);
  if (root->global_ != nullptr) root->global_->ForceReserveTotal(bytes);
  root->PublishGauge();
}

void MemoryTracker::ForceReserve(size_t bytes) {
  if (unspillable_) {
    Root()->pinned_used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  ForceReserveTotal(bytes);
}

void MemoryTracker::Release(size_t bytes) {
  MemoryTracker* root = Root();
  root->used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (unspillable_) {
    root->pinned_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  if (root != this) used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (root->global_ != nullptr) {
    ClampedSub(root->global_->used_, bytes);
    root->global_->PublishGauge();
  }
  root->PublishGauge();
}

void MemoryTracker::RecordSpill(size_t bytes, size_t runs) {
  MemoryTracker* root = Root();
  root->spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  root->spill_runs_.fetch_add(runs, std::memory_order_relaxed);
  if (root != this) {
    spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    spill_runs_.fetch_add(runs, std::memory_order_relaxed);
  }
  if (root->spill_bytes_counter_ != nullptr) {
    root->spill_bytes_counter_->Add(bytes);
    root->spill_runs_counter_->Add(runs);
  }
}

}  // namespace radb::mem
