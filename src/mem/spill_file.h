#ifndef RADB_MEM_SPILL_FILE_H_
#define RADB_MEM_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace radb::mem {

/// Append-only run storage backing spilled operator state. One file
/// holds many runs; each run is an opaque byte blob the caller encoded
/// (row codec, raw tile doubles, ...). The backing file is created
/// with mkstemp and unlinked immediately, so it vanishes with the
/// process no matter how the query ends; a SpillFile is therefore
/// single-owner and never visible in the filesystem after Create
/// returns.
///
/// Not thread-safe: each spilling buffer owns its own SpillFile, and
/// the executor's per-worker loops never share one.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& o) noexcept;
  SpillFile& operator=(SpillFile&& o) noexcept;

  /// Creates the backing temp file under `dir` (empty = the system
  /// temp directory, honoring $TMPDIR). `tag` (e.g. "q12" for query
  /// 12) is embedded in the file name together with the owning pid and
  /// a process-wide atomic sequence number, so concurrent queries
  /// sharing one spill_dir produce distinguishable, collision-free
  /// names: radb-spill-<tag>-p<pid>-<seq>-XXXXXX. The pid lets
  /// SweepOrphanedSpillFiles tell a crashed owner's leftovers from a
  /// live process's files.
  Status Create(const std::string& dir = "", const std::string& tag = "");

  bool is_open() const { return fd_ >= 0; }

  /// The path mkstemp chose (already unlinked — the name is for
  /// attribution/diagnostics, not for reopening).
  const std::string& path() const { return path_; }

  /// Appends one run; returns its index for ReadRun.
  Result<size_t> WriteRun(const char* data, size_t size);

  /// Reads back run `index` in full.
  Result<std::string> ReadRun(size_t index) const;

  size_t num_runs() const { return runs_.size(); }
  size_t bytes_written() const { return bytes_written_; }
  size_t run_size(size_t index) const { return runs_[index].size; }

 private:
  struct RunExtent {
    size_t offset;
    size_t size;
  };

  void Close();

  int fd_ = -1;
  std::string path_;
  size_t bytes_written_ = 0;
  std::vector<RunExtent> runs_;
};

/// Removes orphaned radb-spill-* files from `dir` (empty = the system
/// temp directory, same resolution as SpillFile::Create). A file is an
/// orphan when its embedded "-p<pid>-" owner is no longer alive, or —
/// for names without a parseable pid (older layouts, partial mkstemp
/// templates left by a crash) — when it is older than `max_age_seconds`.
/// Normal operation never leaves names behind (Create unlinks
/// immediately); orphans only appear when a process dies between
/// mkstemp and unlink, so this runs once at Database startup.
/// Returns the number of files removed.
size_t SweepOrphanedSpillFiles(const std::string& dir = "",
                               uint64_t max_age_seconds = 3600);

/// The shared directory-hygiene path behind SweepOrphanedSpillFiles and
/// the persistent store's temp-file cleanup: removes files under `dir`
/// whose name begins with `prefix` and whose embedded "-p<pid>-" owner
/// process is dead (probed with kill(pid, 0)); names without a
/// parseable pid fall back to an mtime age check so a foreign writer's
/// fresh file is left alone. Returns the number of files removed.
size_t SweepOrphanedFiles(const std::string& dir, const std::string& prefix,
                          uint64_t max_age_seconds);

}  // namespace radb::mem

#endif  // RADB_MEM_SPILL_FILE_H_
