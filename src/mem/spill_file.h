#ifndef RADB_MEM_SPILL_FILE_H_
#define RADB_MEM_SPILL_FILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace radb::mem {

/// Append-only run storage backing spilled operator state. One file
/// holds many runs; each run is an opaque byte blob the caller encoded
/// (row codec, raw tile doubles, ...). The backing file is created
/// with mkstemp and unlinked immediately, so it vanishes with the
/// process no matter how the query ends; a SpillFile is therefore
/// single-owner and never visible in the filesystem after Create
/// returns.
///
/// Not thread-safe: each spilling buffer owns its own SpillFile, and
/// the executor's per-worker loops never share one.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& o) noexcept;
  SpillFile& operator=(SpillFile&& o) noexcept;

  /// Creates the backing temp file under `dir` (empty = the system
  /// temp directory, honoring $TMPDIR).
  Status Create(const std::string& dir = "");

  bool is_open() const { return fd_ >= 0; }

  /// Appends one run; returns its index for ReadRun.
  Result<size_t> WriteRun(const char* data, size_t size);

  /// Reads back run `index` in full.
  Result<std::string> ReadRun(size_t index) const;

  size_t num_runs() const { return runs_.size(); }
  size_t bytes_written() const { return bytes_written_; }
  size_t run_size(size_t index) const { return runs_[index].size; }

 private:
  struct RunExtent {
    size_t offset;
    size_t size;
  };

  void Close();

  int fd_ = -1;
  size_t bytes_written_ = 0;
  std::vector<RunExtent> runs_;
};

}  // namespace radb::mem

#endif  // RADB_MEM_SPILL_FILE_H_
