#include "mem/spill_file.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

namespace radb::mem {

SpillFile::~SpillFile() { Close(); }

SpillFile::SpillFile(SpillFile&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      bytes_written_(std::exchange(o.bytes_written_, 0)),
      runs_(std::move(o.runs_)) {}

SpillFile& SpillFile::operator=(SpillFile&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    bytes_written_ = std::exchange(o.bytes_written_, 0);
    runs_ = std::move(o.runs_);
  }
  return *this;
}

void SpillFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  bytes_written_ = 0;
  runs_.clear();
}

namespace {
// Process-wide spill-file sequence number: concurrent queries sharing
// one spill_dir each get a distinct name even with identical tags.
std::atomic<uint64_t> g_spill_seq{0};

std::string ResolveSpillDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr && *tmp) {
    return tmp;
  }
  return "/tmp";
}
}  // namespace

Status SpillFile::Create(const std::string& dir, const std::string& tag) {
  if (fd_ >= 0) return Status::OK();
  const std::string base = ResolveSpillDir(dir);
  const uint64_t seq =
      g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  std::string tmpl = base + "/radb-spill-";
  if (!tag.empty()) tmpl += tag + "-";
  tmpl += "p" + std::to_string(::getpid()) + "-";
  tmpl += std::to_string(seq) + "-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    return Status::ExecutionError("cannot create spill file in " + base +
                                  ": " + std::strerror(errno));
  }
  // Unlink immediately: the fd keeps the storage alive, the name never
  // lingers even if the process is killed mid-query.
  ::unlink(tmpl.c_str());
  fd_ = fd;
  path_ = tmpl;
  return Status::OK();
}

Result<size_t> SpillFile::WriteRun(const char* data, size_t size) {
  if (fd_ < 0) {
    return Status::ExecutionError("spill file not open");
  }
  const size_t offset = bytes_written_;
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, data + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("spill write failed: ") +
                                    std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  bytes_written_ += size;
  runs_.push_back(RunExtent{offset, size});
  return runs_.size() - 1;
}

Result<std::string> SpillFile::ReadRun(size_t index) const {
  if (fd_ < 0) {
    return Status::ExecutionError("spill file not open");
  }
  if (index >= runs_.size()) {
    return Status::ExecutionError("spill run index out of range");
  }
  const RunExtent& ext = runs_[index];
  std::string buf(ext.size, '\0');
  size_t done = 0;
  while (done < ext.size) {
    const ssize_t n = ::pread(fd_, buf.data() + done, ext.size - done,
                              static_cast<off_t>(ext.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("spill read failed: ") +
                                    std::strerror(errno));
    }
    if (n == 0) {
      return Status::ExecutionError("spill file truncated");
    }
    done += static_cast<size_t>(n);
  }
  return buf;
}

size_t SweepOrphanedSpillFiles(const std::string& dir,
                               uint64_t max_age_seconds) {
  return SweepOrphanedFiles(ResolveSpillDir(dir), "radb-spill-",
                            max_age_seconds);
}

size_t SweepOrphanedFiles(const std::string& dir, const std::string& prefix,
                          uint64_t max_age_seconds) {
  const std::string& base = dir;
  DIR* d = ::opendir(base.c_str());
  if (d == nullptr) return 0;
  const time_t now = ::time(nullptr);
  size_t removed = 0;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string path = base + "/" + name;

    // A live owner's file is never touched: parse the "-p<pid>-"
    // marker and probe the pid with signal 0. ESRCH means the owner
    // died between mkstemp and unlink — the definition of an orphan.
    bool has_pid = false;
    bool owner_alive = false;
    const size_t marker = name.find("-p");
    if (marker != std::string::npos) {
      size_t i = marker + 2;
      long pid = 0;
      while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
        pid = pid * 10 + (name[i] - '0');
        ++i;
      }
      if (pid > 0 && i < name.size() && name[i] == '-') {
        has_pid = true;
        owner_alive =
            ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
      }
    }
    if (has_pid) {
      if (owner_alive) continue;
    } else {
      // No parseable pid (pre-pid layout or a mangled template): fall
      // back to age so a freshly created file from a foreign writer is
      // left alone.
      struct stat st;
      if (::stat(path.c_str(), &st) != 0) continue;
      if (now - st.st_mtime < static_cast<time_t>(max_age_seconds)) continue;
    }
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

}  // namespace radb::mem
