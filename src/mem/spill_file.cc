#include "mem/spill_file.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace radb::mem {

SpillFile::~SpillFile() { Close(); }

SpillFile::SpillFile(SpillFile&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      bytes_written_(std::exchange(o.bytes_written_, 0)),
      runs_(std::move(o.runs_)) {}

SpillFile& SpillFile::operator=(SpillFile&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    bytes_written_ = std::exchange(o.bytes_written_, 0);
    runs_ = std::move(o.runs_);
  }
  return *this;
}

void SpillFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  bytes_written_ = 0;
  runs_.clear();
}

namespace {
// Process-wide spill-file sequence number: concurrent queries sharing
// one spill_dir each get a distinct name even with identical tags.
std::atomic<uint64_t> g_spill_seq{0};
}  // namespace

Status SpillFile::Create(const std::string& dir, const std::string& tag) {
  if (fd_ >= 0) return Status::OK();
  std::string base = dir;
  if (base.empty()) {
    if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr && *tmp) {
      base = tmp;
    } else {
      base = "/tmp";
    }
  }
  const uint64_t seq =
      g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  std::string tmpl = base + "/radb-spill-";
  if (!tag.empty()) tmpl += tag + "-";
  tmpl += std::to_string(seq) + "-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    return Status::ExecutionError("cannot create spill file in " + base +
                                  ": " + std::strerror(errno));
  }
  // Unlink immediately: the fd keeps the storage alive, the name never
  // lingers even if the process is killed mid-query.
  ::unlink(tmpl.c_str());
  fd_ = fd;
  path_ = tmpl;
  return Status::OK();
}

Result<size_t> SpillFile::WriteRun(const char* data, size_t size) {
  if (fd_ < 0) {
    return Status::ExecutionError("spill file not open");
  }
  const size_t offset = bytes_written_;
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, data + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("spill write failed: ") +
                                    std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  bytes_written_ += size;
  runs_.push_back(RunExtent{offset, size});
  return runs_.size() - 1;
}

Result<std::string> SpillFile::ReadRun(size_t index) const {
  if (fd_ < 0) {
    return Status::ExecutionError("spill file not open");
  }
  if (index >= runs_.size()) {
    return Status::ExecutionError("spill run index out of range");
  }
  const RunExtent& ext = runs_[index];
  std::string buf(ext.size, '\0');
  size_t done = 0;
  while (done < ext.size) {
    const ssize_t n = ::pread(fd_, buf.data() + done, ext.size - done,
                              static_cast<off_t>(ext.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("spill read failed: ") +
                                    std::strerror(errno));
    }
    if (n == 0) {
      return Status::ExecutionError("spill file truncated");
    }
    done += static_cast<size_t>(n);
  }
  return buf;
}

}  // namespace radb::mem
