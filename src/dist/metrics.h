#ifndef RADB_DIST_METRICS_H_
#define RADB_DIST_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace radb {

/// Per-operator execution metrics collected by the executor. This is
/// what Figure 4 of the paper plots (join time vs aggregation time for
/// tuple- vs vector-based Gram computation) and what the skew
/// discussion in §5 measures (a few overloaded workers finishing
/// late).
struct OperatorMetrics {
  std::string name;           // e.g. "HashJoin", "Aggregate(final)"
  size_t rows_in = 0;         // rows consumed from the child operator(s)
  size_t rows_out = 0;
  size_t bytes_out = 0;
  size_t rows_shuffled = 0;   // rows that crossed worker boundaries
  size_t bytes_shuffled = 0;  // payload of those rows / partial states
  size_t bytes_spilled = 0;   // bytes this operator wrote to spill files
  size_t spill_runs = 0;      // number of spill runs it flushed
  /// The optimizer's cardinality estimate for the plan node this
  /// operator executed (0 when unknown) — EXPLAIN ANALYZE's
  /// estimate-vs-actual column.
  double estimated_rows = 0.0;
  /// True when the columnar batch engine executed this operator (the
  /// row engine otherwise); `batches` counts the column batches it
  /// processed across all workers (0 on the row path).
  bool vectorized = false;
  size_t batches = 0;
  /// Wall-clock seconds spent per worker partition; the simulated
  /// parallel elapsed time of the operator is the max entry.
  std::vector<double> worker_seconds;

  double TotalSeconds() const;
  double MaxWorkerSeconds() const;
  /// max/mean worker time; 1.0 = perfectly balanced.
  double Skew() const;
  /// Relative cardinality misestimate: max(est/actual, actual/est),
  /// with both sides clamped to >= 1 row. 1.0 = exact; 0.0 when no
  /// estimate was recorded.
  double EstimationError() const;
};

/// Whole-query metrics: the operator list in execution order.
struct QueryMetrics {
  std::vector<OperatorMetrics> operators;
  double wall_seconds = 0.0;

  /// Sum over operators of the slowest worker — the time a real
  /// shared-nothing cluster would take if every operator were a
  /// barrier stage.
  double SimulatedParallelSeconds() const;
  size_t TotalBytesShuffled() const;
  size_t TotalRowsProcessed() const;
  /// Bytes the whole query spilled to disk under memory pressure.
  size_t TotalBytesSpilled() const;

  /// Worst per-operator EstimationError() across the query — how far
  /// off the optimizer's costing was anywhere in the plan.
  double MaxEstimationError() const;

  /// Human-readable per-operator breakdown table.
  std::string ToString() const;

  /// Machine-readable export: the whole per-operator breakdown plus
  /// the query totals, as one JSON object. This is what the bench
  /// harness writes next to its stdout tables.
  std::string ToJson() const;

  /// Sums the per-worker times of all operators whose name contains
  /// `substr` (e.g. "Join", "Aggregate") — used by the Figure 4
  /// breakdown bench.
  double SecondsForOperatorsContaining(const std::string& substr) const;
};

}  // namespace radb

#endif  // RADB_DIST_METRICS_H_
