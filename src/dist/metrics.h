#ifndef RADB_DIST_METRICS_H_
#define RADB_DIST_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace radb {

/// Per-operator execution metrics collected by the executor. This is
/// what Figure 4 of the paper plots (join time vs aggregation time for
/// tuple- vs vector-based Gram computation) and what the skew
/// discussion in §5 measures (a few overloaded workers finishing
/// late).
struct OperatorMetrics {
  std::string name;           // e.g. "HashJoin", "Aggregate(final)"
  size_t rows_out = 0;
  size_t bytes_out = 0;
  size_t rows_shuffled = 0;   // rows that crossed worker boundaries
  size_t bytes_shuffled = 0;  // payload of those rows / partial states
  /// Wall-clock seconds spent per worker partition; the simulated
  /// parallel elapsed time of the operator is the max entry.
  std::vector<double> worker_seconds;

  double TotalSeconds() const;
  double MaxWorkerSeconds() const;
  /// max/mean worker time; 1.0 = perfectly balanced.
  double Skew() const;
};

/// Whole-query metrics: the operator list in execution order.
struct QueryMetrics {
  std::vector<OperatorMetrics> operators;
  double wall_seconds = 0.0;

  /// Sum over operators of the slowest worker — the time a real
  /// shared-nothing cluster would take if every operator were a
  /// barrier stage.
  double SimulatedParallelSeconds() const;
  size_t TotalBytesShuffled() const;
  size_t TotalRowsProcessed() const;

  /// Human-readable per-operator breakdown table.
  std::string ToString() const;

  /// Sums the per-worker times of all operators whose name contains
  /// `substr` (e.g. "Join", "Aggregate") — used by the Figure 4
  /// breakdown bench.
  double SecondsForOperatorsContaining(const std::string& substr) const;
};

}  // namespace radb

#endif  // RADB_DIST_METRICS_H_
