#include "dist/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace radb {

double OperatorMetrics::TotalSeconds() const {
  double s = 0.0;
  for (double w : worker_seconds) s += w;
  return s;
}

double OperatorMetrics::MaxWorkerSeconds() const {
  double m = 0.0;
  for (double w : worker_seconds) m = std::max(m, w);
  return m;
}

double OperatorMetrics::Skew() const {
  if (worker_seconds.empty()) return 1.0;
  const double total = TotalSeconds();
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(worker_seconds.size());
  return MaxWorkerSeconds() / mean;
}

double QueryMetrics::SimulatedParallelSeconds() const {
  double s = 0.0;
  for (const OperatorMetrics& op : operators) s += op.MaxWorkerSeconds();
  return s;
}

size_t QueryMetrics::TotalBytesShuffled() const {
  size_t s = 0;
  for (const OperatorMetrics& op : operators) s += op.bytes_shuffled;
  return s;
}

size_t QueryMetrics::TotalRowsProcessed() const {
  size_t s = 0;
  for (const OperatorMetrics& op : operators) s += op.rows_out;
  return s;
}

double QueryMetrics::SecondsForOperatorsContaining(
    const std::string& substr) const {
  double s = 0.0;
  for (const OperatorMetrics& op : operators) {
    if (op.name.find(substr) != std::string::npos) s += op.TotalSeconds();
  }
  return s;
}

std::string QueryMetrics::ToString() const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %12s %12s %12s %10s %6s\n",
                "operator", "rows_out", "bytes_out", "shuffled", "time",
                "skew");
  os << buf;
  for (const OperatorMetrics& op : operators) {
    std::snprintf(buf, sizeof(buf), "%-28s %12zu %12s %12s %9.3fs %6.2f\n",
                  op.name.c_str(), op.rows_out,
                  FormatBytes(static_cast<double>(op.bytes_out)).c_str(),
                  FormatBytes(static_cast<double>(op.bytes_shuffled)).c_str(),
                  op.TotalSeconds(), op.Skew());
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total wall %.3fs | simulated parallel %.3fs | shuffled %s\n",
                wall_seconds, SimulatedParallelSeconds(),
                FormatBytes(static_cast<double>(TotalBytesShuffled())).c_str());
  os << buf;
  return os.str();
}

}  // namespace radb
